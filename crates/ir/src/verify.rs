//! Static verification of translation regions (DESIGN.md §8).
//!
//! The authoritative guest component catches translation bugs only
//! *dynamically* — after wrong code has already run. This module checks a
//! region *statically*, before it enters the code cache, and localizes a
//! broken invariant to the pass that introduced it (verify-each mode in
//! [`crate::passes::run_passes`]).
//!
//! Two layers:
//!
//! 1. a small reusable **dataflow framework** over straight-line regions
//!    with side exits — gen/kill bitsets keyed by [`VReg`], solved to a
//!    fixpoint forward or backward ([`solve`], [`DataflowProblem`]);
//! 2. the **verifier** proper: [`verify_region`] (structural + semantic
//!    invariants), [`verify_ddg`] (the dependence graph carries every
//!    ordering the host hardware does not enforce), and
//!    [`crate::codegen::check_host_code`] (post-codegen register and
//!    branch discipline).

use crate::ddg::{self, Alias, Ddg};
use crate::ir::{IrOp, RegClass, Region, VReg};
use std::fmt;

// ---------------------------------------------------------------------------
// Bitsets
// ---------------------------------------------------------------------------

/// A fixed-capacity bitset (the dataflow lattice element).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a domain of `len` elements.
    pub fn new(len: usize) -> BitSet {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets bit `i` (ignores out-of-domain indices so malformed regions
    /// cannot panic the verifier itself).
    pub fn insert(&mut self, i: usize) {
        if i < self.len {
            self.words[i / 64] |= 1 << (i % 64);
        }
    }

    /// Clears bit `i`.
    pub fn remove(&mut self, i: usize) {
        if i < self.len {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Tests bit `i` (out-of-domain indices read as unset).
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// `self |= other`; returns whether `self` changed (the fixpoint
    /// driver's convergence test).
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let n = *a | *b;
            if n != *a {
                *a = n;
                changed = true;
            }
        }
        changed
    }

    /// Iterates set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            (0..64).filter_map(move |b| (w >> b & 1 == 1).then_some(wi * 64 + b))
        })
    }
}

// ---------------------------------------------------------------------------
// Dataflow framework
// ---------------------------------------------------------------------------

/// Direction of a dataflow analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Entry → terminal (e.g. defined vregs).
    Forward,
    /// Terminal → entry (e.g. liveness).
    Backward,
}

/// A gen/kill dataflow problem over a straight-line region with side
/// exits. Side exits need no join points: control either leaves the
/// region (and the exit's uses are generated at the exit instruction) or
/// falls through, so the fact sets form a single chain per direction.
pub trait DataflowProblem {
    /// Analysis direction.
    fn direction(&self) -> Direction;
    /// Domain size (number of bits per set).
    fn bits(&self, region: &Region) -> usize;
    /// Seeds the boundary set: region entry for forward problems, the
    /// terminal instruction for backward problems.
    fn boundary(&self, region: &Region, set: &mut BitSet);
    /// Applies instruction `idx`'s gen/kill effect to `set` in place.
    fn transfer(&self, region: &Region, idx: usize, set: &mut BitSet);
}

/// Per-instruction fact sets computed by [`solve`]. `before[i]`/`after[i]`
/// are in *program order* regardless of the analysis direction.
#[derive(Debug, Clone)]
pub struct DataflowResult {
    /// Facts holding immediately before instruction `i`.
    pub before: Vec<BitSet>,
    /// Facts holding immediately after instruction `i`.
    pub after: Vec<BitSet>,
    /// Fixpoint iterations taken (straight-line code converges in 2).
    pub iterations: u32,
}

/// Solves a dataflow problem to a fixpoint.
pub fn solve<P: DataflowProblem>(region: &Region, problem: &P) -> DataflowResult {
    let n = region.insts.len();
    let bits = problem.bits(region);
    let mut before = vec![BitSet::new(bits); n];
    let mut after = vec![BitSet::new(bits); n];
    let mut iterations = 0u32;
    loop {
        iterations += 1;
        let mut changed = false;
        let mut cur = BitSet::new(bits);
        problem.boundary(region, &mut cur);
        match problem.direction() {
            Direction::Forward => {
                for i in 0..n {
                    changed |= before[i].union_with(&cur);
                    cur = before[i].clone();
                    problem.transfer(region, i, &mut cur);
                    changed |= after[i].union_with(&cur);
                    cur = after[i].clone();
                }
            }
            Direction::Backward => {
                for i in (0..n).rev() {
                    changed |= after[i].union_with(&cur);
                    cur = after[i].clone();
                    problem.transfer(region, i, &mut cur);
                    changed |= before[i].union_with(&cur);
                    cur = before[i].clone();
                }
            }
        }
        if !changed || iterations >= 8 {
            break;
        }
    }
    DataflowResult { before, after, iterations }
}

/// Forward "defined vregs": a bit is set once the vreg's (single) def has
/// executed; entry bindings are defined on entry.
pub struct DefinedVregs;

impl DataflowProblem for DefinedVregs {
    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bits(&self, region: &Region) -> usize {
        region.vreg_count()
    }

    fn boundary(&self, region: &Region, set: &mut BitSet) {
        for v in entry_vregs(region) {
            set.insert(v.0 as usize);
        }
    }

    fn transfer(&self, region: &Region, idx: usize, set: &mut BitSet) {
        if let Some(d) = region.insts[idx].dst {
            set.insert(d.0 as usize);
        }
    }
}

/// Backward liveness: a vreg is live before an instruction if a later
/// instruction (or a side exit's state recipe) reads it.
pub struct LiveVregs;

impl DataflowProblem for LiveVregs {
    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bits(&self, region: &Region) -> usize {
        region.vreg_count()
    }

    fn boundary(&self, _region: &Region, _set: &mut BitSet) {}

    fn transfer(&self, region: &Region, idx: usize, set: &mut BitSet) {
        let inst = &region.insts[idx];
        if let Some(d) = inst.dst {
            set.remove(d.0 as usize);
        }
        for s in &inst.srcs {
            set.insert(s.0 as usize);
        }
        if let IrOp::ExitIf { exit } | IrOp::ExitAlways { exit } = inst.op {
            if let Some(e) = region.exits.get(exit) {
                for u in e.used_vregs() {
                    set.insert(u.0 as usize);
                }
            }
        }
    }
}

fn entry_vregs(region: &Region) -> impl Iterator<Item = VReg> + '_ {
    region
        .entry
        .gprs
        .iter()
        .chain(region.entry.fprs.iter())
        .chain(region.entry.flags.iter())
        .flatten()
        .copied()
}

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// The invariant classes the verifier checks. `ALL` fixes the order used
/// for the by-category stats counters in `TolStats` and the debug JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// Region does not end with a terminal `ExitAlways` (or has a
    /// non-terminal one).
    MissingTerminator,
    /// A vreg is read before any definition reaches the read.
    UseBeforeDef,
    /// SSA violation: a vreg has more than one definition.
    MultipleDef,
    /// `RegClass` disagreement between a def and a use.
    ClassMismatch,
    /// `ExitIf`/`ExitAlways` exit index out of bounds.
    ExitOutOfBounds,
    /// A program-order-younger `Store`/`StoreF` scheduled above an
    /// unresolved `Assert` (rollback hazard the SBM cannot provide).
    StoreAfterAssert,
    /// An exit's flag-materialization recipe references a vreg that is
    /// not defined at the exit, or materializes a partial flag set with
    /// no deferred descriptor to cover the rest.
    DeadFlagMaterialization,
    /// The DDG is missing an ordering the hardware does not enforce.
    DdgInconsistent,
    /// Emitted host code clobbers pinned guest state, breaks scratch
    /// discipline, or branches outside the region.
    HostCodeClobber,
    /// Structurally malformed IR (bad arity, out-of-range vreg, …).
    Malformed,
    /// The region's observable guest-state semantics changed across an
    /// optimization pass (symbolic translation validation, see
    /// [`crate::sym`]).
    SemanticDivergence,
}

impl InvariantKind {
    /// Every kind, in stats-counter order.
    pub const ALL: [InvariantKind; 11] = [
        InvariantKind::MissingTerminator,
        InvariantKind::UseBeforeDef,
        InvariantKind::MultipleDef,
        InvariantKind::ClassMismatch,
        InvariantKind::ExitOutOfBounds,
        InvariantKind::StoreAfterAssert,
        InvariantKind::DeadFlagMaterialization,
        InvariantKind::DdgInconsistent,
        InvariantKind::HostCodeClobber,
        InvariantKind::Malformed,
        InvariantKind::SemanticDivergence,
    ];

    /// Position in [`InvariantKind::ALL`] (stats-counter index).
    pub fn index(self) -> usize {
        match self {
            InvariantKind::MissingTerminator => 0,
            InvariantKind::UseBeforeDef => 1,
            InvariantKind::MultipleDef => 2,
            InvariantKind::ClassMismatch => 3,
            InvariantKind::ExitOutOfBounds => 4,
            InvariantKind::StoreAfterAssert => 5,
            InvariantKind::DeadFlagMaterialization => 6,
            InvariantKind::DdgInconsistent => 7,
            InvariantKind::HostCodeClobber => 8,
            InvariantKind::Malformed => 9,
            InvariantKind::SemanticDivergence => 10,
        }
    }

    /// Stable kebab-case name (JSON field / lint output).
    pub fn name(self) -> &'static str {
        match self {
            InvariantKind::MissingTerminator => "missing-terminator",
            InvariantKind::UseBeforeDef => "use-before-def",
            InvariantKind::MultipleDef => "multiple-def",
            InvariantKind::ClassMismatch => "class-mismatch",
            InvariantKind::ExitOutOfBounds => "exit-out-of-bounds",
            InvariantKind::StoreAfterAssert => "store-after-assert",
            InvariantKind::DeadFlagMaterialization => "dead-flag-materialization",
            InvariantKind::DdgInconsistent => "ddg-inconsistent",
            InvariantKind::HostCodeClobber => "host-code-clobber",
            InvariantKind::Malformed => "malformed",
            InvariantKind::SemanticDivergence => "semantic-divergence",
        }
    }
}

/// Number of invariant categories (size of the by-kind stats array).
pub const KIND_COUNT: usize = InvariantKind::ALL.len();

/// Registers a by-kind finding-count array as `<prefix>.<kind-name>`
/// counters. The single source of metric names for verifier findings:
/// both the TOL stats bridge and the debug JSON go through here, so the
/// two reports can never disagree on spelling.
pub fn register_kind_counters(
    by_kind: &[u64; KIND_COUNT],
    prefix: &str,
    reg: &mut darco_obs::Registry,
) {
    for kind in InvariantKind::ALL {
        reg.set_counter(&format!("{prefix}.{}", kind.name()), by_kind[kind.index()]);
    }
}

/// One verifier finding, with region/instruction provenance.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Offending instruction index, when attributable.
    pub inst: Option<usize>,
    /// Guest PC of the offending instruction (the region entry PC when
    /// no instruction is attributable).
    pub guest_pc: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.kind.name())?;
        if let Some(i) = self.inst {
            write!(f, " inst {i}")?;
        }
        write!(f, " @{:#010x}: {}", self.guest_pc, self.message)
    }
}

/// The result of verifying one region.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Guest entry PC of the verified region.
    pub region_pc: u32,
    /// Findings, in discovery order (empty = region is valid).
    pub findings: Vec<Finding>,
}

impl VerifyReport {
    fn new(region_pc: u32) -> VerifyReport {
        VerifyReport { region_pc, findings: Vec::new() }
    }

    /// True when no invariant is broken.
    pub fn is_ok(&self) -> bool {
        self.findings.is_empty()
    }

    /// Finding counts indexed like [`InvariantKind::ALL`].
    pub fn by_kind(&self) -> [u64; KIND_COUNT] {
        let mut counts = [0u64; KIND_COUNT];
        for f in &self.findings {
            counts[f.kind.index()] += 1;
        }
        counts
    }

    fn add(&mut self, region: &Region, kind: InvariantKind, inst: Option<usize>, message: String) {
        let guest_pc = inst
            .and_then(|i| region.insts.get(i))
            .map_or(region.guest_entry_pc, |i| i.guest_pc);
        self.findings.push(Finding { kind, inst, guest_pc, message });
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "region @{:#010x}: {} finding(s)", self.region_pc, self.findings.len())?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Region verifier
// ---------------------------------------------------------------------------

/// Verifies every structural and semantic invariant of a region (a strict
/// superset of [`Region::validate`], reporting instead of panicking).
pub fn verify_region(region: &Region) -> VerifyReport {
    let mut rep = VerifyReport::new(region.guest_entry_pc);
    check_insts(region, &mut rep);
    if rep.findings.iter().any(|f| f.kind == InvariantKind::Malformed) {
        // Structurally malformed IR: deeper findings from the fused walk
        // describe half-checked operands — report the shape problems
        // alone, exactly as the staged shape-then-deep verifier did.
        rep.findings.retain(|f| f.kind == InvariantKind::Malformed);
        return rep;
    }
    check_terminator(region, &mut rep);
    check_exits(region, &mut rep);
    check_store_after_assert(region, &mut rep);
    rep
}

fn arity_ok(op: &IrOp, n: usize) -> bool {
    match op {
        IrOp::ConstI(_) | IrOp::ConstF(_) | IrOp::ExitAlways { .. } => n == 0,
        IrOp::Copy
        | IrOp::Load { .. }
        | IrOp::LoadF
        | IrOp::FUn(_)
        | IrOp::CvtIF
        | IrOp::CvtFI
        | IrOp::FSin
        | IrOp::FCos
        | IrOp::Assert { .. }
        | IrOp::ExitIf { .. } => n == 1,
        // Unary host ALU ops take one source.
        IrOp::Alu(_) => n == 1 || n == 2,
        IrOp::Store { .. } | IrOp::StoreF | IrOp::FAlu(_) | IrOp::FCmp(_) => n == 2,
    }
}

/// `ExitAlways` present, terminal, and unique in that role.
fn check_terminator(region: &Region, rep: &mut VerifyReport) {
    match region.insts.last().map(|i| &i.op) {
        Some(IrOp::ExitAlways { .. }) => {}
        _ => rep.add(
            region,
            InvariantKind::MissingTerminator,
            None,
            "region does not end with ExitAlways".into(),
        ),
    }
    for (i, inst) in region.insts.iter().enumerate() {
        if matches!(inst.op, IrOp::ExitAlways { .. }) && i + 1 != region.insts.len() {
            rep.add(
                region,
                InvariantKind::MissingTerminator,
                Some(i),
                "ExitAlways is not the terminal instruction".into(),
            );
        }
    }
}

/// The fused per-instruction walk: vreg ranges, operand arity and dst
/// presence (shape), def-before-use / single-def (SSA) discipline, and
/// `RegClass` agreement between defs and uses. One pass instead of
/// three — the verifier runs on every translation, and the three checks
/// share the operand iteration. Out-of-range operands are reported as
/// `Malformed` and skipped by the deeper checks; the driver then
/// discards the deeper findings entirely so a malformed region reports
/// its shape problems alone.
///
/// The def tracking is the [`DefinedVregs`] forward problem, but
/// computed with a single rolling set instead of [`solve`]: on
/// straight-line code the fact before instruction `i` is exactly the
/// set after `i - 1`, so the per-instruction set materialization the
/// general framework pays for is avoided here.
fn check_insts(region: &Region, rep: &mut VerifyReport) {
    use RegClass::{Fp, Int};
    let nv = region.vreg_count();
    let in_range = |v: VReg| (v.0 as usize) < nv;
    let mut defined = BitSet::new(nv);
    DefinedVregs.boundary(region, &mut defined);
    let mut def_count = vec![0u32; nv];
    for v in entry_vregs(region) {
        if !in_range(v) {
            rep.add(region, InvariantKind::Malformed, None, format!("entry binds out-of-range {v}"));
        } else {
            def_count[v.0 as usize] += 1;
        }
    }
    for (i, inst) in region.insts.iter().enumerate() {
        if !arity_ok(&inst.op, inst.srcs.len()) {
            rep.add(
                region,
                InvariantKind::Malformed,
                Some(i),
                format!("{:?} has {} source operand(s)", inst.op, inst.srcs.len()),
            );
        }
        let wants_dst = inst.op.is_pure() || inst.op.is_load();
        if wants_dst && inst.dst.is_none() {
            rep.add(region, InvariantKind::Malformed, Some(i), format!("{:?} has no dst", inst.op));
        }
        if !wants_dst && inst.dst.is_some() {
            rep.add(
                region,
                InvariantKind::Malformed,
                Some(i),
                format!("{:?} must not have a dst", inst.op),
            );
        }
        // Class expectations for this op. `Copy` is class-polymorphic
        // (dst and src must merely agree) and is handled separately.
        let (want_dst, want_srcs): (Option<RegClass>, &[RegClass]) = match inst.op {
            IrOp::ConstI(_) => (Some(Int), &[]),
            IrOp::ConstF(_) => (Some(Fp), &[]),
            IrOp::Copy => (None, &[]),
            IrOp::Alu(_) => (Some(Int), &[Int, Int]),
            IrOp::Load { .. } => (Some(Int), &[Int]),
            IrOp::Store { .. } => (None, &[Int, Int]),
            IrOp::LoadF => (Some(Fp), &[Int]),
            IrOp::StoreF => (None, &[Int, Fp]),
            IrOp::FAlu(_) => (Some(Fp), &[Fp, Fp]),
            IrOp::FUn(_) => (Some(Fp), &[Fp]),
            IrOp::FCmp(_) => (Some(Int), &[Fp, Fp]),
            IrOp::CvtIF => (Some(Fp), &[Int]),
            IrOp::CvtFI => (Some(Int), &[Fp]),
            IrOp::FSin | IrOp::FCos => (Some(Fp), &[Fp]),
            IrOp::Assert { .. } | IrOp::ExitIf { .. } => (None, &[Int]),
            IrOp::ExitAlways { .. } => (None, &[]),
        };
        for (k, &src) in inst.srcs.iter().enumerate() {
            if !in_range(src) {
                rep.add(
                    region,
                    InvariantKind::Malformed,
                    Some(i),
                    format!("{:?} reads out-of-range {src}", inst.op),
                );
                continue;
            }
            if !defined.contains(src.0 as usize) {
                rep.add(
                    region,
                    InvariantKind::UseBeforeDef,
                    Some(i),
                    format!("{:?} reads {src} before its definition", inst.op),
                );
            }
            if let Some(&want) = want_srcs.get(k) {
                if region.class(src) != want {
                    rep.add(
                        region,
                        InvariantKind::ClassMismatch,
                        Some(i),
                        format!(
                            "{:?} reads {src} as {want:?}, but it is {:?}",
                            inst.op,
                            region.class(src)
                        ),
                    );
                }
            }
        }
        if matches!(inst.op, IrOp::Copy) {
            if let (Some(d), Some(&cs)) = (inst.dst, inst.srcs.first()) {
                if in_range(d) && in_range(cs) && region.class(d) != region.class(cs) {
                    rep.add(
                        region,
                        InvariantKind::ClassMismatch,
                        Some(i),
                        format!(
                            "Copy from {cs} ({:?}) to {d} ({:?})",
                            region.class(cs),
                            region.class(d)
                        ),
                    );
                }
            }
        }
        if let IrOp::ExitIf { exit } | IrOp::ExitAlways { exit } = inst.op {
            if let Some(e) = region.exits.get(exit) {
                let flagged = |u: VReg| {
                    e.flags.iter().flatten().any(|&f| f == u)
                        || e.deferred.is_some_and(|(_, a, b)| a == u || b == u)
                };
                for u in e.used_vregs_iter() {
                    // Out-of-range recipe vregs are reported (once per
                    // exit descriptor) by the exit-recipe walk below.
                    if in_range(u) && !defined.contains(u.0 as usize) {
                        // Flag-recipe vregs get their own category: the
                        // reconstruction recipe references a value that is
                        // not available at the exit.
                        let kind = if flagged(u) {
                            InvariantKind::DeadFlagMaterialization
                        } else {
                            InvariantKind::UseBeforeDef
                        };
                        rep.add(
                            region,
                            kind,
                            Some(i),
                            format!("exit {exit} references {u}, which is not defined at the exit"),
                        );
                    }
                }
            }
        }
        if let Some(d) = inst.dst {
            if !in_range(d) {
                rep.add(
                    region,
                    InvariantKind::Malformed,
                    Some(i),
                    format!("{:?} writes out-of-range {d}", inst.op),
                );
                continue;
            }
            defined.insert(d.0 as usize);
            def_count[d.0 as usize] += 1;
            if def_count[d.0 as usize] > 1 {
                rep.add(
                    region,
                    InvariantKind::MultipleDef,
                    Some(i),
                    format!("{d} defined more than once (SSA violation)"),
                );
            }
            if let Some(want) = want_dst {
                if region.class(d) != want {
                    rep.add(
                        region,
                        InvariantKind::ClassMismatch,
                        Some(i),
                        format!(
                            "{:?} defines {d} as {:?}, expected {want:?}",
                            inst.op,
                            region.class(d)
                        ),
                    );
                }
            }
        }
    }
    // Exit recipes: every referenced vreg in range; guest GPRs/flags are
    // Int, guest FPRs are Fp, deferred descriptor operands are Int,
    // indirect targets are Int.
    for (e, exit) in region.exits.iter().enumerate() {
        let mut want = |v: Option<VReg>, w: RegClass, what: &str| {
            if let Some(v) = v {
                if !in_range(v) {
                    rep.add(
                        region,
                        InvariantKind::Malformed,
                        None,
                        format!("exit {e} references out-of-range {v}"),
                    );
                } else if region.class(v) != w {
                    rep.add(
                        region,
                        InvariantKind::ClassMismatch,
                        None,
                        format!("exit {e} {what} is {v} ({:?}), expected {w:?}", region.class(v)),
                    );
                }
            }
        };
        for &g in &exit.gprs {
            want(g, Int, "gpr");
        }
        for &fp in &exit.fprs {
            want(fp, Fp, "fpr");
        }
        for &fl in &exit.flags {
            want(fl, Int, "flag");
        }
        want(exit.indirect_target, Int, "indirect target");
        if let Some((_, a, b)) = exit.deferred {
            want(Some(a), Int, "deferred operand");
            want(Some(b), Int, "deferred operand");
        }
    }
}

/// Exit indices in bounds; indirect exits carry a target; partial flag
/// materialization must come with a deferred descriptor (the codegen
/// publishes either all five flags or a descriptor — a partial set with
/// no descriptor would leave stale flags behind).
fn check_exits(region: &Region, rep: &mut VerifyReport) {
    for (i, inst) in region.insts.iter().enumerate() {
        if let IrOp::ExitIf { exit } | IrOp::ExitAlways { exit } = inst.op {
            if exit >= region.exits.len() {
                rep.add(
                    region,
                    InvariantKind::ExitOutOfBounds,
                    Some(i),
                    format!("exit index {exit} out of bounds ({} exits)", region.exits.len()),
                );
            }
        }
    }
    for (e, exit) in region.exits.iter().enumerate() {
        if matches!(exit.kind, crate::ir::ExitKind::Indirect) && exit.indirect_target.is_none() {
            rep.add(
                region,
                InvariantKind::Malformed,
                None,
                format!("indirect exit {e} has no target vreg"),
            );
        }
        let mask: u32 = exit
            .flags
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_some())
            .map(|(b, _)| 1 << b)
            .sum();
        if mask != 0 && mask != 0x1f && exit.deferred.is_none() {
            rep.add(
                region,
                InvariantKind::DeadFlagMaterialization,
                None,
                format!("exit {e} materializes partial flags {mask:#04x} with no deferred descriptor"),
            );
        }
    }
}

/// No store may be scheduled above a program-order-older assert: the
/// assert's failure path rolls back to the last checkpoint, and a
/// program-order-younger store already executed above it would need a
/// rollback the SBM cannot provide for committed state. Program order is
/// recovered from the memory `seq` numbers (asserts are stamped too).
fn check_store_after_assert(region: &Region, rep: &mut VerifyReport) {
    let stores: Vec<(usize, u16)> = region
        .insts
        .iter()
        .enumerate()
        .filter(|(_, inst)| inst.op.is_store() && inst.seq > 0)
        .map(|(i, inst)| (i, inst.seq))
        .collect();
    for (j, inst) in region.insts.iter().enumerate() {
        if !matches!(inst.op, IrOp::Assert { .. }) || inst.seq == 0 {
            continue;
        }
        for &(i, sseq) in &stores {
            if i < j && sseq > inst.seq {
                rep.add(
                    region,
                    InvariantKind::StoreAfterAssert,
                    Some(i),
                    format!(
                        "store (seq {sseq}) scheduled above program-order-older assert at inst {j} (seq {})",
                        inst.seq
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DDG consistency
// ---------------------------------------------------------------------------

/// Checks that a built DDG carries every ordering the scheduler must
/// preserve. The host's gated store buffer handles anti (load → younger
/// store) and output (store → store) memory dependences in hardware —
/// buffered stores drain in `seq` order and forward only to
/// program-order-younger loads — so those edges are legitimately absent.
/// What must be present (directly or transitively):
///
/// * def → use, including exit state recipes;
/// * store → program-order-later aliasing load, unless the load is
///   speculative (the alias table catches mis-speculation);
/// * exits stay in order; stores stay on their side of every exit;
/// * asserts stay before later exits *and* later stores.
///
/// Must be called before scheduling (instruction indices are program
/// order).
pub fn verify_ddg(region: &Region, graph: &Ddg) -> VerifyReport {
    let n = region.insts.len();
    let mut rep = VerifyReport::new(region.guest_entry_pc);
    if graph.preds.len() != n || graph.succs.len() != n {
        rep.add(
            region,
            InvariantKind::DdgInconsistent,
            None,
            format!("graph has {} nodes, region has {n}", graph.preds.len()),
        );
        return rep;
    }
    // Edges must point forward in program order (SSA + program-order
    // construction guarantees it; a backward edge means a cyclic graph).
    for (i, ps) in graph.preds.iter().enumerate() {
        for &(p, _) in ps {
            if p >= i {
                rep.add(
                    region,
                    InvariantKind::DdgInconsistent,
                    Some(i),
                    format!("backward/self edge {p} -> {i}"),
                );
            }
        }
    }
    if !rep.is_ok() {
        return rep;
    }
    // Every ordering contract the builder honours is emitted as a
    // *direct* edge, so the fast path is a membership test on a flat
    // edge bit-matrix (row `to`, bit `from`) built once in O(edges).
    // Pairs without a direct edge are deferred; transitive reachability
    // is computed only if any pair needs it — on well-formed graphs,
    // never.
    let stride = n.div_ceil(64).max(1);
    let mut dmat = vec![0u64; n * stride];
    for (to, ps) in graph.preds.iter().enumerate() {
        for &(p, _) in ps {
            dmat[to * stride + p / 64] |= 1u64 << (p % 64);
        }
    }
    let direct = move |from: usize, to: usize| dmat[to * stride + from / 64] & (1u64 << (from % 64)) != 0;
    let require =
        |need: &mut Vec<(usize, usize, &'static str)>, from: usize, to: usize, what: &'static str| {
            if !direct(from, to) {
                need.push((from, to, what));
            }
        };
    let mut need: Vec<(usize, usize, &'static str)> = Vec::new();

    // Def → use.
    let defs = ddg::def_map(region);
    for (i, inst) in region.insts.iter().enumerate() {
        let check_use = |need: &mut Vec<(usize, usize, &'static str)>, u: VReg| {
            match defs.get(u) {
                Some(d) if d != i => require(need, d, i, "def-use"),
                _ => {}
            }
        };
        for &u in &inst.srcs {
            check_use(&mut need, u);
        }
        if let IrOp::ExitIf { exit } | IrOp::ExitAlways { exit } = inst.op {
            if let Some(e) = region.exits.get(exit) {
                for u in e.used_vregs_iter() {
                    check_use(&mut need, u);
                }
            }
        }
    }

    // Store → later aliasing load (unless speculative).
    let mem: Vec<Option<(ddg::AddrExpr, u8, bool)>> = region
        .insts
        .iter()
        .map(|inst| {
            inst.op
                .mem_bytes()
                .map(|b| (ddg::addr_expr(region, &defs, inst.srcs[0]), b, inst.op.is_store()))
        })
        .collect();
    for i in 0..n {
        let Some((le, lb, false)) = mem[i] else { continue };
        if region.insts[i].spec {
            continue;
        }
        for (j, mj) in mem.iter().enumerate().take(i) {
            let Some((se, sb, true)) = *mj else { continue };
            if ddg::alias(se, sb, le, lb) != Alias::No {
                require(&mut need, j, i, "store before aliasing load");
            }
        }
    }

    // Control orderings.
    let exits: Vec<usize> = region
        .insts
        .iter()
        .enumerate()
        .filter(|(_, inst)| inst.op.is_exit())
        .map(|(i, _)| i)
        .collect();
    for w in exits.windows(2) {
        require(&mut need, w[0], w[1], "exit order");
    }
    let asserts: Vec<usize> = region
        .insts
        .iter()
        .enumerate()
        .filter(|(_, inst)| matches!(inst.op, IrOp::Assert { .. }))
        .map(|(i, _)| i)
        .collect();
    let mut exit_cursor = 0usize; // exits[..cursor] are < i
    for (i, inst) in region.insts.iter().enumerate() {
        while exit_cursor < exits.len() && exits[exit_cursor] < i {
            exit_cursor += 1;
        }
        if !inst.op.is_store() {
            continue;
        }
        if exit_cursor > 0 {
            require(&mut need, exits[exit_cursor - 1], i, "store stays below earlier exit");
        }
        if let Some(&e) = exits.get(exit_cursor) {
            require(&mut need, i, e, "store stays above later exit");
        }
        let na = asserts.partition_point(|&a| a < i);
        for &a in &asserts[..na] {
            require(&mut need, a, i, "store stays below earlier assert");
        }
    }
    for &a in &asserts {
        let ne = exits.partition_point(|&e| e <= a);
        if let Some(&e) = exits.get(ne) {
            require(&mut need, a, e, "assert stays above later exit");
        }
    }

    if !need.is_empty() {
        // Transitive reachability, walking successors from the back. One
        // flat bit-matrix (row i = nodes reachable from i) so the whole
        // computation is a single allocation; edges only point forward,
        // so row `s` is final by the time row `i < s` unions it in.
        let mut reach = vec![0u64; n * stride];
        for i in (0..n).rev() {
            for &s in &graph.succs[i] {
                let (head, tail) = reach.split_at_mut(s * stride);
                let row_i = &mut head[i * stride..i * stride + stride];
                row_i[s / 64] |= 1u64 << (s % 64);
                for (w, &src) in row_i.iter_mut().zip(&tail[..stride]) {
                    *w |= src;
                }
            }
        }
        for (from, to, what) in need {
            if reach[from * stride + to / 64] & (1u64 << (to % 64)) == 0 {
                rep.add(
                    region,
                    InvariantKind::DdgInconsistent,
                    Some(to),
                    format!("missing ordering {from} -> {to} ({what})"),
                );
            }
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ExitDesc, ExitKind, FlagsKind, Inst, Region};
    use darco_guest::Width;
    use darco_host::HAluOp;

    fn valid_region() -> Region {
        let mut r = Region::new(0x1000);
        let a = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(a);
        let c = r.emit(IrOp::ConstI(5), vec![], RegClass::Int);
        let s = r.emit(IrOp::Alu(HAluOp::Add), vec![a, c], RegClass::Int);
        let mut exit = ExitDesc::new(ExitKind::Jump { target: 0x1010 });
        exit.gprs[0] = Some(s);
        r.exits.push(exit);
        r.push(Inst::new(IrOp::ExitAlways { exit: 0 }, None, vec![]));
        r
    }

    fn kinds(rep: &VerifyReport) -> Vec<InvariantKind> {
        rep.findings.iter().map(|f| f.kind).collect()
    }

    #[test]
    fn accepts_valid_region() {
        let rep = verify_region(&valid_region());
        assert!(rep.is_ok(), "unexpected findings:\n{rep}");
    }

    #[test]
    fn accepts_full_featured_region() {
        // Entry state, FP work, memory, an assert, a side exit with a
        // deferred flag descriptor, and a terminal indirect exit.
        let mut r = Region::new(0x2000);
        let base = r.new_vreg(RegClass::Int);
        let cond = r.new_vreg(RegClass::Int);
        let f = r.new_vreg(RegClass::Fp);
        r.entry.gprs[0] = Some(base);
        r.entry.gprs[1] = Some(cond);
        r.entry.fprs[0] = Some(f);
        let v = r.emit(IrOp::ConstI(7), vec![], RegClass::Int);
        let mut st = Inst::new(IrOp::Store { width: Width::D }, None, vec![base, v]);
        st.seq = 1;
        r.push(st);
        let mut asrt = Inst::new(IrOp::Assert { expect_nz: true }, None, vec![cond]);
        asrt.seq = 2;
        r.push(asrt);
        let d = r.emit(IrOp::FAlu(darco_host::FAluOp::Add), vec![f, f], RegClass::Fp);
        let ld = r.emit(IrOp::Load { width: Width::D, sign: false }, vec![base], RegClass::Int);
        let mut side = ExitDesc::new(ExitKind::Jump { target: 0x2040 });
        side.gprs[2] = Some(ld);
        side.flags[1] = Some(cond); // partial flags, but with a descriptor:
        side.deferred = Some((FlagsKind::Sub, v, cond));
        r.exits.push(side);
        r.push(Inst::new(IrOp::ExitIf { exit: 0 }, None, vec![cond]));
        let mut last = ExitDesc::new(ExitKind::Indirect);
        last.indirect_target = Some(v);
        last.fprs[0] = Some(d);
        r.exits.push(last);
        r.push(Inst::new(IrOp::ExitAlways { exit: 1 }, None, vec![]));
        let rep = verify_region(&r);
        assert!(rep.is_ok(), "unexpected findings:\n{rep}");
    }

    #[test]
    fn rejects_use_before_def() {
        let mut r = valid_region();
        let ghost = r.new_vreg(RegClass::Int);
        let dst = r.new_vreg(RegClass::Int);
        r.insts.insert(0, Inst::new(IrOp::Alu(HAluOp::Add), Some(dst), vec![ghost, ghost]));
        let rep = verify_region(&r);
        assert!(kinds(&rep).contains(&InvariantKind::UseBeforeDef), "{rep}");
    }

    #[test]
    fn rejects_multiple_def() {
        let mut r = valid_region();
        let v = r.new_vreg(RegClass::Int);
        r.insts.insert(0, Inst::new(IrOp::ConstI(1), Some(v), vec![]));
        r.insts.insert(1, Inst::new(IrOp::ConstI(2), Some(v), vec![]));
        let rep = verify_region(&r);
        assert!(kinds(&rep).contains(&InvariantKind::MultipleDef), "{rep}");
    }

    #[test]
    fn rejects_class_mismatch() {
        let mut r = valid_region();
        let f = r.new_vreg(RegClass::Fp);
        r.entry.fprs[0] = Some(f);
        let dst = r.new_vreg(RegClass::Int);
        // Integer ALU over an FP vreg.
        r.insts.insert(0, Inst::new(IrOp::Alu(HAluOp::Add), Some(dst), vec![f, f]));
        let rep = verify_region(&r);
        assert!(kinds(&rep).contains(&InvariantKind::ClassMismatch), "{rep}");
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut r = valid_region();
        r.insts.pop();
        let rep = verify_region(&r);
        assert!(kinds(&rep).contains(&InvariantKind::MissingTerminator), "{rep}");
    }

    #[test]
    fn rejects_non_terminal_exit_always() {
        let mut r = valid_region();
        let n = r.insts.len();
        let term = r.insts[n - 1].clone();
        r.insts.insert(0, term);
        let rep = verify_region(&r);
        assert!(kinds(&rep).contains(&InvariantKind::MissingTerminator), "{rep}");
    }

    #[test]
    fn rejects_out_of_bounds_exit() {
        let mut r = valid_region();
        let cond = r.entry.gprs[0].unwrap();
        let n = r.insts.len();
        r.insts.insert(n - 1, Inst::new(IrOp::ExitIf { exit: 5 }, None, vec![cond]));
        let rep = verify_region(&r);
        assert!(kinds(&rep).contains(&InvariantKind::ExitOutOfBounds), "{rep}");
    }

    #[test]
    fn rejects_store_scheduled_above_assert() {
        let mut r = Region::new(0x3000);
        let base = r.new_vreg(RegClass::Int);
        let cond = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(base);
        r.entry.gprs[1] = Some(cond);
        let v = r.emit(IrOp::ConstI(1), vec![], RegClass::Int);
        // A bad schedule: the store (program-order seq 2) sits above the
        // assert (seq 1).
        let mut st = Inst::new(IrOp::Store { width: Width::D }, None, vec![base, v]);
        st.seq = 2;
        r.push(st);
        let mut asrt = Inst::new(IrOp::Assert { expect_nz: true }, None, vec![cond]);
        asrt.seq = 1;
        r.push(asrt);
        r.exits.push(ExitDesc::new(ExitKind::Halt));
        r.push(Inst::new(IrOp::ExitAlways { exit: 0 }, None, vec![]));
        let rep = verify_region(&r);
        assert!(kinds(&rep).contains(&InvariantKind::StoreAfterAssert), "{rep}");
        // Program order (assert first) is fine.
        r.insts.swap(1, 2);
        assert!(verify_region(&r).is_ok());
    }

    #[test]
    fn rejects_dead_flag_materialization() {
        // Partial flag set with no deferred descriptor.
        let mut r = valid_region();
        let zf = r.entry.gprs[0].unwrap();
        r.exits[0].flags[1] = Some(zf);
        let rep = verify_region(&r);
        assert!(kinds(&rep).contains(&InvariantKind::DeadFlagMaterialization), "{rep}");
    }

    #[test]
    fn rejects_flag_recipe_referencing_undefined_vreg() {
        // Deferred descriptor whose operand is defined only *after* the
        // exit that publishes it.
        let mut r = valid_region();
        let late = r.new_vreg(RegClass::Int);
        let cond = r.entry.gprs[0].unwrap();
        let mut side = ExitDesc::new(ExitKind::Jump { target: 0x1020 });
        side.deferred = Some((FlagsKind::Add, late, cond));
        r.exits.push(side);
        let n = r.insts.len();
        r.insts.insert(n - 1, Inst::new(IrOp::ExitIf { exit: 1 }, None, vec![cond]));
        let n = r.insts.len();
        r.insts.insert(n - 1, Inst::new(IrOp::ConstI(9), Some(late), vec![]));
        let rep = verify_region(&r);
        assert!(kinds(&rep).contains(&InvariantKind::DeadFlagMaterialization), "{rep}");
    }

    #[test]
    fn rejects_malformed_arity() {
        let mut r = valid_region();
        let a = r.entry.gprs[0].unwrap();
        let dst = r.new_vreg(RegClass::Int);
        r.insts.insert(0, Inst::new(IrOp::Load { width: Width::D, sign: false }, Some(dst), vec![a, a]));
        let rep = verify_region(&r);
        assert!(kinds(&rep).contains(&InvariantKind::Malformed), "{rep}");
    }

    #[test]
    fn dataflow_defined_and_live_sets() {
        let r = valid_region();
        // v0 = entry, v1 = const, v2 = add(v0, v1), exit uses v2.
        let defined = solve(&r, &DefinedVregs);
        assert!(defined.before[0].contains(0));
        assert!(!defined.before[0].contains(1));
        assert!(defined.before[1].contains(1));
        assert!(defined.after[1].contains(2));
        let live = solve(&r, &LiveVregs);
        // Before the add, its operands are live; after it, only v2 is.
        assert!(live.before[1].contains(0) && live.before[1].contains(1));
        assert!(live.after[1].contains(2) && !live.after[1].contains(0));
        // The terminal exit keeps v2 live.
        assert!(live.before[2].contains(2));
        assert!(defined.iterations <= 2 && live.iterations <= 2);
    }

    #[test]
    fn bitset_basics() {
        let mut a = BitSet::new(130);
        assert!(a.is_empty());
        a.insert(0);
        a.insert(64);
        a.insert(129);
        a.insert(500); // out of domain: ignored
        assert!(a.contains(0) && a.contains(64) && a.contains(129));
        assert!(!a.contains(500));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        let mut b = BitSet::new(130);
        b.insert(7);
        assert!(b.union_with(&a));
        assert!(!b.union_with(&a), "second union is a no-op");
        b.remove(7);
        assert!(!b.contains(7));
        assert_eq!(b.len(), 130);
    }

    fn spec_region() -> Region {
        // store [base], v ; assert cond ; load [other] ; exit
        let mut r = Region::new(0x4000);
        let base = r.new_vreg(RegClass::Int);
        let other = r.new_vreg(RegClass::Int);
        let cond = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(base);
        r.entry.gprs[1] = Some(other);
        r.entry.gprs[2] = Some(cond);
        let v = r.emit(IrOp::ConstI(3), vec![], RegClass::Int);
        let mut st = Inst::new(IrOp::Store { width: Width::D }, None, vec![base, v]);
        st.seq = 1;
        r.push(st);
        let mut asrt = Inst::new(IrOp::Assert { expect_nz: true }, None, vec![cond]);
        asrt.seq = 2;
        r.push(asrt);
        let mut ld = Inst::new(
            IrOp::Load { width: Width::D, sign: false },
            Some(r.new_vreg(RegClass::Int)),
            vec![other],
        );
        ld.seq = 3;
        r.push(ld);
        r.exits.push(ExitDesc::new(ExitKind::Halt));
        r.push(Inst::new(IrOp::ExitAlways { exit: 0 }, None, vec![]));
        r
    }

    #[test]
    fn ddg_consistency_accepts_built_graph() {
        for allow_spec in [false, true] {
            let mut r = spec_region();
            let g = ddg::build(&mut r, allow_spec);
            let rep = verify_ddg(&r, &g);
            assert!(rep.is_ok(), "allow_spec={allow_spec}:\n{rep}");
        }
    }

    #[test]
    fn ddg_consistency_catches_dropped_edges() {
        let mut r = spec_region();
        let mut g = ddg::build(&mut r, false);
        // Drop every ordering into the load (index 3): the may-alias
        // store edge is now missing and the load is not spec-marked.
        g.preds[3].clear();
        for succs in &mut g.succs {
            succs.retain(|&s| s != 3);
        }
        let rep = verify_ddg(&r, &g);
        assert!(kinds(&rep).contains(&InvariantKind::DdgInconsistent), "{rep}");
    }

    #[test]
    fn ddg_consistency_catches_node_count_mismatch() {
        let mut r = spec_region();
        let mut g = ddg::build(&mut r, false);
        g.preds.pop();
        g.succs.pop();
        let rep = verify_ddg(&r, &g);
        assert!(kinds(&rep).contains(&InvariantKind::DdgInconsistent));
    }

    #[test]
    fn report_formatting_carries_provenance() {
        let mut r = valid_region();
        r.insts[1].guest_pc = 0x1004;
        r.insts.pop();
        let rep = verify_region(&r);
        let text = format!("{rep}");
        assert!(text.contains("missing-terminator"), "{text}");
        assert!(text.contains("@0x00001000"), "{text}");
        assert_eq!(rep.by_kind()[InvariantKind::MissingTerminator.index()], 1);
    }
}
