//! Host code generation: linear-scan register allocation over the
//! scheduled region, immediate/address folding, exit stubs with parallel
//! copies into the pinned guest registers, and speculation glue.
//!
//! The allocator implements the paper's emulation-cost optimizations:
//! guest registers stay pinned (`r0`–`r7`, `f0`–`f7`), constants fold into
//! immediate forms, and `base + constant` addresses fold into load/store
//! offsets, so a typical guest ALU instruction costs a single host
//! instruction.

use crate::ddg::{addr_expr, def_map, AddrExpr, DefMap};
use crate::ir::{ExitKind, FlagsKind, IrOp, Region, VReg};
use darco_host::regs::{
    self, HFreg, HReg, F_TMP_FIRST, F_TMP_LAST, R_DEF_A, R_DEF_B, R_DEF_KIND, R_IND,
    R_SPILL_BASE, R_TMP_FIRST, R_TMP_LAST,
};
use darco_host::{HAluOp, HInsn};
use darco_guest::Width;
use std::collections::HashMap;

/// Base guest address of the translator-private spill area. The software
/// layer maps this page in the emulated memory only; the authoritative
/// component never maps it, so state comparison ignores it.
pub const SPILL_AREA_BASE: u32 = 0xE000_0000;

/// First sequence number used for spill traffic (above any guest memory
/// operation's seq, so store-buffer forwarding serves reloads correctly).
const SPILL_SEQ_BASE: u16 = 0x8000;

/// Parameters the code generator needs from the software layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodegenCtx {
    /// Host address (word index) where this translation will be installed.
    pub base: usize,
    /// Absolute host address of the `sin` runtime routine.
    pub sin_addr: usize,
    /// Absolute host address of the `cos` runtime routine.
    pub cos_addr: usize,
    /// Software profile counter bumped on entry (BBM execution counter;
    /// trips to the software layer for superblock promotion).
    pub entry_count_idx: Option<u32>,
    /// Whether guest-counter updates attribute to superblock mode.
    pub sb_mode: bool,
}

/// Per-exit metadata the software layer keeps with a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExitMeta {
    /// Where the exit goes.
    pub kind: ExitKind,
    /// Bit mask (CF|ZF<<1|SF<<2|OF<<3|PF<<4) of flags materialized into
    /// the flag registers on this exit.
    pub flags_valid: u8,
    /// Deferred flag descriptor kind; operands are in `r13`/`r14`.
    pub deferred: Option<FlagsKind>,
    /// Offset (within the translation) of the patchable `chainslot`, for
    /// [`ExitKind::Jump`] exits.
    pub chain_slot: Option<usize>,
}

/// Code generation result.
#[derive(Debug, Clone)]
pub struct CodegenOut {
    /// The host instructions (install at `ctx.base`).
    pub code: Vec<HInsn>,
    /// Exit metadata, indexed by exit id.
    pub exits: Vec<ExitMeta>,
    /// Encoded size in 32-bit words.
    pub encoded_words: usize,
    /// Exit id → stub start (code index). The body occupies
    /// `[0, min(stub_pos))`; everything at or after the first stub runs
    /// only on an exit path (used by [`check_host_code`]).
    pub stub_pos: Vec<Option<usize>>,
    /// Arena word the code was generated to be installed at
    /// (`ctx.base`). `Bl` relatives are absolute-aware, so the checker
    /// needs it to resolve call targets; the runtime-routine block is
    /// `[0, base)`.
    pub base: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Loc {
    R(u8),
    F(u8),
    SpillInt(u16),
    SpillFp(u16),
    ConstI(u32),
    ConstF(u64),
}

/// Generates host code for a (scheduled, validated) region.
///
/// # Panics
/// Panics on malformed regions (use [`Region::validate`] first).
pub fn generate(region: &Region, ctx: &CodegenCtx) -> CodegenOut {
    Codegen::new(region, ctx).run()
}

struct Codegen<'a> {
    region: &'a Region,
    ctx: &'a CodegenCtx,
    code: Vec<HInsn>,
    loc: Vec<Option<Loc>>,
    reg_holds: [Option<VReg>; 64],
    freg_holds: [Option<VReg>; 64],
    free_int: Vec<u8>,
    free_fp: Vec<u8>,
    last_use: Vec<usize>,
    use_positions: HashMap<VReg, Vec<usize>>,
    slot_of: HashMap<VReg, u16>,
    next_slot: u16,
    spill_seq: u16,
    /// Per-instruction folded immediate for ALU ops.
    imm_fold: HashMap<usize, i16>,
    /// Per-instruction folded (base vreg, offset) for memory ops.
    addr_fold: HashMap<usize, (VReg, i16)>,
    /// Instructions whose emission is skipped (folded-away address adds).
    skip: Vec<bool>,
    final_exits: Vec<(usize, ExitMeta)>,
    /// `(branch code index, exit id, location snapshot at the branch)`.
    /// The snapshot is essential for correctness: a value the exit needs
    /// may be moved (e.g. spilled) *after* the branch; on the exit path
    /// those later moves never execute, so the stub must read each value
    /// from where it lived when the branch was taken.
    pending_branches: Vec<(usize, usize, HashMap<u32, Loc>)>,
    stub_pos: Vec<Option<usize>>, // exit id -> stub start
}

const NEVER: usize = usize::MAX;

impl<'a> Codegen<'a> {
    fn new(region: &'a Region, ctx: &'a CodegenCtx) -> Codegen<'a> {
        let n = region.insts.len();
        let nv = region.vreg_count();
        let mut cg = Codegen {
            region,
            ctx,
            code: Vec::with_capacity(n * 2),
            loc: vec![None; nv],
            reg_holds: [None; 64],
            freg_holds: [None; 64],
            free_int: (R_TMP_FIRST..=R_TMP_LAST).rev().collect(),
            free_fp: (F_TMP_FIRST..=F_TMP_LAST).rev().collect(),
            last_use: vec![0; nv],
            use_positions: HashMap::new(),
            slot_of: HashMap::new(),
            next_slot: 0,
            spill_seq: SPILL_SEQ_BASE,
            imm_fold: HashMap::new(),
            addr_fold: HashMap::new(),
            skip: vec![false; n],
            final_exits: Vec::new(),
            pending_branches: Vec::new(),
            stub_pos: vec![None; region.exits.len()],
        };
        cg.bind_entries();
        cg.analyze();
        cg
    }

    fn bind_entries(&mut self) {
        for (i, v) in self.region.entry.gprs.iter().enumerate() {
            if let Some(v) = v {
                self.loc[v.0 as usize] = Some(Loc::R(i as u8));
            }
        }
        for (i, v) in self.region.entry.fprs.iter().enumerate() {
            if let Some(v) = v {
                self.loc[v.0 as usize] = Some(Loc::F(i as u8));
            }
        }
        for (i, v) in self.region.entry.flags.iter().enumerate() {
            if let Some(v) = v {
                self.loc[v.0 as usize] = Some(Loc::R(regs::FLAG_REGS[i].0));
            }
        }
    }

    fn analyze(&mut self) {
        let region = self.region;
        let mut use_count: HashMap<VReg, usize> = HashMap::new();
        for (p, inst) in region.insts.iter().enumerate() {
            for s in &inst.srcs {
                // Exit uses pin the live range open (NEVER); a later
                // ordinary use must not shorten it again.
                if self.last_use[s.0 as usize] != NEVER {
                    self.last_use[s.0 as usize] = p;
                }
                self.use_positions.entry(*s).or_default().push(p);
                *use_count.entry(*s).or_default() += 1;
            }
            if let IrOp::ExitIf { exit } | IrOp::ExitAlways { exit } = inst.op {
                for u in region.exits[exit].used_vregs() {
                    self.last_use[u.0 as usize] = NEVER;
                    *use_count.entry(u).or_default() += 1;
                }
            }
        }

        // Folding decisions.
        let defs = def_map(region);
        let const_def = |v: VReg| -> Option<u32> {
            defs.get(v).and_then(|d| match region.insts[d].op {
                IrOp::ConstI(c) => Some(c),
                _ => None,
            })
        };
        for (i, inst) in region.insts.iter().enumerate() {
            match inst.op {
                IrOp::Alu(op) if inst.srcs.len() == 2 => {
                    if matches!(op, HAluOp::Div | HAluOp::Rem) {
                        continue; // keep register form so zero check stays uniform
                    }
                    if let Some(c) = const_def(inst.srcs[1]) {
                        if (-2048..2048).contains(&(c as i32)) {
                            self.imm_fold.insert(i, c as i32 as i16);
                        }
                    }
                }
                IrOp::Load { .. } | IrOp::LoadF | IrOp::Store { .. } | IrOp::StoreF => {
                    let addr = inst.srcs[0];
                    if use_count.get(&addr) == Some(&1) && self.last_use[addr.0 as usize] != NEVER
                    {
                        if let Some(d) = defs.get(addr) {
                            if let AddrExpr::Affine { root, off } = addr_expr(region, &defs, addr)
                            {
                                if root != addr && (-2048..2048).contains(&off) {
                                    // Only fold single-level chains whose
                                    // intermediate defs are all single-use
                                    // adds/subs/copies ending at `root`.
                                    if chain_foldable(region, &defs, &use_count, addr, root) {
                                        self.addr_fold.insert(i, (root, off as i16));
                                        mark_chain_skipped(
                                            region, &defs, &mut self.skip, addr, root,
                                        );
                                        let _ = d;
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        // Constants are lazy: never emitted at their def site.
        for (i, inst) in region.insts.iter().enumerate() {
            if let IrOp::ConstI(_) | IrOp::ConstF(_) = inst.op {
                self.skip[i] = true;
            }
        }
        // Address folding gives the root register a use at the memory op
        // itself; extend its live range accordingly.
        for (&i, &(root, _)) in &self.addr_fold {
            let lu = &mut self.last_use[root.0 as usize];
            if *lu != NEVER {
                *lu = (*lu).max(i);
            }
            self.use_positions.entry(root).or_default().push(i);
        }
        for uses in self.use_positions.values_mut() {
            uses.sort_unstable();
        }
    }

    fn run(mut self) -> CodegenOut {
        self.code.push(HInsn::Chkpt);
        if let Some(idx) = self.ctx.entry_count_idx {
            self.code.push(HInsn::Count { idx });
        }
        for i in 0..self.region.insts.len() {
            self.emit_inst(i);
        }
        // Stubs for side exits, one per branch site (the location
        // snapshot is branch-site-specific).
        for (branch_idx, exit_id, snapshot) in std::mem::take(&mut self.pending_branches) {
            assert!(
                self.stub_pos[exit_id].is_none(),
                "exit {exit_id} referenced by more than one branch"
            );
            let pos = self.code.len();
            self.stub_pos[exit_id] = Some(pos);
            self.emit_stub(exit_id, &snapshot);
            let rel = pos as i32 - (branch_idx as i32 + 1);
            match &mut self.code[branch_idx] {
                HInsn::Bnz { rel: r, .. } | HInsn::Bz { rel: r, .. } => *r = rel,
                other => panic!("pending branch patch hit {other:?}"),
            }
        }
        let encoded_words = self.code.iter().map(|i| i.encoded_words()).sum();
        // Exit metas are produced in stub-emission order; index by exit id.
        let mut exits = vec![
            ExitMeta { kind: ExitKind::Halt, flags_valid: 0, deferred: None, chain_slot: None };
            self.region.exits.len()
        ];
        for (id, m) in self.final_exits.drain(..) {
            exits[id] = m;
        }
        CodegenOut {
            code: self.code,
            exits,
            encoded_words,
            stub_pos: self.stub_pos,
            base: self.ctx.base,
        }
    }

    fn emit_inst(&mut self, i: usize) {
        if self.skip[i] {
            // Still record lazy constant locations.
            let inst = &self.region.insts[i];
            match inst.op {
                IrOp::ConstI(c) => self.loc[inst.dst.unwrap().0 as usize] = Some(Loc::ConstI(c)),
                IrOp::ConstF(c) => self.loc[inst.dst.unwrap().0 as usize] = Some(Loc::ConstF(c)),
                _ => {}
            }
            return;
        }
        let inst = self.region.insts[i].clone();
        match inst.op {
            IrOp::ConstI(_) | IrOp::ConstF(_) => unreachable!("constants are lazy"),
            IrOp::Copy => {
                // Copies can survive to codegen when redundant-load
                // elimination introduces them after the pass pipeline; emit
                // a real move so the value has its own stable location.
                match self.region.class(inst.dst.unwrap()) {
                    crate::ir::RegClass::Int => {
                        let s = self.ensure_int(inst.srcs[0], &[]);
                        let rd = self.alloc_int_dst(inst.dst.unwrap(), &[s], i);
                        self.emit_int_move_rd(rd, s);
                    }
                    crate::ir::RegClass::Fp => {
                        let s = self.ensure_fp(inst.srcs[0]);
                        let fd = self.alloc_fp_dst(inst.dst.unwrap(), i);
                        self.emit_fp_move(fd, s);
                    }
                }
            }
            IrOp::Alu(op) => {
                let a = self.ensure_int(inst.srcs[0], &[]);
                if let Some(imm) = self.imm_fold.get(&i).copied() {
                    let rd = self.alloc_int_dst(inst.dst.unwrap(), &[a], i);
                    self.code.push(HInsn::AluI { op, rd: HReg(rd), ra: HReg(a), imm });
                } else if inst.srcs.len() == 2 {
                    let b = self.ensure_int(inst.srcs[1], &[a]);
                    let rd = self.alloc_int_dst(inst.dst.unwrap(), &[a, b], i);
                    self.code.push(HInsn::Alu { op, rd: HReg(rd), ra: HReg(a), rb: HReg(b) });
                } else {
                    // Unary host ops (Sext8/Sext16/Parity) ignore rb.
                    let rd = self.alloc_int_dst(inst.dst.unwrap(), &[a], i);
                    self.code.push(HInsn::Alu { op, rd: HReg(rd), ra: HReg(a), rb: HReg(a) });
                }
            }
            IrOp::Load { width, sign } => {
                let (base, off) = self.mem_addr(i, &inst);
                let rd = self.alloc_int_dst(inst.dst.unwrap(), &[base], i);
                self.code.push(HInsn::Load {
                    rd: HReg(rd),
                    base: HReg(base),
                    off: off as i32,
                    width,
                    sign,
                    spec: inst.spec,
                    seq: inst.seq,
                });
            }
            IrOp::Store { width } => {
                let (base, off) = self.mem_addr(i, &inst);
                let rs = self.ensure_int(inst.srcs[1], &[base]);
                self.code.push(HInsn::Store {
                    rs: HReg(rs),
                    base: HReg(base),
                    off: off as i32,
                    width,
                    spec: inst.spec,
                    seq: inst.seq,
                });
                self.free_after(i, &inst);
            }
            IrOp::LoadF => {
                let (base, off) = self.mem_addr(i, &inst);
                let fd = self.alloc_fp_dst(inst.dst.unwrap(), i);
                self.code.push(HInsn::LoadF {
                    fd: HFreg(fd),
                    base: HReg(base),
                    off: off as i32,
                    spec: inst.spec,
                    seq: inst.seq,
                });
            }
            IrOp::StoreF => {
                let (base, off) = self.mem_addr(i, &inst);
                let fs = self.ensure_fp(inst.srcs[1]);
                self.code.push(HInsn::StoreF {
                    fs: HFreg(fs),
                    base: HReg(base),
                    off: off as i32,
                    spec: inst.spec,
                    seq: inst.seq,
                });
                self.free_after(i, &inst);
            }
            IrOp::FAlu(op) => {
                let a = self.ensure_fp(inst.srcs[0]);
                let b = self.ensure_fp(inst.srcs[1]);
                let fd = self.alloc_fp_dst(inst.dst.unwrap(), i);
                self.code.push(HInsn::FAlu { op, fd: HFreg(fd), fa: HFreg(a), fb: HFreg(b) });
            }
            IrOp::FUn(op) => {
                let a = self.ensure_fp(inst.srcs[0]);
                let fd = self.alloc_fp_dst(inst.dst.unwrap(), i);
                self.code.push(HInsn::FUn { op, fd: HFreg(fd), fa: HFreg(a) });
            }
            IrOp::FCmp(op) => {
                let a = self.ensure_fp(inst.srcs[0]);
                let b = self.ensure_fp(inst.srcs[1]);
                let rd = self.alloc_int_dst(inst.dst.unwrap(), &[], i);
                self.code.push(HInsn::FCmp { op, rd: HReg(rd), fa: HFreg(a), fb: HFreg(b) });
            }
            IrOp::CvtIF => {
                let a = self.ensure_int(inst.srcs[0], &[]);
                let fd = self.alloc_fp_dst(inst.dst.unwrap(), i);
                self.code.push(HInsn::CvtIF { fd: HFreg(fd), ra: HReg(a) });
            }
            IrOp::CvtFI => {
                let a = self.ensure_fp(inst.srcs[0]);
                let rd = self.alloc_int_dst(inst.dst.unwrap(), &[], i);
                self.code.push(HInsn::CvtFI { rd: HReg(rd), fa: HFreg(a) });
            }
            IrOp::FSin | IrOp::FCos => {
                let a = self.ensure_fp(inst.srcs[0]);
                self.code.push(HInsn::FUn {
                    op: darco_host::FUnOp2::Mov,
                    fd: regs::F_RT_ARG,
                    fa: HFreg(a),
                });
                let target = if inst.op == IrOp::FSin { self.ctx.sin_addr } else { self.ctx.cos_addr };
                let here = self.ctx.base + self.code.len();
                self.code.push(HInsn::Bl { rel: target as i32 - (here as i32 + 1) });
                let fd = self.alloc_fp_dst(inst.dst.unwrap(), i);
                self.code.push(HInsn::FUn {
                    op: darco_host::FUnOp2::Mov,
                    fd: HFreg(fd),
                    fa: regs::F_RT_ARG,
                });
            }
            IrOp::Assert { expect_nz } => {
                let c = self.ensure_int(inst.srcs[0], &[]);
                self.code.push(if expect_nz {
                    HInsn::AssertNz { rs: HReg(c) }
                } else {
                    HInsn::AssertZ { rs: HReg(c) }
                });
                self.free_after(i, &inst);
            }
            IrOp::ExitIf { exit } => {
                let c = self.ensure_int(inst.srcs[0], &[]);
                let snapshot = self.snapshot_exit_locs(exit);
                self.pending_branches.push((self.code.len(), exit, snapshot));
                self.code.push(HInsn::Bnz { rs: HReg(c), rel: 0 });
                self.free_after(i, &inst);
            }
            IrOp::ExitAlways { exit } => {
                let snapshot = self.snapshot_exit_locs(exit);
                self.stub_pos[exit] = Some(self.code.len());
                self.emit_stub(exit, &snapshot);
            }
        }
        if !inst.op.is_store() && !inst.op.is_exit() && !matches!(inst.op, IrOp::Assert { .. }) {
            self.free_after(i, &inst);
        }
    }

    // -- allocator ----------------------------------------------------------

    fn free_after(&mut self, pos: usize, inst: &crate::ir::Inst) {
        for s in &inst.srcs {
            if self.last_use[s.0 as usize] == pos {
                match self.loc[s.0 as usize] {
                    Some(Loc::R(r)) if (R_TMP_FIRST..=R_TMP_LAST).contains(&r) => {
                        self.reg_holds[r as usize] = None;
                        self.free_int.push(r);
                    }
                    Some(Loc::F(f)) if (F_TMP_FIRST..=F_TMP_LAST).contains(&f) => {
                        self.freg_holds[f as usize] = None;
                        self.free_fp.push(f);
                    }
                    _ => {}
                }
                self.loc[s.0 as usize] = None;
            }
        }
    }

    fn next_use_after(&self, v: VReg, pos: usize) -> usize {
        if self.last_use[v.0 as usize] == NEVER {
            return NEVER - 1;
        }
        match self.use_positions.get(&v) {
            Some(uses) => uses.iter().copied().find(|&u| u > pos).unwrap_or(NEVER - 1),
            None => NEVER - 1,
        }
    }

    fn spill_slot(&mut self, v: VReg) -> u16 {
        let next = &mut self.next_slot;
        *self.slot_of.entry(v).or_insert_with(|| {
            let s = *next;
            *next += 1;
            assert!(s < 256, "spill area page exceeded");
            s
        })
    }

    fn alloc_int(&mut self, locked: &[u8], pos: usize) -> u8 {
        if let Some(r) = self.free_int.pop() {
            return r;
        }
        // Spill the temp whose next use is farthest.
        let victim_reg = (R_TMP_FIRST..=R_TMP_LAST)
            .filter(|r| !locked.contains(r))
            .max_by_key(|&r| {
                self.reg_holds[r as usize]
                    .map(|v| self.next_use_after(v, pos))
                    .unwrap_or(NEVER) // unheld (shouldn't happen) = best
            })
            .expect("no spillable integer register");
        let v = self.reg_holds[victim_reg as usize].expect("victim must hold a value");
        let slot = self.spill_slot(v);
        let seq = self.bump_spill_seq();
        self.code.push(HInsn::Store {
            rs: HReg(victim_reg),
            base: R_SPILL_BASE,
            off: slot as i32 * 8,
            width: Width::D,
            spec: false,
            seq,
        });
        self.loc[v.0 as usize] = Some(Loc::SpillInt(slot));
        self.reg_holds[victim_reg as usize] = None;
        victim_reg
    }

    fn alloc_fp(&mut self, pos: usize) -> u8 {
        if let Some(f) = self.free_fp.pop() {
            return f;
        }
        let victim = (F_TMP_FIRST..=F_TMP_LAST)
            .max_by_key(|&r| {
                self.freg_holds[r as usize]
                    .map(|v| self.next_use_after(v, pos))
                    .unwrap_or(NEVER)
            })
            .expect("no spillable fp register");
        let v = self.freg_holds[victim as usize].expect("victim must hold a value");
        let slot = self.spill_slot(v);
        let seq = self.bump_spill_seq();
        self.code.push(HInsn::StoreF {
            fs: HFreg(victim),
            base: R_SPILL_BASE,
            off: slot as i32 * 8,
            spec: false,
            seq,
        });
        self.loc[v.0 as usize] = Some(Loc::SpillFp(slot));
        self.freg_holds[victim as usize] = None;
        victim
    }

    fn bump_spill_seq(&mut self) -> u16 {
        let s = self.spill_seq;
        self.spill_seq = self.spill_seq.checked_add(1).expect("spill seq overflow");
        s
    }

    fn alloc_int_dst(&mut self, v: VReg, locked: &[u8], pos: usize) -> u8 {
        let r = self.alloc_int(locked, pos);
        self.reg_holds[r as usize] = Some(v);
        self.loc[v.0 as usize] = Some(Loc::R(r));
        r
    }

    fn alloc_fp_dst(&mut self, v: VReg, pos: usize) -> u8 {
        let f = self.alloc_fp(pos);
        self.freg_holds[f as usize] = Some(v);
        self.loc[v.0 as usize] = Some(Loc::F(f));
        f
    }

    /// Ensures `v` is in an integer register and returns it.
    fn ensure_int(&mut self, v: VReg, locked: &[u8]) -> u8 {
        match self.loc[v.0 as usize].expect("use of value with no location") {
            Loc::R(r) => r,
            Loc::SpillInt(slot) => {
                let r = self.alloc_int(locked, 0);
                let seq = self.bump_spill_seq();
                self.code.push(HInsn::Load {
                    rd: HReg(r),
                    base: R_SPILL_BASE,
                    off: slot as i32 * 8,
                    width: Width::D,
                    sign: false,
                    spec: false,
                    seq,
                });
                self.reg_holds[r as usize] = Some(v);
                self.loc[v.0 as usize] = Some(Loc::R(r));
                r
            }
            Loc::ConstI(c) => {
                let r = self.alloc_int(locked, 0);
                self.materialize_const_into(HReg(r), c);
                self.reg_holds[r as usize] = Some(v);
                self.loc[v.0 as usize] = Some(Loc::R(r));
                r
            }
            other => panic!("expected int location, found {other:?}"),
        }
    }

    /// Ensures `v` is in an FP register and returns it.
    fn ensure_fp(&mut self, v: VReg) -> u8 {
        match self.loc[v.0 as usize].expect("use of value with no location") {
            Loc::F(f) => f,
            Loc::SpillFp(slot) => {
                let f = self.alloc_fp(0);
                let seq = self.bump_spill_seq();
                self.code.push(HInsn::LoadF {
                    fd: HFreg(f),
                    base: R_SPILL_BASE,
                    off: slot as i32 * 8,
                    spec: false,
                    seq,
                });
                self.freg_holds[f as usize] = Some(v);
                self.loc[v.0 as usize] = Some(Loc::F(f));
                f
            }
            Loc::ConstF(bits) => {
                let f = self.alloc_fp(0);
                self.code.push(HInsn::FLoadImm { fd: HFreg(f), bits });
                self.freg_holds[f as usize] = Some(v);
                self.loc[v.0 as usize] = Some(Loc::F(f));
                f
            }
            other => panic!("expected fp location, found {other:?}"),
        }
    }

    fn materialize_const_into(&mut self, rd: HReg, c: u32) {
        let as_i = c as i32;
        if (-32768..32768).contains(&as_i) {
            self.code.push(HInsn::Li16 { rd, imm: as_i as i16 });
        } else {
            self.code.push(HInsn::Lui { rd, imm: (c >> 16) as u16 });
            if c & 0xFFFF != 0 {
                self.code.push(HInsn::OriZ { rd, imm: c as u16 });
            }
        }
    }

    /// Resolves the (base register, folded offset) for a memory op.
    fn mem_addr(&mut self, i: usize, inst: &crate::ir::Inst) -> (u8, i16) {
        if let Some((root, off)) = self.addr_fold.get(&i).copied() {
            let base = self.ensure_int(root, &[]);
            // The folded intermediate vregs die here; release root if this
            // was its last use position.
            (base, off)
        } else {
            let base = self.ensure_int(inst.srcs[0], &[]);
            (base, 0)
        }
    }

    // -- exit stubs -----------------------------------------------------------

    /// Captures where every value the exit uses lives *right now* — the
    /// locations the stub must read from when entered via its branch.
    fn snapshot_exit_locs(&self, exit_id: usize) -> HashMap<u32, Loc> {
        self.region.exits[exit_id]
            .used_vregs()
            .into_iter()
            .map(|v| (v.0, self.loc_of(v)))
            .collect()
    }

    fn emit_stub(&mut self, exit_id: usize, locs: &HashMap<u32, Loc>) {
        let e = self.region.exits[exit_id].clone();
        let at = |v: VReg| -> Loc { locs[&v.0] };
        let mut int_pairs: Vec<(u8, Loc)> = Vec::new();
        let mut fp_pairs: Vec<(u8, Loc)> = Vec::new();
        for (g, v) in e.gprs.iter().enumerate() {
            if let Some(v) = v {
                int_pairs.push((g as u8, at(*v)));
            }
        }
        let mut flags_valid = 0u8;
        for (j, v) in e.flags.iter().enumerate() {
            if let Some(v) = v {
                int_pairs.push((regs::FLAG_REGS[j].0, at(*v)));
                flags_valid |= 1 << j;
            }
        }
        if let Some((_, a, b)) = e.deferred {
            int_pairs.push((R_DEF_A.0, at(a)));
            int_pairs.push((R_DEF_B.0, at(b)));
        }
        if let Some(t) = e.indirect_target {
            int_pairs.push((R_IND.0, at(t)));
        }
        for (g, v) in e.fprs.iter().enumerate() {
            if let Some(v) = v {
                fp_pairs.push((g as u8, at(*v)));
            }
        }
        self.parallel_copy_int(int_pairs);
        self.parallel_copy_fp(fp_pairs);
        // Publish the dynamic flag-descriptor kind so the lazy-flags state
        // threads through chained translations (see DESIGN.md §4).
        match (e.deferred, flags_valid) {
            (Some((k, _, _)), _) => {
                self.code.push(HInsn::Li16 { rd: R_DEF_KIND, imm: k.code() as i16 });
            }
            (None, 0x1F) => {
                self.code.push(HInsn::Li16 { rd: R_DEF_KIND, imm: 0 });
            }
            (None, 0) => {}
            (None, partial) => {
                panic!("exit with partial flags {partial:#x} but no descriptor")
            }
        }
        if e.gcnt > 0 {
            self.code.push(HInsn::Gcnt { n: e.gcnt, sb: self.ctx.sb_mode });
        }
        if let Some(idx) = e.count_idx {
            self.code.push(HInsn::Count { idx });
        }

        let chain_slot = match e.kind {
            ExitKind::Jump { .. } => {
                let p = self.code.len();
                self.code.push(HInsn::ChainSlot { id: exit_id as u16 });
                Some(p)
            }
            ExitKind::Indirect => {
                self.code.push(HInsn::IbtcJmp { rs: R_IND, id: exit_id as u16 });
                None
            }
            ExitKind::Syscall { .. } | ExitKind::Halt => {
                self.code.push(HInsn::TolExit { id: exit_id as u16 });
                None
            }
        };
        self.final_exits.push((
            exit_id,
            ExitMeta {
                kind: e.kind,
                flags_valid,
                deferred: e.deferred.map(|(k, _, _)| k),
                chain_slot,
            },
        ));
    }

    fn loc_of(&self, v: VReg) -> Loc {
        self.loc[v.0 as usize].expect("exit uses value with no location")
    }

    fn parallel_copy_int(&mut self, mut pairs: Vec<(u8, Loc)>) {
        // Drop no-op moves.
        pairs.retain(|(d, s)| !matches!(s, Loc::R(r) if r == d));
        // Stage 1: register-to-register with cycle breaking via r56.
        let mut reg_pairs: Vec<(u8, u8)> = pairs
            .iter()
            .filter_map(|(d, s)| match s {
                Loc::R(r) => Some((*d, *r)),
                _ => None,
            })
            .collect();
        const SCRATCH: u8 = 57;
        while !reg_pairs.is_empty() {
            if let Some(idx) = reg_pairs
                .iter()
                .position(|(d, _)| !reg_pairs.iter().any(|(_, s)| s == d))
            {
                let (d, s) = reg_pairs.swap_remove(idx);
                self.emit_int_move(d, s);
            } else {
                // Cycle: park one destination's current value in scratch.
                let (d, _) = reg_pairs[0];
                self.emit_int_move(SCRATCH, d);
                for (_, s) in reg_pairs.iter_mut() {
                    if *s == d {
                        *s = SCRATCH;
                    }
                }
            }
        }
        // Stage 2: spilled and constant sources.
        for (d, s) in pairs {
            match s {
                Loc::R(_) => {}
                Loc::SpillInt(slot) => {
                    let seq = self.bump_spill_seq();
                    self.code.push(HInsn::Load {
                        rd: HReg(d),
                        base: R_SPILL_BASE,
                        off: slot as i32 * 8,
                        width: Width::D,
                        sign: false,
                        spec: false,
                        seq,
                    });
                }
                Loc::ConstI(c) => self.materialize_const_into(HReg(d), c),
                other => panic!("int copy from {other:?}"),
            }
        }
    }

    fn emit_int_move(&mut self, d: u8, s: u8) {
        self.code.push(HInsn::AluI { op: HAluOp::Add, rd: HReg(d), ra: HReg(s), imm: 0 });
    }

    fn emit_int_move_rd(&mut self, d: u8, s: u8) {
        self.emit_int_move(d, s);
    }

    fn parallel_copy_fp(&mut self, mut pairs: Vec<(u8, Loc)>) {
        pairs.retain(|(d, s)| !matches!(s, Loc::F(r) if r == d));
        let mut reg_pairs: Vec<(u8, u8)> = pairs
            .iter()
            .filter_map(|(d, s)| match s {
                Loc::F(r) => Some((*d, *r)),
                _ => None,
            })
            .collect();
        const SCRATCH: u8 = 57;
        while !reg_pairs.is_empty() {
            if let Some(idx) = reg_pairs
                .iter()
                .position(|(d, _)| !reg_pairs.iter().any(|(_, s)| s == d))
            {
                let (d, s) = reg_pairs.swap_remove(idx);
                self.emit_fp_move(d, s);
            } else {
                let (d, _) = reg_pairs[0];
                self.emit_fp_move(SCRATCH, d);
                for (_, s) in reg_pairs.iter_mut() {
                    if *s == d {
                        *s = SCRATCH;
                    }
                }
            }
        }
        for (d, s) in pairs {
            match s {
                Loc::F(_) => {}
                Loc::SpillFp(slot) => {
                    let seq = self.bump_spill_seq();
                    self.code.push(HInsn::LoadF {
                        fd: HFreg(d),
                        base: R_SPILL_BASE,
                        off: slot as i32 * 8,
                        spec: false,
                        seq,
                    });
                }
                Loc::ConstF(bits) => self.code.push(HInsn::FLoadImm { fd: HFreg(d), bits }),
                other => panic!("fp copy from {other:?}"),
            }
        }
    }

    fn emit_fp_move(&mut self, d: u8, s: u8) {
        self.code.push(HInsn::FUn {
            op: darco_host::FUnOp2::Mov,
            fd: HFreg(d),
            fa: HFreg(s),
        });
    }
}

/// Checks that the address chain from `addr` down to `root` consists of
/// single-use adds/subs/copies over constants (so skipping them is safe).
fn chain_foldable(
    region: &Region,
    defs: &DefMap,
    use_count: &HashMap<VReg, usize>,
    mut v: VReg,
    root: VReg,
) -> bool {
    let mut first = true;
    while v != root {
        let Some(d) = defs.get(v) else { return false };
        if !first && use_count.get(&v).copied().unwrap_or(0) != 1 {
            return false;
        }
        first = false;
        let inst = &region.insts[d];
        match inst.op {
            IrOp::Copy => v = inst.srcs[0],
            IrOp::Alu(HAluOp::Add) | IrOp::Alu(HAluOp::Sub) if inst.srcs.len() == 2 => {
                // One operand is the chain, the other a constant.
                let c0 = matches!(
                    defs.get(inst.srcs[0]).map(|x| &region.insts[x].op),
                    Some(IrOp::ConstI(_))
                );
                v = if c0 { inst.srcs[1] } else { inst.srcs[0] };
            }
            _ => return false,
        }
    }
    true
}

/// Marks the chain instructions (and constants used only by them) as
/// skipped.
fn mark_chain_skipped(
    region: &Region,
    defs: &DefMap,
    skip: &mut [bool],
    mut v: VReg,
    root: VReg,
) {
    while v != root {
        let Some(d) = defs.get(v) else { return };
        skip[d] = true;
        let inst = &region.insts[d];
        match inst.op {
            IrOp::Copy => v = inst.srcs[0],
            IrOp::Alu(_) if inst.srcs.len() == 2 => {
                let c0 = matches!(
                    defs.get(inst.srcs[0]).map(|x| &region.insts[x].op),
                    Some(IrOp::ConstI(_))
                );
                v = if c0 { inst.srcs[1] } else { inst.srcs[0] };
            }
            _ => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Post-codegen checker
// ---------------------------------------------------------------------------

/// The integer registers an instruction explicitly writes (`Bl`'s
/// implicit `r63` link write is part of the call convention, not a
/// clobber).
fn int_write(insn: &HInsn) -> Option<u8> {
    match insn {
        HInsn::Alu { rd, .. }
        | HInsn::AluI { rd, .. }
        | HInsn::Lui { rd, .. }
        | HInsn::OriZ { rd, .. }
        | HInsn::Li16 { rd, .. }
        | HInsn::Load { rd, .. }
        | HInsn::FCmp { rd, .. }
        | HInsn::CvtFI { rd, .. } => Some(rd.0),
        _ => None,
    }
}

/// The FP registers an instruction explicitly writes.
fn fp_write(insn: &HInsn) -> Option<u8> {
    match insn {
        HInsn::FAlu { fd, .. }
        | HInsn::FUn { fd, .. }
        | HInsn::CvtIF { fd, .. }
        | HInsn::LoadF { fd, .. }
        | HInsn::FLoadImm { fd, .. } => Some(fd.0),
        _ => None,
    }
}

/// Statically checks emitted host code against the register convention
/// (DESIGN.md §8):
///
/// * **body** instructions (before the first exit stub) may write only
///   allocatable temporaries — pinned guest state (`r0`–`r15`, `f0`–`f7`)
///   is updated exclusively by exit stubs;
/// * **stub** instructions may write only pinned state, `r56` (IBTC
///   target) and the `r57`/`f57` parallel-copy scratch;
/// * relative branch targets stay inside the translation; `Bl` targets
///   must land inside the runtime-routine block `[0, base)` and `Blr`
///   must not appear at all — the native backend's `Bl` helper
///   interprets the callee and supports only the runtime routines
///   (see the inline comment at the check);
/// * spill traffic uses `R_SPILL_BASE` with in-bounds offsets and
///   sequence numbers above `SPILL_SEQ_BASE`; guest memory traffic stays
///   below it;
/// * every IR store/load is present in the emitted code (none silently
///   dropped).
pub fn check_host_code(region: &Region, out: &CodegenOut) -> crate::verify::VerifyReport {
    use crate::verify::{Finding, InvariantKind, VerifyReport};
    let mut rep = VerifyReport { region_pc: region.guest_entry_pc, findings: Vec::new() };
    let mut add = |message: String| {
        rep.findings.push(Finding {
            kind: InvariantKind::HostCodeClobber,
            inst: None,
            guest_pc: region.guest_entry_pc,
            message,
        });
    };
    let n = out.code.len();
    let first_stub = out.stub_pos.iter().flatten().copied().min().unwrap_or(n);
    const SCRATCH: u8 = 57;
    for (p, insn) in out.code.iter().enumerate() {
        let in_stub = p >= first_stub;
        let zone = if in_stub { "stub" } else { "body" };
        if let Some(rd) = int_write(insn) {
            let ok = if in_stub {
                rd <= R_DEF_KIND.0 || rd == R_IND.0 || rd == SCRATCH
            } else {
                (R_TMP_FIRST..=R_TMP_LAST).contains(&rd)
            };
            if !ok {
                add(format!("{zone} insn {p} `{insn}` writes r{rd} outside the {zone} write set"));
            }
        }
        if let Some(fd) = fp_write(insn) {
            let ok = if in_stub {
                fd < 8 || fd == SCRATCH
            } else {
                (F_TMP_FIRST..=F_TMP_LAST).contains(&fd) || fd == regs::F_RT_ARG.0
            };
            if !ok {
                add(format!("{zone} insn {p} `{insn}` writes f{fd} outside the {zone} write set"));
            }
        }
        if let HInsn::B { rel } | HInsn::Bz { rel, .. } | HInsn::Bnz { rel, .. } = insn {
            let target = p as i64 + 1 + *rel as i64;
            if target < 0 || target >= n as i64 {
                add(format!("insn {p} `{insn}` branches to {target}, outside the region [0, {n})"));
            }
        }
        // Native-backend contract: both execution backends treat `Bl` as
        // a call into the runtime-routine block (`[0, base)` in the
        // arena) — the native backend's slow-path helper *interprets*
        // the callee and only understands the scalar routine subset, so
        // a `Bl` landing inside a translation is undefined behaviour
        // there even though the emulator would happily run it. `Blr` is
        // the runtime routines' return instruction and must never
        // appear in a translation at all.
        if let HInsn::Bl { rel } = insn {
            let target = (out.base + p) as i64 + 1 + *rel as i64;
            if target < 0 || target >= out.base as i64 {
                add(format!(
                    "insn {p} `{insn}` calls arena word {target}, outside the \
                     runtime-routine block [0, {})",
                    out.base
                ));
            }
        }
        if matches!(insn, HInsn::Blr) {
            add(format!(
                "insn {p} `{insn}` in a translation: `blr` is reserved for \
                 runtime-routine returns"
            ));
        }
        match *insn {
            HInsn::Load { base, off, seq, spec, .. }
            | HInsn::Store { base, off, seq, spec, .. }
            | HInsn::LoadF { base, off, seq, spec, .. }
            | HInsn::StoreF { base, off, seq, spec, .. } => {
                if base == R_SPILL_BASE {
                    if !(0..2048).contains(&off) {
                        add(format!("insn {p} `{insn}` spill offset {off} out of bounds"));
                    }
                    if seq < SPILL_SEQ_BASE {
                        add(format!("insn {p} `{insn}` spill access with guest seq {seq}"));
                    }
                    if spec {
                        add(format!("insn {p} `{insn}` speculative spill access"));
                    }
                } else if seq >= SPILL_SEQ_BASE {
                    add(format!("insn {p} `{insn}` guest access with spill seq {seq}"));
                }
            }
            _ => {}
        }
    }
    let ir_stores = region.insts.iter().filter(|i| i.op.is_store()).count();
    let host_stores = out
        .code
        .iter()
        .filter(|i| {
            matches!(**i,
                HInsn::Store { base, .. } | HInsn::StoreF { base, .. } if base != R_SPILL_BASE)
        })
        .count();
    if ir_stores != host_stores {
        add(format!("region has {ir_stores} store(s) but the host code has {host_stores}"));
    }
    let ir_loads = region.insts.iter().filter(|i| i.op.is_load()).count();
    let host_loads = out
        .code
        .iter()
        .filter(|i| {
            matches!(**i,
                HInsn::Load { base, .. } | HInsn::LoadF { base, .. } if base != R_SPILL_BASE)
        })
        .count();
    if ir_loads != host_loads {
        add(format!("region has {ir_loads} load(s) but the host code has {host_loads}"));
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg;
    use crate::ir::{ExitDesc, Inst, RegClass};
    use crate::sched::{list_schedule, SchedConfig};
    use darco_guest::{GuestMem, PAGE_SIZE};
    use darco_host::emu::{ExitCause, HostEmulator, IbtcTable};
    use darco_host::runtime::build_runtime;
    use darco_host::sink::NullSink;

    /// Compiles a region (optionally scheduling it) and executes it on the
    /// host emulator with the runtime routines installed.
    fn compile_and_run(
        mut region: Region,
        schedule: bool,
        setup: impl FnOnce(&mut HostEmulator, &mut GuestMem),
    ) -> (HostEmulator, GuestMem, ExitCause, CodegenOut) {
        region.validate();
        if schedule {
            ddg::memory_opt(&mut region);
            let g = ddg::build(&mut region, true);
            list_schedule(&mut region, &g, &SchedConfig::default());
            region.validate();
        }
        let rt = build_runtime();
        let base = rt.code.len();
        let ctx = CodegenCtx {
            base,
            sin_addr: rt.sin_entry,
            cos_addr: rt.cos_entry,
            entry_count_idx: None,
            sb_mode: false,
        };
        let out = generate(&region, &ctx);
        let mut arena = rt.code.clone();
        arena.extend(out.code.iter().copied());

        let mut emu = HostEmulator::new();
        let mut mem = GuestMem::new();
        mem.map_zero(0);
        // Spill area page.
        mem.map_zero(SPILL_AREA_BASE >> 12);
        setup(&mut emu, &mut mem);
        emu.iregs[R_SPILL_BASE.index()] = SPILL_AREA_BASE;
        let ibtc = IbtcTable::new();
        let mut prof = darco_host::ProfTable::new();
        let info = emu.execute(&arena, base, &mut mem, &ibtc, &mut prof, u64::MAX, &mut NullSink);
        (emu, mem, info.cause, out)
    }

    fn jump_exit(region: &mut Region, gprs: &[(usize, VReg)]) -> usize {
        let mut e = ExitDesc::new(ExitKind::Jump { target: 0x2000 });
        for (g, v) in gprs {
            e.gprs[*g] = Some(*v);
        }
        region.exits.push(e);
        region.exits.len() - 1
    }

    /// A region exercising memory, FP, asserts, a side exit and exit-time
    /// parallel copies, for the post-codegen checker tests.
    fn checker_region() -> Region {
        let mut r = Region::new(0x1000);
        let base = r.new_vreg(RegClass::Int);
        let cond = r.new_vreg(RegClass::Int);
        let f = r.new_vreg(RegClass::Fp);
        r.entry.gprs[0] = Some(base);
        r.entry.gprs[1] = Some(cond);
        r.entry.fprs[0] = Some(f);
        let v = r.emit(IrOp::ConstI(0xDEAD_BEEF), vec![], RegClass::Int);
        let mut st = Inst::new(IrOp::Store { width: Width::D }, None, vec![base, v]);
        st.seq = 1;
        r.push(st);
        let mut asrt = Inst::new(IrOp::Assert { expect_nz: true }, None, vec![cond]);
        asrt.seq = 2;
        r.push(asrt);
        let d = r.emit(IrOp::FAlu(darco_host::FAluOp::Mul), vec![f, f], RegClass::Fp);
        let mut ld = Inst::new(
            IrOp::Load { width: Width::D, sign: false },
            Some(r.new_vreg(RegClass::Int)),
            vec![base],
        );
        ld.seq = 3;
        let ld_dst = ld.dst.unwrap();
        r.push(ld);
        let mut side = ExitDesc::new(ExitKind::Jump { target: 0x2000 });
        side.gprs[2] = Some(ld_dst);
        r.exits.push(side);
        r.push(Inst::new(IrOp::ExitIf { exit: 0 }, None, vec![cond]));
        let mut last = ExitDesc::new(ExitKind::Jump { target: 0x3000 });
        last.gprs[0] = Some(v);
        last.fprs[1] = Some(d);
        r.exits.push(last);
        r.push(Inst::new(IrOp::ExitAlways { exit: 1 }, None, vec![]));
        r
    }

    fn generate_checker_region() -> (Region, CodegenOut) {
        let r = checker_region();
        r.validate();
        let rt = build_runtime();
        let ctx = CodegenCtx {
            base: rt.code.len(),
            sin_addr: rt.sin_entry,
            cos_addr: rt.cos_entry,
            entry_count_idx: Some(3),
            sb_mode: true,
        };
        let out = generate(&r, &ctx);
        (r, out)
    }

    #[test]
    fn host_code_checker_accepts_generated_code() {
        let (r, out) = generate_checker_region();
        let rep = check_host_code(&r, &out);
        assert!(rep.is_ok(), "{rep}");
    }

    #[test]
    fn host_code_checker_catches_body_clobber_of_pinned_state() {
        let (r, out) = generate_checker_region();
        let mut bad = out.clone();
        // Body instruction writing a pinned guest register.
        bad.code[1] = HInsn::AluI { op: HAluOp::Add, rd: HReg(0), ra: HReg(0), imm: 1 };
        let rep = check_host_code(&r, &bad);
        assert!(
            rep.findings.iter().any(|f| f.message.contains("writes r0")),
            "{rep}"
        );
    }

    #[test]
    fn host_code_checker_catches_dropped_store() {
        let (r, out) = generate_checker_region();
        let mut bad = out.clone();
        let pos = bad
            .code
            .iter()
            .position(|i| matches!(i, HInsn::Store { base, .. } if *base != R_SPILL_BASE))
            .unwrap();
        bad.code[pos] = HInsn::Nop;
        let rep = check_host_code(&r, &bad);
        assert!(
            rep.findings.iter().any(|f| f.message.contains("store(s)")),
            "{rep}"
        );
    }

    #[test]
    fn host_code_checker_catches_wild_branch() {
        let (r, out) = generate_checker_region();
        let mut bad = out.clone();
        let pos = bad.code.iter().position(|i| matches!(i, HInsn::Bnz { .. })).unwrap();
        if let HInsn::Bnz { rel, .. } = &mut bad.code[pos] {
            *rel = 10_000;
        }
        let rep = check_host_code(&r, &bad);
        assert!(
            rep.findings.iter().any(|f| f.message.contains("branches to")),
            "{rep}"
        );
    }

    #[test]
    fn host_code_checker_catches_bl_outside_runtime_block() {
        let (r, out) = generate_checker_region();
        let mut bad = out.clone();
        // A call that resolves back into the translation itself.
        bad.code[0] = HInsn::Bl { rel: 1 };
        let rep = check_host_code(&r, &bad);
        assert!(
            rep.findings.iter().any(|f| f.message.contains("runtime-routine block")),
            "{rep}"
        );
    }

    #[test]
    fn host_code_checker_catches_blr_in_translation() {
        let (r, out) = generate_checker_region();
        let mut bad = out.clone();
        bad.code[0] = HInsn::Blr;
        let rep = check_host_code(&r, &bad);
        assert!(
            rep.findings.iter().any(|f| f.message.contains("reserved for")),
            "{rep}"
        );
    }

    #[test]
    fn host_code_checker_catches_stub_writing_temporaries() {
        let (r, out) = generate_checker_region();
        let mut bad = out.clone();
        // Append a temp write after the stubs begin.
        bad.code.push(HInsn::Li16 { rd: HReg(R_TMP_FIRST), imm: 1 });
        let rep = check_host_code(&r, &bad);
        assert!(
            rep.findings.iter().any(|f| f.message.contains("stub") && f.message.contains("write set")),
            "{rep}"
        );
    }

    #[test]
    fn add_with_folded_immediate() {
        let mut r = Region::new(0x1000);
        let a = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(a);
        let c = r.emit(IrOp::ConstI(5), vec![], RegClass::Int);
        let s = r.emit(IrOp::Alu(HAluOp::Add), vec![a, c], RegClass::Int);
        let e = jump_exit(&mut r, &[(0, s)]);
        r.push(Inst::new(IrOp::ExitAlways { exit: e }, None, vec![]));
        let (emu, _, cause, out) = compile_and_run(r, false, |emu, _| {
            emu.iregs[0] = 37;
        });
        assert_eq!(cause, ExitCause::Exit { id: 0 });
        assert_eq!(emu.iregs[0], 42);
        // Folding: chkpt + addi + move-to-r0? The stub's copy may or may
        // not be a no-op; at minimum no Li16 was needed.
        assert!(
            !out.code.iter().any(|i| matches!(i, HInsn::Li16 { .. })),
            "constant must fold into the AluI immediate: {:?}",
            out.code
        );
    }

    #[test]
    fn exit_stub_swaps_registers_through_cycle() {
        // Guest: xchg eax, ebx -> exit wants r0 <- old r3... (ebx is idx 3)
        let mut r = Region::new(0x1000);
        let veax = r.new_vreg(RegClass::Int);
        let vebx = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(veax);
        r.entry.gprs[3] = Some(vebx);
        let e = jump_exit(&mut r, &[(0, vebx), (3, veax)]);
        r.push(Inst::new(IrOp::ExitAlways { exit: e }, None, vec![]));
        let (emu, _, cause, _) = compile_and_run(r, false, |emu, _| {
            emu.iregs[0] = 111;
            emu.iregs[3] = 222;
        });
        assert_eq!(cause, ExitCause::Exit { id: 0 });
        assert_eq!(emu.iregs[0], 222, "parallel-copy cycle must swap");
        assert_eq!(emu.iregs[3], 111);
    }

    #[test]
    fn folded_address_load_store() {
        // [ebx + 16] <- eax; ecx <- [ebx + 16]
        let mut r = Region::new(0x1000);
        let veax = r.new_vreg(RegClass::Int);
        let vebx = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(veax);
        r.entry.gprs[3] = Some(vebx);
        let c16 = r.emit(IrOp::ConstI(16), vec![], RegClass::Int);
        let addr = r.emit(IrOp::Alu(HAluOp::Add), vec![vebx, c16], RegClass::Int);
        let mut st = Inst::new(IrOp::Store { width: Width::D }, None, vec![addr, veax]);
        st.seq = 1;
        r.push(st);
        let c16b = r.emit(IrOp::ConstI(16), vec![], RegClass::Int);
        let addr2 = r.emit(IrOp::Alu(HAluOp::Add), vec![vebx, c16b], RegClass::Int);
        let mut ld = Inst::new(
            IrOp::Load { width: Width::D, sign: false },
            Some(r.new_vreg(RegClass::Int)),
            vec![addr2],
        );
        ld.seq = 2;
        let lv = ld.dst.unwrap();
        r.push(ld);
        let e = jump_exit(&mut r, &[(1, lv)]);
        r.push(Inst::new(IrOp::ExitAlways { exit: e }, None, vec![]));
        let (emu, mem, cause, out) = compile_and_run(r, false, |emu, _| {
            emu.iregs[0] = 0xDEAD;
            emu.iregs[3] = 0x200;
        });
        assert_eq!(cause, ExitCause::Exit { id: 0 });
        assert_eq!(emu.iregs[1], 0xDEAD);
        assert_eq!(mem.read_u32(0x210).unwrap(), 0xDEAD);
        // Address adds folded into offsets: no Alu Add remains for them.
        let adds = out
            .code
            .iter()
            .filter(|i| matches!(i, HInsn::Alu { op: HAluOp::Add, .. }))
            .count();
        assert_eq!(adds, 0, "address adds must fold into load/store offsets");
    }

    #[test]
    fn assert_failure_rolls_back_stub_effects() {
        let mut r = Region::new(0x1000);
        let a = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(a);
        let c = r.emit(IrOp::ConstI(0), vec![], RegClass::Int);
        let eq = r.emit(IrOp::Alu(HAluOp::Seq), vec![a, c], RegClass::Int);
        r.push(Inst::new(IrOp::Assert { expect_nz: true }, None, vec![eq])); // assert a == 0
        let v = r.emit(IrOp::ConstI(99), vec![], RegClass::Int);
        let e = jump_exit(&mut r, &[(0, v)]);
        r.push(Inst::new(IrOp::ExitAlways { exit: e }, None, vec![]));

        // Pass: a == 0.
        let (emu, _, cause, _) = compile_and_run(r.clone(), false, |_, _| {});
        assert_eq!(cause, ExitCause::Exit { id: 0 });
        assert_eq!(emu.iregs[0], 99);

        // Fail: a != 0 -> rollback, r0 keeps its entry value.
        let (emu, _, cause, _) = compile_and_run(r, false, |emu, _| {
            emu.iregs[0] = 7;
        });
        assert_eq!(cause, ExitCause::AssertFail);
        assert_eq!(emu.iregs[0], 7);
    }

    #[test]
    fn side_exit_taken_and_not_taken() {
        let build = || {
            let mut r = Region::new(0x1000);
            let a = r.new_vreg(RegClass::Int);
            r.entry.gprs[0] = Some(a);
            let c = r.emit(IrOp::ConstI(10), vec![], RegClass::Int);
            let lt = r.emit(IrOp::Alu(HAluOp::SltS), vec![a, c], RegClass::Int);
            let marker1 = r.emit(IrOp::ConstI(111), vec![], RegClass::Int);
            let side = jump_exit(&mut r, &[(1, marker1)]);
            r.push(Inst::new(IrOp::ExitIf { exit: side }, None, vec![lt]));
            let marker2 = r.emit(IrOp::ConstI(222), vec![], RegClass::Int);
            let term = jump_exit(&mut r, &[(1, marker2)]);
            r.push(Inst::new(IrOp::ExitAlways { exit: term }, None, vec![]));
            r
        };
        // a < 10 -> side exit (id 0).
        let (emu, _, cause, _) = compile_and_run(build(), false, |emu, _| {
            emu.iregs[0] = 3;
        });
        assert_eq!(cause, ExitCause::Exit { id: 0 });
        assert_eq!(emu.iregs[1], 111);
        // a >= 10 -> terminal exit (id 1).
        let (emu, _, cause, _) = compile_and_run(build(), false, |emu, _| {
            emu.iregs[0] = 30;
        });
        assert_eq!(cause, ExitCause::Exit { id: 1 });
        assert_eq!(emu.iregs[1], 222);
    }

    #[test]
    fn fsin_goes_through_runtime_routine() {
        let mut r = Region::new(0x1000);
        let x = r.new_vreg(RegClass::Fp);
        r.entry.fprs[2] = Some(x);
        let s = r.emit(IrOp::FSin, vec![x], RegClass::Fp);
        let mut e = ExitDesc::new(ExitKind::Jump { target: 0x2000 });
        e.fprs[2] = Some(s);
        r.exits.push(e);
        r.push(Inst::new(IrOp::ExitAlways { exit: 0 }, None, vec![]));
        let (emu, _, cause, _) = compile_and_run(r, false, |emu, _| {
            emu.fregs[2] = 1.25;
        });
        assert_eq!(cause, ExitCause::Exit { id: 0 });
        assert_eq!(
            emu.fregs[2].to_bits(),
            darco_guest::softfp::sin_spec(1.25).to_bits(),
            "translated sin must be bit-identical to the architectural spec"
        );
    }

    #[test]
    fn register_pressure_forces_spills_and_stays_correct() {
        // 60 live values exceed the 40-temp pool.
        let mut r = Region::new(0x1000);
        let a = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(a);
        let mut vals = Vec::new();
        for k in 0..60u32 {
            let c = r.emit(IrOp::ConstI(k), vec![], RegClass::Int);
            // Make each value non-foldable by involving the entry reg.
            let v = r.emit(IrOp::Alu(HAluOp::Xor), vec![a, c], RegClass::Int);
            vals.push(v);
        }
        // Sum them all (uses every value late, keeping them live).
        let mut sum = vals[0];
        for v in &vals[1..] {
            sum = r.emit(IrOp::Alu(HAluOp::Add), vec![sum, *v], RegClass::Int);
        }
        let e = jump_exit(&mut r, &[(0, sum)]);
        r.push(Inst::new(IrOp::ExitAlways { exit: e }, None, vec![]));
        let seed = 0x5A5A_0F0Fu32;
        let (emu, _, cause, out) = compile_and_run(r, false, |emu, _| {
            emu.iregs[0] = seed;
        });
        assert_eq!(cause, ExitCause::Exit { id: 0 });
        let expect: u32 = (0..60u32).fold(0u32, |acc, k| acc.wrapping_add(seed ^ k));
        assert_eq!(emu.iregs[0], expect);
        let spills = out
            .code
            .iter()
            .filter(|i| matches!(i, HInsn::Store { base, .. } if *base == R_SPILL_BASE))
            .count();
        assert!(spills > 0, "this region must actually spill");
    }

    #[test]
    fn scheduled_region_remains_correct() {
        // Same pressure test but through memory_opt + DDG + scheduler.
        let mut r = Region::new(0x1000);
        let a = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(a);
        let mut sum = a;
        for k in 1..20u32 {
            let c = r.emit(IrOp::ConstI(k * 3), vec![], RegClass::Int);
            let m = r.emit(IrOp::Alu(HAluOp::Mul), vec![sum, c], RegClass::Int);
            sum = r.emit(IrOp::Alu(HAluOp::Xor), vec![m, a], RegClass::Int);
        }
        let e = jump_exit(&mut r, &[(0, sum)]);
        r.push(Inst::new(IrOp::ExitAlways { exit: e }, None, vec![]));
        let (emu, _, cause, _) = compile_and_run(r, true, |emu, _| {
            emu.iregs[0] = 9;
        });
        assert_eq!(cause, ExitCause::Exit { id: 0 });
        let mut expect = 9u32;
        let a = 9u32;
        for k in 1..20u32 {
            expect = expect.wrapping_mul(k * 3) ^ a;
        }
        assert_eq!(emu.iregs[0], expect);
    }

    #[test]
    fn deferred_flags_and_indirect_exit_plumbing() {
        let mut r = Region::new(0x1000);
        let a = r.new_vreg(RegClass::Int);
        let t = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(a);
        r.entry.gprs[1] = Some(t);
        let c = r.emit(IrOp::ConstI(5), vec![], RegClass::Int);
        let s = r.emit(IrOp::Alu(HAluOp::Sub), vec![a, c], RegClass::Int);
        let mut e = ExitDesc::new(ExitKind::Indirect);
        e.indirect_target = Some(t);
        e.gprs[0] = Some(s);
        e.deferred = Some((FlagsKind::Sub, a, c));
        r.exits.push(e);
        r.push(Inst::new(IrOp::ExitAlways { exit: 0 }, None, vec![]));
        let (emu, _, cause, out) = compile_and_run(r, false, |emu, _| {
            emu.iregs[0] = 12;
            emu.iregs[1] = 0x4444; // guest target (IBTC miss -> exit 0)
        });
        assert_eq!(cause, ExitCause::Exit { id: 0 });
        assert_eq!(emu.iregs[0], 7);
        assert_eq!(emu.iregs[R_IND.index()], 0x4444, "indirect target register");
        assert_eq!(emu.iregs[R_DEF_A.index()], 12, "deferred operand a");
        assert_eq!(emu.iregs[R_DEF_B.index()], 5, "deferred operand b");
        assert_eq!(emu.iregs[R_DEF_KIND.index()], FlagsKind::Sub.code() as u32);
        assert_eq!(out.exits[0].deferred, Some(FlagsKind::Sub));
        assert_eq!(out.exits[0].kind, ExitKind::Indirect);
    }

    /// Regression test: a value an exit publishes may be spilled *after*
    /// the exit's branch. On the exit path that spill never executes, so
    /// the stub must read the value from where it lived at the branch —
    /// not from the spill slot the allocator moved it to later.
    #[test]
    fn side_exit_reads_values_from_branch_time_locations() {
        let mut r = Region::new(0x1000);
        let a = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(a);
        // The value the side exit publishes.
        let published = r.emit(IrOp::Alu(HAluOp::Add), vec![a, a], RegClass::Int);
        // Take the side exit when a != 0.
        let cond = r.emit(IrOp::Alu(HAluOp::Sne), vec![a, published], RegClass::Int);
        let side = jump_exit(&mut r, &[(0, published)]);
        r.push(Inst::new(IrOp::ExitIf { exit: side }, None, vec![cond]));
        // Massive register pressure AFTER the branch: `published` gets
        // spilled by stores that never run on the exit path.
        let mut vals = Vec::new();
        for k in 0..55u32 {
            let c = r.emit(IrOp::ConstI(k | 0x100), vec![], RegClass::Int);
            vals.push(r.emit(IrOp::Alu(HAluOp::Xor), vec![a, c], RegClass::Int));
        }
        let mut sum = published;
        for v in &vals {
            sum = r.emit(IrOp::Alu(HAluOp::Add), vec![sum, *v], RegClass::Int);
        }
        let term = jump_exit(&mut r, &[(0, sum)]);
        r.push(Inst::new(IrOp::ExitAlways { exit: term }, None, vec![]));
        let (emu, _, cause, out) = compile_and_run(r, false, |emu, _| {
            emu.iregs[0] = 21; // a != a+a -> side exit taken
        });
        assert_eq!(cause, ExitCause::Exit { id: 0 });
        assert_eq!(emu.iregs[0], 42, "exit must publish the branch-time value");
        // The test is only meaningful if the region actually spills.
        let spills = out
            .code
            .iter()
            .filter(|i| matches!(i, HInsn::Store { base, .. } if *base == R_SPILL_BASE))
            .count();
        assert!(spills > 0, "region must spill for this regression test");
    }

    #[test]
    fn spill_area_constant_fits_one_page() {
        assert_eq!(SPILL_AREA_BASE % PAGE_SIZE, 0);
        assert!(256 * 8 <= PAGE_SIZE as usize);
    }
}
