//! Data dependence graph construction, memory disambiguation, redundant
//! load elimination and store forwarding (paper §V-B3, "DDG phase").

use crate::ir::{IrOp, Region, VReg};
use crate::sched::latency;

/// Result of address analysis: `root + offset` when the address is an
/// affine chain over a single root, or `Unknown`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrExpr {
    /// A compile-time constant address.
    Const(u32),
    /// `root + off`.
    Affine { root: VReg, off: i64 },
    /// Not analyzable.
    Unknown,
}

/// Alias relation between two memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alias {
    /// Provably disjoint.
    No,
    /// Provably overlapping (same bytes may be touched).
    Must,
    /// Cannot prove either way.
    May,
}

/// Vreg-indexed map of vreg → defining instruction index. Built once per
/// region; lookups are plain array accesses (this sits on the DDG and
/// verifier hot paths, where a hash map shows up in profiles).
#[derive(Debug, Clone)]
pub struct DefMap(Vec<u32>);

impl DefMap {
    const NONE: u32 = u32::MAX;

    /// The defining instruction of `v`, if any (entry vregs have none).
    pub fn get(&self, v: VReg) -> Option<usize> {
        match self.0.get(v.0 as usize) {
            Some(&d) if d != Self::NONE => Some(d as usize),
            _ => None,
        }
    }
}

/// Analyzes the address operand of a memory op by walking its def chain
/// through copies and add/sub-constant operations.
pub fn addr_expr(region: &Region, defs: &DefMap, mut v: VReg) -> AddrExpr {
    let mut off: i64 = 0;
    for _ in 0..64 {
        let Some(di) = defs.get(v) else {
            return AddrExpr::Affine { root: v, off }; // entry vreg
        };
        let inst = &region.insts[di];
        match inst.op {
            IrOp::ConstI(c) => return AddrExpr::Const((c as i64 + off) as u32),
            IrOp::Copy => v = inst.srcs[0],
            IrOp::Alu(darco_host::HAluOp::Add) if inst.srcs.len() == 2 => {
                if let Some(c) = const_of(region, defs, inst.srcs[1]) {
                    off += c as i32 as i64;
                    v = inst.srcs[0];
                } else if let Some(c) = const_of(region, defs, inst.srcs[0]) {
                    off += c as i32 as i64;
                    v = inst.srcs[1];
                } else {
                    return AddrExpr::Affine { root: v, off };
                }
            }
            IrOp::Alu(darco_host::HAluOp::Sub) if inst.srcs.len() == 2 => {
                if let Some(c) = const_of(region, defs, inst.srcs[1]) {
                    off -= c as i32 as i64;
                    v = inst.srcs[0];
                } else {
                    return AddrExpr::Affine { root: v, off };
                }
            }
            _ => return AddrExpr::Affine { root: v, off },
        }
    }
    AddrExpr::Unknown
}

fn const_of(region: &Region, defs: &DefMap, v: VReg) -> Option<u32> {
    let di = defs.get(v)?;
    match region.insts[di].op {
        IrOp::ConstI(c) => Some(c),
        _ => None,
    }
}

/// Decides the alias relation of two accesses.
pub fn alias(a: AddrExpr, abytes: u8, b: AddrExpr, bbytes: u8) -> Alias {
    let ranges = |x: AddrExpr, n: u8| -> Option<(i64, i64, Option<VReg>)> {
        match x {
            AddrExpr::Const(c) => Some((c as i64, c as i64 + n as i64, None)),
            AddrExpr::Affine { root, off } => Some((off, off + n as i64, Some(root))),
            AddrExpr::Unknown => None,
        }
    };
    match (ranges(a, abytes), ranges(b, bbytes)) {
        (Some((alo, ahi, ra)), Some((blo, bhi, rb))) if ra == rb => {
            if alo < bhi && blo < ahi {
                Alias::Must
            } else {
                Alias::No
            }
        }
        _ => Alias::May,
    }
}

/// Builds the vreg → defining-instruction map for a region.
pub fn def_map(region: &Region) -> DefMap {
    let mut m = vec![DefMap::NONE; region.vreg_count()];
    for (i, inst) in region.insts.iter().enumerate() {
        if let Some(d) = inst.dst {
            if let Some(slot) = m.get_mut(d.0 as usize) {
                *slot = i as u32;
            }
        }
    }
    DefMap(m)
}

/// Redundant load elimination and store forwarding (runs before DDG edge
/// construction, as in the paper's DDG phase). Returns the number of
/// loads replaced by copies.
pub fn memory_opt(region: &mut Region) -> u64 {
    #[derive(Clone, Copy)]
    struct MemRec {
        expr: AddrExpr,
        bytes: u8,
        value: VReg,
        is_fp: bool,
    }
    let defs = def_map(region);
    let mut recs: Vec<MemRec> = Vec::new();
    let mut replaced = 0;
    for i in 0..region.insts.len() {
        let inst = &region.insts[i];
        match inst.op {
            IrOp::Store { .. } | IrOp::StoreF => {
                let is_fp = inst.op == IrOp::StoreF;
                let bytes = inst.op.mem_bytes().unwrap();
                let expr = addr_expr(region, &defs, region.insts[i].srcs[0]);
                let value = region.insts[i].srcs[1];
                // Invalidate every record this store may touch.
                recs.retain(|r| alias(r.expr, r.bytes, expr, bytes) == Alias::No);
                recs.push(MemRec { expr, bytes, value, is_fp });
            }
            IrOp::Load { .. } | IrOp::LoadF => {
                let is_fp = inst.op == IrOp::LoadF;
                let bytes = inst.op.mem_bytes().unwrap();
                // Only full-width (4/8-byte) accesses are forwarded; sub-word
                // forwarding would need an extra extend and is rare.
                let forwardable = bytes == 4 || bytes == 8;
                let expr = addr_expr(region, &defs, region.insts[i].srcs[0]);
                let hit = forwardable
                    .then(|| {
                        recs.iter().find(|r| {
                            r.is_fp == is_fp
                                && r.bytes == bytes
                                && exact_same(r.expr, expr)
                        })
                    })
                    .flatten()
                    .map(|r| r.value);
                match hit {
                    Some(v) => {
                        let inst = &mut region.insts[i];
                        inst.op = IrOp::Copy;
                        inst.srcs = vec![v];
                        inst.seq = 0;
                        replaced += 1;
                    }
                    None => {
                        if let Some(dst) = region.insts[i].dst {
                            if forwardable {
                                recs.push(MemRec { expr, bytes, value: dst, is_fp });
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    replaced
}

fn exact_same(a: AddrExpr, b: AddrExpr) -> bool {
    match (a, b) {
        (AddrExpr::Const(x), AddrExpr::Const(y)) => x == y,
        (AddrExpr::Affine { root: r1, off: o1 }, AddrExpr::Affine { root: r2, off: o2 }) => {
            r1 == r2 && o1 == o2
        }
        _ => false,
    }
}

/// The data dependence graph: for each instruction, its predecessors with
/// edge latencies.
#[derive(Debug, Clone)]
pub struct Ddg {
    /// `preds[i]` = list of `(pred_index, latency)`.
    pub preds: Vec<Vec<(usize, u32)>>,
    /// `succs[i]` = list of successor indices.
    pub succs: Vec<Vec<usize>>,
}

/// Builds the DDG.
///
/// With `allow_spec_mem` (assert-mode superblocks), may-alias store→load
/// edges are dropped and the load is marked speculative — the host alias
/// table catches mis-speculation at run time. Without it (basic blocks and
/// multi-exit superblocks), may-alias pairs stay ordered, which is the
/// paper's "multiple exits … reduces available optimization opportunities".
pub fn build(region: &mut Region, allow_spec_mem: bool) -> Ddg {
    let n = region.insts.len();
    let defs = def_map(region);
    let mut preds: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    let add_edge = |preds: &mut Vec<Vec<(usize, u32)>>, from: usize, to: usize, lat: u32| {
        if from != to {
            preds[to].push((from, lat));
        }
    };

    // Dataflow edges.
    for i in 0..n {
        let mut uses: Vec<VReg> = region.insts[i].srcs.clone();
        if let IrOp::ExitIf { exit } | IrOp::ExitAlways { exit } = region.insts[i].op {
            uses.extend(region.exits[exit].used_vregs());
        }
        for u in uses {
            if let Some(d) = defs.get(u) {
                add_edge(&mut preds, d, i, latency(&region.insts[d].op));
            }
        }
    }

    // Memory ordering: store → later aliasing load.
    let mem_info: Vec<Option<(AddrExpr, u8, bool)>> = region
        .insts
        .iter()
        .map(|inst| {
            inst.op.mem_bytes().map(|b| {
                (addr_expr(region, &defs, inst.srcs[0]), b, inst.op.is_store())
            })
        })
        .collect();
    let mut spec_marks: Vec<usize> = Vec::new();
    for i in 0..n {
        let Some((le, lb, false)) = mem_info[i] else { continue }; // loads only
        for (j, mj) in mem_info.iter().enumerate().take(i) {
            let Some((se, sb, true)) = *mj else { continue }; // stores only
            match alias(se, sb, le, lb) {
                Alias::No => {}
                Alias::Must => add_edge(&mut preds, j, i, 1),
                Alias::May => {
                    if allow_spec_mem {
                        spec_marks.push(i);
                    } else {
                        add_edge(&mut preds, j, i, 1);
                    }
                }
            }
        }
    }
    for i in spec_marks {
        region.insts[i].spec = true;
    }

    // Control ordering: exits stay in order; stores stay on their side of
    // exits; asserts stay before later exits *and* later stores (a store
    // hoisted above an unresolved assert would commit state the assert's
    // failure path cannot roll back — the store-after-assert hazard the
    // static verifier checks for).
    let mut last_exit: Option<usize> = None;
    let mut pending_stores: Vec<usize> = Vec::new();
    let mut pending_asserts: Vec<usize> = Vec::new();
    for i in 0..n {
        match region.insts[i].op {
            IrOp::Store { .. } | IrOp::StoreF => {
                if let Some(e) = last_exit {
                    add_edge(&mut preds, e, i, 0);
                }
                for &a in &pending_asserts {
                    add_edge(&mut preds, a, i, 0);
                }
                pending_stores.push(i);
            }
            IrOp::Assert { .. } => {
                pending_asserts.push(i);
            }
            IrOp::ExitIf { .. } | IrOp::ExitAlways { .. } => {
                if let Some(e) = last_exit {
                    add_edge(&mut preds, e, i, 0);
                }
                for s in pending_stores.drain(..) {
                    add_edge(&mut preds, s, i, 0);
                }
                for a in pending_asserts.drain(..) {
                    add_edge(&mut preds, a, i, 0);
                }
                last_exit = Some(i);
            }
            _ => {}
        }
    }

    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ps) in preds.iter().enumerate() {
        for (p, _) in ps {
            succs[*p].push(i);
        }
    }
    Ddg { preds, succs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ExitDesc, ExitKind, Inst, RegClass};
    use darco_guest::Width;
    use darco_host::HAluOp;

    fn close(r: &mut Region) {
        r.exits.push(ExitDesc::new(ExitKind::Halt));
        let idx = r.exits.len() - 1;
        r.push(Inst::new(IrOp::ExitAlways { exit: idx }, None, vec![]));
    }

    #[test]
    fn addr_analysis_walks_chains() {
        let mut r = Region::new(0);
        let base = r.new_vreg(RegClass::Int);
        r.entry.gprs[3] = Some(base);
        let c = r.emit(IrOp::ConstI(16), vec![], RegClass::Int);
        let a1 = r.emit(IrOp::Alu(HAluOp::Add), vec![base, c], RegClass::Int);
        let c2 = r.emit(IrOp::ConstI(8), vec![], RegClass::Int);
        let a2 = r.emit(IrOp::Alu(HAluOp::Sub), vec![a1, c2], RegClass::Int);
        let defs = def_map(&r);
        assert_eq!(addr_expr(&r, &defs, a2), AddrExpr::Affine { root: base, off: 8 });
        let abs = r.emit(IrOp::ConstI(0x100), vec![], RegClass::Int);
        assert_eq!(addr_expr(&r, &def_map(&r), abs), AddrExpr::Const(0x100));
    }

    #[test]
    fn alias_decisions() {
        let root = VReg(0);
        let a = AddrExpr::Affine { root, off: 0 };
        let b = AddrExpr::Affine { root, off: 4 };
        let c = AddrExpr::Affine { root, off: 2 };
        assert_eq!(alias(a, 4, b, 4), Alias::No);
        assert_eq!(alias(a, 4, c, 4), Alias::Must);
        let other = AddrExpr::Affine { root: VReg(1), off: 0 };
        assert_eq!(alias(a, 4, other, 4), Alias::May);
        assert_eq!(alias(AddrExpr::Const(0x10), 4, AddrExpr::Const(0x14), 4), Alias::No);
    }

    #[test]
    fn store_forwarding_replaces_load() {
        let mut r = Region::new(0);
        let base = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(base);
        let val = r.emit(IrOp::ConstI(42), vec![], RegClass::Int);
        r.push(Inst::new(IrOp::Store { width: Width::D }, None, vec![base, val]));
        let l = r.emit(IrOp::Load { width: Width::D, sign: false }, vec![base], RegClass::Int);
        let mut e = ExitDesc::new(ExitKind::Halt);
        e.gprs[1] = Some(l);
        r.exits.push(e);
        r.push(Inst::new(IrOp::ExitAlways { exit: 0 }, None, vec![]));
        assert_eq!(memory_opt(&mut r), 1);
        let load = &r.insts[2];
        assert_eq!(load.op, IrOp::Copy);
        assert_eq!(load.srcs, vec![val]);
        r.validate();
    }

    #[test]
    fn intervening_may_alias_store_blocks_forwarding() {
        let mut r = Region::new(0);
        let base = r.new_vreg(RegClass::Int);
        let other = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(base);
        r.entry.gprs[1] = Some(other);
        let val = r.emit(IrOp::ConstI(42), vec![], RegClass::Int);
        r.push(Inst::new(IrOp::Store { width: Width::D }, None, vec![base, val]));
        // Unknown-base store in between.
        r.push(Inst::new(IrOp::Store { width: Width::D }, None, vec![other, val]));
        let l = r.emit(IrOp::Load { width: Width::D, sign: false }, vec![base], RegClass::Int);
        let _ = l;
        close(&mut r);
        assert_eq!(memory_opt(&mut r), 0, "may-alias store kills the record");
    }

    #[test]
    fn redundant_load_elimination() {
        let mut r = Region::new(0);
        let base = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(base);
        let l1 = r.emit(IrOp::Load { width: Width::D, sign: false }, vec![base], RegClass::Int);
        let l2 = r.emit(IrOp::Load { width: Width::D, sign: false }, vec![base], RegClass::Int);
        let s = r.emit(IrOp::Alu(HAluOp::Add), vec![l1, l2], RegClass::Int);
        let _ = s;
        close(&mut r);
        assert_eq!(memory_opt(&mut r), 1);
    }

    #[test]
    fn ddg_orders_may_alias_unless_speculative() {
        let build_region = || {
            let mut r = Region::new(0);
            let a = r.new_vreg(RegClass::Int);
            let b = r.new_vreg(RegClass::Int);
            r.entry.gprs[0] = Some(a);
            r.entry.gprs[1] = Some(b);
            let v = r.emit(IrOp::ConstI(1), vec![], RegClass::Int);
            let mut st = Inst::new(IrOp::Store { width: Width::D }, None, vec![a, v]);
            st.seq = 1;
            r.push(st);
            let mut ld = Inst::new(
                IrOp::Load { width: Width::D, sign: false },
                Some(r.new_vreg(RegClass::Int)),
                vec![b],
            );
            ld.seq = 2;
            r.push(ld);
            close(&mut r);
            r
        };
        // Conservative: edge store -> load.
        let mut r1 = build_region();
        let g1 = build(&mut r1, false);
        assert!(g1.preds[2].iter().any(|(p, _)| *p == 1));
        assert!(!r1.insts[2].spec);
        // Speculative: no edge, load marked spec.
        let mut r2 = build_region();
        let g2 = build(&mut r2, true);
        assert!(!g2.preds[2].iter().any(|(p, _)| *p == 1));
        assert!(r2.insts[2].spec);
    }

    /// Regression test: a store must never be free to hoist above an
    /// earlier assert. Without the assert → store control edge, the list
    /// scheduler could move the store (no dataflow dependence on the
    /// assert) above the speculation check, committing state the assert's
    /// rollback path cannot undo.
    #[test]
    fn ddg_orders_stores_after_earlier_asserts() {
        let mut r = Region::new(0);
        let base = r.new_vreg(RegClass::Int);
        let cond = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(base);
        r.entry.gprs[1] = Some(cond);
        let v = r.emit(IrOp::ConstI(1), vec![], RegClass::Int); // 0
        let mut asrt = Inst::new(IrOp::Assert { expect_nz: true }, None, vec![cond]);
        asrt.seq = 1;
        r.push(asrt); // 1
        let mut st = Inst::new(IrOp::Store { width: Width::D }, None, vec![base, v]);
        st.seq = 2;
        r.push(st); // 2
        close(&mut r); // 3
        let g = build(&mut r, true);
        assert!(
            g.preds[2].iter().any(|(p, _)| *p == 1),
            "store may not hoist above the assert"
        );
        // And the consistency checker agrees the graph is complete.
        assert!(crate::verify::verify_ddg(&r, &g).is_ok());
    }

    #[test]
    fn ddg_keeps_stores_ordered_around_exits() {
        let mut r = Region::new(0);
        let a = r.new_vreg(RegClass::Int);
        let cond = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(a);
        r.entry.gprs[1] = Some(cond);
        let v = r.emit(IrOp::ConstI(1), vec![], RegClass::Int);
        r.exits.push(ExitDesc::new(ExitKind::Jump { target: 0x99 }));
        r.push(Inst::new(IrOp::ExitIf { exit: 0 }, None, vec![cond]));
        r.push(Inst::new(IrOp::Store { width: Width::D }, None, vec![a, v]));
        close(&mut r);
        let g = build(&mut r, true);
        // Store (index 2) must have the exit (index 1) as predecessor.
        assert!(g.preds[2].iter().any(|(p, _)| *p == 1), "store may not hoist above exit");
        // Terminal exit (index 3) must have the store as predecessor.
        assert!(g.preds[3].iter().any(|(p, _)| *p == 2), "store may not sink below exit");
    }
}
