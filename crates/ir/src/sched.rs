//! List scheduling (paper §V-B3: "the DDG is then fed to the instruction
//! scheduler that uses a conventional list scheduling algorithm").
//!
//! The scheduler orders a region for the in-order host: critical-path
//! priority, cycle-accurate ready times from DDG edge latencies, and a
//! small resource model (issue width, memory ports, FP units) mirroring
//! the timing simulator's back-end.

use crate::ddg::Ddg;
use crate::ir::{IrOp, Region};
use darco_host::{FAluOp, FUnOp2, HAluOp};

/// Scheduler resource model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Instructions per cycle.
    pub issue_width: u32,
    /// Memory operations per cycle.
    pub mem_ports: u32,
    /// FP operations per cycle.
    pub fp_units: u32,
    /// Integer multiply/divide operations per cycle.
    pub muldiv_units: u32,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig { issue_width: 2, mem_ports: 1, fp_units: 1, muldiv_units: 1 }
    }
}

/// Static latency of an operation, in cycles (also used as DDG edge
/// weight).
pub fn latency(op: &IrOp) -> u32 {
    match op {
        IrOp::Load { .. } | IrOp::LoadF => 3,
        IrOp::Alu(HAluOp::Mul | HAluOp::MulHS) => 4,
        IrOp::Alu(HAluOp::Div | HAluOp::Rem) => 12,
        IrOp::FAlu(FAluOp::Mul) => 4,
        IrOp::FAlu(FAluOp::Div) => 16,
        IrOp::FAlu(_) => 3,
        IrOp::FUn(FUnOp2::Sqrt) => 20,
        IrOp::FUn(_) => 2,
        IrOp::FCmp(_) => 2,
        IrOp::CvtIF | IrOp::CvtFI => 3,
        IrOp::FSin | IrOp::FCos => 50,
        _ => 1,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Res {
    Mem,
    Fp,
    MulDiv,
    Plain,
}

fn resource(op: &IrOp) -> Res {
    match op {
        IrOp::Load { .. } | IrOp::LoadF | IrOp::Store { .. } | IrOp::StoreF => Res::Mem,
        IrOp::FAlu(_) | IrOp::FUn(_) | IrOp::FCmp(_) | IrOp::CvtIF | IrOp::CvtFI | IrOp::FSin
        | IrOp::FCos => Res::Fp,
        IrOp::Alu(HAluOp::Mul | HAluOp::MulHS | HAluOp::Div | HAluOp::Rem) => Res::MulDiv,
        _ => Res::Plain,
    }
}

/// Schedules the region in place. Returns the schedule length in cycles
/// as estimated by the resource model.
///
/// The terminal `ExitAlways` always stays last. Memory `seq` numbers are
/// assigned before reordering (by the translator), so the host alias
/// hardware still sees original program order.
pub fn list_schedule(region: &mut Region, ddg: &Ddg, cfg: &SchedConfig) -> u32 {
    let n = region.insts.len();
    if n == 0 {
        return 0;
    }

    // Critical-path priority: longest latency path to any sink.
    let mut prio = vec![0u32; n];
    for i in (0..n).rev() {
        let own = latency(&region.insts[i].op);
        let best_succ = ddg.succs[i].iter().map(|&s| prio[s]).max().unwrap_or(0);
        prio[i] = own + best_succ;
    }

    let mut remaining_preds: Vec<usize> = ddg.preds.iter().map(|p| p.len()).collect();
    let mut ready_cycle = vec![0u32; n];
    let mut scheduled = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);

    let terminal = n - 1;
    debug_assert!(matches!(region.insts[terminal].op, IrOp::ExitAlways { .. }));

    let mut cycle = 0u32;
    let mut guard = 0u64;
    while order.len() < n - 1 {
        guard += 1;
        assert!(guard < 1_000_000, "scheduler failed to make progress (DDG cycle?)");
        // Issue up to the resource limits this cycle.
        let mut issued = 0u32;
        let mut mem = 0u32;
        let mut fp = 0u32;
        let mut muldiv = 0u32;
        while issued < cfg.issue_width {
            // Pick the highest-priority ready instruction that fits.
            let mut best: Option<usize> = None;
            for i in 0..n {
                if i == terminal
                    || scheduled[i]
                    || remaining_preds[i] != 0
                    || ready_cycle[i] > cycle
                {
                    continue;
                }
                let fits = match resource(&region.insts[i].op) {
                    Res::Mem => mem < cfg.mem_ports,
                    Res::Fp => fp < cfg.fp_units,
                    Res::MulDiv => muldiv < cfg.muldiv_units,
                    Res::Plain => true,
                };
                if !fits {
                    continue;
                }
                if best.is_none_or(|b| prio[i] > prio[b]) {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            scheduled[i] = true;
            order.push(i);
            issued += 1;
            match resource(&region.insts[i].op) {
                Res::Mem => mem += 1,
                Res::Fp => fp += 1,
                Res::MulDiv => muldiv += 1,
                Res::Plain => {}
            }
            let done = cycle + latency(&region.insts[i].op);
            for &s in &ddg.succs[i] {
                if s == terminal || scheduled[s] {
                    continue;
                }
                ready_cycle[s] = ready_cycle[s].max(done);
                remaining_preds[s] -= 1;
            }
        }
        cycle += 1;
    }
    order.push(terminal);

    // Permute the instruction list.
    let mut new_insts = Vec::with_capacity(n);
    for &i in &order {
        new_insts.push(region.insts[i].clone());
    }
    region.insts = new_insts;
    cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg;
    use crate::ir::{ExitDesc, ExitKind, Inst, RegClass, Region};
    use darco_guest::Width;

    fn close(r: &mut Region) {
        r.exits.push(ExitDesc::new(ExitKind::Halt));
        let idx = r.exits.len() - 1;
        r.push(Inst::new(IrOp::ExitAlways { exit: idx }, None, vec![]));
    }

    #[test]
    fn schedule_respects_dataflow() {
        let mut r = Region::new(0);
        let a = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(a);
        let l = r.emit(IrOp::Load { width: Width::D, sign: false }, vec![a], RegClass::Int);
        let x = r.emit(IrOp::Alu(HAluOp::Add), vec![l, l], RegClass::Int);
        let _ = x;
        // An independent op that can fill the load shadow.
        let y = r.emit(IrOp::Alu(HAluOp::Xor), vec![a, a], RegClass::Int);
        let _ = y;
        close(&mut r);
        let g = ddg::build(&mut r, true);
        list_schedule(&mut r, &g, &SchedConfig::default());
        r.validate(); // validate() checks def-before-use, i.e. dataflow order
        // The independent xor should have been hoisted between load and add.
        let pos_load = r.insts.iter().position(|i| i.op.is_load()).unwrap();
        let pos_add =
            r.insts.iter().position(|i| matches!(i.op, IrOp::Alu(HAluOp::Add))).unwrap();
        let pos_xor =
            r.insts.iter().position(|i| matches!(i.op, IrOp::Alu(HAluOp::Xor))).unwrap();
        assert!(pos_load < pos_add);
        assert!(pos_xor < pos_add, "xor fills the load-use delay slot");
    }

    #[test]
    fn terminal_stays_last_and_stores_stay_bounded() {
        let mut r = Region::new(0);
        let a = r.new_vreg(RegClass::Int);
        let c = r.new_vreg(RegClass::Int);
        r.entry.gprs[0] = Some(a);
        r.entry.gprs[1] = Some(c);
        let v = r.emit(IrOp::ConstI(3), vec![], RegClass::Int);
        r.exits.push(ExitDesc::new(ExitKind::Jump { target: 1 }));
        r.push(Inst::new(IrOp::ExitIf { exit: 0 }, None, vec![c]));
        r.push(Inst::new(IrOp::Store { width: Width::D }, None, vec![a, v]));
        close(&mut r);
        let g = ddg::build(&mut r, true);
        list_schedule(&mut r, &g, &SchedConfig::default());
        assert!(matches!(r.insts.last().unwrap().op, IrOp::ExitAlways { .. }));
        let pos_exit = r.insts.iter().position(|i| matches!(i.op, IrOp::ExitIf { .. })).unwrap();
        let pos_store = r.insts.iter().position(|i| i.op.is_store()).unwrap();
        assert!(pos_store > pos_exit, "store stays after the side exit");
        r.validate();
    }

    #[test]
    fn schedule_length_reflects_latency() {
        // A chain of dependent multiplies cannot be shorter than the sum of
        // latencies; independent ones can.
        let mut chain = Region::new(0);
        let a = chain.new_vreg(RegClass::Int);
        chain.entry.gprs[0] = Some(a);
        let mut cur = a;
        for _ in 0..4 {
            cur = chain.emit(IrOp::Alu(HAluOp::Mul), vec![cur, cur], RegClass::Int);
        }
        close(&mut chain);
        let g = ddg::build(&mut chain, true);
        let len_chain = list_schedule(&mut chain, &g, &SchedConfig::default());

        let mut indep = Region::new(0);
        let a = indep.new_vreg(RegClass::Int);
        indep.entry.gprs[0] = Some(a);
        for _ in 0..4 {
            indep.emit(IrOp::Alu(HAluOp::Add), vec![a, a], RegClass::Int);
        }
        close(&mut indep);
        let g = ddg::build(&mut indep, true);
        let len_indep = list_schedule(&mut indep, &g, &SchedConfig::default());
        assert!(len_chain > len_indep, "chain {len_chain} vs indep {len_indep}");
        assert!(len_chain >= 13, "4 dependent multiplies serialize on latency");
    }
}
