//! # DARCO's intermediate representation and optimizer
//!
//! The Translation Optimization Layer translates guest instructions into
//! this IR, optimizes it, and generates host code from it (paper §V-B3).
//! The pipeline implemented here, in the paper's order:
//!
//! 1. regions are built in **SSA form** (translation assigns a fresh
//!    virtual register to every definition, which removes anti and output
//!    dependences by construction — the effect of the paper's SSA
//!    transformation);
//! 2. a **forward pass** applies constant folding, constant propagation,
//!    copy propagation and common subexpression elimination
//!    ([`passes::ConstFold`], [`passes::CopyProp`], [`passes::Cse`]);
//! 3. a **backward pass** applies dead code elimination ([`passes::Dce`]);
//! 4. the **data dependence graph** is built with memory disambiguation;
//!    may-alias pairs are either ordered or speculatively reordered
//!    (loads get the `spec` mark checked by the host alias table), and
//!    **redundant load elimination** and **store forwarding** run during
//!    DDG construction ([`ddg`]);
//! 5. a conventional **list scheduler** orders the region ([`sched`]);
//! 6. a **linear-scan register allocator** and the code generator emit
//!    host instructions ([`codegen`]), pinning guest state to host
//!    registers and resolving exit-time parallel copies.
//!
//! Passes implement the [`passes::Pass`] trait so new optimizations can be
//! plugged in or disabled individually — the paper's "plug-and-play"
//! requirement, exercised by the optimization-level ablation benches.
//!
//! Every stage is statically checked by the [`verify`] subsystem: a
//! dataflow framework plus an invariant verifier that runs between passes
//! in debug builds (pinpointing the pass that broke the IR) and once
//! before cache insertion in release builds (see `TolConfig::verify`).

pub mod codegen;
pub mod ddg;
pub mod ir;
pub mod passes;
pub mod sched;
pub mod sym;
pub mod verify;

pub use codegen::{check_host_code, CodegenCtx, CodegenOut, ExitMeta};
pub use ir::{EntryBindings, ExitDesc, ExitKind, FlagsKind, Inst, IrOp, RegClass, Region, VReg};
pub use passes::{
    level_passes, run_passes, run_passes_validated, run_pipeline, run_pipeline_validated,
    OptLevel, Pass, PassStats, VerifyFailure,
};
pub use sym::{check_equiv, summarize, try_summarize, RegionSummary, Term, TermId, TermPool};
pub use verify::{
    register_kind_counters, verify_ddg, verify_region, InvariantKind, VerifyReport, KIND_COUNT,
};
