//! `darco-trace-check` — validate DARCO observability artifacts with the
//! repo's own JSON reader (no external tooling in CI).
//!
//! ```text
//! darco-trace-check trace.json [more files...]   # chrome traces / flight dumps / any JSON
//! darco-trace-check --obs-gate BENCH_obs.json    # enforce the tracing overhead budget
//! ```
//!
//! A chrome trace (top-level array) is checked for the required
//! `name`/`ph`/`ts`/`pid`/`tid` members; a flight dump (object with
//! `darco_flight`) for marker, ordered events and metrics; anything else
//! just has to parse. `--obs-gate` reads a `BENCH_obs.json` produced by
//! the `obs_overhead` harness and fails when tracing-enabled overhead
//! exceeds 5%, the disabled-tracer overhead vs. the recorded hot-path
//! baseline exceeds 1%, or live streaming / the sampling profiler cost
//! more than 2% each.

use darco_obs::{chrome, flight, json};
use std::process::ExitCode;

fn check_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = json::parse(&text).map_err(|e| e.to_string())?;
    if doc.as_arr().is_some() {
        let n = chrome::validate_chrome_trace(&doc)?;
        Ok(format!("chrome trace, {n} events"))
    } else if doc.get("darco_flight").is_some() {
        let n = flight::validate_flight_dump(&doc)?;
        Ok(format!("flight dump, {n} events"))
    } else {
        Ok("valid JSON".to_string())
    }
}

fn obs_gate(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = json::parse(&text).map_err(|e| e.to_string())?;
    let traced = doc
        .get("overhead_traced")
        .and_then(|v| v.as_num())
        .ok_or("missing `overhead_traced`")?;
    if traced > 0.05 {
        return Err(format!("tracing-enabled overhead {:.2}% exceeds the 5% budget", traced * 100.0));
    }
    // The disabled-tracer comparison is informational when no hot-path
    // baseline was available at measurement time.
    let mut null_part = "no null-trace baseline".to_string();
    if let Some(null) = doc.get("overhead_null_vs_baseline").and_then(|v| v.as_num()) {
        if null > 0.01 {
            return Err(format!(
                "NullTrace overhead {:.2}% vs. hot-path baseline exceeds the 1% budget",
                null * 100.0
            ));
        }
        null_part = format!("null-vs-baseline {:+.2}%", null * 100.0);
    }
    let stream = doc
        .get("overhead_stream")
        .and_then(|v| v.as_num())
        .ok_or("missing `overhead_stream` (regenerate BENCH_obs.json)")?;
    if stream > 0.02 {
        return Err(format!(
            "live-streaming overhead {:.2}% on the fleet suite exceeds the 2% budget",
            stream * 100.0
        ));
    }
    let profiler = doc
        .get("overhead_profiler")
        .and_then(|v| v.as_num())
        .ok_or("missing `overhead_profiler` (regenerate BENCH_obs.json)")?;
    if profiler > 0.02 {
        return Err(format!(
            "sampling-profiler overhead {:.2}% exceeds the 2% budget",
            profiler * 100.0
        ));
    }
    Ok(format!(
        "overhead gate OK: traced {:+.2}%, {}, stream {:+.2}%, profiler {:+.2}%",
        traced * 100.0,
        null_part,
        stream * 100.0,
        profiler * 100.0
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: darco-trace-check [--obs-gate] <file.json> [more files...]");
        return ExitCode::from(2);
    }
    let gate = args[0] == "--obs-gate";
    let files = if gate { &args[1..] } else { &args[..] };
    let mut failed = false;
    for path in files {
        let res = if gate { obs_gate(path) } else { check_file(path) };
        match res {
            Ok(msg) => println!("{path}: {msg}"),
            Err(msg) => {
                eprintln!("{path}: FAIL: {msg}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
