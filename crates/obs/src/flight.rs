//! The flight recorder: one JSON artifact holding the last N trace
//! events plus a metrics snapshot, produced when a run diverges or
//! panics.
//!
//! The artifact is self-describing (`"darco_flight": 1`) so the debug
//! toolchain and external tooling can recognize it, and the event list is
//! in sequence order so "what happened just before the divergence" reads
//! top to bottom.

use crate::json::JsonWriter;
use crate::metrics::Registry;
use crate::trace::TraceEvent;

/// Renders a flight-recorder dump.
///
/// `context` describes why the dump exists (the validation error, the
/// panic message); `dropped` is how many earlier events the ring already
/// overwrote (so readers know the window is a tail, not the whole run).
pub fn flight_dump(
    context: &str,
    events: &[TraceEvent],
    dropped: u64,
    metrics: &Registry,
) -> String {
    flight_dump_with(context, events, dropped, metrics, &[])
}

/// [`flight_dump`] plus caller-supplied sections: each `(key, json)` pair
/// is embedded verbatim as a top-level field (`json` must be a
/// pre-rendered JSON value). The engine uses this to attach the last
/// [`crate::RegistryDelta`] (`"delta"` — what changed since the final
/// quantum boundary) and the sampling profiler's recent-sample window
/// (`"profile_window"`), so a crash artifact shows *where the guest was*.
pub fn flight_dump_with(
    context: &str,
    events: &[TraceEvent],
    dropped: u64,
    metrics: &Registry,
    extras: &[(&str, &str)],
) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_num("darco_flight", 1);
    w.field_str("context", context);
    w.field_num("dropped_events", dropped);
    w.begin_arr(Some("events"));
    for ev in events {
        let mut e = JsonWriter::new();
        e.begin_obj(None);
        e.field_num("seq", ev.seq);
        e.field_num("ts_ns", ev.ts_ns);
        e.field_str("name", ev.kind.name());
        ev.kind.write_args(&mut e);
        e.end_obj();
        w.elem_raw(&e.finish());
    }
    w.end_arr();
    w.field_raw("metrics", &metrics.to_json());
    for (key, json) in extras {
        w.field_raw(key, json);
    }
    w.end_obj();
    w.finish()
}

/// Validates a parsed flight dump: the marker, an `events` array of
/// objects with `seq`/`name`, and a `metrics` object. Returns the event
/// count.
///
/// # Errors
/// Returns a description of the first structural problem.
pub fn validate_flight_dump(doc: &crate::json::JsonValue) -> Result<usize, String> {
    if doc.get("darco_flight").and_then(|v| v.as_num()) != Some(1.0) {
        return Err("missing `darco_flight: 1` marker".to_string());
    }
    let events = doc
        .get("events")
        .and_then(|v| v.as_arr())
        .ok_or("missing `events` array")?;
    let mut last_seq = -1i64;
    for (i, ev) in events.iter().enumerate() {
        let seq = ev
            .get("seq")
            .and_then(|v| v.as_num())
            .ok_or_else(|| format!("event {i}: missing `seq`"))? as i64;
        if ev.get("name").and_then(|v| v.as_str()).is_none() {
            return Err(format!("event {i}: missing `name`"));
        }
        if seq <= last_seq {
            return Err(format!("event {i}: sequence numbers not increasing"));
        }
        last_seq = seq;
    }
    if doc.get("metrics").and_then(|m| m.get("counters")).is_none() {
        return Err("missing `metrics.counters`".to_string());
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::trace::{RingTrace, TraceEventKind, TraceSink};

    #[test]
    fn dump_is_valid_and_ordered() {
        let mut r = RingTrace::new(4);
        for i in 0..7 {
            r.emit(TraceEventKind::IbtcInsert { pc: i });
        }
        let mut m = Registry::new();
        m.set_counter("c", 1);
        let s = flight_dump("unit \"test\"", &r.events(), r.dropped(), &m);
        let doc = parse(&s).unwrap();
        assert_eq!(validate_flight_dump(&doc).unwrap(), 4);
        assert_eq!(doc.get("dropped_events").and_then(|v| v.as_num()), Some(3.0));
        assert_eq!(doc.get("context").and_then(|v| v.as_str()), Some("unit \"test\""));
    }

    #[test]
    fn validator_rejects_out_of_order_windows() {
        let s = "{\"darco_flight\":1,\"events\":[{\"seq\":5,\"name\":\"a\"},{\"seq\":3,\"name\":\"b\"}],\"metrics\":{\"counters\":{}}}";
        assert!(validate_flight_dump(&parse(s).unwrap()).is_err());
    }
}
