//! Structured trace events and the ring-buffer trace sink.
//!
//! Every interesting transition in the TOL/timing pipeline is a typed
//! [`TraceEventKind`]; enabled tracers stamp it with a monotonic sequence
//! number and a nanosecond timestamp and store it in a fixed-capacity
//! ring ([`RingTrace`]) that overwrites its oldest entries, so the tail
//! of any run — the part the flight recorder wants — is always available
//! at O(capacity) memory.
//!
//! The sink follows the `InsnSink` monomorphization pattern from the
//! hot-path overhaul: [`NullTrace`] is an inlined no-op, and the
//! [`Tracer`] enum gives structs that need runtime selection a concrete
//! field type whose disabled path is a single predictable branch.

use crate::json::JsonWriter;
use std::time::Instant;

/// TOL execution mode (the paper's IM/BBM/SBM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Interpretation mode.
    Im,
    /// Basic-block translation mode.
    Bbm,
    /// Superblock mode.
    Sbm,
}

impl ExecMode {
    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Im => "im",
            ExecMode::Bbm => "bbm",
            ExecMode::Sbm => "sbm",
        }
    }
}

/// A typed trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEventKind {
    /// Execution switched mode (emitted on change, not per block).
    ModeSwitch {
        /// Mode before the switch.
        from: ExecMode,
        /// Mode after the switch.
        to: ExecMode,
        /// Guest PC at the switch.
        pc: u32,
    },
    /// A BBM/SBM translation started.
    TranslateStart {
        /// Superblock (SBM) rather than basic block (BBM)?
        sb: bool,
        /// Guest entry PC of the region.
        pc: u32,
    },
    /// The matching translation finished (also emitted when it bails).
    TranslateEnd {
        /// Superblock (SBM) rather than basic block (BBM)?
        sb: bool,
        /// Guest entry PC of the region.
        pc: u32,
        /// Wall-clock nanoseconds spent translating.
        ns: u64,
        /// Whether a translation was actually installed.
        ok: bool,
    },
    /// A block was promoted to a hotter mode.
    Promotion {
        /// Guest PC of the promoted block.
        pc: u32,
        /// Destination mode (BBM or SBM).
        to: ExecMode,
    },
    /// A direct-branch exit was chained to another translation.
    ChainPatch {
        /// Guest PC of the patched translation.
        from_pc: u32,
        /// Guest PC of the chain target.
        to_pc: u32,
    },
    /// An indirect-branch target entered the IBTC.
    IbtcInsert {
        /// Guest PC of the inserted target.
        pc: u32,
    },
    /// Speculation failed (assert or alias) and rolled back.
    Rollback {
        /// Guest entry PC of the rolled-back region.
        pc: u32,
        /// Host instructions executed in the region before the rollback
        /// (the rollback distance).
        host_insns: u64,
    },
    /// A failing superblock was recreated as multiple-exit.
    Recreate {
        /// Guest entry PC of the region.
        pc: u32,
    },
    /// A translation entered the code cache.
    CacheInsert {
        /// Translation id.
        id: u32,
        /// Guest entry PC.
        pc: u32,
        /// Encoded size in code-cache words.
        words: u32,
    },
    /// The code cache overflowed and was flushed.
    CacheFlush {
        /// Live translations discarded.
        live: u32,
        /// Words in use at the flush.
        used_words: u64,
    },
    /// The static verifier reported a finding.
    VerifierFinding {
        /// Pipeline stage (`bbm-pipeline`, `sbm-ddg`, `codegen`, ...).
        stage: &'static str,
        /// Violated invariant name.
        kind: &'static str,
        /// Guest entry PC of the offending region.
        pc: u32,
    },
    /// Sync protocol: the co-designed component requested a page.
    PageRequest {
        /// Faulting guest address.
        addr: u32,
    },
    /// Sync protocol: a system call synchronized both components.
    SyscallSync {
        /// Retired guest instructions at the call.
        at_insns: u64,
    },
    /// Sync protocol: a state validation ran (and passed).
    Validation {
        /// Retired guest instructions at the check.
        at_insns: u64,
    },
    /// Sync protocol: a state validation failed — the components
    /// diverged.
    Divergence {
        /// Retired guest instructions at the failed check.
        at_insns: u64,
        /// Authoritative guest PC.
        guest_pc: u32,
    },
    /// The run ended (halt, exit syscall or synchronized fault).
    RunEnd {
        /// Final retired-instruction count.
        at_insns: u64,
    },
    /// The native JIT backend compiled fragments to machine code
    /// (aggregated over one `execute` call).
    JitCompile {
        /// Fragments compiled in this batch.
        frags: u64,
        /// Machine-code bytes emitted.
        bytes: u64,
        /// Wall-clock nanoseconds spent compiling.
        ns: u64,
    },
    /// The native backend patched direct jumps and/or inline IBTC caches
    /// into already-compiled code.
    JitPatch {
        /// Direct jumps patched (fragment chaining).
        jumps: u64,
        /// Inline IBTC caches installed (subset of `jumps`).
        ibtc: u64,
    },
    /// The native backend discarded compiled machine code (whole-buffer
    /// flush or precise invalidation over mutated arena ranges).
    JitInvalidate {
        /// Machine-code bytes discarded.
        bytes: u64,
    },
    /// Semantic translation validation opened over a region (span begin;
    /// the matching [`TraceEventKind::SemEnd`] closes it).
    SemBegin {
        /// Guest entry PC of the region under proof.
        pc: u32,
    },
    /// Semantic translation validation closed (span end).
    SemEnd {
        /// Guest entry PC of the region under proof.
        pc: u32,
        /// Wall-clock nanoseconds spent summarizing/comparing.
        ns: u64,
        /// Divergences found (0 = the proof went through).
        findings: u32,
    },
    /// The x86-64 machine-code verifier checked freshly compiled
    /// fragments (aggregated over one `execute` call).
    McodeVerify {
        /// Fragments checked.
        fragments: u64,
        /// Checker findings raised.
        findings: u64,
        /// Wall-clock nanoseconds inside the checker.
        ns: u64,
    },
}

impl TraceEventKind {
    /// Stable event name (used by exporters and assertions).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::ModeSwitch { .. } => "mode_switch",
            TraceEventKind::TranslateStart { sb: false, .. } => "translate_bb",
            TraceEventKind::TranslateStart { sb: true, .. } => "translate_sb",
            TraceEventKind::TranslateEnd { sb: false, .. } => "translate_bb",
            TraceEventKind::TranslateEnd { sb: true, .. } => "translate_sb",
            TraceEventKind::Promotion { .. } => "promotion",
            TraceEventKind::ChainPatch { .. } => "chain_patch",
            TraceEventKind::IbtcInsert { .. } => "ibtc_insert",
            TraceEventKind::Rollback { .. } => "rollback",
            TraceEventKind::Recreate { .. } => "recreate_multi_exit",
            TraceEventKind::CacheInsert { .. } => "cache_insert",
            TraceEventKind::CacheFlush { .. } => "cache_flush",
            TraceEventKind::VerifierFinding { .. } => "verifier_finding",
            TraceEventKind::PageRequest { .. } => "page_request",
            TraceEventKind::SyscallSync { .. } => "syscall_sync",
            TraceEventKind::Validation { .. } => "validation",
            TraceEventKind::Divergence { .. } => "divergence",
            TraceEventKind::RunEnd { .. } => "run_end",
            TraceEventKind::JitCompile { .. } => "jit.compile",
            TraceEventKind::JitPatch { .. } => "jit.patch",
            TraceEventKind::JitInvalidate { .. } => "jit.invalidate",
            TraceEventKind::SemBegin { .. } | TraceEventKind::SemEnd { .. } => "verify.semantic",
            TraceEventKind::McodeVerify { .. } => "verify.mcode",
        }
    }

    /// Chrome-trace lane (tid) grouping related events together.
    pub fn lane(&self) -> u32 {
        match self {
            TraceEventKind::ModeSwitch { .. } => 1,
            TraceEventKind::TranslateStart { .. }
            | TraceEventKind::TranslateEnd { .. }
            | TraceEventKind::Promotion { .. }
            | TraceEventKind::Recreate { .. }
            | TraceEventKind::CacheInsert { .. }
            | TraceEventKind::CacheFlush { .. }
            | TraceEventKind::ChainPatch { .. }
            | TraceEventKind::IbtcInsert { .. } => 2,
            TraceEventKind::Rollback { .. } => 1,
            TraceEventKind::VerifierFinding { .. } => 4,
            TraceEventKind::PageRequest { .. }
            | TraceEventKind::SyscallSync { .. }
            | TraceEventKind::Validation { .. }
            | TraceEventKind::Divergence { .. }
            | TraceEventKind::RunEnd { .. } => 3,
            TraceEventKind::JitCompile { .. }
            | TraceEventKind::JitPatch { .. }
            | TraceEventKind::JitInvalidate { .. } => 5,
            TraceEventKind::SemBegin { .. }
            | TraceEventKind::SemEnd { .. }
            | TraceEventKind::McodeVerify { .. } => 6,
        }
    }

    /// Writes the event's payload fields into an open JSON object.
    pub fn write_args(&self, w: &mut JsonWriter) {
        match *self {
            TraceEventKind::ModeSwitch { from, to, pc } => {
                w.field_str("from", from.name()).field_str("to", to.name());
                w.field_num("pc", pc);
            }
            TraceEventKind::TranslateStart { sb, pc } => {
                w.field_bool("sb", sb).field_num("pc", pc);
            }
            TraceEventKind::TranslateEnd { sb, pc, ns, ok } => {
                w.field_bool("sb", sb).field_num("pc", pc);
                w.field_num("ns", ns).field_bool("ok", ok);
            }
            TraceEventKind::Promotion { pc, to } => {
                w.field_num("pc", pc).field_str("to", to.name());
            }
            TraceEventKind::ChainPatch { from_pc, to_pc } => {
                w.field_num("from_pc", from_pc).field_num("to_pc", to_pc);
            }
            TraceEventKind::IbtcInsert { pc } => {
                w.field_num("pc", pc);
            }
            TraceEventKind::Rollback { pc, host_insns } => {
                w.field_num("pc", pc).field_num("host_insns", host_insns);
            }
            TraceEventKind::Recreate { pc } => {
                w.field_num("pc", pc);
            }
            TraceEventKind::CacheInsert { id, pc, words } => {
                w.field_num("id", id).field_num("pc", pc).field_num("words", words);
            }
            TraceEventKind::CacheFlush { live, used_words } => {
                w.field_num("live", live).field_num("used_words", used_words);
            }
            TraceEventKind::VerifierFinding { stage, kind, pc } => {
                w.field_str("stage", stage).field_str("kind", kind).field_num("pc", pc);
            }
            TraceEventKind::PageRequest { addr } => {
                w.field_num("addr", addr);
            }
            TraceEventKind::SyscallSync { at_insns }
            | TraceEventKind::Validation { at_insns }
            | TraceEventKind::RunEnd { at_insns } => {
                w.field_num("at_insns", at_insns);
            }
            TraceEventKind::Divergence { at_insns, guest_pc } => {
                w.field_num("at_insns", at_insns).field_num("guest_pc", guest_pc);
            }
            TraceEventKind::JitCompile { frags, bytes, ns } => {
                w.field_num("frags", frags).field_num("bytes", bytes).field_num("ns", ns);
            }
            TraceEventKind::JitPatch { jumps, ibtc } => {
                w.field_num("jumps", jumps).field_num("ibtc", ibtc);
            }
            TraceEventKind::JitInvalidate { bytes } => {
                w.field_num("bytes", bytes);
            }
            TraceEventKind::SemBegin { pc } => {
                w.field_num("pc", pc);
            }
            TraceEventKind::SemEnd { pc, ns, findings } => {
                w.field_num("pc", pc).field_num("ns", ns).field_num("findings", findings);
            }
            TraceEventKind::McodeVerify { fragments, findings, ns } => {
                w.field_num("fragments", fragments).field_num("findings", findings);
                w.field_num("ns", ns);
            }
        }
    }
}

/// A recorded event: payload plus stamping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Monotonic sequence number (never reset, survives ring wrap).
    pub seq: u64,
    /// Nanoseconds since the tracer was created.
    pub ts_ns: u64,
    /// The typed payload.
    pub kind: TraceEventKind,
}

/// Consumer of trace events.
///
/// Mirrors `InsnSink`: generic call sites monomorphize over `T:
/// TraceSink` so [`NullTrace`] costs nothing, and [`Tracer`] is the
/// concrete enum for struct fields.
pub trait TraceSink {
    /// Whether events are being recorded — call sites may use this to
    /// skip argument computation entirely.
    fn enabled(&self) -> bool;
    /// Records one event.
    fn emit(&mut self, kind: TraceEventKind);
}

/// Trace sink that discards everything (compiles to nothing).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTrace;

impl TraceSink for NullTrace {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn emit(&mut self, _kind: TraceEventKind) {}
}

/// Fixed-capacity ring of trace events with monotonic sequence numbers.
///
/// Single-writer by construction (the simulator is single-threaded); the
/// "lock-free style" is the layout: a plain `Vec` plus a write index, no
/// interior locking, O(1) emit.
#[derive(Debug, Clone)]
pub struct RingTrace {
    buf: Vec<TraceEvent>,
    cap: usize,
    next: usize,
    seq: u64,
    dropped: u64,
    epoch: Instant,
}

impl RingTrace {
    /// Creates a ring holding up to `cap` events (min 1).
    pub fn new(cap: usize) -> RingTrace {
        let cap = cap.max(1);
        RingTrace {
            buf: Vec::with_capacity(cap.min(4096)),
            cap,
            next: 0,
            seq: 0,
            dropped: 0,
            epoch: Instant::now(),
        }
    }

    /// Events recorded since creation (including overwritten ones).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Events lost to ring overwrite.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The held events in sequence order (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() == self.cap {
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        out
    }

    /// Removes and returns the held events (sequence numbering and the
    /// timestamp epoch continue across drains).
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        let out = self.events();
        self.buf.clear();
        self.next = 0;
        out
    }
}

impl TraceSink for RingTrace {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&mut self, kind: TraceEventKind) {
        let ev = TraceEvent {
            seq: self.seq,
            ts_ns: self.epoch.elapsed().as_nanos() as u64,
            kind,
        };
        self.seq += 1;
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.dropped += 1;
        }
        self.next = (self.next + 1) % self.cap;
    }
}

/// Runtime-selected tracer: the concrete field type for structs that may
/// or may not trace (the `DynSink` analogue, without dynamic dispatch).
#[derive(Debug, Default, Clone)]
pub enum Tracer {
    /// Tracing off — [`TraceSink::emit`] is one branch and a return.
    #[default]
    Off,
    /// Recording into a ring.
    Ring(RingTrace),
}

impl Tracer {
    /// A tracer recording into a fresh ring of `cap` events.
    pub fn ring(cap: usize) -> Tracer {
        Tracer::Ring(RingTrace::new(cap))
    }

    /// The underlying ring, when tracing is on.
    pub fn ring_ref(&self) -> Option<&RingTrace> {
        match self {
            Tracer::Off => None,
            Tracer::Ring(r) => Some(r),
        }
    }

    /// Held events in order (empty when off).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring_ref().map(RingTrace::events).unwrap_or_default()
    }

    /// Drains held events (empty when off).
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        match self {
            Tracer::Off => Vec::new(),
            Tracer::Ring(r) => r.drain(),
        }
    }
}

impl TraceSink for Tracer {
    #[inline]
    fn enabled(&self) -> bool {
        matches!(self, Tracer::Ring(_))
    }

    #[inline]
    fn emit(&mut self, kind: TraceEventKind) {
        if let Tracer::Ring(r) = self {
            r.emit(kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pc: u32) -> TraceEventKind {
        TraceEventKind::Promotion { pc, to: ExecMode::Bbm }
    }

    #[test]
    fn ring_keeps_order_and_monotonic_seq() {
        let mut r = RingTrace::new(8);
        for i in 0..5 {
            r.emit(ev(i));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 5);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn ring_overwrites_oldest_on_wrap() {
        let mut r = RingTrace::new(4);
        for i in 0..10 {
            r.emit(ev(i));
        }
        assert_eq!(r.seq(), 10);
        assert_eq!(r.dropped(), 6);
        let evs = r.events();
        assert_eq!(evs.len(), 4);
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "tail survives, in order");
    }

    #[test]
    fn drain_resets_contents_but_not_seq() {
        let mut r = RingTrace::new(4);
        r.emit(ev(1));
        r.emit(ev(2));
        assert_eq!(r.drain().len(), 2);
        assert!(r.is_empty());
        r.emit(ev(3));
        assert_eq!(r.events()[0].seq, 2, "sequence continues");
    }

    #[test]
    fn null_and_off_tracers_record_nothing() {
        let mut n = NullTrace;
        assert!(!n.enabled());
        n.emit(ev(1));
        let mut t = Tracer::Off;
        t.emit(ev(1));
        assert!(t.events().is_empty());
        let mut t = Tracer::ring(4);
        assert!(t.enabled());
        t.emit(ev(1));
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn event_names_are_stable() {
        assert_eq!(ev(0).name(), "promotion");
        assert_eq!(
            TraceEventKind::TranslateEnd { sb: true, pc: 0, ns: 1, ok: true }.name(),
            "translate_sb"
        );
        assert_eq!(TraceEventKind::Divergence { at_insns: 1, guest_pc: 2 }.name(), "divergence");
    }

    #[test]
    fn args_render_as_valid_json() {
        let kinds = [
            TraceEventKind::ModeSwitch { from: ExecMode::Im, to: ExecMode::Sbm, pc: 1 },
            TraceEventKind::TranslateEnd { sb: false, pc: 2, ns: 3, ok: true },
            TraceEventKind::CacheFlush { live: 4, used_words: 5 },
            TraceEventKind::VerifierFinding { stage: "codegen", kind: "x", pc: 6 },
        ];
        for k in kinds {
            let mut w = JsonWriter::new();
            w.begin_obj(None);
            k.write_args(&mut w);
            w.end_obj();
            crate::json::parse(&w.finish()).unwrap();
        }
    }
}
