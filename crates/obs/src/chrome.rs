//! Chrome `chrome://tracing` (trace-event JSON array) export.
//!
//! Each [`TraceEvent`] becomes one trace-event object. Translation
//! start/end and semantic-proof begin/end pairs map to duration events
//! (`"B"`/`"E"`); everything else is a thread-scoped instant (`"i"`).
//! Events are grouped into lanes (tids): 1 execution, 2
//! translation/cache, 3 sync protocol, 4 verifier findings, 5 native JIT
//! (`jit.compile`/`jit.patch`/`jit.invalidate`), 6 verification spans
//! (`verify.semantic` proofs, `verify.mcode` machine-code checks).
//! Multi-workload exports (darco-lint) put each workload in its own pid
//! with a `process_name` metadata record.

use crate::json::JsonWriter;
use crate::trace::{TraceEvent, TraceEventKind};

fn write_event(w: &mut JsonWriter, ev: &TraceEvent, pid: usize) {
    let ph = match ev.kind {
        TraceEventKind::TranslateStart { .. } | TraceEventKind::SemBegin { .. } => "B",
        TraceEventKind::TranslateEnd { .. } | TraceEventKind::SemEnd { .. } => "E",
        _ => "i",
    };
    w.begin_obj(None);
    w.field_str("name", ev.kind.name());
    w.field_str("ph", ph);
    // Trace-event timestamps are microseconds; keep sub-µs precision.
    w.field_f64("ts", ev.ts_ns as f64 / 1e3);
    w.field_num("pid", pid);
    w.field_num("tid", ev.kind.lane());
    if ph == "i" {
        w.field_str("s", "t"); // thread-scoped instant
    }
    w.begin_obj(Some("args"));
    w.field_num("seq", ev.seq);
    ev.kind.write_args(w);
    w.end_obj();
    w.end_obj();
}

fn write_process_name(w: &mut JsonWriter, pid: usize, name: &str) {
    w.begin_obj(None);
    w.field_str("name", "process_name");
    w.field_str("ph", "M");
    w.field_num("ts", 0);
    w.field_num("pid", pid);
    w.field_num("tid", 0);
    w.begin_obj(Some("args")).field_str("name", name).end_obj();
    w.end_obj();
}

/// Renders one event window as a complete trace-event JSON array.
pub fn to_chrome_trace(name: &str, events: &[TraceEvent]) -> String {
    to_chrome_trace_multi(&[(name.to_string(), events.to_vec())])
}

/// Renders several named event windows (one pid each) as a single
/// trace-event JSON array.
pub fn to_chrome_trace_multi(groups: &[(String, Vec<TraceEvent>)]) -> String {
    let mut w = JsonWriter::new();
    w.begin_arr(None);
    for (i, (name, events)) in groups.iter().enumerate() {
        let pid = i + 1;
        write_process_name(&mut w, pid, name);
        for ev in events {
            write_event(&mut w, ev, pid);
        }
    }
    w.end_arr();
    w.finish()
}

/// Validates a parsed trace document: a JSON array whose elements all
/// carry the required `name`/`ph`/`ts`/`pid`/`tid` members with the right
/// types. Returns the event count.
///
/// # Errors
/// Returns a description of the first malformed element.
pub fn validate_chrome_trace(doc: &crate::json::JsonValue) -> Result<usize, String> {
    let arr = doc.as_arr().ok_or("top level must be an array")?;
    for (i, ev) in arr.iter().enumerate() {
        for key in ["name", "ph"] {
            if ev.get(key).and_then(|v| v.as_str()).is_none() {
                return Err(format!("event {i}: missing string `{key}`"));
            }
        }
        for key in ["ts", "pid", "tid"] {
            if ev.get(key).and_then(|v| v.as_num()).is_none() {
                return Err(format!("event {i}: missing number `{key}`"));
            }
        }
    }
    Ok(arr.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::trace::{RingTrace, TraceSink};

    fn window() -> Vec<TraceEvent> {
        let mut r = RingTrace::new(16);
        r.emit(TraceEventKind::TranslateStart { sb: false, pc: 0x100 });
        r.emit(TraceEventKind::TranslateEnd { sb: false, pc: 0x100, ns: 1200, ok: true });
        r.emit(TraceEventKind::Rollback { pc: 0x100, host_insns: 7 });
        r.emit(TraceEventKind::Validation { at_insns: 42 });
        r.events()
    }

    #[test]
    fn export_is_valid_and_complete() {
        let s = to_chrome_trace("unit", &window());
        let doc = parse(&s).unwrap();
        let n = validate_chrome_trace(&doc).unwrap();
        assert_eq!(n, 5, "4 events + 1 process_name metadata");
    }

    #[test]
    fn translation_pairs_become_begin_end() {
        let s = to_chrome_trace("unit", &window());
        let doc = parse(&s).unwrap();
        let arr = doc.as_arr().unwrap();
        let phs: Vec<&str> =
            arr.iter().filter_map(|e| e.get("ph").and_then(|v| v.as_str())).collect();
        assert_eq!(phs, vec!["M", "B", "E", "i", "i"]);
        // B and E share a lane so chrome can pair them.
        let tids: Vec<f64> =
            arr.iter().filter_map(|e| e.get("tid").and_then(|v| v.as_num())).collect();
        assert_eq!(tids[1], tids[2]);
    }

    #[test]
    fn multi_group_export_separates_pids() {
        let s = to_chrome_trace_multi(&[
            ("a".to_string(), window()),
            ("b".to_string(), window()),
        ]);
        let doc = parse(&s).unwrap();
        validate_chrome_trace(&doc).unwrap();
        let arr = doc.as_arr().unwrap();
        let pids: std::collections::HashSet<u64> = arr
            .iter()
            .filter_map(|e| e.get("pid").and_then(|v| v.as_num()))
            .map(|p| p as u64)
            .collect();
        assert_eq!(pids.len(), 2);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace(&parse("{}").unwrap()).is_err());
        assert!(validate_chrome_trace(&parse("[{\"name\":\"x\"}]").unwrap()).is_err());
        assert_eq!(validate_chrome_trace(&parse("[]").unwrap()), Ok(0));
    }
}
