//! Minimal hand-rolled JSON emission and parsing.
//!
//! The workspace builds with no external crates (sandboxed environments
//! have no registry access), so every JSON artifact — `darco-run --json`,
//! the bench harnesses, trace and flight-recorder dumps — serializes
//! through this tiny writer instead of serde, and CI validates emitted
//! artifacts with the equally tiny [`parse`] reader.

/// An incremental JSON object/array writer.
///
/// The caller is responsible for well-formedness of nested raw values;
/// every `field_*`/`elem_*` method handles comma placement and string
/// escaping, and float emission normalizes non-finite values to `null`
/// (JSON has no NaN/Infinity tokens).
pub struct JsonWriter {
    buf: String,
    need_comma: bool,
}

impl JsonWriter {
    /// Starts an empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter { buf: String::new(), need_comma: false }
    }

    /// Escapes a string for inclusion in JSON output.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Renders a float as a JSON value token: non-finite values (which
    /// would otherwise print as `NaN`/`inf` — invalid JSON) become
    /// `null`.
    pub fn f64_token(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    fn sep(&mut self) {
        if self.need_comma {
            self.buf.push(',');
        }
        self.need_comma = true;
    }

    /// Opens an object (`{`), either at the top level or as a field.
    pub fn begin_obj(&mut self, key: Option<&str>) -> &mut Self {
        self.sep();
        if let Some(k) = key {
            self.buf.push_str(&format!("\"{}\":", Self::escape(k)));
        }
        self.buf.push('{');
        self.need_comma = false;
        self
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.buf.push('}');
        self.need_comma = true;
        self
    }

    /// Opens an array (`[`), either at the top level or as a field.
    pub fn begin_arr(&mut self, key: Option<&str>) -> &mut Self {
        self.sep();
        if let Some(k) = key {
            self.buf.push_str(&format!("\"{}\":", Self::escape(k)));
        }
        self.buf.push('[');
        self.need_comma = false;
        self
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.buf.push(']');
        self.need_comma = true;
        self
    }

    /// Emits a pre-rendered JSON value as an array element.
    pub fn elem_raw(&mut self, v: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(v);
        self
    }

    /// Emits a string as an array element.
    pub fn elem_str(&mut self, v: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\"", Self::escape(v)));
        self
    }

    /// Emits an integer as an array element.
    pub fn elem_num<T: std::fmt::Display>(&mut self, v: T) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("{v}"));
        self
    }

    /// Emits a numeric field (anything implementing `Display` that is
    /// already valid JSON: integers. Floats must go through
    /// [`Self::field_f64`], which normalizes non-finite values).
    pub fn field_num<T: std::fmt::Display>(&mut self, key: &str, v: T) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", Self::escape(key), v));
        self
    }

    /// Emits a float field (non-finite values become `null`).
    pub fn field_f64(&mut self, key: &str, v: f64) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", Self::escape(key), Self::f64_token(v)));
        self
    }

    /// Emits a string field.
    pub fn field_str(&mut self, key: &str, v: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":\"{}\"", Self::escape(key), Self::escape(v)));
        self
    }

    /// Emits a bool field.
    pub fn field_bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", Self::escape(key), v));
        self
    }

    /// Emits a pre-rendered JSON value under a key.
    pub fn field_raw(&mut self, key: &str, v: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", Self::escape(key), v));
        self
    }

    /// Emits `null` under a key.
    pub fn field_null(&mut self, key: &str) -> &mut Self {
        self.field_raw(key, "null")
    }

    /// Finishes and returns the accumulated JSON text.
    pub fn finish(self) -> String {
        self.buf
    }
}

impl Default for JsonWriter {
    fn default() -> Self {
        JsonWriter::new()
    }
}

// -- parsing ------------------------------------------------------------------

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, JsonError> {
        Err(JsonError { at: self.pos, msg: msg.to_string() })
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", c as char))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => self.err(&format!("unexpected byte `{}`", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected `{word}`"))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(elems));
        }
        loop {
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(elems));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex {
                                // Surrogate pairs are not needed for our
                                // artifacts; reject them explicitly.
                                Some(cp) if (0xD800..0xE000).contains(&cp) => {
                                    return self.err("surrogate escapes unsupported")
                                }
                                Some(cp) => {
                                    out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let s = &self.b[self.pos..];
                    let len = match s[0] {
                        c if c < 0x80 => 1,
                        c if c >= 0xF0 => 4,
                        c if c >= 0xE0 => 3,
                        _ => 2,
                    };
                    out.push_str(std::str::from_utf8(&s[..len]).unwrap());
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(n) => Ok(JsonValue::Num(n)),
            Err(_) => self.err("bad number"),
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
/// Returns [`JsonError`] with the byte offset of the first problem,
/// including trailing garbage after the top-level value.
pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { b: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return p.err("trailing data after value");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(JsonWriter::escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn escape_handles_every_control_char() {
        for c in 0u32..0x20 {
            let c = char::from_u32(c).unwrap();
            let escaped = JsonWriter::escape(&c.to_string());
            assert!(escaped.starts_with('\\'), "{c:?} must be escaped, got {escaped:?}");
            // The writer's output must round-trip through the parser.
            let doc = format!("\"{escaped}\"");
            assert_eq!(parse(&doc).unwrap(), JsonValue::Str(c.to_string()), "{c:?}");
        }
    }

    #[test]
    fn writer_builds_nested_objects() {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.field_num("a", 1);
        w.begin_obj(Some("b")).field_str("c", "x").end_obj();
        w.field_bool("d", true);
        w.end_obj();
        assert_eq!(w.finish(), "{\"a\":1,\"b\":{\"c\":\"x\"},\"d\":true}");
    }

    #[test]
    fn writer_builds_arrays() {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.begin_arr(Some("xs")).elem_num(1).elem_str("two").elem_raw("{\"three\":3}").end_arr();
        w.end_obj();
        let s = w.finish();
        assert_eq!(s, "{\"xs\":[1,\"two\",{\"three\":3}]}");
        parse(&s).unwrap();
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.field_f64("nan", f64::NAN);
        w.field_f64("pinf", f64::INFINITY);
        w.field_f64("ninf", f64::NEG_INFINITY);
        w.field_f64("ok", 1.5);
        w.end_obj();
        let s = w.finish();
        assert_eq!(s, "{\"nan\":null,\"pinf\":null,\"ninf\":null,\"ok\":1.5}");
        // The result must be valid JSON.
        let v = parse(&s).unwrap();
        assert_eq!(v.get("nan"), Some(&JsonValue::Null));
        assert_eq!(v.get("ok").and_then(JsonValue::as_num), Some(1.5));
    }

    #[test]
    fn nested_raw_values_keep_comma_placement() {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.field_raw("a", "[1,2]");
        w.field_raw("b", "{\"c\":null}");
        w.field_null("d");
        w.end_obj();
        let s = w.finish();
        assert_eq!(s, "{\"a\":[1,2],\"b\":{\"c\":null},\"d\":null}");
        parse(&s).unwrap();
    }

    #[test]
    fn parse_roundtrips_escapes_and_unicode_paths() {
        let v = parse("{\"k\\u0041\": \"a\\n\\u00e9\\t\"}").unwrap();
        assert_eq!(v.get("kA").and_then(JsonValue::as_str), Some("a\né\t"));
        assert!(parse("\"\\ud800\"").is_err(), "surrogates rejected");
        assert!(parse("{\"a\":1} x").is_err(), "trailing garbage rejected");
        assert!(parse("{\"a\":}").is_err());
    }

    #[test]
    fn parse_numbers_bools_nulls() {
        let v = parse("[-1.5e2, 0, true, false, null]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_num(), Some(-150.0));
        assert_eq!(a[1].as_num(), Some(0.0));
        assert_eq!(a[2], JsonValue::Bool(true));
        assert_eq!(a[4], JsonValue::Null);
    }
}
