//! The metrics registry: named counters, gauges and power-of-two-bucket
//! histograms.
//!
//! Subsystems register metrics by name (`tol.translations_bb`,
//! `timing.cycles`, ...) and the registry serializes them as one JSON
//! surface, replacing hand-maintained struct-field-to-JSON duplication.
//! Hot paths hold a [`HistoId`] handle so recording is an index, not a
//! name lookup; bulk bridges from existing stat structs use the name-based
//! setters at snapshot time.

use crate::json::{JsonValue, JsonWriter};

/// Handle to a registered histogram (index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoId(usize);

/// A power-of-two-bucket histogram of `u64` samples.
///
/// Bucket `0` counts zero samples; bucket `k >= 1` counts samples in
/// `[2^(k-1), 2^k)`. 65 buckets cover the whole `u64` range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (u64::MAX when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; 65] }
    }
}

impl Histogram {
    fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in the bucket covering `v`.
    pub fn bucket_for(&self, v: u64) -> u64 {
        self.buckets[Self::bucket_index(v)]
    }

    /// Non-empty buckets as `(lower_bound, upper_bound_exclusive, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        let mut out = Vec::new();
        for (k, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let (lo, hi) = if k == 0 {
                (0, 1)
            } else {
                (1u64 << (k - 1), (1u64 << (k - 1)).saturating_mul(2))
            };
            out.push((lo, hi, n));
        }
        out
    }

    /// All 65 raw bucket counts — the lossless view snapshot serializers
    /// need (the JSON surface prints only non-empty buckets and
    /// normalizes the empty-histogram `min`, so it cannot round-trip).
    pub fn buckets_raw(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Rebuilds a histogram from its raw parts ([`Histogram::buckets_raw`]
    /// plus the public fields) — the snapshot-restore counterpart of
    /// [`Histogram::buckets_raw`]. An empty histogram must carry
    /// `min == u64::MAX`, exactly as [`Histogram::default`] does.
    pub fn from_raw(count: u64, sum: u64, min: u64, max: u64, buckets: [u64; 65]) -> Histogram {
        Histogram { count, sum, min, max, buckets }
    }

    /// Folds another histogram into this one: counts and sums add
    /// (saturating), min/max widen, buckets add element-wise. Merging is
    /// commutative and associative, so any merge order over a set of
    /// histograms produces the same result.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    fn write_json(&self, w: &mut JsonWriter, key: &str) {
        w.begin_obj(Some(key));
        w.field_num("count", self.count);
        w.field_num("sum", self.sum);
        w.field_num("min", if self.count == 0 { 0 } else { self.min });
        w.field_num("max", self.max);
        w.field_f64("mean", self.mean());
        w.begin_arr(Some("buckets"));
        for (lo, hi, n) in self.nonzero_buckets() {
            let mut b = JsonWriter::new();
            b.begin_obj(None).field_num("lo", lo).field_num("hi", hi).field_num("n", n).end_obj();
            w.elem_raw(&b.finish());
        }
        w.end_arr();
        w.end_obj();
    }
}

/// The registry: ordered collections of named metrics.
///
/// Names are dotted paths (`tol.spec_rollbacks`). Registration order is
/// preserved in serialization, so artifacts diff cleanly run to run.
///
/// Every metric carries a **modification epoch**: a per-registry counter
/// bumped by each value-changing mutation and stamped onto the mutated
/// metric. [`Registry::delta_since`] projects the metrics stamped after a
/// given epoch into a [`RegistryDelta`] — the incremental-publication
/// primitive the fleet's live telemetry stream is built on. Epochs are
/// bookkeeping, not identity: equality compares values only, so a
/// restored snapshot still compares equal to the registry it came from.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
    epoch: u64,
    c_ep: Vec<u64>,
    g_ep: Vec<u64>,
    h_ep: Vec<u64>,
}

impl PartialEq for Registry {
    fn eq(&self, other: &Registry) -> bool {
        self.counters == other.counters
            && self.gauges == other.gauges
            && self.histograms == other.histograms
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn next_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Sets (registering if needed) a counter to an absolute value — the
    /// bulk-bridge entry point for existing stat structs. Stamps the
    /// counter's epoch only when the value actually changes, so repeated
    /// bridge snapshots of a quiet counter don't inflate deltas.
    pub fn set_counter(&mut self, name: &str, v: u64) {
        match self.counters.iter().position(|(n, _)| n == name) {
            Some(i) => {
                if self.counters[i].1 != v {
                    self.counters[i].1 = v;
                    self.c_ep[i] = self.next_epoch();
                }
            }
            None => {
                self.counters.push((name.to_string(), v));
                let e = self.next_epoch();
                self.c_ep.push(e);
            }
        }
    }

    /// Adds to (registering if needed) a counter.
    pub fn add_counter(&mut self, name: &str, n: u64) {
        match self.counters.iter().position(|(nm, _)| nm == name) {
            Some(i) => {
                if n != 0 {
                    self.counters[i].1 += n;
                    self.c_ep[i] = self.next_epoch();
                }
            }
            None => {
                self.counters.push((name.to_string(), n));
                let e = self.next_epoch();
                self.c_ep.push(e);
            }
        }
    }

    /// Sets (registering if needed) a gauge.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        match self.gauges.iter().position(|(n, _)| n == name) {
            Some(i) => {
                if self.gauges[i].1.to_bits() != v.to_bits() {
                    self.gauges[i].1 = v;
                    self.g_ep[i] = self.next_epoch();
                }
            }
            None => {
                self.gauges.push((name.to_string(), v));
                let e = self.next_epoch();
                self.g_ep.push(e);
            }
        }
    }

    /// Registers (or finds) a histogram, returning its handle for
    /// index-based recording on hot paths.
    pub fn histogram(&mut self, name: &str) -> HistoId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistoId(i);
        }
        self.histograms.push((name.to_string(), Histogram::default()));
        let e = self.next_epoch();
        self.h_ep.push(e);
        HistoId(self.histograms.len() - 1)
    }

    /// Replaces (registering if needed) a histogram's whole state — the
    /// bulk-bridge counterpart of [`Self::set_counter`] used by
    /// [`Self::sync_from`]. Stamps only on change.
    pub fn set_histogram(&mut self, name: &str, h: &Histogram) {
        match self.histograms.iter().position(|(n, _)| n == name) {
            Some(i) => {
                if self.histograms[i].1 != *h {
                    self.histograms[i].1 = h.clone();
                    self.h_ep[i] = self.next_epoch();
                }
            }
            None => {
                self.histograms.push((name.to_string(), h.clone()));
                let e = self.next_epoch();
                self.h_ep.push(e);
            }
        }
    }

    /// Records a sample into a registered histogram.
    #[inline]
    pub fn record(&mut self, id: HistoId, v: u64) {
        self.histograms[id.0].1.record(v);
        self.epoch += 1;
        self.h_ep[id.0] = self.epoch;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A registered histogram by name.
    pub fn histogram_ref(&self, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Numbers of registered (counters, gauges, histograms).
    pub fn sizes(&self) -> (usize, usize, usize) {
        (self.counters.len(), self.gauges.len(), self.histograms.len())
    }

    /// All counters in registration order — lossless snapshot view.
    pub fn counters_iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// All gauges in registration order — lossless snapshot view.
    pub fn gauges_iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// All histograms in registration order — lossless snapshot view.
    /// Combined with [`Histogram::buckets_raw`] this exposes every bit of
    /// registry state, which the JSON surface deliberately does not.
    pub fn histograms_iter(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// Builds a registry from explicit contents, preserving the given
    /// order (registration order is part of registry identity: it decides
    /// both [`HistoId`] assignment and serialization order). This is the
    /// snapshot-restore counterpart of the `*_iter` views.
    pub fn from_contents(
        counters: Vec<(String, u64)>,
        gauges: Vec<(String, f64)>,
        histograms: Vec<(String, Histogram)>,
    ) -> Registry {
        // A freshly materialized registry is all "new" relative to epoch
        // 0, so `delta_since(0)` on it is the full-dump delta.
        let (nc, ng, nh) = (counters.len(), gauges.len(), histograms.len());
        Registry {
            counters,
            gauges,
            histograms,
            epoch: 1,
            c_ep: vec![1; nc],
            g_ep: vec![1; ng],
            h_ep: vec![1; nh],
        }
    }

    /// Folds another registry into this one, matching metrics by name:
    /// counters and gauges add, histograms merge bucket-wise
    /// ([`Histogram::merge`]), and names absent on either side are
    /// carried over. After merging, all three collections are sorted by
    /// name, so the merged registry — and therefore its serialized JSON —
    /// is identical no matter in which order a set of registries is
    /// folded together. This is the aggregation primitive `darco-fleet`
    /// uses to combine per-job snapshots deterministically.
    ///
    /// Gauges *add* like counters (the only order-independent fold that
    /// loses no information); callers wanting a mean divide by the number
    /// of merged registries afterwards.
    pub fn merge(&mut self, other: &Registry) {
        for (n, v) in &other.counters {
            self.add_counter(n, *v);
        }
        for (n, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(nm, _)| nm == n) {
                Some((_, slot)) => *slot += v,
                None => self.gauges.push((n.clone(), *v)),
            }
        }
        for (n, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(nm, _)| nm == n) {
                Some((_, slot)) => slot.merge(h),
                None => self.histograms.push((n.clone(), h.clone())),
            }
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        // A merge potentially rewrites everything (and re-sorts, which
        // scrambles any per-slot stamping); re-stamp the whole registry
        // at one fresh epoch.
        let e = self.next_epoch();
        self.c_ep.clear();
        self.c_ep.resize(self.counters.len(), e);
        self.g_ep.clear();
        self.g_ep.resize(self.gauges.len(), e);
        self.h_ep.clear();
        self.h_ep.resize(self.histograms.len(), e);
    }

    /// Keeps only the metrics whose name satisfies `pred` (applied to
    /// counters, gauges and histograms alike). Existing [`HistoId`]
    /// handles are invalidated — use this only on snapshots, never on a
    /// registry still being recorded into. `darco-fleet` uses it to
    /// project away wall-clock metrics (`*_nanos`, `tol.translate_ns.*`)
    /// before building its byte-stable merged artifact.
    pub fn retain(&mut self, mut pred: impl FnMut(&str) -> bool) {
        fn retain_lockstep<T>(
            items: &mut Vec<(String, T)>,
            stamps: &mut Vec<u64>,
            pred: &mut impl FnMut(&str) -> bool,
        ) {
            // Stable compaction keeping the stamp vector in lockstep.
            let mut w = 0;
            for r in 0..items.len() {
                if pred(&items[r].0) {
                    items.swap(w, r);
                    stamps.swap(w, r);
                    w += 1;
                }
            }
            items.truncate(w);
            stamps.truncate(w);
        }
        retain_lockstep(&mut self.counters, &mut self.c_ep, &mut pred);
        retain_lockstep(&mut self.gauges, &mut self.g_ep, &mut pred);
        retain_lockstep(&mut self.histograms, &mut self.h_ep, &mut pred);
    }

    /// Serializes only the counters as one flat JSON object
    /// (`{"name":value,...}`) — used where a report embeds a counter
    /// section directly.
    pub fn counters_to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        for (n, v) in &self.counters {
            w.field_num(n, v);
        }
        w.end_obj();
        w.finish()
    }

    /// Like [`Self::counters_to_json`], but with a leading `prefix`
    /// removed from each name — for embedding a namespaced section under
    /// its own JSON key without repeating the namespace.
    pub fn counters_to_json_stripped(&self, prefix: &str) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        for (n, v) in &self.counters {
            w.field_num(n.strip_prefix(prefix).unwrap_or(n), v);
        }
        w.end_obj();
        w.finish()
    }

    /// Serializes the whole registry:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.field_raw("counters", &self.counters_to_json());
        w.begin_obj(Some("gauges"));
        for (n, v) in &self.gauges {
            w.field_f64(n, *v);
        }
        w.end_obj();
        w.begin_obj(Some("histograms"));
        for (n, h) in &self.histograms {
            h.write_json(&mut w, n);
        }
        w.end_obj();
        w.end_obj();
        w.finish()
    }

    // -- incremental publication (deltas) ---------------------------------

    /// The registry's current modification epoch. Monotonic; bumped by
    /// every value-changing mutation. `delta_since(epoch())` is always
    /// empty; `delta_since(0)` is always the full registry.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Projects every metric modified after `since` into a
    /// [`RegistryDelta`] stamped `[since, epoch()]`. Entries keep
    /// registration order, so applying the delta to the snapshot it was
    /// cut against reproduces the live registry exactly — including the
    /// order-sensitive parts of registry identity ([`HistoId`]
    /// assignment, serialization order).
    pub fn delta_since(&self, since: u64) -> RegistryDelta {
        RegistryDelta {
            from: since,
            to: self.epoch,
            counters: self
                .counters
                .iter()
                .zip(&self.c_ep)
                .filter(|(_, &e)| e > since)
                .map(|((n, v), _)| (n.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .zip(&self.g_ep)
                .filter(|(_, &e)| e > since)
                .map(|((n, v), _)| (n.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .zip(&self.h_ep)
                .filter(|(_, &e)| e > since)
                .map(|((n, h), _)| (n.clone(), h.clone()))
                .collect(),
        }
    }

    /// Applies a delta: every carried metric is set to its absolute
    /// value (registering — in delta order — when absent), and the
    /// registry's epoch advances to at least `delta.to`. The consumer-side
    /// inverse of [`Self::delta_since`]:
    /// `apply_delta(snapshot_at_e, live.delta_since(e)) == live`.
    pub fn apply_delta(&mut self, d: &RegistryDelta) {
        for (n, v) in &d.counters {
            self.set_counter(n, *v);
        }
        for (n, v) in &d.gauges {
            self.set_gauge(n, *v);
        }
        for (n, h) in &d.histograms {
            self.set_histogram(n, h);
        }
        self.epoch = self.epoch.max(d.to);
    }

    /// Copies every metric in `other` into `self` by name through the
    /// change-stamping setters. This is the publisher-mirror primitive:
    /// a long-lived registry `sync_from`'d off freshly assembled
    /// snapshots accumulates honest epoch stamps (quiet metrics don't
    /// re-stamp), so `delta_since` on the mirror yields exactly what
    /// changed between publications. Names absent from `other` are kept.
    pub fn sync_from(&mut self, other: &Registry) {
        for (n, v) in &other.counters {
            self.set_counter(n, *v);
        }
        for (n, v) in &other.gauges {
            self.set_gauge(n, *v);
        }
        for (n, h) in &other.histograms {
            self.set_histogram(n, h);
        }
    }
}

/// An incremental registry update: the metrics modified in the epoch
/// window `(from, to]`, with absolute values (idempotent to re-apply, and
/// a delta from epoch 0 doubles as a full snapshot). Produced by
/// [`Registry::delta_since`], consumed by [`Registry::apply_delta`], and
/// shipped over the fleet's live-telemetry stream via the compact JSON
/// wire form ([`RegistryDelta::to_json`] / [`RegistryDelta::parse`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistryDelta {
    /// Exclusive lower edge of the epoch window.
    pub from: u64,
    /// Inclusive upper edge (the source registry's epoch at the cut).
    pub to: u64,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl RegistryDelta {
    /// `true` when the delta carries no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Numbers of carried (counters, gauges, histograms).
    pub fn sizes(&self) -> (usize, usize, usize) {
        (self.counters.len(), self.gauges.len(), self.histograms.len())
    }

    /// Value of a carried counter, if present.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The compact wire encoding:
    ///
    /// ```json
    /// {"delta":1,"from":"0","to":"17",
    ///  "c":[["name","123"],...],
    ///  "g":[["name",1.5],...],
    ///  "h":[["name","count","sum","min","max",[[bucket,"n"],...]],...]}
    /// ```
    ///
    /// Every `u64` is a decimal **string**: the workspace JSON parser
    /// reads numbers as `f64`, which silently corrupts values above
    /// 2^53 (the empty-histogram `min` sentinel is `u64::MAX`). Bucket
    /// indices (0..=64) ride as plain numbers.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.field_num("delta", 1);
        w.field_str("from", &self.from.to_string());
        w.field_str("to", &self.to.to_string());
        w.begin_arr(Some("c"));
        for (n, v) in &self.counters {
            let mut e = JsonWriter::new();
            e.begin_arr(None).elem_str(n).elem_str(&v.to_string()).end_arr();
            w.elem_raw(&e.finish());
        }
        w.end_arr();
        w.begin_arr(Some("g"));
        for (n, v) in &self.gauges {
            let mut e = JsonWriter::new();
            e.begin_arr(None).elem_str(n).elem_raw(&JsonWriter::f64_token(*v)).end_arr();
            w.elem_raw(&e.finish());
        }
        w.end_arr();
        w.begin_arr(Some("h"));
        for (n, h) in &self.histograms {
            let mut e = JsonWriter::new();
            e.begin_arr(None)
                .elem_str(n)
                .elem_str(&h.count.to_string())
                .elem_str(&h.sum.to_string())
                .elem_str(&h.min.to_string())
                .elem_str(&h.max.to_string());
            e.begin_arr(None);
            for (k, &b) in h.buckets_raw().iter().enumerate() {
                if b != 0 {
                    let mut p = JsonWriter::new();
                    p.begin_arr(None).elem_num(k).elem_str(&b.to_string()).end_arr();
                    e.elem_raw(&p.finish());
                }
            }
            e.end_arr();
            e.end_arr();
            w.elem_raw(&e.finish());
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }

    /// Decodes the wire form produced by [`Self::to_json`].
    ///
    /// # Errors
    /// Returns a message naming the first malformed element.
    pub fn parse(s: &str) -> Result<RegistryDelta, String> {
        let v = crate::json::parse(s).map_err(|e| e.to_string())?;
        Self::from_json(&v)
    }

    /// Decodes a parsed wire-form document (see [`Self::parse`]).
    ///
    /// # Errors
    /// Returns a message naming the first malformed element.
    pub fn from_json(v: &JsonValue) -> Result<RegistryDelta, String> {
        fn u64_str(v: &JsonValue, what: &str) -> Result<u64, String> {
            v.as_str()
                .ok_or_else(|| format!("{what}: expected string-encoded u64"))?
                .parse::<u64>()
                .map_err(|e| format!("{what}: {e}"))
        }
        if v.get("delta").and_then(JsonValue::as_num) != Some(1.0) {
            return Err("not a v1 registry delta".to_string());
        }
        let from = u64_str(v.get("from").unwrap_or(&JsonValue::Null), "from")?;
        let to = u64_str(v.get("to").unwrap_or(&JsonValue::Null), "to")?;
        let mut d = RegistryDelta { from, to, ..RegistryDelta::default() };
        for e in v.get("c").and_then(JsonValue::as_arr).unwrap_or(&[]) {
            let pair = e.as_arr().filter(|p| p.len() == 2).ok_or("c: expected [name,value]")?;
            let n = pair[0].as_str().ok_or("c: bad name")?;
            d.counters.push((n.to_string(), u64_str(&pair[1], n)?));
        }
        for e in v.get("g").and_then(JsonValue::as_arr).unwrap_or(&[]) {
            let pair = e.as_arr().filter(|p| p.len() == 2).ok_or("g: expected [name,value]")?;
            let n = pair[0].as_str().ok_or("g: bad name")?;
            let val = match &pair[1] {
                JsonValue::Num(x) => *x,
                JsonValue::Null => f64::NAN, // non-finite gauges wire as null
                _ => return Err(format!("g: {n}: bad value")),
            };
            d.gauges.push((n.to_string(), val));
        }
        for e in v.get("h").and_then(JsonValue::as_arr).unwrap_or(&[]) {
            let parts = e.as_arr().ok_or("h: expected array")?;
            if parts.len() != 6 {
                return Err("h: expected [name,count,sum,min,max,buckets]".to_string());
            }
            let n = parts[0].as_str().ok_or("h: bad name")?;
            let mut buckets = [0u64; 65];
            for p in parts[5].as_arr().ok_or_else(|| format!("h: {n}: bad buckets"))? {
                let kv = p
                    .as_arr()
                    .filter(|kv| kv.len() == 2)
                    .ok_or_else(|| format!("h: {n}: bad bucket pair"))?;
                let k = kv[0]
                    .as_num()
                    .filter(|k| *k >= 0.0 && *k <= 64.0 && k.fract() == 0.0)
                    .ok_or_else(|| format!("h: {n}: bad bucket index"))?
                    as usize;
                buckets[k] = u64_str(&kv[1], n)?;
            }
            d.histograms.push((
                n.to_string(),
                Histogram::from_raw(
                    u64_str(&parts[1], n)?,
                    u64_str(&parts[2], n)?,
                    u64_str(&parts[3], n)?,
                    u64_str(&parts[4], n)?,
                    buckets,
                ),
            ));
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};
    use darco_guest::prng::{Rng, SmallRng};

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count, 10);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.bucket_for(0), 1);
        assert_eq!(h.bucket_for(1), 1);
        assert_eq!(h.bucket_for(2), 2, "2 and 3 share [2,4)");
        assert_eq!(h.bucket_for(5), 2, "4 and 7 share [4,8)");
        assert_eq!(h.bucket_for(512), 1, "1023 lands in [512,1024)");
        assert_eq!(h.bucket_for(1024), 1);
    }

    #[test]
    fn registry_counters_and_gauges_register_by_name() {
        let mut r = Registry::new();
        r.set_counter("a.x", 5);
        r.add_counter("a.x", 2);
        r.add_counter("a.y", 1);
        r.set_gauge("g", 0.5);
        assert_eq!(r.counter_value("a.x"), Some(7));
        assert_eq!(r.counter_value("a.y"), Some(1));
        assert_eq!(r.gauge_value("g"), Some(0.5));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn histogram_handles_are_stable() {
        let mut r = Registry::new();
        let a = r.histogram("h.a");
        let b = r.histogram("h.b");
        assert_ne!(a, b);
        assert_eq!(r.histogram("h.a"), a, "re-registration finds the same slot");
        r.record(a, 10);
        r.record(a, 20);
        r.record(b, 1);
        assert_eq!(r.histogram_ref("h.a").unwrap().count, 2);
        assert_eq!(r.histogram_ref("h.b").unwrap().sum, 1);
    }

    #[test]
    fn histogram_merge_matches_recording_everything_into_one() {
        let xs = [0u64, 1, 5, 9, 1024, 77];
        let ys = [3u64, 3, 800, u64::MAX];
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut whole = Histogram::default();
        for v in xs {
            a.record(v);
            whole.record(v);
        }
        for v in ys {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        // Merging an empty histogram is the identity.
        a.merge(&Histogram::default());
        assert_eq!(a, whole);
    }

    #[test]
    fn registry_merge_adds_by_name_and_carries_new_names() {
        let mut a = Registry::new();
        a.set_counter("c.shared", 5);
        a.set_counter("c.only_a", 1);
        a.set_gauge("g.shared", 0.5);
        let ha = a.histogram("h.shared");
        a.record(ha, 4);

        let mut b = Registry::new();
        b.set_counter("c.shared", 7);
        b.set_counter("c.only_b", 2);
        b.set_gauge("g.shared", 1.5);
        b.set_gauge("g.only_b", 9.0);
        let hb = b.histogram("h.shared");
        b.record(hb, 4);
        let hb2 = b.histogram("h.only_b");
        b.record(hb2, 1);

        a.merge(&b);
        assert_eq!(a.counter_value("c.shared"), Some(12));
        assert_eq!(a.counter_value("c.only_a"), Some(1));
        assert_eq!(a.counter_value("c.only_b"), Some(2));
        assert_eq!(a.gauge_value("g.shared"), Some(2.0));
        assert_eq!(a.gauge_value("g.only_b"), Some(9.0));
        assert_eq!(a.histogram_ref("h.shared").unwrap().count, 2);
        assert_eq!(a.histogram_ref("h.only_b").unwrap().sum, 1);
    }

    /// Property test backing the fleet determinism contract: folding any
    /// permutation of a set of registries (with overlapping and disjoint
    /// names, all three metric kinds) yields byte-identical JSON.
    #[test]
    fn registry_merge_is_order_independent() {
        // Seeded PRNG so the shuffle is deterministic and offline.
        let mut sm = SmallRng::seed_from_u64(0x9e3779b97f4a7c15);
        let mut rng = move || sm.next_u64();
        let snapshots: Vec<Registry> = (0..8u64)
            .map(|i| {
                let mut r = Registry::new();
                r.set_counter("job.guest_insns", 1_000 * (i + 1));
                r.set_counter(&format!("job.unique_{i}"), i);
                r.set_gauge("job.occupancy", 0.125 * i as f64);
                let h = r.histogram("job.region_size");
                for s in 0..(i + 1) {
                    r.record(h, s * 3);
                }
                if i % 2 == 0 {
                    let h2 = r.histogram("job.even_only");
                    r.record(h2, i);
                }
                r
            })
            .collect();

        let fold = |order: &[usize]| {
            let mut m = Registry::new();
            for &i in order {
                m.merge(&snapshots[i]);
            }
            m.to_json()
        };
        let baseline = fold(&[0, 1, 2, 3, 4, 5, 6, 7]);
        for _ in 0..20 {
            let mut order: Vec<usize> = (0..8).collect();
            // Fisher–Yates with the seeded generator above.
            for i in (1..order.len()).rev() {
                let j = (rng() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            assert_eq!(fold(&order), baseline, "merge order {order:?} changed the artifact");
        }
    }

    #[test]
    fn retain_projects_all_three_collections() {
        let mut r = Registry::new();
        r.set_counter("tol.translations_bb", 3);
        r.set_counter("tol.translate_nanos", 12345);
        r.set_gauge("tol.cache_occupancy", 0.5);
        let h1 = r.histogram("tol.translate_ns.bb");
        r.record(h1, 99);
        let h2 = r.histogram("tol.region_guest_insns");
        r.record(h2, 7);
        r.retain(|n| !n.ends_with("_nanos") && !n.contains(".translate_ns"));
        assert_eq!(r.counter_value("tol.translate_nanos"), None);
        assert_eq!(r.counter_value("tol.translations_bb"), Some(3));
        assert!(r.histogram_ref("tol.translate_ns.bb").is_none());
        assert!(r.histogram_ref("tol.region_guest_insns").is_some());
        assert_eq!(r.gauge_value("tol.cache_occupancy"), Some(0.5));
    }

    #[test]
    fn lossless_views_round_trip_the_whole_registry() {
        let mut r = Registry::new();
        r.set_counter("c.a", 3);
        r.set_counter("c.b", 0);
        r.set_gauge("g", -0.25);
        let h = r.histogram("h.used");
        r.record(h, 5);
        r.record(h, 0);
        r.histogram("h.empty"); // min stays u64::MAX — JSON can't express this

        let rebuilt = Registry::from_contents(
            r.counters_iter().map(|(n, v)| (n.to_string(), v)).collect(),
            r.gauges_iter().map(|(n, v)| (n.to_string(), v)).collect(),
            r.histograms_iter()
                .map(|(n, h)| {
                    (
                        n.to_string(),
                        Histogram::from_raw(h.count, h.sum, h.min, h.max, *h.buckets_raw()),
                    )
                })
                .collect(),
        );
        assert_eq!(rebuilt, r);
        assert_eq!(rebuilt.histogram_ref("h.empty").unwrap().min, u64::MAX);
        // Registration order survives, so handle assignment does too.
        let mut rb = rebuilt;
        assert_eq!(rb.histogram("h.used"), HistoId(0));
        assert_eq!(rb.histogram("h.empty"), HistoId(1));
    }

    #[test]
    fn delta_since_tracks_only_changes() {
        let mut r = Registry::new();
        r.set_counter("c.a", 1);
        r.set_counter("c.b", 2);
        r.set_gauge("g", 0.5);
        let h = r.histogram("h");
        r.record(h, 3);
        let e = r.epoch();
        assert!(r.delta_since(e).is_empty(), "no mutations -> empty delta");

        r.set_counter("c.a", 1); // unchanged value: not a mutation
        r.set_gauge("g", 0.5); // unchanged bits: not a mutation
        r.add_counter("c.b", 0); // +0: not a mutation
        assert!(r.delta_since(e).is_empty(), "no-op writes don't stamp");

        r.set_counter("c.b", 9);
        r.record(h, 4);
        r.set_counter("c.new", 7);
        let d = r.delta_since(e);
        assert_eq!(d.sizes(), (2, 0, 1));
        assert_eq!(d.counter_value("c.b"), Some(9));
        assert_eq!(d.counter_value("c.new"), Some(7));
        assert_eq!(d.counter_value("c.a"), None);
        assert_eq!(d.to, r.epoch());

        // delta from 0 is the full registry.
        let full = r.delta_since(0);
        assert_eq!(full.sizes(), (3, 1, 1));
        let mut rebuilt = Registry::new();
        rebuilt.apply_delta(&full);
        assert_eq!(rebuilt, r);
    }

    /// The tentpole round-trip property: for random counter/gauge/
    /// histogram mutations, `apply_delta(snapshot, delta) ==
    /// later_snapshot` — through the JSON wire form, with adversarial
    /// u64 values (top-bucket samples, `u64::MAX`, the empty-histogram
    /// `min` sentinel) that an f64-typed number path would corrupt.
    #[test]
    fn delta_round_trips_random_mutations() {
        let mut sm = SmallRng::seed_from_u64(0x243f6a8885a308d3);
        let mut rng = move || sm.next_u64();
        for round in 0..40 {
            let mut live = Registry::new();
            let mutate = |r: &mut Registry, rng: &mut dyn FnMut() -> u64| {
                for _ in 0..(rng() % 24) {
                    let name = format!("m.{}", rng() % 12);
                    match rng() % 5 {
                        0 => r.set_counter(&name, rng()),
                        1 => r.add_counter(&name, rng() % 1000),
                        2 => r.set_gauge(&name, (rng() % 1_000_000) as f64 / 256.0 - 100.0),
                        3 => {
                            let id = r.histogram(&name);
                            // Adversarial samples: all magnitudes incl. u64::MAX.
                            let v = rng() >> (rng() % 64);
                            r.record(id, if rng().is_multiple_of(7) { u64::MAX } else { v });
                        }
                        _ => {
                            r.histogram(&name); // register-only: empty histogram
                        }
                    }
                }
            };
            mutate(&mut live, &mut rng);
            let snapshot = live.clone();
            let cut = live.epoch();
            mutate(&mut live, &mut rng);

            let delta = live.delta_since(cut);
            let wire = delta.to_json();
            crate::json::parse(&wire).expect("wire form is valid JSON");
            let decoded = RegistryDelta::parse(&wire).expect("wire form decodes");
            assert_eq!(decoded, delta, "round {round}: wire round trip");

            let mut rebuilt = snapshot.clone();
            rebuilt.apply_delta(&decoded);
            assert_eq!(rebuilt, live, "round {round}: apply_delta mismatch");
            assert_eq!(rebuilt.to_json(), live.to_json(), "round {round}: JSON surface");
            // Order-sensitive identity survives too: handle assignment.
            let mut a = rebuilt.clone();
            let mut b = live.clone();
            for name in live.histograms_iter().map(|(n, _)| n.to_string()).collect::<Vec<_>>() {
                assert_eq!(a.histogram(&name), b.histogram(&name), "round {round}: {name}");
            }
        }
    }

    #[test]
    fn sync_from_mirror_yields_precise_deltas() {
        // The publisher pattern: a persistent mirror sync_from'd off
        // freshly assembled snapshots; only real movement is published.
        let mut mirror = Registry::new();
        let mut snap1 = Registry::new();
        snap1.set_counter("sys.guest_insns", 100);
        snap1.set_counter("tol.rollbacks", 2);
        snap1.set_gauge("tol.cache_occupancy", 0.25);
        mirror.sync_from(&snap1);
        let e = mirror.epoch();

        let mut snap2 = Registry::new();
        snap2.set_counter("sys.guest_insns", 250);
        snap2.set_counter("tol.rollbacks", 2); // quiet
        snap2.set_gauge("tol.cache_occupancy", 0.25); // quiet
        mirror.sync_from(&snap2);
        let d = mirror.delta_since(e);
        assert_eq!(d.sizes(), (1, 0, 0), "only the moving counter publishes");
        assert_eq!(d.counter_value("sys.guest_insns"), Some(250));
    }

    #[test]
    fn delta_decoder_rejects_malformed_documents() {
        assert!(RegistryDelta::parse("{}").is_err());
        assert!(RegistryDelta::parse("{\"delta\":2,\"from\":\"0\",\"to\":\"1\"}").is_err());
        assert!(RegistryDelta::parse(
            "{\"delta\":1,\"from\":\"0\",\"to\":\"1\",\"c\":[[\"x\",3]]}"
        )
        .is_err(), "numeric u64 rejected (wire requires strings)");
        assert!(RegistryDelta::parse(
            "{\"delta\":1,\"from\":\"0\",\"to\":\"1\",\"c\":[[\"x\"]]}"
        )
        .is_err());
        let ok = RegistryDelta::parse("{\"delta\":1,\"from\":\"3\",\"to\":\"9\",\"c\":[],\"g\":[],\"h\":[]}")
            .unwrap();
        assert!(ok.is_empty());
        assert_eq!((ok.from, ok.to), (3, 9));
    }

    #[test]
    fn registry_serializes_to_parseable_json() {
        let mut r = Registry::new();
        r.set_counter("c", 3);
        r.set_gauge("g", f64::NAN); // must normalize, not break the doc
        let h = r.histogram("h");
        r.record(h, 5);
        let v = parse(&r.to_json()).unwrap();
        assert_eq!(v.get("counters").and_then(|c| c.get("c")).and_then(JsonValue::as_num), Some(3.0));
        assert_eq!(v.get("gauges").and_then(|g| g.get("g")), Some(&JsonValue::Null));
        let hist = v.get("histograms").and_then(|h| h.get("h")).unwrap();
        assert_eq!(hist.get("count").and_then(JsonValue::as_num), Some(1.0));
        assert_eq!(hist.get("buckets").and_then(JsonValue::as_arr).unwrap().len(), 1);
    }
}
