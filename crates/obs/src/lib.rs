//! # darco-obs — observability for the DARCO infrastructure
//!
//! The paper sells DARCO as an *instrumented* simulation infrastructure:
//! Fig. 4's mode distributions, the §V overhead breakdowns and the §IV
//! debug toolchain all depend on seeing inside the TOL. This crate is the
//! common emission path those consumers share:
//!
//! * [`trace`] — typed trace events (mode switches, translations,
//!   promotions, chain patches, rollbacks, cache activity, verifier
//!   findings, synchronization-protocol phases) written into a
//!   fixed-capacity ring buffer with monotonic sequence numbers. The
//!   [`TraceSink`] trait mirrors the `InsnSink` monomorphization pattern:
//!   [`NullTrace`] compiles to nothing, and the [`Tracer`] enum gives
//!   call sites a concrete type with a one-branch disabled path.
//! * [`metrics`] — a registry of named counters, gauges and
//!   power-of-two-bucket histograms, replacing scattered ad-hoc stat
//!   structs with one queryable, serializable surface.
//! * [`json`] — the workspace's hand-rolled JSON writer (no external
//!   crates anywhere in the workspace) plus a minimal parser used to
//!   validate emitted artifacts in tests and CI.
//! * [`chrome`] — export of a trace-event window in Chrome
//!   `chrome://tracing` (trace-event JSON array) format.
//! * [`flight`] — the flight recorder: on divergence or panic, the last N
//!   events plus a metrics snapshot become a single JSON artifact.
//!
//! The crate is dependency-free (std only) and sits below every other
//! DARCO crate so `tol`, `timing`, `xcomp` and `ir` can all emit through
//! it.

pub mod chrome;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod trace;

pub use json::{parse, JsonError, JsonValue, JsonWriter};
pub use metrics::{Histogram, HistoId, Registry, RegistryDelta};
pub use trace::{
    ExecMode, NullTrace, RingTrace, TraceEvent, TraceEventKind, TraceSink, Tracer,
};
