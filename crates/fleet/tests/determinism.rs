//! The determinism regression: one campaign run at 1, 2 and 8 workers
//! must merge to byte-identical artifacts — the contract every figure
//! built on fleet output relies on.

use darco_fleet::{parse_campaign, run_campaign, run_campaign_cooperative, LiveHub, Pool, SchedOpts};
use std::sync::atomic::AtomicBool;

const CAMPAIGN: &str = r#"{
  "name": "determinism-regression",
  "defaults": {"scale": "1/4"},
  "jobs": [
    {"workload": "kernel:dot"},
    {"workload": "kernel:crc32", "tag": "checksum"},
    {"workload": "kernel:quicksort"},
    {"workload": "fault:panic"},
    {"workload": "kernel:search", "kind": "lint",
     "config": {"tol": {"bbm_threshold": 3, "sbm_threshold": 12, "verify": "report"}}},
    {"workload": "kernel:dot", "tag": "o1",
     "config": {"tol": {"opt_level": "O1"}}}
  ]
}"#;

#[test]
fn merged_artifact_is_byte_identical_across_worker_counts() {
    let campaign = parse_campaign(CAMPAIGN).unwrap();
    let mut artifacts = Vec::new();
    for workers in [1usize, 2, 8] {
        let pool = Pool::new(workers);
        let outcome = run_campaign(&campaign, &pool, None);
        assert_eq!(outcome.results.len(), 6);
        // Results land in id order whatever the completion order was.
        for (i, r) in outcome.results.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
        artifacts.push((workers, outcome.merged_json()));
    }
    let (_, reference) = &artifacts[0];
    for (workers, artifact) in &artifacts[1..] {
        assert_eq!(
            artifact, reference,
            "merged artifact differs between --jobs 1 and --jobs {workers}"
        );
    }
    // The artifact is well-formed and reflects the injected failure.
    let doc = darco_obs::parse(reference).unwrap();
    assert_eq!(doc.get("jobs").and_then(|v| v.as_num()), Some(6.0));
    assert_eq!(doc.get("ok").and_then(|v| v.as_num()), Some(5.0));
    assert_eq!(doc.get("failed").and_then(|v| v.as_num()), Some(1.0));
    assert!(
        !reference.contains("wall_ms") && !reference.contains("_nanos"),
        "deterministic artifact must hold no wall-clock data"
    );
}

#[test]
fn cooperative_artifact_is_byte_identical_across_worker_counts() {
    let campaign = parse_campaign(CAMPAIGN).unwrap();
    let stop = AtomicBool::new(false);
    let opts = SchedOpts { quantum: 5_000, ..SchedOpts::default() };
    let mut artifacts = Vec::new();
    for workers in [1usize, 2, 8] {
        let outcome = run_campaign_cooperative(&campaign, workers, &opts, &stop);
        assert_eq!(outcome.results.len(), 6);
        for (i, r) in outcome.results.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
        artifacts.push((workers, outcome.merged_json()));
    }
    let (_, reference) = &artifacts[0];
    for (workers, artifact) in &artifacts[1..] {
        assert_eq!(
            artifact, reference,
            "cooperative artifact differs between --jobs 1 and --jobs {workers}"
        );
    }
}

#[test]
fn live_streaming_leaves_the_artifact_byte_identical() {
    // The tentpole contract: attaching live telemetry must not perturb
    // the simulation. Artifacts with a subscribed hub at 1, 2 and 8
    // workers all equal the streaming-off reference, and the stream
    // itself carries the protocol's required events.
    let campaign = parse_campaign(CAMPAIGN).unwrap();
    let stop = AtomicBool::new(false);
    let quantum = 5_000u64;
    let reference = {
        let opts = SchedOpts { quantum, ..SchedOpts::default() };
        run_campaign_cooperative(&campaign, 1, &opts, &stop).merged_json()
    };
    for workers in [1usize, 2, 8] {
        let (hub, addr) = LiveHub::bind("127.0.0.1:0").unwrap();
        // A real TCP subscriber drains the stream concurrently.
        let collector = std::thread::spawn(move || {
            use std::io::BufRead;
            let stream = std::net::TcpStream::connect(addr).unwrap();
            let mut lines = Vec::new();
            for line in std::io::BufReader::new(stream).lines() {
                let Ok(l) = line else { break };
                lines.push(l);
            }
            lines
        });
        // Wait for the subscription so the event sequence is complete.
        while hub.subscribers() == 0 {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let opts = SchedOpts { quantum, live: Some(hub.clone()), ..SchedOpts::default() };
        let outcome = run_campaign_cooperative(&campaign, workers, &opts, &stop);
        assert_eq!(
            outcome.merged_json(),
            reference,
            "artifact with --live differs at {workers} workers"
        );
        hub.close();
        let lines = collector.join().unwrap();
        let ev_of = |l: &str| {
            darco_obs::parse(l)
                .unwrap()
                .get("ev")
                .and_then(|v| v.as_str())
                .map(String::from)
                .unwrap()
        };
        let evs: Vec<String> = lines.iter().map(|l| ev_of(l)).collect();
        for required in ["sync", "campaign", "job", "progress", "delta", "end"] {
            assert!(evs.iter().any(|e| e == required), "stream at {workers} workers misses `{required}`: {evs:?}");
        }
        // Every job reaches a terminal lifecycle event, and deltas decode.
        for (l, e) in lines.iter().zip(&evs) {
            let doc = darco_obs::parse(l).unwrap();
            if e == "job" && doc.get("state").and_then(|v| v.as_str()) == Some("done") {
                assert!(doc.get("status").and_then(|v| v.as_str()).is_some(), "{l}");
            }
            if e == "delta" {
                let d = doc.get("delta").expect("delta body");
                darco_obs::RegistryDelta::from_json(d).expect("wire-decodable delta");
            }
        }
        let done: Vec<f64> = lines
            .iter()
            .filter_map(|l| {
                let d = darco_obs::parse(l).unwrap();
                (d.get("ev").and_then(|v| v.as_str()) == Some("job")
                    && d.get("state").and_then(|v| v.as_str()) == Some("done"))
                .then(|| d.get("id").and_then(|v| v.as_num()).unwrap())
            })
            .collect();
        for id in 0..6 {
            assert!(done.contains(&(id as f64)), "job {id} never reported done at {workers} workers");
        }
    }
}

#[test]
fn checkpoint_resume_cycle_is_deterministic_across_worker_counts() {
    // Every run-kind job times out immediately (timeout 0 fires at the
    // first quantum boundary), checkpoints, and is then resumed to
    // completion — at 1, 2 and 8 workers. The resumed artifacts must all
    // equal the uninterrupted run under the same stepping schedule.
    let campaign_text = r#"{
      "name": "ckpt-workers",
      "defaults": {"scale": "1/4"},
      "jobs": [
        {"workload": "kernel:dot"},
        {"workload": "kernel:crc32"},
        {"workload": "kernel:quicksort"}
      ]
    }"#;
    let stop = AtomicBool::new(false);
    let quantum = 3_000u64;
    let plain = {
        let c = parse_campaign(campaign_text).unwrap();
        let opts = SchedOpts { quantum, ..SchedOpts::default() };
        run_campaign_cooperative(&c, 1, &opts, &stop).merged_json()
    };
    for workers in [1usize, 2, 8] {
        let dir = std::env::temp_dir().join(format!("fleet-det-ckpt-{workers}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = parse_campaign(campaign_text).unwrap();
        for j in &mut c.jobs {
            j.timeout_ms = Some(0);
        }
        let opts =
            SchedOpts { quantum, state_dir: Some(dir.clone()), ..SchedOpts::default() };
        let first = run_campaign_cooperative(&c, workers, &opts, &stop);
        for r in &first.results {
            assert_eq!(r.status, darco_fleet::JobStatus::TimedOut(0), "job {}", r.id);
            assert!(r.checkpoint_path.is_some(), "job {} left a checkpoint", r.id);
        }
        for j in &mut c.jobs {
            j.timeout_ms = None;
        }
        let resumed =
            run_campaign_cooperative(&c, workers, &SchedOpts { resume: true, ..opts }, &stop);
        assert_eq!(
            resumed.merged_json(),
            plain,
            "checkpoint/resume at {workers} workers must match the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
