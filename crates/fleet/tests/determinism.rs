//! The determinism regression: one campaign run at 1, 2 and 8 workers
//! must merge to byte-identical artifacts — the contract every figure
//! built on fleet output relies on.

use darco_fleet::{parse_campaign, run_campaign, Pool};

const CAMPAIGN: &str = r#"{
  "name": "determinism-regression",
  "defaults": {"scale": "1/4"},
  "jobs": [
    {"workload": "kernel:dot"},
    {"workload": "kernel:crc32", "tag": "checksum"},
    {"workload": "kernel:quicksort"},
    {"workload": "fault:panic"},
    {"workload": "kernel:search", "kind": "lint",
     "config": {"tol": {"bbm_threshold": 3, "sbm_threshold": 12, "verify": "report"}}},
    {"workload": "kernel:dot", "tag": "o1",
     "config": {"tol": {"opt_level": "O1"}}}
  ]
}"#;

#[test]
fn merged_artifact_is_byte_identical_across_worker_counts() {
    let campaign = parse_campaign(CAMPAIGN).unwrap();
    let mut artifacts = Vec::new();
    for workers in [1usize, 2, 8] {
        let pool = Pool::new(workers);
        let outcome = run_campaign(&campaign, &pool, None);
        assert_eq!(outcome.results.len(), 6);
        // Results land in id order whatever the completion order was.
        for (i, r) in outcome.results.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
        artifacts.push((workers, outcome.merged_json()));
    }
    let (_, reference) = &artifacts[0];
    for (workers, artifact) in &artifacts[1..] {
        assert_eq!(
            artifact, reference,
            "merged artifact differs between --jobs 1 and --jobs {workers}"
        );
    }
    // The artifact is well-formed and reflects the injected failure.
    let doc = darco_obs::parse(reference).unwrap();
    assert_eq!(doc.get("jobs").and_then(|v| v.as_num()), Some(6.0));
    assert_eq!(doc.get("ok").and_then(|v| v.as_num()), Some(5.0));
    assert_eq!(doc.get("failed").and_then(|v| v.as_num()), Some(1.0));
    assert!(
        !reference.contains("wall_ms") && !reference.contains("_nanos"),
        "deterministic artifact must hold no wall-clock data"
    );
}
