//! # darco-fleet — deterministic parallel campaign runner
//!
//! A zero-dependency (std-only) work-stealing thread pool and job
//! scheduler for the whole DARCO simulation stack. A **campaign** is a
//! JSON-specified matrix of jobs — workload × configuration × harness —
//! executed with:
//!
//! * **panic isolation** — a panicking job is caught, marked
//!   [`JobStatus::Panicked`], dumps its flight recorder, and its
//!   siblings keep running;
//! * **wall-clock timeouts** with bounded retry (only timeouts retry:
//!   deterministic failures would fail identically);
//! * **bounded-queue backpressure** — submission blocks when the pool's
//!   queue is full, so a fast producer cannot balloon memory;
//! * **graceful shutdown** — SIGINT poisons the pool; running jobs
//!   finish, queued jobs drain as [`JobStatus::Skipped`].
//!
//! The headline property is the **determinism contract**: campaign
//! results are aggregated in job-id order and projected to their
//! deterministic slice (no wall-clock values, no attempt counts, no
//! artifact paths), so the merged artifact is **bit-identical** no
//! matter how many workers ran the campaign or in what order jobs
//! finished. See `DESIGN.md` §10.

pub mod campaign;
pub mod job;
pub mod live;
pub mod pool;
pub mod runner;
pub mod sched;
pub mod server;
pub mod signal;
pub mod workload;

pub use campaign::{parse_campaign, Campaign};
pub use job::{JobKind, JobResult, JobSpec, JobStatus};
pub use live::LiveHub;
pub use pool::{Pool, TaskError};
pub use runner::{execute_job, merge_results, run_campaign, CampaignOutcome};
pub use sched::{run_campaign_cooperative, SchedOpts};
pub use server::Server;
pub use workload::{resolve, Resolved};

/// The deterministic-metric predicate: `true` for metric names that are
/// pure functions of the simulated execution, `false` for wall-clock
/// measurements that vary run to run (`*_nanos` counters, `*_ns`
/// histograms such as `tol.translate_ns.bb`). [`runner::merge_results`]
/// keeps only names passing this predicate, which is what makes the
/// merged artifact byte-stable across hosts and worker counts.
pub fn deterministic_metric(name: &str) -> bool {
    !(name.ends_with("_nanos")
        || name.ends_with(".nanos")
        || name.ends_with("_ns")
        || name.ends_with(".ns")
        || name.contains("_ns.")
        || name.contains(".ns."))
}

// Send audit: the pool moves these across threads; a field change that
// introduces an `Rc`/raw-pointer would otherwise only surface as a
// distant trait-bound error inside `Pool::map`. Fail loudly here.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<darco::SystemConfig>();
    assert_send::<darco::RunReport>();
    assert_send::<darco_guest::GuestProgram>();
    assert_send::<JobSpec>();
    assert_send::<JobResult>();
    assert_send::<darco_obs::Registry>();
};

#[cfg(test)]
mod tests {
    #[test]
    fn deterministic_metric_strips_wall_clock_names() {
        assert!(super::deterministic_metric("tol.rollbacks"));
        assert!(super::deterministic_metric("sys.guest_insns"));
        assert!(super::deterministic_metric("tol.region_guest_insns"));
        assert!(!super::deterministic_metric("tol.verify_nanos"));
        assert!(!super::deterministic_metric("tol.translate_nanos"));
        assert!(!super::deterministic_metric("jit.verify.nanos"));
        assert!(!super::deterministic_metric("tol.translate_ns.bb"));
        assert!(!super::deterministic_metric("tol.translate_ns.sb"));
    }
}
