//! The job server: JSON-lines over TCP on top of the same pool.
//!
//! Protocol — one JSON object per line, each answered by one (or, for
//! accepted jobs, two) JSON lines:
//!
//! * `{"op":"ping"}` → `{"ok":true,"op":"ping","workers":N,"queued":N,"active":N}`
//! * `{"op":"job","workload":"kernel:dot", ...}` — same shape as a
//!   campaign `jobs[]` entry. Immediately answered with
//!   `{"ok":true,"op":"accepted","id":N}` (or
//!   `{"ok":false,"op":"job","error":"busy","queued":N}` when the pool
//!   already holds `queue_cap` unstarted jobs — queue-depth
//!   backpressure: the client is told to back off instead of the server
//!   buffering unboundedly). When the job finishes, its result streams
//!   back as `{"ok":true,"op":"result","wall_ms":W,"result":{...}}` —
//!   results arrive in completion order, matched to requests by `id`.
//! * `{"op":"shutdown"}` → acknowledged, then the server stops
//!   accepting connections.
//! * `{"op":"watch"}` → `{"ok":true,"op":"watch"}`, then the
//!   connection also receives the server's live telemetry stream (see
//!   [`crate::live`]): a catch-up replay of the latest per-job
//!   lifecycle events, a `sync` marker, then live `job` events as
//!   submissions are accepted and finish. Request/response lines and
//!   telemetry lines share the connection's writer, so they never
//!   interleave mid-line.
//!
//! Each connection gets a reader loop plus a writer thread fed over a
//! channel, so slow result production never blocks request intake and
//! concurrent job completions cannot interleave bytes on the wire.

use crate::campaign::job_from_json;
use crate::live::{self, LiveHub};
use crate::pool::Pool;
use crate::runner::execute_job;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

/// The fleet job server.
pub struct Server {
    listener: TcpListener,
    pool: Arc<Pool>,
    queue_cap: usize,
    flight_dir: Option<PathBuf>,
    next_id: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    hub: Arc<LiveHub>,
}

impl Server {
    /// Binds the server. `queue_cap` is the unstarted-job depth beyond
    /// which new submissions are answered `busy`.
    ///
    /// # Errors
    /// Address binding.
    pub fn bind(
        addr: &str,
        workers: usize,
        queue_cap: usize,
        flight_dir: Option<PathBuf>,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            // The pool's own submit-blocking cap sits above the server's
            // reject threshold so `submit` never blocks the reader.
            pool: Arc::new(Pool::with_queue_cap(workers, queue_cap.max(1) * 2)),
            queue_cap: queue_cap.max(1),
            flight_dir,
            next_id: Arc::new(AtomicU64::new(0)),
            stop: Arc::new(AtomicBool::new(false)),
            hub: LiveHub::detached(),
        })
    }

    /// The bound address (real port when bound to `:0`).
    ///
    /// # Errors
    /// Socket introspection.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections until a `shutdown` op (or [`Pool::poison`]
    /// via SIGINT). In-flight jobs finish before the pool is torn down.
    pub fn run(self) {
        let addr = self.listener.local_addr().ok();
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) || self.pool.is_poisoned() {
                break;
            }
            let Ok(stream) = conn else { continue };
            // Responses are single small lines; without TCP_NODELAY each
            // one can stall ~40ms behind Nagle + delayed ACK.
            let _ = stream.set_nodelay(true);
            let pool = Arc::clone(&self.pool);
            let next_id = Arc::clone(&self.next_id);
            let stop = Arc::clone(&self.stop);
            let queue_cap = self.queue_cap;
            let flight_dir = self.flight_dir.clone();
            let hub = Arc::clone(&self.hub);
            let _ = std::thread::Builder::new()
                .name("fleet-conn".to_string())
                .spawn(move || {
                    handle_conn(stream, &pool, &next_id, &stop, queue_cap, flight_dir, addr, &hub)
                });
        }
    }

    /// A handle that makes [`Server::run`] return: sets the stop flag
    /// and nudges the accept loop with a throwaway connection.
    pub fn stopper(&self) -> impl Fn() + Send + Sync + 'static {
        let stop = Arc::clone(&self.stop);
        let addr = self.listener.local_addr().ok();
        move || {
            stop.store(true, Ordering::SeqCst);
            if let Some(a) = addr {
                let _ = TcpStream::connect(a);
            }
        }
    }
}

fn err_line(op: &str, msg: &str) -> String {
    let mut w = darco_obs::JsonWriter::new();
    w.begin_obj(None);
    w.field_bool("ok", false);
    w.field_str("op", op);
    w.field_str("error", msg);
    w.end_obj();
    w.finish()
}

#[allow(clippy::too_many_arguments)]
fn handle_conn(
    stream: TcpStream,
    pool: &Pool,
    next_id: &AtomicU64,
    stop: &AtomicBool,
    queue_cap: usize,
    flight_dir: Option<PathBuf>,
    addr: Option<SocketAddr>,
    hub: &Arc<LiveHub>,
) {
    let Ok(write_half) = stream.try_clone() else { return };
    let (tx, rx) = mpsc::channel::<String>();
    let writer = std::thread::Builder::new()
        .name("fleet-conn-writer".to_string())
        .spawn(move || {
            let mut out = write_half;
            while let Ok(line) = rx.recv() {
                if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                    break;
                }
                let _ = out.flush();
            }
        })
        .expect("spawning a connection writer");

    for line in BufReader::new(stream).lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let doc = match darco_obs::parse(line) {
            Ok(d) => d,
            Err(e) => {
                let _ = tx.send(err_line("?", &e.to_string()));
                continue;
            }
        };
        match doc.get("op").and_then(|v| v.as_str()) {
            Some("ping") => {
                let mut w = darco_obs::JsonWriter::new();
                w.begin_obj(None);
                w.field_bool("ok", true);
                w.field_str("op", "ping");
                w.field_num("workers", pool.workers());
                w.field_num("queued", pool.queued());
                w.field_num("active", pool.active());
                w.end_obj();
                let _ = tx.send(w.finish());
            }
            Some("shutdown") => {
                let mut w = darco_obs::JsonWriter::new();
                w.begin_obj(None);
                w.field_bool("ok", true);
                w.field_str("op", "shutdown");
                w.end_obj();
                let _ = tx.send(w.finish());
                stop.store(true, Ordering::SeqCst);
                // Nudge the accept loop so `Server::run` observes the flag.
                if let Some(a) = addr {
                    let _ = TcpStream::connect(a);
                }
                break;
            }
            Some("watch") => {
                let mut w = darco_obs::JsonWriter::new();
                w.begin_obj(None);
                w.field_bool("ok", true);
                w.field_str("op", "watch");
                w.end_obj();
                let _ = tx.send(w.finish());
                hub.subscribe_channel(tx.clone());
            }
            Some("job") => {
                if pool.queued() >= queue_cap {
                    let mut w = darco_obs::JsonWriter::new();
                    w.begin_obj(None);
                    w.field_bool("ok", false);
                    w.field_str("op", "job");
                    w.field_str("error", "busy");
                    w.field_num("queued", pool.queued());
                    w.end_obj();
                    let _ = tx.send(w.finish());
                    continue;
                }
                let id = next_id.fetch_add(1, Ordering::SeqCst);
                match job_from_json(&doc, id) {
                    Err(e) => {
                        let _ = tx.send(err_line("job", &e));
                    }
                    Ok(spec) => {
                        let mut w = darco_obs::JsonWriter::new();
                        w.begin_obj(None);
                        w.field_bool("ok", true);
                        w.field_str("op", "accepted");
                        w.field_num("id", id);
                        w.end_obj();
                        let _ = tx.send(w.finish());
                        hub.publish(
                            Some(&live::model_key(1, id)),
                            &live::job_event(hub.now_ms(), id, &spec.workload, "running", None, 0),
                        );
                        let tx = tx.clone();
                        let flight_dir = flight_dir.clone();
                        let hub = Arc::clone(hub);
                        pool.submit(move || {
                            let r = execute_job(&spec, flight_dir.as_deref());
                            hub.publish(
                                Some(&live::model_key(1, id)),
                                &live::job_event(
                                    hub.now_ms(),
                                    id,
                                    &r.workload,
                                    "done",
                                    Some(r.status.name()),
                                    0,
                                ),
                            );
                            let mut w = darco_obs::JsonWriter::new();
                            w.begin_obj(None);
                            w.field_bool("ok", true);
                            w.field_str("op", "result");
                            w.field_num("wall_ms", r.wall_ms);
                            w.field_raw("result", &r.deterministic_json());
                            w.end_obj();
                            // The client may be gone; a dead channel just
                            // drops the result.
                            let _ = tx.send(w.finish());
                        });
                    }
                }
            }
            Some(other) => {
                let _ = tx.send(err_line(other, "unknown op"));
            }
            None => {
                let _ = tx.send(err_line("?", "missing `op`"));
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    fn send_line(s: &mut TcpStream, line: &str) {
        s.write_all(line.as_bytes()).unwrap();
        s.write_all(b"\n").unwrap();
        s.flush().unwrap();
    }

    #[test]
    fn ping_job_and_shutdown_round_trip() {
        let server = Server::bind("127.0.0.1:0", 2, 8, None).unwrap();
        let addr = server.local_addr().unwrap();
        let h = std::thread::spawn(move || server.run());

        let mut c = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(c.try_clone().unwrap());
        let mut line = String::new();

        send_line(&mut c, r#"{"op":"ping"}"#);
        reader.read_line(&mut line).unwrap();
        let doc = darco_obs::parse(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&darco_obs::JsonValue::Bool(true)));
        assert_eq!(doc.get("workers").and_then(|v| v.as_num()), Some(2.0));

        send_line(&mut c, r#"{"op":"job","workload":"kernel:crc32","tag":"t1"}"#);
        line.clear();
        reader.read_line(&mut line).unwrap();
        let acc = darco_obs::parse(&line).unwrap();
        assert_eq!(acc.get("op").and_then(|v| v.as_str()), Some("accepted"));
        let id = acc.get("id").and_then(|v| v.as_num()).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        let res = darco_obs::parse(&line).unwrap();
        assert_eq!(res.get("op").and_then(|v| v.as_str()), Some("result"));
        let r = res.get("result").unwrap();
        assert_eq!(r.get("id").and_then(|v| v.as_num()), Some(id));
        assert_eq!(r.get("status").and_then(|v| v.as_str()), Some("ok"));
        assert_eq!(r.get("tag").and_then(|v| v.as_str()), Some("t1"));

        // Malformed jobs are rejected without killing the connection.
        send_line(&mut c, r#"{"op":"job","workload":"no-such-workload"}"#);
        line.clear();
        reader.read_line(&mut line).unwrap();
        let rej = darco_obs::parse(&line).unwrap();
        assert_eq!(rej.get("ok"), Some(&darco_obs::JsonValue::Bool(false)));

        send_line(&mut c, r#"{"op":"shutdown"}"#);
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("shutdown"));
        drop(c);
        h.join().unwrap();
    }

    #[test]
    fn full_queue_answers_busy() {
        // One worker, queue_cap 1: occupy the worker, fill the one queue
        // slot, then the next submission must bounce.
        let server = Server::bind("127.0.0.1:0", 1, 1, None).unwrap();
        let addr = server.local_addr().unwrap();
        let stopper = server.stopper();
        let h = std::thread::spawn(move || server.run());

        let mut c = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(c.try_clone().unwrap());
        let slow = r#"{"op":"job","workload":"fault:spin","timeout_ms":2000,"config":{"max_guest_insns":40000000,"tol":{"bbm_threshold":1000000000}}}"#;
        let mut line = String::new();
        // First job occupies the worker, second sits queued.
        send_line(&mut c, slow);
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("accepted"), "{line}");
        send_line(&mut c, slow);
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("accepted"), "{line}");
        // Wait until the first job is actually running so `queued` is 1.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            send_line(&mut c, r#"{"op":"job","workload":"kernel:dot"}"#);
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line.contains("busy") {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "never saw backpressure; last: {line}"
            );
            // The probe job was accepted — swallow its eventual result
            // lines later; just retry until the queue is genuinely full.
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        drop(c);
        stopper();
        h.join().unwrap();
    }
}
