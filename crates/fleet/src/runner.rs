//! Job execution and campaign aggregation.
//!
//! [`execute_job`] runs one [`JobSpec`] with the full failure protocol:
//! panics caught and turned into [`JobStatus::Panicked`] (with a flight
//! dump), wall-clock timeouts enforced by running the attempt on a
//! helper thread and bounding `recv_timeout` (the abandoned attempt
//! terminates itself through `max_guest_insns` — simulations always have
//! an instruction budget), and bounded retry *only* for timeouts: a
//! panic or validation failure is deterministic and would fail
//! identically on every retry.
//!
//! [`merge_results`] is the determinism contract's enforcement point:
//! results are ordered by job id, each contributes only its
//! deterministic slice, and the metric registries fold through
//! [`Registry::merge`] (order-independent) — so the artifact is
//! byte-identical for any worker count.

use crate::campaign::Campaign;
use crate::job::{run_payload, JobKind, JobResult, JobSpec, JobStatus};
use crate::pool::{panic_message, Pool, TaskError};
use crate::workload::{resolve, Resolved};
use darco::machine::Machine;
use darco::System;
use darco_host::sink::NullSink;
use darco_obs::{JsonWriter, Registry};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// What one attempt produced (status, projected metrics, payload).
type AttemptOut = (JobStatus, Option<Registry>, Option<String>);

fn ensure_flight(path: &str, context: &str) {
    if Path::new(path).exists() {
        return; // the System already dumped richer state
    }
    let dump = darco_obs::flight::flight_dump(context, &[], 0, &Registry::new());
    if let Err(e) = std::fs::write(path, dump) {
        eprintln!("warning: could not write flight dump to {path}: {e}");
    }
}

fn run_harness(spec: &JobSpec, program: darco_guest::GuestProgram, flight: Option<&str>) -> AttemptOut {
    let mut cfg = spec.cfg.clone();
    if cfg.flight_path.is_none() {
        cfg.flight_path = flight.map(String::from);
    }
    match System::new(cfg, program).run() {
        Ok(report) => {
            let (payload, metrics) = run_payload(&report);
            (JobStatus::Ok, Some(metrics), Some(payload))
        }
        Err(e) => (JobStatus::Failed(e.to_string()), None, None),
    }
}

fn lint_harness(spec: &JobSpec, program: darco_guest::GuestProgram) -> AttemptOut {
    let mut m = Machine::new(spec.cfg.tol.clone(), &program);
    let run = m.run_to(spec.cfg.max_guest_insns, spec.cfg.compare_flags, &mut NullSink);
    let stats = m.tol.stats;
    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_str("name", &spec.workload);
    w.field_num("regions", stats.verify_regions);
    w.field_num("findings", stats.verify_findings);
    w.begin_arr(Some("log"));
    for line in &m.tol.verify_log {
        w.elem_str(line);
    }
    w.end_arr();
    w.end_obj();
    let mut reg = Registry::new();
    stats.register_into(&mut reg, "tol");
    reg.retain(crate::deterministic_metric);
    let status = if let Err(e) = run {
        JobStatus::Failed(format!("machine error: {e}"))
    } else if stats.verify_findings > 0 {
        JobStatus::Failed(format!("{} verifier findings", stats.verify_findings))
    } else {
        JobStatus::Ok
    };
    (status, Some(reg), Some(w.finish()))
}

/// One attempt, fully caught: returns a typed status even when the
/// harness panics (and guarantees a flight dump exists for panics when a
/// flight path is configured).
fn attempt(spec: &JobSpec, flight: Option<&str>) -> AttemptOut {
    let resolved = match resolve(&spec.workload, spec.scale) {
        Ok(r) => r,
        Err(e) => return (JobStatus::Failed(e), None, None),
    };
    let caught = catch_unwind(AssertUnwindSafe(|| match resolved {
        Resolved::InjectedPanic => panic!("injected panic (workload fault:panic)"),
        Resolved::Program(p) => match spec.kind {
            JobKind::Run => run_harness(spec, p, flight),
            JobKind::Lint => lint_harness(spec, p),
        },
    }));
    match caught {
        Ok(out) => out,
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            if let Some(fp) = flight {
                ensure_flight(fp, &format!("panic: {msg}"));
            }
            (JobStatus::Panicked(msg), None, None)
        }
    }
}

/// Runs one job to a terminal [`JobResult`], applying the timeout/retry
/// protocol. `flight_dir`, when set, receives `job-<id>.flight.json` for
/// jobs that panic or diverge.
pub fn execute_job(spec: &JobSpec, flight_dir: Option<&Path>) -> JobResult {
    let flight = flight_dir.map(|d| {
        d.join(format!("job-{}.flight.json", spec.id)).to_string_lossy().into_owned()
    });
    let t0 = Instant::now();
    let max_attempts = spec.retries.saturating_add(1);
    let mut attempts = 0u32;
    let (status, metrics, payload) = loop {
        attempts += 1;
        let out = match spec.timeout_ms {
            None => attempt(spec, flight.as_deref()),
            Some(ms) => {
                // The attempt runs on a helper thread so this thread can
                // enforce the deadline. A timed-out attempt is abandoned,
                // not killed: it self-terminates through the guest
                // instruction budget, and its late send lands in a
                // disconnected channel.
                let (tx, rx) = mpsc::channel();
                let spec2 = spec.clone();
                let flight2 = flight.clone();
                let h = std::thread::Builder::new()
                    .name(format!("fleet-job-{}", spec.id))
                    .spawn(move || {
                        let _ = tx.send(attempt(&spec2, flight2.as_deref()));
                    })
                    .expect("spawning a job attempt thread");
                match rx.recv_timeout(Duration::from_millis(ms)) {
                    Ok(out) => {
                        let _ = h.join();
                        out
                    }
                    Err(_) => {
                        drop(rx); // the orphan's send becomes a no-op
                        (JobStatus::TimedOut(ms), None, None)
                    }
                }
            }
        };
        // Only timeouts retry: everything else is deterministic.
        if matches!(out.0, JobStatus::TimedOut(_)) && attempts < max_attempts {
            continue;
        }
        break out;
    };
    let flight_path = match &status {
        JobStatus::Panicked(_) | JobStatus::Failed(_) => {
            flight.filter(|p| Path::new(p).exists())
        }
        _ => None,
    };
    JobResult {
        id: spec.id,
        workload: spec.workload.clone(),
        tag: spec.tag.clone(),
        status,
        attempts,
        wall_ms: t0.elapsed().as_millis() as u64,
        metrics,
        payload,
        flight_path,
        checkpoint_path: None,
    }
}

/// A finished campaign: results in job-id order plus headline counts.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Campaign name (from the file).
    pub name: String,
    /// One result per job, in id order.
    pub results: Vec<JobResult>,
}

impl CampaignOutcome {
    /// Jobs that produced a usable result.
    pub fn ok_count(&self) -> usize {
        self.results.iter().filter(|r| r.status.is_ok()).count()
    }

    /// Jobs that did not (failed, panicked, timed out or skipped).
    pub fn failed_count(&self) -> usize {
        self.results.len() - self.ok_count()
    }

    /// The merged deterministic artifact for this outcome.
    pub fn merged_json(&self) -> String {
        merge_results(&self.name, &self.results)
    }
}

/// Runs every job of a campaign on the pool. Results come back in job-id
/// order regardless of completion order; jobs that never started because
/// the pool was poisoned (SIGINT) report [`JobStatus::Skipped`].
pub fn run_campaign(c: &Campaign, pool: &Pool, flight_dir: Option<&Path>) -> CampaignOutcome {
    let fd = flight_dir.map(Path::to_path_buf);
    let raw = pool.map(c.jobs.clone(), move |_, spec| execute_job(spec, fd.as_deref()));
    let results = raw
        .into_iter()
        .zip(&c.jobs)
        .map(|(r, spec)| match r {
            Ok(jr) => jr,
            // `execute_job` catches job panics itself; these arms cover
            // poisoning and bookkeeping panics.
            Err(TaskError::Skipped) => placeholder(spec, JobStatus::Skipped),
            Err(TaskError::Panicked(m)) => placeholder(spec, JobStatus::Panicked(m)),
        })
        .collect();
    CampaignOutcome { name: c.name.clone(), results }
}

fn placeholder(spec: &JobSpec, status: JobStatus) -> JobResult {
    JobResult {
        id: spec.id,
        workload: spec.workload.clone(),
        tag: spec.tag.clone(),
        status,
        attempts: 0,
        wall_ms: 0,
        metrics: None,
        payload: None,
        flight_path: None,
        checkpoint_path: None,
    }
}

/// Folds job results into the merged deterministic artifact: results in
/// id order (each contributing only its deterministic slice) plus one
/// [`Registry`] merged across all successful jobs, projected to the
/// deterministic metric subset. Byte-identical for any worker count or
/// completion order.
pub fn merge_results(campaign: &str, results: &[JobResult]) -> String {
    let mut order: Vec<&JobResult> = results.iter().collect();
    order.sort_by_key(|r| r.id);
    let mut merged = Registry::new();
    for r in &order {
        if let Some(m) = &r.metrics {
            merged.merge(m);
        }
    }
    merged.retain(crate::deterministic_metric);
    let ok = order.iter().filter(|r| r.status.is_ok()).count();
    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_str("campaign", campaign);
    w.field_num("jobs", order.len());
    w.field_num("ok", ok);
    w.field_num("failed", order.len() - ok);
    w.begin_arr(Some("results"));
    for r in &order {
        w.elem_raw(&r.deterministic_json());
    }
    w.end_arr();
    w.field_raw("metrics", &merged.to_json());
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco::SystemConfig;

    fn spec(id: u64, workload: &str) -> JobSpec {
        JobSpec {
            id,
            workload: workload.to_string(),
            kind: JobKind::Run,
            cfg: SystemConfig::default(),
            scale: (1, 1),
            timeout_ms: None,
            retries: 0,
            tag: None,
        }
    }

    #[test]
    fn run_job_produces_payload_and_metrics() {
        let r = execute_job(&spec(0, "kernel:crc32"), None);
        assert_eq!(r.status, JobStatus::Ok);
        assert_eq!(r.attempts, 1);
        let payload = r.payload.unwrap();
        let doc = darco_obs::parse(&payload).unwrap();
        assert!(doc.get("guest_insns").and_then(|v| v.as_num()).unwrap() > 0.0);
        // The projection stripped wall-clock metrics.
        assert!(!payload.contains("_nanos") && !payload.contains("translate_ns"), "{payload}");
        assert!(r.metrics.is_some());
    }

    #[test]
    fn lint_job_reports_regions() {
        let mut s = spec(1, "kernel:dot");
        s.kind = JobKind::Lint;
        s.cfg.tol.bbm_threshold = 3;
        s.cfg.tol.sbm_threshold = 12;
        s.cfg.tol.verify = darco_tol::VerifyMode::Report;
        s.cfg.max_guest_insns = 20_000_000;
        let r = execute_job(&s, None);
        assert_eq!(r.status, JobStatus::Ok, "{:?}", r.status);
        let doc = darco_obs::parse(&r.payload.unwrap()).unwrap();
        assert!(doc.get("regions").and_then(|v| v.as_num()).unwrap() > 0.0);
        assert_eq!(doc.get("findings").and_then(|v| v.as_num()), Some(0.0));
    }

    #[test]
    fn panicking_job_is_isolated_and_dumps_flight() {
        let dir = std::env::temp_dir().join("fleet-test-flight-panic");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let r = execute_job(&spec(7, "fault:panic"), Some(&dir));
        assert!(matches!(r.status, JobStatus::Panicked(ref m) if m.contains("injected")));
        let fp = r.flight_path.expect("panicked job records its flight dump");
        let doc = darco_obs::parse(&std::fs::read_to_string(&fp).unwrap()).unwrap();
        darco_obs::flight::validate_flight_dump(&doc).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timeout_fires_and_retries_are_bounded() {
        let mut s = spec(2, "fault:spin");
        // Pin the spinner in the interpreter so wall-time per instruction
        // is high and the timeout reliably fires first; the budget ends
        // the orphaned attempt soon after.
        s.cfg.tol.bbm_threshold = 1_000_000_000;
        s.cfg.max_guest_insns = 50_000_000;
        s.timeout_ms = Some(100);
        s.retries = 1;
        let r = execute_job(&s, None);
        assert_eq!(r.status, JobStatus::TimedOut(100));
        assert_eq!(r.attempts, 2, "one retry after the first timeout");
    }

    #[test]
    fn merge_is_order_and_worker_independent() {
        let mk = || {
            vec![
                execute_job(&spec(0, "kernel:dot"), None),
                execute_job(&spec(1, "kernel:crc32"), None),
                execute_job(&spec(2, "fault:panic"), None),
            ]
        };
        let a = merge_results("m", &mk());
        let mut shuffled = mk();
        shuffled.reverse();
        let b = merge_results("m", &shuffled);
        assert_eq!(a, b, "merger must sort by job id");
        let doc = darco_obs::parse(&a).unwrap();
        assert_eq!(doc.get("jobs").and_then(|v| v.as_num()), Some(3.0));
        assert_eq!(doc.get("failed").and_then(|v| v.as_num()), Some(1.0));
        assert!(!a.contains("wall_ms"));
    }
}
