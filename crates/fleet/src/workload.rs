//! Workload-name resolution: the campaign file speaks in names, the
//! runner needs [`GuestProgram`]s.
//!
//! Three namespaces:
//! * suite benchmark names (`403.gcc`, `ragdoll`, ...) — built from the
//!   generator profile, with the job's scale applied;
//! * `kernel:NAME` — the six hand-written kernels, sized like
//!   `darco-lint` sizes them and scaled the same way;
//! * `fault:*` — deliberate fault injection for exercising the pool's
//!   isolation machinery: `fault:panic` makes the runner panic inside
//!   the job (never reaching a simulation), `fault:spin` is a guest
//!   program that loops forever so only the wall-clock timeout (or the
//!   configured instruction budget) ends it;
//! * `fuzz:PATH` — a `darco-fuzz` reproducer or corpus entry (the
//!   fuzzprog JSON format), lowered to its guest program. Scale does
//!   not apply: a reproducer must replay exactly as minimized.

use darco_guest::program::DEFAULT_CODE_BASE;
use darco_guest::{Asm, GuestProgram, Gpr};
use darco_workloads::{benchmarks, kernels};

/// What a workload name resolves to.
pub enum Resolved {
    /// A guest program ready to run.
    Program(GuestProgram),
    /// The `fault:panic` marker: the runner must panic (under its
    /// `catch_unwind`) instead of simulating.
    InjectedPanic,
}

fn scaled(v: u32, (num, den): (u32, u32)) -> u32 {
    ((v as u64 * num as u64) / den.max(1) as u64).max(1) as u32
}

/// A guest program that never terminates: one register increment and an
/// unconditional jump back. Promotion-hostile only through configuration
/// (raise `bbm_threshold` to pin it in the interpreter); ends only via
/// `max_guest_insns` or the job timeout.
fn spin_program() -> GuestProgram {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    let top = a.here();
    a.inc(Gpr::Eax);
    a.jmp_to(top);
    a.into_program()
}

/// Resolves a workload name at a scale.
///
/// # Errors
/// Names nothing in any namespace.
pub fn resolve(name: &str, scale: (u32, u32)) -> Result<Resolved, String> {
    if let Some(k) = name.strip_prefix("kernel:") {
        let p = match k {
            "dot" => kernels::dot_product(scaled(2_000, scale)),
            "matmul" => kernels::matmul(scaled(12, scale).clamp(2, 64)),
            "search" => {
                let hay = scaled(20_000, scale).max(64);
                kernels::string_search(hay, hay * 3 / 5)
            }
            "nbody" => kernels::nbody_step(scaled(16, scale).clamp(2, 64), scaled(50, scale)),
            "quicksort" => kernels::quicksort(scaled(800, scale).max(8)),
            "crc32" => kernels::crc32(scaled(5_000, scale)),
            other => return Err(format!("unknown kernel `{other}`")),
        };
        return Ok(Resolved::Program(p));
    }
    if let Some(f) = name.strip_prefix("fault:") {
        return match f {
            "panic" => Ok(Resolved::InjectedPanic),
            "spin" => Ok(Resolved::Program(spin_program())),
            other => Err(format!("unknown fault workload `{other}`")),
        };
    }
    if let Some(path) = name.strip_prefix("fuzz:") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading fuzz reproducer `{path}`: {e}"))?;
        let prog = darco_workloads::fuzzprog::FuzzProgram::parse(&text)
            .map_err(|e| format!("parsing fuzz reproducer `{path}`: {e}"))?;
        return Ok(Resolved::Program(prog.lower()));
    }
    match benchmarks().into_iter().find(|b| b.name == name) {
        Some(b) => Ok(Resolved::Program(darco_workloads::build(
            &b.profile.scaled(scale.0, scale.1),
        ))),
        None => Err(format!(
            "unknown workload `{name}` (suite benchmark, kernel:NAME or fault:NAME)"
        )),
    }
}

/// Every schedulable non-fault workload name: the 31 suite benchmarks
/// followed by the six kernels — what the campaign matrix spelling
/// `all` expands to.
pub fn all_workloads() -> Vec<String> {
    let mut out: Vec<String> = benchmarks().into_iter().map(|b| b.name.to_string()).collect();
    for k in ["dot", "matmul", "search", "nbody", "quicksort", "crc32"] {
        out.push(format!("kernel:{k}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_namespaces_resolve() {
        assert!(matches!(resolve("403.gcc", (1, 64)), Ok(Resolved::Program(_))));
        assert!(matches!(resolve("kernel:crc32", (1, 4)), Ok(Resolved::Program(_))));
        assert!(matches!(resolve("fault:panic", (1, 1)), Ok(Resolved::InjectedPanic)));
        assert!(matches!(resolve("fault:spin", (1, 1)), Ok(Resolved::Program(_))));
        assert!(resolve("404.notfound", (1, 1)).is_err());
        assert!(resolve("kernel:fft", (1, 1)).is_err());
    }

    #[test]
    fn fuzz_namespace_resolves_reproducer_files() {
        let dir = std::env::temp_dir().join("fleet-test-fuzz-workload");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("repro.json");
        let prog = darco_workloads::fuzzprog::FuzzProgram {
            fuel: 3,
            blocks: vec![darco_workloads::fuzzprog::FuzzBlock {
                ops: vec![darco_workloads::fuzzprog::FuzzOp::Nop],
                exit: darco_workloads::fuzzprog::FuzzExit::Fall,
            }],
        };
        std::fs::write(&path, prog.to_json()).unwrap();
        let name = format!("fuzz:{}", path.display());
        let Ok(Resolved::Program(p)) = resolve(&name, (1, 1)) else {
            panic!("fuzz reproducer should resolve")
        };
        assert_eq!(p.code, prog.lower().code);
        assert!(resolve("fuzz:/nonexistent/x.json", (1, 1)).is_err());
        std::fs::write(&path, "{\"v\":1}").unwrap();
        assert!(resolve(&name, (1, 1)).is_err(), "junk must not resolve");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_workloads_lists_suite_plus_kernels() {
        let all = all_workloads();
        assert_eq!(all.len(), 31 + 6);
        assert!(all.iter().any(|w| w == "kernel:nbody"));
        for w in &all {
            assert!(resolve(w, (1, 128)).is_ok(), "{w}");
        }
    }

    #[test]
    fn spin_workload_only_ends_by_budget() {
        let Resolved::Program(p) = resolve("fault:spin", (1, 1)).unwrap() else {
            panic!("spin is a program")
        };
        let cfg = darco::SystemConfig { max_guest_insns: 20_000, ..Default::default() };
        let err = darco::System::new(cfg, p).run().unwrap_err();
        assert_eq!(err, darco::DarcoError::BudgetExceeded);
    }
}
