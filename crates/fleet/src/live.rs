//! Live telemetry streaming: JSON-lines fan-out for running campaigns.
//!
//! The merged campaign artifact is an *end-of-run* surface; a multi-hour
//! campaign is invisible while it runs. This module adds the live side:
//! the cooperative scheduler (and the job server) publish small JSON
//! events into a [`LiveHub`], which fans them out to any number of
//! subscribers — `darco-top` dashboards attached over TCP
//! (`darco-fleet run --live ADDR`) or `watch`-subscribed server
//! connections.
//!
//! ## The stream protocol
//!
//! One JSON object per line, each tagged with `ev` and a relative
//! timestamp `t_ms` (milliseconds since the hub was created):
//!
//! * `{"ev":"campaign","name":..,"jobs":N,"workers":N,"quantum":N}`
//! * `{"ev":"job","id":N,"workload":..,"state":"running"|"done",
//!   "status":..,"worker":W}` — lifecycle edges;
//! * `{"ev":"progress","id":N,"worker":W,"insns":N,"mips":X,
//!   "im":A,"bbm":B,"sbm":C,"rollbacks":R}` — periodic per-job
//!   progress (instantaneous MIPS over the publication interval, mode
//!   split and rollback count so far);
//! * `{"ev":"delta","id":N,"delta":{..}}` — the job's incremental
//!   [`darco_obs::RegistryDelta`] (wire encoding) since its previous
//!   publication;
//! * `{"ev":"end","ok":N,"failed":N}` — campaign termination;
//! * `{"ev":"sync"}` — sent to each subscriber after its catch-up
//!   replay (below); everything after it is live.
//!
//! ## Catch-up
//!
//! A dashboard attaching mid-campaign must not start from a blank
//! screen. Every published event may carry a *model key*; the hub
//! retains the latest line per key (campaign meta, each job's latest
//! lifecycle/progress/delta line, the end marker) in key order, and a
//! new subscriber receives that model as a replay prefix, then the
//! `sync` marker, then live events. Keys are chosen so the replay is
//! ordered campaign → jobs → progress → deltas → end.
//!
//! ## Non-interference
//!
//! Publishing only ever *reads* simulation state, subscribers are fed
//! through bounded queues with drop-on-full (a stalled dashboard loses
//! telemetry lines, it never stalls a worker), and wall-clock fields
//! (`t_ms`, `mips`) live only in the stream — the merged campaign
//! artifact is byte-identical with streaming on or off.

use darco_obs::{JsonWriter, RegistryDelta};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Per-subscriber queue depth. A subscriber further than this many lines
/// behind starts losing events (newest-dropped), which is the correct
/// failure mode for telemetry.
const SUB_QUEUE_CAP: usize = 1024;

enum Sub {
    /// TCP subscriber fed through a bounded channel (its writer thread
    /// owns the socket); full queue drops the event.
    Bounded(mpsc::SyncSender<String>),
    /// Server-connection subscriber sharing the connection's (unbounded)
    /// writer channel.
    Unbounded(mpsc::Sender<String>),
}

impl Sub {
    /// Delivers one line; `false` means the subscriber is gone.
    fn deliver(&self, line: &str) -> bool {
        match self {
            Sub::Bounded(tx) => !matches!(
                tx.try_send(line.to_string()),
                Err(mpsc::TrySendError::Disconnected(_))
            ),
            Sub::Unbounded(tx) => tx.send(line.to_string()).is_ok(),
        }
    }
}

struct HubInner {
    subs: Vec<Sub>,
    /// Latest retained line per model key — the catch-up replay, in
    /// `BTreeMap` key order.
    model: BTreeMap<String, String>,
}

/// The fan-out hub (see the module docs). Shared as `Arc<LiveHub>`
/// between the publisher (scheduler/server) and the subscriber intake.
pub struct LiveHub {
    inner: Mutex<HubInner>,
    t0: Instant,
    closed: AtomicBool,
}

impl std::fmt::Debug for LiveHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveHub").finish_non_exhaustive()
    }
}

impl LiveHub {
    /// A hub with no listener of its own — subscribers arrive through
    /// [`LiveHub::subscribe_channel`] (the server's `watch` op).
    pub fn detached() -> Arc<LiveHub> {
        Arc::new(LiveHub {
            inner: Mutex::new(HubInner { subs: Vec::new(), model: BTreeMap::new() }),
            t0: Instant::now(),
            closed: AtomicBool::new(false),
        })
    }

    /// Binds a TCP listener on `addr` and spawns the accept loop: every
    /// connection becomes a subscriber (catch-up replay, `sync`, then
    /// live events). Returns the hub and the bound address (real port
    /// when bound to `:0`).
    ///
    /// # Errors
    /// Address binding.
    pub fn bind(addr: &str) -> std::io::Result<(Arc<LiveHub>, SocketAddr)> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let hub = Self::detached();
        let accept_hub = Arc::clone(&hub);
        let _ = std::thread::Builder::new().name("live-accept".to_string()).spawn(move || {
            for conn in listener.incoming() {
                if accept_hub.closed.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let _ = stream.set_nodelay(true);
                let (tx, rx) = mpsc::sync_channel::<String>(SUB_QUEUE_CAP);
                let _ = std::thread::Builder::new().name("live-sub".to_string()).spawn(
                    move || {
                        let mut out = stream;
                        while let Ok(line) = rx.recv() {
                            if out.write_all(line.as_bytes()).is_err()
                                || out.write_all(b"\n").is_err()
                            {
                                break;
                            }
                            let _ = out.flush();
                        }
                    },
                );
                accept_hub.attach(Sub::Bounded(tx));
            }
        });
        Ok((hub, bound))
    }

    /// Milliseconds since the hub was created — the `t_ms` event stamp.
    pub fn now_ms(&self) -> u64 {
        self.t0.elapsed().as_millis() as u64
    }

    /// Subscribes an existing line channel (a server connection's writer
    /// queue): the catch-up replay and `sync` marker are queued
    /// immediately, live events follow.
    pub fn subscribe_channel(&self, tx: mpsc::Sender<String>) {
        self.attach(Sub::Unbounded(tx));
    }

    fn attach(&self, sub: Sub) {
        let mut inner = self.inner.lock().expect("live hub lock");
        let mut alive = true;
        for line in inner.model.values() {
            alive &= sub.deliver(line);
        }
        alive &= sub.deliver(&sync_event(self.now_ms()));
        if alive {
            inner.subs.push(sub);
        }
    }

    /// Publishes one event line to every subscriber. With a `key`, the
    /// line also replaces that key's entry in the catch-up model.
    pub fn publish(&self, key: Option<&str>, line: &str) {
        let mut inner = self.inner.lock().expect("live hub lock");
        if let Some(k) = key {
            inner.model.insert(k.to_string(), line.to_string());
        }
        inner.subs.retain(|s| s.deliver(line));
    }

    /// Stops accepting new TCP subscribers and drops the current ones
    /// (their queues drain, then their writer threads exit). Published
    /// events after close only update the model.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.inner.lock().expect("live hub lock").subs.clear();
    }

    /// Current subscriber count (tests and idle-publish elision).
    pub fn subscribers(&self) -> usize {
        self.inner.lock().expect("live hub lock").subs.len()
    }
}

/// Model key ordering the catch-up replay: campaign meta first, then
/// job lifecycle lines, progress, deltas, and the end marker last.
pub fn model_key(group: u8, id: u64) -> String {
    format!("{group}.{id:08}")
}

fn base(ev: &str, t_ms: u64) -> JsonWriter {
    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_str("ev", ev);
    w.field_num("t_ms", t_ms);
    w
}

/// `campaign` event (model key `0.*`).
pub fn campaign_event(t_ms: u64, name: &str, jobs: usize, workers: usize, quantum: u64) -> String {
    let mut w = base("campaign", t_ms);
    w.field_str("name", name);
    w.field_num("jobs", jobs);
    w.field_num("workers", workers);
    w.field_num("quantum", quantum);
    w.end_obj();
    w.finish()
}

/// `job` lifecycle event (model key `1.<id>`). `status` is the terminal
/// [`crate::JobStatus`] spelling for `state == "done"`, absent while
/// running.
pub fn job_event(
    t_ms: u64,
    id: u64,
    workload: &str,
    state: &str,
    status: Option<&str>,
    worker: usize,
) -> String {
    let mut w = base("job", t_ms);
    w.field_num("id", id);
    w.field_str("workload", workload);
    w.field_str("state", state);
    match status {
        Some(s) => w.field_str("status", s),
        None => w.field_null("status"),
    };
    w.field_num("worker", worker);
    w.end_obj();
    w.finish()
}

/// `progress` event (model key `2.<id>`).
#[allow(clippy::too_many_arguments)]
pub fn progress_event(
    t_ms: u64,
    id: u64,
    worker: usize,
    insns: u64,
    mips: f64,
    mode: (u64, u64, u64),
    rollbacks: u64,
) -> String {
    let mut w = base("progress", t_ms);
    w.field_num("id", id);
    w.field_num("worker", worker);
    w.field_num("insns", insns);
    w.field_f64("mips", mips);
    w.field_num("im", mode.0);
    w.field_num("bbm", mode.1);
    w.field_num("sbm", mode.2);
    w.field_num("rollbacks", rollbacks);
    w.end_obj();
    w.finish()
}

/// `delta` event (model key `3.<id>`): the job's incremental registry
/// delta in the [`RegistryDelta::to_json`] wire encoding.
pub fn delta_event(t_ms: u64, id: u64, delta: &RegistryDelta) -> String {
    let mut w = base("delta", t_ms);
    w.field_num("id", id);
    w.field_raw("delta", &delta.to_json());
    w.end_obj();
    w.finish()
}

/// `fuzz` event (model key `4.0`): campaign-level fuzzing stats from
/// `darco-fuzz run --live` — executions, corpus size, distinct coverage
/// edges and divergence findings so far.
pub fn fuzz_event(t_ms: u64, execs: u64, corpus: u64, edges: u64, divergences: u64) -> String {
    let mut w = base("fuzz", t_ms);
    w.field_num("execs", execs);
    w.field_num("corpus", corpus);
    w.field_num("edges", edges);
    w.field_num("divergences", divergences);
    w.end_obj();
    w.finish()
}

/// `end` event (model key `9.*`).
pub fn end_event(t_ms: u64, ok: usize, failed: usize) -> String {
    let mut w = base("end", t_ms);
    w.field_num("ok", ok);
    w.field_num("failed", failed);
    w.end_obj();
    w.finish()
}

/// `sync` marker: catch-up replay complete, live events follow.
pub fn sync_event(t_ms: u64) -> String {
    let mut w = base("sync", t_ms);
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    #[test]
    fn late_subscriber_gets_model_then_sync_then_live() {
        let (hub, addr) = LiveHub::bind("127.0.0.1:0").unwrap();
        hub.publish(Some(&model_key(0, 0)), &campaign_event(0, "c", 2, 1, 1000));
        hub.publish(Some(&model_key(1, 1)), &job_event(1, 1, "kernel:dot", "running", None, 0));
        // Stale line for job 0 is superseded in the model.
        hub.publish(Some(&model_key(1, 0)), &job_event(1, 0, "kernel:dot", "running", None, 0));
        hub.publish(
            Some(&model_key(1, 0)),
            &job_event(2, 0, "kernel:dot", "done", Some("ok"), 0),
        );

        let c = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(c);
        let mut read = || {
            let mut s = String::new();
            reader.read_line(&mut s).unwrap();
            darco_obs::parse(&s).unwrap()
        };
        // Deadline-free: the replay is queued synchronously on attach.
        let ev = |d: &darco_obs::JsonValue| d.get("ev").and_then(|v| v.as_str()).map(String::from);
        let first = read();
        assert_eq!(ev(&first).as_deref(), Some("campaign"));
        let job0 = read();
        assert_eq!(job0.get("state").and_then(|v| v.as_str()), Some("done"), "latest line wins");
        let job1 = read();
        assert_eq!(job1.get("id").and_then(|v| v.as_num()), Some(1.0));
        assert_eq!(ev(&read()).as_deref(), Some("sync"));

        // Live events arrive after the sync marker. Subscription raced
        // with nothing here, so exactly this event follows.
        while hub.subscribers() == 0 {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        hub.publish(None, &end_event(9, 2, 0));
        let end = read();
        assert_eq!(ev(&end).as_deref(), Some("end"));
        assert_eq!(end.get("ok").and_then(|v| v.as_num()), Some(2.0));
        hub.close();
    }

    #[test]
    fn events_are_valid_json_with_required_fields() {
        let lines = [
            campaign_event(5, "c\"x", 3, 2, 100_000),
            job_event(6, 7, "403.gcc", "running", None, 1),
            progress_event(7, 7, 1, 1_000_000, 32.5, (10, 20, 70), 4),
            delta_event(8, 7, &RegistryDelta::default()),
            end_event(9, 3, 0),
            sync_event(10),
        ];
        for l in &lines {
            let d = darco_obs::parse(l).unwrap();
            assert!(d.get("ev").and_then(|v| v.as_str()).is_some(), "{l}");
            assert!(d.get("t_ms").and_then(|v| v.as_num()).is_some(), "{l}");
        }
        let p = darco_obs::parse(&lines[2]).unwrap();
        for f in ["id", "worker", "insns", "mips", "im", "bbm", "sbm", "rollbacks"] {
            assert!(p.get(f).is_some(), "progress event carries {f}");
        }
    }

    #[test]
    fn model_keys_sort_campaign_jobs_progress_end() {
        let keys =
            [model_key(9, 0), model_key(2, 3), model_key(0, 0), model_key(1, 11), model_key(1, 2)];
        let mut sorted = keys.to_vec();
        sorted.sort();
        assert_eq!(
            sorted,
            vec![model_key(0, 0), model_key(1, 2), model_key(1, 11), model_key(2, 3), model_key(9, 0)]
        );
    }
}
