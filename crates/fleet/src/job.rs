//! The job model: what a campaign schedules and what a finished job
//! reports.

use darco::{RunReport, SystemConfig};
use darco_obs::{JsonWriter, Registry};

/// Which harness a job runs through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// The full system ([`darco::System::run`]): functional + optional
    /// timing/power, producing a [`RunReport`].
    Run,
    /// The static-verification harness (`darco-lint` semantics): execute
    /// with the verifier in its configured mode and report regions
    /// verified / findings.
    Lint,
}

impl JobKind {
    /// Campaign-file spelling.
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Run => "run",
            JobKind::Lint => "lint",
        }
    }

    /// Parses the campaign-file spelling.
    ///
    /// # Errors
    /// Unknown spellings name themselves.
    pub fn parse(s: &str) -> Result<JobKind, String> {
        match s {
            "run" => Ok(JobKind::Run),
            "lint" => Ok(JobKind::Lint),
            other => Err(format!("unknown job kind `{other}` (expected `run` or `lint`)")),
        }
    }
}

/// One schedulable unit: a workload under a configuration through a
/// harness. `id` is the job's position in campaign expansion order — the
/// key the deterministic merger sorts by.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Campaign-order identity (0-based).
    pub id: u64,
    /// Workload name: a suite benchmark (`403.gcc`), `kernel:NAME`, or a
    /// fault-injection workload (`fault:panic`, `fault:spin`).
    pub workload: String,
    /// Harness kind.
    pub kind: JobKind,
    /// Full system configuration (campaign defaults + per-job patch).
    pub cfg: SystemConfig,
    /// Iteration scaling `(numerator, denominator)` applied to the
    /// workload profile.
    pub scale: (u32, u32),
    /// Wall-clock bound per attempt; `None` = unbounded.
    pub timeout_ms: Option<u64>,
    /// Extra attempts after a timeout (a deterministic failure — panic or
    /// validation error — is never retried: it would fail identically).
    pub retries: u32,
    /// Client-chosen label echoed in server responses.
    pub tag: Option<String>,
}

/// Terminal state of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Completed and the harness reported success.
    Ok,
    /// The harness reported an error (validation divergence, guest
    /// fault mismatch, lint findings, budget exhaustion, ...).
    Failed(String),
    /// The job panicked; isolated by the pool, siblings unaffected.
    Panicked(String),
    /// Every attempt exceeded the wall-clock bound (value: the bound in
    /// milliseconds).
    TimedOut(u64),
    /// Never started: the pool was poisoned (SIGINT) first.
    Skipped,
}

impl JobStatus {
    /// Artifact spelling.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Failed(_) => "failed",
            JobStatus::Panicked(_) => "panicked",
            JobStatus::TimedOut(_) => "timeout",
            JobStatus::Skipped => "skipped",
        }
    }

    /// Whether the job produced a usable result.
    pub fn is_ok(&self) -> bool {
        matches!(self, JobStatus::Ok)
    }
}

/// Everything a finished job hands back to the scheduler.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Mirror of [`JobSpec::id`].
    pub id: u64,
    /// Mirror of [`JobSpec::workload`].
    pub workload: String,
    /// Mirror of [`JobSpec::tag`].
    pub tag: Option<String>,
    /// Terminal state.
    pub status: JobStatus,
    /// Attempts used (1 unless timeouts triggered retries).
    pub attempts: u32,
    /// Wall-clock of the successful (or final) attempt, milliseconds.
    /// Excluded from the merged deterministic artifact.
    pub wall_ms: u64,
    /// The job's metrics snapshot, already projected to the
    /// deterministic subset ([`crate::deterministic_metric`]).
    pub metrics: Option<Registry>,
    /// Harness-specific result payload (deterministic JSON).
    pub payload: Option<String>,
    /// Flight-recorder dump path, when the job failed and wrote one.
    pub flight_path: Option<String>,
    /// Engine checkpoint path, when the cooperative scheduler
    /// checkpointed this job (timeout or interrupt) instead of killing
    /// it; `darco-fleet run --resume` continues from it.
    pub checkpoint_path: Option<String>,
}

impl JobResult {
    /// The deterministic slice of this result: identity, status and
    /// harness payload — no wall-clock, no attempt counts. This is what
    /// the campaign merger concatenates in id order.
    pub fn deterministic_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.field_num("id", self.id);
        w.field_str("workload", &self.workload);
        if let Some(t) = &self.tag {
            w.field_str("tag", t);
        }
        w.field_str("status", self.status.name());
        match &self.status {
            JobStatus::Failed(e) | JobStatus::Panicked(e) => {
                w.field_str("error", e);
            }
            JobStatus::TimedOut(ms) => {
                w.field_num("timeout_ms", *ms);
            }
            JobStatus::Ok | JobStatus::Skipped => {}
        }
        match &self.payload {
            Some(p) => w.field_raw("result", p),
            None => w.field_null("result"),
        };
        w.end_obj();
        w.finish()
    }

    /// The scheduling view — wall-clock, attempts, flight artifacts —
    /// reported next to (never inside) the deterministic artifact.
    pub fn schedule_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.field_num("id", self.id);
        w.field_str("workload", &self.workload);
        w.field_str("status", self.status.name());
        w.field_num("attempts", self.attempts);
        w.field_num("wall_ms", self.wall_ms);
        match &self.flight_path {
            Some(p) => w.field_str("flight", p),
            None => w.field_null("flight"),
        };
        match &self.checkpoint_path {
            Some(p) => w.field_str("checkpoint", p),
            None => w.field_null("checkpoint"),
        };
        w.end_obj();
        w.finish()
    }
}

/// Builds the deterministic `run` payload from a [`RunReport`]: the
/// headline numbers every figure harness consumes plus the projected
/// metrics registry. Wall-clock metrics (`*_nanos`, `tol.translate_ns.*`)
/// are stripped so the payload is bit-stable across hosts and worker
/// counts.
pub fn run_payload(r: &RunReport) -> (String, Registry) {
    let mut metrics = r.metrics.clone();
    metrics.retain(crate::deterministic_metric);
    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_str("name", &r.name);
    w.field_num("guest_insns", r.guest_insns);
    w.begin_obj(Some("mode_insns"))
        .field_num("im", r.mode_insns.0)
        .field_num("bbm", r.mode_insns.1)
        .field_num("sbm", r.mode_insns.2)
        .end_obj();
    w.field_num("host_app_insns", r.host_app_insns);
    w.field_num("overhead_total", r.overhead.total());
    w.field_f64("overhead_fraction", r.overhead_fraction());
    w.field_f64("sbm_emulation_cost", r.sbm_emulation_cost);
    w.field_f64("sbm_fraction", r.sbm_fraction());
    w.field_num("rollbacks", r.rollbacks);
    w.field_num("syscalls", r.syscalls);
    w.field_num("output_bytes", r.output.len());
    match r.exit_status {
        Some(v) => w.field_num("exit_status", v),
        None => w.field_null("exit_status"),
    };
    match &r.guest_fault {
        Some(f) => w.field_str("guest_fault", f),
        None => w.field_null("guest_fault"),
    };
    match &r.timing {
        Some(t) => {
            w.begin_obj(Some("timing"))
                .field_num("insns", t.insns)
                .field_num("cycles", t.cycles)
                .field_f64("ipc", t.ipc())
                .end_obj();
        }
        None => {
            w.field_null("timing");
        }
    }
    w.field_raw("metrics", &metrics.to_json());
    w.end_obj();
    (w.finish(), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_names_and_kind_spellings_round_trip() {
        assert_eq!(JobKind::parse("run").unwrap(), JobKind::Run);
        assert_eq!(JobKind::parse("lint").unwrap(), JobKind::Lint);
        assert!(JobKind::parse("bench").is_err());
        assert_eq!(JobStatus::Ok.name(), "ok");
        assert_eq!(JobStatus::TimedOut(5).name(), "timeout");
        assert!(!JobStatus::Skipped.is_ok());
    }

    #[test]
    fn deterministic_json_excludes_schedule_fields() {
        let r = JobResult {
            id: 3,
            workload: "kernel:dot".into(),
            tag: None,
            status: JobStatus::Ok,
            attempts: 2,
            wall_ms: 1234,
            metrics: None,
            payload: Some("{\"x\":1}".into()),
            flight_path: None,
            checkpoint_path: None,
        };
        let d = r.deterministic_json();
        assert!(!d.contains("wall_ms") && !d.contains("attempts"), "{d}");
        assert!(d.contains("\"result\":{\"x\":1}"), "{d}");
        let s = r.schedule_json();
        assert!(s.contains("\"wall_ms\":1234") && s.contains("\"attempts\":2"), "{s}");
        darco_obs::parse(&d).unwrap();
        darco_obs::parse(&s).unwrap();
    }
}
