//! Campaign files: a JSON-specified matrix of jobs.
//!
//! ```json
//! {
//!   "name": "fig-suite",
//!   "defaults": {"scale": "1/64", "timeout_ms": 120000, "retries": 1,
//!                "kind": "run", "config": {"tol": {"opt_level": "O3"}}},
//!   "jobs": [
//!     {"workload": "kernel:crc32"},
//!     {"workload": "403.gcc", "kind": "lint", "scale": "1/512",
//!      "config": {"tol": {"verify": "report"}}}
//!   ],
//!   "matrix": {
//!     "workloads": ["all-benchmarks"],
//!     "configs": [{"tag": "spec", "config": {}},
//!                 {"tag": "nospec", "config": {"tol": {"speculation": false}}}]
//!   }
//! }
//! ```
//!
//! Expansion is deterministic: explicit `jobs` first in file order, then
//! the matrix cross-product (workloads outer, configs inner). Job ids
//! are assigned in that order and are the campaign's identity — the
//! merger sorts by them, which is how the merged artifact stays
//! bit-identical no matter how many workers raced through the queue.
//!
//! Configurations are sparse patches over [`SystemConfig::default`]
//! (see [`darco::config_json`]): `defaults.config` is applied first,
//! then the job's (or matrix cell's) own `config` on top.

use crate::job::{JobKind, JobSpec};
use darco::{config_apply_json, SystemConfig};
use darco_obs::JsonValue;

/// A parsed, fully expanded campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name (artifact header).
    pub name: String,
    /// Expanded jobs, ids already assigned.
    pub jobs: Vec<JobSpec>,
}

#[derive(Clone)]
struct Defaults {
    scale: (u32, u32),
    timeout_ms: Option<u64>,
    retries: u32,
    kind: JobKind,
    config: Option<JsonValue>,
}

impl Default for Defaults {
    fn default() -> Self {
        Defaults { scale: (1, 1), timeout_ms: None, retries: 0, kind: JobKind::Run, config: None }
    }
}

fn parse_scale(s: &str, ctx: &str) -> Result<(u32, u32), String> {
    let mut it = s.split('/');
    let num = it.next().and_then(|x| x.parse().ok());
    let den = match it.next() {
        None => Some(1),
        Some(d) => d.parse().ok(),
    };
    match (num, den, it.next()) {
        (Some(n), Some(d), None) if n > 0 && d > 0 => Ok((n, d)),
        _ => Err(format!("{ctx}: bad scale `{s}` (expected `N` or `N/D`)")),
    }
}

fn want_str<'a>(v: &'a JsonValue, ctx: &str) -> Result<&'a str, String> {
    v.as_str().ok_or_else(|| format!("{ctx}: expected a string"))
}

fn want_u64(v: &JsonValue, ctx: &str) -> Result<u64, String> {
    match v.as_num() {
        Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as u64),
        _ => Err(format!("{ctx}: expected a non-negative integer")),
    }
}

fn members<'a>(v: &'a JsonValue, ctx: &str) -> Result<&'a [(String, JsonValue)], String> {
    match v {
        JsonValue::Obj(m) => Ok(m),
        _ => Err(format!("{ctx}: expected an object")),
    }
}

fn parse_defaults(v: &JsonValue) -> Result<Defaults, String> {
    let mut d = Defaults::default();
    for (k, val) in members(v, "defaults")? {
        let ctx = format!("defaults.{k}");
        match k.as_str() {
            "scale" => d.scale = parse_scale(want_str(val, &ctx)?, &ctx)?,
            "timeout_ms" => d.timeout_ms = Some(want_u64(val, &ctx)?),
            "retries" => d.retries = want_u64(val, &ctx)? as u32,
            "kind" => d.kind = JobKind::parse(want_str(val, &ctx)?)?,
            "config" => d.config = Some(val.clone()),
            _ => return Err(format!("{ctx}: unknown key")),
        }
    }
    Ok(d)
}

/// Builds a job's config: defaults patch, then the job's own patch.
fn build_config(
    defaults: &Defaults,
    own: Option<&JsonValue>,
    ctx: &str,
) -> Result<SystemConfig, String> {
    let mut cfg = SystemConfig::default();
    if let Some(base) = &defaults.config {
        config_apply_json(&mut cfg, base).map_err(|e| format!("{ctx} (defaults): {e}"))?;
    }
    if let Some(patch) = own {
        config_apply_json(&mut cfg, patch).map_err(|e| format!("{ctx}: {e}"))?;
    }
    Ok(cfg)
}

struct JobEntry {
    workload: String,
    kind: Option<JobKind>,
    scale: Option<(u32, u32)>,
    timeout_ms: Option<Option<u64>>,
    retries: Option<u32>,
    tag: Option<String>,
    config: Option<JsonValue>,
}

fn parse_job_entry(v: &JsonValue, ctx: &str) -> Result<JobEntry, String> {
    let mut e = JobEntry {
        workload: String::new(),
        kind: None,
        scale: None,
        timeout_ms: None,
        retries: None,
        tag: None,
        config: None,
    };
    for (k, val) in members(v, ctx)? {
        let ctx = format!("{ctx}.{k}");
        match k.as_str() {
            "workload" => e.workload = want_str(val, &ctx)?.to_string(),
            "kind" => e.kind = Some(JobKind::parse(want_str(val, &ctx)?)?),
            "scale" => e.scale = Some(parse_scale(want_str(val, &ctx)?, &ctx)?),
            "timeout_ms" => {
                e.timeout_ms = Some(if *val == JsonValue::Null {
                    None
                } else {
                    Some(want_u64(val, &ctx)?)
                })
            }
            "retries" => e.retries = Some(want_u64(val, &ctx)? as u32),
            "tag" => e.tag = Some(want_str(val, &ctx)?.to_string()),
            "config" => e.config = Some(val.clone()),
            _ => return Err(format!("{ctx}: unknown key")),
        }
    }
    if e.workload.is_empty() {
        return Err(format!("{ctx}: job needs a `workload`"));
    }
    Ok(e)
}

fn expand_workload_names(names: &[JsonValue], ctx: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for (i, v) in names.iter().enumerate() {
        match want_str(v, &format!("{ctx}[{i}]"))? {
            "all" => out.extend(crate::workload::all_workloads()),
            "all-benchmarks" => out.extend(
                darco_workloads::benchmarks().into_iter().map(|b| b.name.to_string()),
            ),
            "all-kernels" => out.extend(
                ["dot", "matmul", "search", "nbody", "quicksort", "crc32"]
                    .iter()
                    .map(|k| format!("kernel:{k}")),
            ),
            name => out.push(name.to_string()),
        }
    }
    Ok(out)
}

/// Parses a single job object (the `serve` wire format: same shape as a
/// campaign `jobs[]` entry) into a [`JobSpec`] with the given id.
/// Defaults when omitted: kind `run`, scale `1/1`, no timeout, no
/// retries.
///
/// # Errors
/// Unknown keys/workloads/kinds, with the offending path.
pub fn job_from_json(v: &JsonValue, id: u64) -> Result<JobSpec, String> {
    let defaults = Defaults::default();
    // The wire envelope carries `"op":"job"`; drop it before treating the
    // rest as a campaign job entry.
    let stripped = match v {
        JsonValue::Obj(m) => {
            JsonValue::Obj(m.iter().filter(|(k, _)| k != "op").cloned().collect())
        }
        other => other.clone(),
    };
    let e = parse_job_entry(&stripped, "job")?;
    let scale = e.scale.unwrap_or(defaults.scale);
    crate::workload::resolve(&e.workload, scale).map(|_| ()).map_err(|err| format!("job: {err}"))?;
    Ok(JobSpec {
        id,
        workload: e.workload,
        kind: e.kind.unwrap_or(defaults.kind),
        cfg: build_config(&defaults, e.config.as_ref(), "job")?,
        scale,
        timeout_ms: e.timeout_ms.unwrap_or(defaults.timeout_ms),
        retries: e.retries.unwrap_or(defaults.retries),
        tag: e.tag,
    })
}

/// Parses and expands a campaign document.
///
/// # Errors
/// Syntax errors, unknown keys, bad scales/kinds/configs — all with the
/// offending key path.
pub fn parse_campaign(text: &str) -> Result<Campaign, String> {
    let doc = darco_obs::parse(text).map_err(|e| e.to_string())?;
    let mut name = "campaign".to_string();
    let mut defaults = Defaults::default();
    let mut entries: Vec<(JobEntry, String)> = Vec::new();
    let mut matrix: Option<&JsonValue> = None;
    for (k, v) in members(&doc, "campaign")? {
        match k.as_str() {
            "name" => name = want_str(v, "campaign.name")?.to_string(),
            "defaults" => defaults = parse_defaults(v)?,
            "jobs" => {
                let arr = v.as_arr().ok_or("campaign.jobs: expected an array")?;
                for (i, j) in arr.iter().enumerate() {
                    let ctx = format!("jobs[{i}]");
                    entries.push((parse_job_entry(j, &ctx)?, ctx));
                }
            }
            "matrix" => matrix = Some(v),
            _ => return Err(format!("campaign.{k}: unknown key")),
        }
    }
    if let Some(m) = matrix {
        let mut workloads = Vec::new();
        let mut cells: Vec<(Option<String>, Option<JsonValue>)> = Vec::new();
        let mut kind = None;
        for (k, v) in members(m, "matrix")? {
            match k.as_str() {
                "workloads" => {
                    let arr = v.as_arr().ok_or("matrix.workloads: expected an array")?;
                    workloads = expand_workload_names(arr, "matrix.workloads")?;
                }
                "kind" => kind = Some(JobKind::parse(want_str(v, "matrix.kind")?)?),
                "configs" => {
                    let arr = v.as_arr().ok_or("matrix.configs: expected an array")?;
                    for (i, c) in arr.iter().enumerate() {
                        let ctx = format!("matrix.configs[{i}]");
                        let mut tag = None;
                        let mut cfg = None;
                        for (ck, cv) in members(c, &ctx)? {
                            match ck.as_str() {
                                "tag" => tag = Some(want_str(cv, &ctx)?.to_string()),
                                "config" => cfg = Some(cv.clone()),
                                _ => return Err(format!("{ctx}.{ck}: unknown key")),
                            }
                        }
                        cells.push((tag, cfg));
                    }
                }
                _ => return Err(format!("matrix.{k}: unknown key")),
            }
        }
        if workloads.is_empty() {
            return Err("matrix: needs non-empty `workloads`".to_string());
        }
        if cells.is_empty() {
            cells.push((None, None));
        }
        for w in &workloads {
            for (tag, cfg) in &cells {
                entries.push((
                    JobEntry {
                        workload: w.clone(),
                        kind,
                        scale: None,
                        timeout_ms: None,
                        retries: None,
                        tag: tag.clone(),
                        config: cfg.clone(),
                    },
                    format!("matrix[{w}{}]", tag.as_deref().map(|t| format!("/{t}")).unwrap_or_default()),
                ));
            }
        }
    }
    if entries.is_empty() {
        return Err("campaign has no jobs (empty `jobs` and no `matrix`)".to_string());
    }
    let mut jobs = Vec::with_capacity(entries.len());
    for (id, (e, ctx)) in entries.into_iter().enumerate() {
        // Validate the workload name up front so a typo fails at parse
        // time, not mid-campaign on worker 7.
        let scale = e.scale.unwrap_or(defaults.scale);
        crate::workload::resolve(&e.workload, scale).map(|_| ()).map_err(|err| format!("{ctx}: {err}"))?;
        jobs.push(JobSpec {
            id: id as u64,
            workload: e.workload,
            kind: e.kind.unwrap_or(defaults.kind),
            cfg: build_config(&defaults, e.config.as_ref(), &ctx)?,
            scale,
            timeout_ms: e.timeout_ms.unwrap_or(defaults.timeout_ms),
            retries: e.retries.unwrap_or(defaults.retries),
            tag: e.tag,
        });
    }
    Ok(Campaign { name, jobs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_jobs_inherit_and_override_defaults() {
        let c = parse_campaign(
            r#"{
              "name": "t",
              "defaults": {"scale": "1/64", "timeout_ms": 5000, "retries": 2,
                           "config": {"tol": {"opt_level": "O1"}}},
              "jobs": [
                {"workload": "kernel:dot"},
                {"workload": "403.gcc", "kind": "lint", "scale": "1/512",
                 "timeout_ms": null, "retries": 0,
                 "config": {"tol": {"opt_level": "O3"}}}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(c.name, "t");
        assert_eq!(c.jobs.len(), 2);
        let a = &c.jobs[0];
        assert_eq!((a.id, a.kind, a.scale), (0, JobKind::Run, (1, 64)));
        assert_eq!(a.timeout_ms, Some(5000));
        assert_eq!(a.retries, 2);
        assert_eq!(a.cfg.tol.opt_level, darco_ir::OptLevel::O1);
        let b = &c.jobs[1];
        assert_eq!((b.id, b.kind, b.scale), (1, JobKind::Lint, (1, 512)));
        assert_eq!(b.timeout_ms, None, "explicit null clears the default");
        assert_eq!(b.retries, 0);
        assert_eq!(b.cfg.tol.opt_level, darco_ir::OptLevel::O3);
    }

    #[test]
    fn matrix_expands_workload_major_with_stable_ids() {
        let c = parse_campaign(
            r#"{
              "matrix": {
                "workloads": ["kernel:dot", "kernel:crc32"],
                "configs": [{"tag": "spec", "config": {}},
                            {"tag": "nospec", "config": {"tol": {"speculation": false}}}]
              }
            }"#,
        )
        .unwrap();
        let rows: Vec<(u64, &str, Option<&str>, bool)> = c
            .jobs
            .iter()
            .map(|j| (j.id, j.workload.as_str(), j.tag.as_deref(), j.cfg.tol.speculation))
            .collect();
        assert_eq!(
            rows,
            vec![
                (0, "kernel:dot", Some("spec"), true),
                (1, "kernel:dot", Some("nospec"), false),
                (2, "kernel:crc32", Some("spec"), true),
                (3, "kernel:crc32", Some("nospec"), false),
            ]
        );
    }

    #[test]
    fn bad_campaigns_fail_with_paths() {
        assert!(parse_campaign("{}").unwrap_err().contains("no jobs"));
        let e = parse_campaign(r#"{"jobs":[{"workload":"nope"}]}"#).unwrap_err();
        assert!(e.contains("jobs[0]") && e.contains("unknown workload"), "{e}");
        let e = parse_campaign(r#"{"jobs":[{"workload":"kernel:dot","scale":"0/3"}]}"#)
            .unwrap_err();
        assert!(e.contains("bad scale"), "{e}");
        let e = parse_campaign(r#"{"jobs":[{"workload":"kernel:dot","knid":"run"}]}"#)
            .unwrap_err();
        assert!(e.contains("knid"), "{e}");
    }
}
