//! The work-stealing thread pool.
//!
//! Layout: one bounded logical queue (for backpressure accounting) whose
//! tasks physically live in per-worker deques. [`Pool::submit`] deals
//! tasks round-robin onto the deques and blocks when the pool already
//! holds `queue_cap` unstarted tasks — a full campaign submitted faster
//! than it drains stalls the submitter, not memory. A worker pops the
//! *back* of its own deque (LIFO — warm caches for freshly dealt work)
//! and, finding it empty, steals from the *front* of a sibling's (FIFO —
//! the oldest, biggest-remaining-work item), the classic Chase–Lev
//! discipline implemented here with plain `Mutex<VecDeque>` because jobs
//! are whole simulations (milliseconds to minutes) and queue operations
//! are nanoseconds — contention is unmeasurable at this granularity.
//!
//! Every task runs under `catch_unwind`: a panicking job can never take
//! a worker thread (and with it the whole campaign) down. Poisoning the
//! pool ([`Pool::poison`], wired to SIGINT by the `darco-fleet` binary)
//! makes [`Pool::map`] mark not-yet-started items as skipped while
//! letting in-flight jobs finish — graceful shutdown, not abandonment.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// One result slot of a [`Pool::map`] call, filled by whichever worker
/// ran the item.
type MapSlot<R> = Mutex<Option<Result<R, TaskError>>>;

/// Why a [`Pool::map`] item produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The closure panicked; the payload rendered as a string.
    Panicked(String),
    /// The pool was poisoned before the item started.
    Skipped,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Panicked(m) => write!(f, "job panicked: {m}"),
            TaskError::Skipped => write!(f, "job skipped: pool poisoned"),
        }
    }
}

/// Renders a panic payload the way the flight recorder does.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

struct QueueState {
    /// Tasks dealt but not yet claimed by a worker.
    queued: usize,
    /// No further submissions; workers exit once drained.
    closed: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Workers wait here for tasks.
    work: Condvar,
    /// Submitters wait here for queue room (backpressure).
    space: Condvar,
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Round-robin deal cursor.
    next: AtomicUsize,
    /// Tasks currently executing (drain accounting).
    active: AtomicUsize,
    poison: AtomicBool,
    queue_cap: usize,
}

/// The work-stealing pool. Dropping it closes the queue and joins every
/// worker (draining all queued tasks first).
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// A pool with `workers` threads and a queue bound of
    /// `4 * workers` unstarted tasks.
    pub fn new(workers: usize) -> Pool {
        Pool::with_queue_cap(workers, workers.max(1) * 4)
    }

    /// A pool with an explicit backpressure bound (minimum 1).
    pub fn with_queue_cap(workers: usize, queue_cap: usize) -> Pool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { queued: 0, closed: false }),
            work: Condvar::new(),
            space: Condvar::new(),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            next: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            poison: AtomicBool::new(false),
            queue_cap: queue_cap.max(1),
        });
        let handles = (0..workers)
            .map(|me| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fleet-worker-{me}"))
                    .spawn(move || worker_loop(me, &sh))
                    .expect("spawning a fleet worker")
            })
            .collect();
        Pool { shared, workers: handles }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.deques.len()
    }

    /// Unstarted tasks currently held (the queue-depth a server reports
    /// for backpressure decisions).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().unwrap().queued
    }

    /// Tasks currently executing on workers.
    pub fn active(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Marks the pool poisoned: in-flight tasks finish, queued tasks
    /// still run but [`Pool::map`] items that have not started resolve to
    /// [`TaskError::Skipped`] (task closures consult
    /// [`Pool::is_poisoned`] through their captured handle).
    pub fn poison(&self) {
        self.shared.poison.store(true, Ordering::SeqCst);
    }

    /// Whether [`Pool::poison`] was called (or a SIGINT handler did).
    pub fn is_poisoned(&self) -> bool {
        self.shared.poison.load(Ordering::SeqCst)
    }

    /// A cloneable handle that poisons the pool from another thread —
    /// what the `darco-fleet` binary hands its SIGINT watcher.
    pub fn poisoner(&self) -> impl Fn() + Send + Sync + 'static {
        let sh = Arc::clone(&self.shared);
        move || sh.poison.store(true, Ordering::SeqCst)
    }

    /// Submits one task, blocking while the queue is at capacity.
    pub fn submit(&self, f: impl FnOnce() + Send + 'static) {
        let sh = &self.shared;
        let mut st = sh.state.lock().unwrap();
        while st.queued >= sh.queue_cap && !st.closed {
            st = sh.space.wait(st).unwrap();
        }
        assert!(!st.closed, "submit on a closed pool");
        // Deal the task into a deque *before* publishing the count so a
        // woken worker always finds something to claim.
        let slot = sh.next.fetch_add(1, Ordering::Relaxed) % sh.deques.len();
        sh.deques[slot].lock().unwrap().push_back(Box::new(f));
        st.queued += 1;
        drop(st);
        sh.work.notify_one();
    }

    /// Runs `f` over every item on the pool, returning results in
    /// **input order** regardless of which worker finished what when —
    /// the primitive behind deterministic campaign aggregation. Blocks
    /// until every item has either run, panicked ([`TaskError::Panicked`])
    /// or been skipped because the pool was poisoned.
    pub fn map<T, R>(
        &self,
        items: Vec<T>,
        f: impl Fn(usize, &T) -> R + Send + Sync + 'static,
    ) -> Vec<Result<R, TaskError>>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
    {
        let n = items.len();
        let items = Arc::new(items);
        let f = Arc::new(f);
        let results: Arc<Vec<MapSlot<R>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let remaining = Arc::new((Mutex::new(n), Condvar::new()));
        for i in 0..n {
            let items = Arc::clone(&items);
            let f = Arc::clone(&f);
            let results = Arc::clone(&results);
            let remaining = Arc::clone(&remaining);
            let poison = Arc::clone(&self.shared);
            self.submit(move || {
                let out = if poison.poison.load(Ordering::SeqCst) {
                    Err(TaskError::Skipped)
                } else {
                    catch_unwind(AssertUnwindSafe(|| f(i, &items[i])))
                        .map_err(|p| TaskError::Panicked(panic_message(p.as_ref())))
                };
                *results[i].lock().unwrap() = Some(out);
                let (lock, cv) = &*remaining;
                let mut left = lock.lock().unwrap();
                *left -= 1;
                if *left == 0 {
                    cv.notify_all();
                }
            });
        }
        let (lock, cv) = &*remaining;
        let mut left = lock.lock().unwrap();
        while *left > 0 {
            left = cv.wait(left).unwrap();
        }
        drop(left);
        // Take results through the Arc: the final task may still hold its
        // clone for a few instructions after notifying, so `try_unwrap`
        // here would be a race.
        results
            .iter()
            .map(|slot| slot.lock().unwrap().take().expect("every map slot is filled"))
            .collect()
    }

    /// Closes the queue and joins every worker after the queue drains.
    pub fn join(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.closed = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop(me: usize, sh: &Shared) {
    loop {
        {
            let mut st = sh.state.lock().unwrap();
            loop {
                if st.queued > 0 {
                    st.queued -= 1;
                    break;
                }
                if st.closed {
                    return;
                }
                st = sh.work.wait(st).unwrap();
            }
        }
        sh.space.notify_one();
        // We decremented `queued` under the lock, so at least one task is
        // physically present across the deques; scan until we claim one
        // (own back first, then steal siblings' fronts).
        let task = 'claim: loop {
            if let Some(t) = sh.deques[me].lock().unwrap().pop_back() {
                break 'claim t;
            }
            for j in 1..sh.deques.len() {
                let victim = (me + j) % sh.deques.len();
                if let Some(t) = sh.deques[victim].lock().unwrap().pop_front() {
                    break 'claim t;
                }
            }
            std::thread::yield_now();
        };
        sh.active.fetch_add(1, Ordering::SeqCst);
        // Tasks wrap their own payloads in catch_unwind to produce typed
        // failures; this outer guard is the last line of defense so an
        // unexpected panic in the bookkeeping itself cannot kill the
        // worker.
        let _ = catch_unwind(AssertUnwindSafe(task));
        sh.active.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_input_order_across_workers() {
        let pool = Pool::new(4);
        let out = pool.map((0..100u64).collect(), |_, &x| x * 3);
        let got: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..100u64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn panics_are_isolated_per_item() {
        let pool = Pool::new(3);
        let out = pool.map((0..10u32).collect(), |_, &x| {
            if x % 4 == 2 {
                panic!("boom at {x}");
            }
            x + 1
        });
        for (i, r) in out.iter().enumerate() {
            if i % 4 == 2 {
                assert_eq!(*r, Err(TaskError::Panicked(format!("boom at {i}"))));
            } else {
                assert_eq!(*r, Ok(i as u32 + 1));
            }
        }
        // The pool survives panicking jobs and keeps working.
        let again = pool.map(vec![7u32], |_, &x| x);
        assert_eq!(again[0], Ok(7));
    }

    #[test]
    fn backpressure_bounds_the_queue() {
        let pool = Pool::with_queue_cap(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Block the lone worker.
        let g = Arc::clone(&gate);
        pool.submit(move || {
            let (l, cv) = &*g;
            let mut open = l.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        // Give the worker a moment to claim the blocker, then fill the
        // queue to its bound.
        while pool.active() == 0 {
            std::thread::yield_now();
        }
        pool.submit(|| {});
        pool.submit(|| {});
        assert_eq!(pool.queued(), 2);
        // A further submit must block until the worker unblocks.
        let t0 = std::time::Instant::now();
        let g = Arc::clone(&gate);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(60));
            let (l, cv) = &*g;
            *l.lock().unwrap() = true;
            cv.notify_all();
        });
        pool.submit(|| {});
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(40),
            "submit returned before the queue had room"
        );
        pool.join();
    }

    #[test]
    fn poisoned_pool_skips_unstarted_map_items() {
        let pool = Pool::new(2);
        pool.poison();
        let out = pool.map(vec![1u32, 2, 3], |_, &x| x);
        assert!(out.iter().all(|r| *r == Err(TaskError::Skipped)));
    }

    #[test]
    fn work_is_actually_shared_between_workers() {
        let pool = Pool::new(4);
        let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
        let s = Arc::clone(&seen);
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        let out = pool.map((0..64u32).collect(), move |_, _| {
            c.fetch_add(1, Ordering::SeqCst);
            s.lock().unwrap().insert(std::thread::current().name().map(String::from));
            // Enough work that several workers get a slice.
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert_eq!(out.len(), 64);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        // On a single-CPU host the OS may still schedule everything onto
        // whichever worker wakes first, so only assert the pool ran all
        // items; with real parallelism multiple worker names show up.
        assert!(!seen.lock().unwrap().is_empty());
    }
}
