//! `darco-lint` — run the static IR/DDG/host-code verifier over guest
//! workloads and report every finding with its provenance.
//!
//! The machine executes normally with aggressive promotion thresholds (so
//! as much code as possible reaches the BBM and SBM pipelines) and the
//! verifier in `Report` mode: a finding does not abort the run, it is
//! collected with its pipeline stage and guest PC and printed at the end.
//!
//! ```text
//! darco-lint all --scale 1/512
//! darco-lint 403.gcc kernel:crc32 --opt O2
//! darco-lint all --scale 1/512 --trace=lint-trace.json --jobs 4
//! ```
//!
//! Workloads lint independently, so the suite runs on the `darco-fleet`
//! work-stealing pool (`--jobs N`, default: available parallelism).
//! Output order and content are identical for any worker count: each
//! workload's report is rendered into a buffer and printed in target
//! order after the pool drains.
//!
//! With `--trace`, every workload's run is recorded through the trace
//! layer and one Chrome trace-event JSON array is written with a process
//! per workload — the machine-readable companion to the text findings
//! (each verifier finding is a `verifier_finding` event with stage, kind
//! and guest PC).
//!
//! Exits 1 if any workload produced findings, 0 on a clean suite.

use darco::machine::Machine;
use darco_fleet::Pool;
use darco_host::codegen::Backend;
use darco_host::sink::NullSink;
use darco_obs::{chrome, TraceEvent, Tracer};
use darco_tol::{TolConfig, VerifyLevel, VerifyMode};
use darco_workloads::{benchmarks, kernels};
use std::fmt::Write as _;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: darco-lint <benchmark|kernel:NAME|all> [more targets...] [options]\n\
         \n\
         targets:  any benchmark from --list, kernel:dot, kernel:matmul,\n\
         \u{20}         kernel:search, kernel:nbody, kernel:quicksort,\n\
         \u{20}         kernel:crc32, or `all` (every benchmark + kernel)\n\
         \n\
         options:\n\
           --list           list suite benchmarks and exit\n\
           --opt LEVEL      O0|O1|O2|O3 (default O3)\n\
           --scale N/D      scale benchmark iteration counts (default 1/1)\n\
           --max-insns N    per-workload retired-instruction cap (default 20000000)\n\
           --no-spec        disable speculation (multi-exit superblocks)\n\
           --semantic       symbolic per-pass translation validation on top\n\
         \u{20}                of the structural checks (and, with the native\n\
         \u{20}                backend, machine-code verification)\n\
           --backend B      emu|native (default emu; native requires\n\
         \u{20}                x86-64 Linux)\n\
           --jobs N         lint workloads on N pool workers (default:\n\
         \u{20}                available parallelism)\n\
           --trace[=]FILE   write all workloads' trace events (including\n\
         \u{20}                verifier findings) as Chrome trace-event JSON"
    );
    std::process::exit(2);
}

/// Ring capacity per linted workload (large enough that findings are
/// never overwritten at lint scales).
const LINT_TRACE_CAP: usize = 1 << 16;

struct LintOutcome {
    regions: u64,
    findings: u64,
    verify_us: f64,
    failed: bool,
}

/// Lints one workload, rendering its report into `out` instead of
/// printing — the pool runs these concurrently and the caller prints the
/// buffers in target order.
fn lint_one(
    name: &str,
    program: darco_guest::GuestProgram,
    cfg: &TolConfig,
    backend: Backend,
    cap: u64,
    trace: bool,
) -> (LintOutcome, Vec<TraceEvent>, String) {
    let mut m = Machine::new(cfg.clone(), &program);
    m.tol.set_backend(backend);
    if trace {
        m.tol.obs.trace = Tracer::ring(LINT_TRACE_CAP);
    }
    let run = m.run_to(cap, true, &mut NullSink);
    let stats = m.tol.stats;
    let findings = stats.verify_findings;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{name:<18} {:>6} regions verified, {:>3} findings, {:>8.1} us in verifier",
        stats.verify_regions,
        findings,
        stats.verify_nanos as f64 / 1e3,
    );
    for line in &m.tol.verify_log {
        let _ = writeln!(out, "  {line}");
    }
    let mut failed = findings > 0;
    if let Err(e) = run {
        let _ = writeln!(out, "  [machine] {e}");
        failed = true;
    }
    let outcome = LintOutcome {
        regions: stats.verify_regions,
        findings,
        verify_us: stats.verify_nanos as f64 / 1e3,
        failed,
    };
    (outcome, m.tol.obs.trace.drain(), out)
}

fn build_target(target: &str, scale: (u32, u32)) -> Option<darco_guest::GuestProgram> {
    if let Some(k) = target.strip_prefix("kernel:") {
        // Lint-sized kernels: enough iterations to trip SBM promotion
        // at the aggressive thresholds, small enough to stay quick.
        return Some(match k {
            "dot" => kernels::dot_product(2_000),
            "matmul" => kernels::matmul(12),
            "search" => kernels::string_search(20_000, 12_345),
            "nbody" => kernels::nbody_step(16, 50),
            "quicksort" => kernels::quicksort(800),
            "crc32" => kernels::crc32(5_000),
            _ => return None,
        });
    }
    benchmarks()
        .into_iter()
        .find(|b| b.name == target)
        .map(|b| darco_workloads::build(&b.profile.scaled(scale.0, scale.1)))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for b in benchmarks() {
            println!("{:<16} {}", b.name, b.suite.name());
        }
        return ExitCode::SUCCESS;
    }

    let mut cfg = TolConfig {
        // Promote early so the pipelines see as many regions as possible.
        bbm_threshold: 3,
        sbm_threshold: 12,
        verify: VerifyMode::Report,
        ..TolConfig::default()
    };
    let mut targets: Vec<String> = Vec::new();
    let mut backend = Backend::Emu;
    let mut scale = (1u32, 1u32);
    let mut cap: u64 = 20_000_000;
    let mut jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut trace_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| usage());
                let mut it = v.split('/');
                scale = (
                    it.next().and_then(|x| x.parse().ok()).unwrap_or(1),
                    it.next().and_then(|x| x.parse().ok()).unwrap_or(1),
                );
            }
            "--max-insns" => {
                i += 1;
                cap = args.get(i).and_then(|x| x.parse().ok()).unwrap_or_else(|| usage());
            }
            "--jobs" => {
                i += 1;
                jobs = args
                    .get(i)
                    .and_then(|x| x.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--opt" => {
                i += 1;
                cfg.opt_level = match args.get(i).map(String::as_str) {
                    Some("O0") => darco_ir::OptLevel::O0,
                    Some("O1") => darco_ir::OptLevel::O1,
                    Some("O2") => darco_ir::OptLevel::O2,
                    Some("O3") => darco_ir::OptLevel::O3,
                    _ => usage(),
                };
            }
            "--no-spec" => cfg.speculation = false,
            "--semantic" => cfg.verify_level = VerifyLevel::Semantic,
            "--backend" => {
                i += 1;
                backend = args
                    .get(i)
                    .and_then(|b| Backend::parse(b))
                    .unwrap_or_else(|| usage());
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            a if a.starts_with("--trace=") => {
                trace_path = Some(a["--trace=".len()..].to_string());
            }
            a if a.starts_with("--") => usage(),
            a => targets.push(a.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        usage();
    }

    const KERNELS: [&str; 6] = ["dot", "matmul", "search", "nbody", "quicksort", "crc32"];
    if targets.iter().any(|t| t == "all") {
        targets = benchmarks().into_iter().map(|b| b.name.to_string()).collect();
        targets.extend(KERNELS.iter().map(|k| format!("kernel:{k}")));
    }
    // Validate every target before spawning anything — a typo should be a
    // usage error, not a mid-suite worker failure.
    for t in &targets {
        if build_target(t, scale).is_none() {
            usage();
        }
    }

    let pool = Pool::new(jobs);
    let trace = trace_path.is_some();
    let lint_cfg = cfg.clone();
    let results = pool.map(targets.clone(), move |_, target| {
        let program = build_target(target, scale).expect("targets validated above");
        lint_one(target, program, &lint_cfg, backend, cap, trace)
    });

    let mut total = LintOutcome { regions: 0, findings: 0, verify_us: 0.0, failed: false };
    let mut groups: Vec<(String, Vec<TraceEvent>)> = Vec::new();
    for (target, result) in targets.iter().zip(results) {
        match result {
            Ok((out, events, rendered)) => {
                print!("{rendered}");
                total.regions += out.regions;
                total.findings += out.findings;
                total.verify_us += out.verify_us;
                total.failed |= out.failed;
                if trace {
                    groups.push((target.clone(), events));
                }
            }
            Err(e) => {
                println!("{target:<18} [pool] {e}");
                total.failed = true;
            }
        }
    }

    if let Some(path) = &trace_path {
        if let Err(e) = std::fs::write(path, chrome::to_chrome_trace_multi(&groups)) {
            eprintln!("could not write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("trace with {} workload groups written to {path}", groups.len());
    }

    println!(
        "\ntotal: {} workloads, {} regions verified, {} findings, {:.1} us in verifier",
        targets.len(),
        total.regions,
        total.findings,
        total.verify_us,
    );
    if total.failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
