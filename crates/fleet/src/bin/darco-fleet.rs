//! `darco-fleet` — run campaigns in parallel, or serve jobs over TCP.
//!
//! ```text
//! darco-fleet run campaign.json --jobs 4 --out merged.json --flight-dir flights/
//! darco-fleet serve --addr 127.0.0.1:7077 --jobs 8 --queue-cap 32
//! ```
//!
//! `run` executes a campaign on cooperative engine workers — each worker
//! time-slices its engines one `--quantum` at a time (see
//! `darco_fleet::sched`) — and writes the merged deterministic artifact
//! (byte-identical for any `--jobs`); the per-job schedule view
//! (wall-clock, attempts, flight dumps, checkpoints) goes to stderr.
//! With `--state-dir`, a job over its wall-clock timeout is checkpointed
//! instead of killed, and `--resume <dir>` continues it from the exact
//! instruction it yielded at. Exit status: 0 when every job succeeded,
//! 1 when any failed/panicked/timed out/was skipped, 2 on usage or
//! campaign errors.
//!
//! `serve` starts the JSON-lines job server (see `darco_fleet::server`)
//! on the work-stealing pool. SIGINT shuts down gracefully: running jobs
//! finish (`run` mode checkpoints live engines when a state dir is set),
//! queued jobs drain as `skipped`.

use darco_fleet::{parse_campaign, run_campaign_cooperative, signal, LiveHub, SchedOpts, Server};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:\n\
         \u{20} darco-fleet run <campaign.json> [--jobs N] [--out FILE]\n\
         \u{20}             [--flight-dir DIR] [--quantum N]\n\
         \u{20}             [--state-dir DIR] [--resume DIR] [--live ADDR]\n\
         \u{20} darco-fleet serve --addr HOST:PORT [--jobs N] [--queue-cap N]\n\
         \u{20}             [--flight-dir DIR]\n\
         \n\
         \u{20} --jobs N        worker threads (default: available parallelism)\n\
         \u{20} --out FILE      write the merged artifact here (default: stdout)\n\
         \u{20} --flight-dir D  write job-<id>.flight.json for failing jobs\n\
         \u{20} --quantum N     guest instructions per engine time slice\n\
         \u{20}                 (default 100000)\n\
         \u{20} --state-dir D   checkpoint timed-out/interrupted jobs to\n\
         \u{20}                 D/job-<id>.snap and record finished jobs\n\
         \u{20} --resume D      continue a previous run from its state dir\n\
         \u{20}                 (implies --state-dir D): finished jobs are\n\
         \u{20}                 reused, checkpointed jobs restored mid-run\n\
         \u{20} --live ADDR     stream live telemetry (JSON lines) on ADDR;\n\
         \u{20}                 attach with `darco-top ADDR` (run)\n\
         \u{20} --queue-cap N   backpressure bound on unstarted jobs (serve)"
    );
    std::process::exit(2);
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

struct Opts {
    jobs: usize,
    out: Option<PathBuf>,
    flight_dir: Option<PathBuf>,
    queue_cap: Option<usize>,
    quantum: u64,
    state_dir: Option<PathBuf>,
    resume: bool,
    addr: Option<String>,
    live: Option<String>,
    positional: Vec<String>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        jobs: default_jobs(),
        out: None,
        flight_dir: None,
        queue_cap: None,
        quantum: SchedOpts::default().quantum,
        state_dir: None,
        resume: false,
        addr: None,
        live: None,
        positional: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--jobs" => o.jobs = take(&mut i).parse().ok().filter(|&n| n > 0).unwrap_or_else(|| usage()),
            "--out" => o.out = Some(PathBuf::from(take(&mut i))),
            "--flight-dir" => o.flight_dir = Some(PathBuf::from(take(&mut i))),
            "--queue-cap" => {
                o.queue_cap = Some(take(&mut i).parse().ok().filter(|&n| n > 0).unwrap_or_else(|| usage()))
            }
            "--quantum" => {
                o.quantum = take(&mut i).parse().ok().filter(|&n| n > 0).unwrap_or_else(|| usage())
            }
            "--state-dir" => o.state_dir = Some(PathBuf::from(take(&mut i))),
            "--resume" => {
                o.state_dir = Some(PathBuf::from(take(&mut i)));
                o.resume = true;
            }
            "--addr" => o.addr = Some(take(&mut i)),
            "--live" => o.live = Some(take(&mut i)),
            a if a.starts_with("--") => usage(),
            a => o.positional.push(a.to_string()),
        }
        i += 1;
    }
    o
}

/// Polls the SIGINT flag and fires `on_interrupt` once. The thread is
/// detached; process exit reaps it.
fn watch_sigint(on_interrupt: impl Fn() + Send + 'static) {
    signal::install_sigint();
    let _ = std::thread::Builder::new().name("fleet-sigint".to_string()).spawn(move || loop {
        if signal::interrupted() {
            eprintln!("darco-fleet: interrupted; letting running jobs finish");
            on_interrupt();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
}

fn cmd_run(o: &Opts) -> ExitCode {
    let [path] = o.positional.as_slice() else { usage() };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("darco-fleet: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let campaign = match parse_campaign(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("darco-fleet: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(d) = &o.flight_dir {
        if let Err(e) = std::fs::create_dir_all(d) {
            eprintln!("darco-fleet: cannot create {}: {e}", d.display());
            return ExitCode::from(2);
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        watch_sigint(move || stop.store(true, std::sync::atomic::Ordering::SeqCst));
    }
    eprintln!(
        "darco-fleet: campaign `{}`: {} jobs on {} workers (quantum {})",
        campaign.name,
        campaign.jobs.len(),
        o.jobs,
        o.quantum,
    );
    let live = match &o.live {
        Some(addr) => match LiveHub::bind(addr) {
            Ok((hub, bound)) => {
                eprintln!("darco-fleet: live telemetry on {bound} (attach with `darco-top {bound}`)");
                Some(hub)
            }
            Err(e) => {
                eprintln!("darco-fleet: cannot bind live address {addr}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let sched = SchedOpts {
        quantum: o.quantum,
        state_dir: o.state_dir.clone(),
        resume: o.resume,
        flight_dir: o.flight_dir.clone(),
        live: live.clone(),
    };
    let outcome = run_campaign_cooperative(&campaign, o.jobs, &sched, &stop);
    if let Some(hub) = &live {
        // The end event is already published; give attached dashboards a
        // beat to drain their queues before the process exits.
        std::thread::sleep(std::time::Duration::from_millis(50));
        hub.close();
    }
    for r in &outcome.results {
        eprintln!("  {}", r.schedule_json());
    }
    let merged = outcome.merged_json();
    match &o.out {
        Some(f) => {
            if let Err(e) = std::fs::write(f, &merged) {
                eprintln!("darco-fleet: cannot write {}: {e}", f.display());
                return ExitCode::from(2);
            }
            eprintln!("darco-fleet: merged artifact written to {}", f.display());
        }
        None => println!("{merged}"),
    }
    eprintln!(
        "darco-fleet: {} ok, {} failed of {} jobs",
        outcome.ok_count(),
        outcome.failed_count(),
        outcome.results.len()
    );
    if outcome.results.iter().any(|r| r.checkpoint_path.is_some()) {
        if let Some(d) = &o.state_dir {
            eprintln!(
                "darco-fleet: checkpoints written; continue with `darco-fleet run {path} --resume {}`",
                d.display()
            );
        }
    }
    if outcome.failed_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_serve(o: &Opts) -> ExitCode {
    let Some(addr) = &o.addr else { usage() };
    if !o.positional.is_empty() {
        usage();
    }
    if let Some(d) = &o.flight_dir {
        if let Err(e) = std::fs::create_dir_all(d) {
            eprintln!("darco-fleet: cannot create {}: {e}", d.display());
            return ExitCode::from(2);
        }
    }
    let server =
        match Server::bind(addr, o.jobs, o.queue_cap.unwrap_or(o.jobs * 4), o.flight_dir.clone()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("darco-fleet: cannot bind {addr}: {e}");
                return ExitCode::from(2);
            }
        };
    match server.local_addr() {
        Ok(a) => eprintln!("darco-fleet: serving on {a} with {} workers", o.jobs),
        Err(_) => eprintln!("darco-fleet: serving on {addr} with {} workers", o.jobs),
    }
    watch_sigint(server.stopper());
    server.run();
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else { usage() };
    let o = parse_opts(&args[1..]);
    match mode.as_str() {
        "run" => cmd_run(&o),
        "serve" => cmd_serve(&o),
        _ => usage(),
    }
}
