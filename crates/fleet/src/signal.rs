//! SIGINT handling without a libc crate: the classic `signal(2)` entry
//! point declared directly, a handler that only flips an atomic, and a
//! process-wide query the scheduler polls between jobs.

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT has been received since [`install_sigint`].
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

/// Marks the process interrupted, as the signal handler would. Exists so
/// shutdown paths (and tests) can share the drain logic.
pub fn request_interrupt() {
    INTERRUPTED.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
mod imp {
    use super::INTERRUPTED;
    use std::sync::atomic::Ordering;

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        // POSIX `signal(2)`. Good enough here: the handler is
        // async-signal-safe (a single relaxed store) and we never need
        // the extra control `sigaction` offers.
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    const SIGINT: i32 = 2;

    extern "C" fn on_sigint(_sig: i32) {
        INTERRUPTED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        // SAFETY: registering an async-signal-safe handler for SIGINT;
        // the handler touches only a static atomic.
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT handler. On non-unix targets this is a no-op and
/// campaigns are simply not interruptible.
pub fn install_sigint() {
    imp::install();
}

#[cfg(test)]
mod tests {
    #[test]
    fn request_interrupt_is_observable() {
        // Note: INTERRUPTED is process-global; this test only ever sets
        // it, and no other fleet test asserts it stays false.
        super::request_interrupt();
        assert!(super::interrupted());
    }
}
