//! Cooperative engine scheduling: N engines time-sliced per worker.
//!
//! The pool ([`crate::pool`]) treats a job as an opaque blocking closure,
//! which forces the wall-clock timeout onto a helper thread and makes a
//! timed-out simulation unrecoverable — the attempt is abandoned and all
//! its progress lost. With the run loop inverted ([`darco::Engine`]),
//! the fleet owns the loop instead: each worker holds a *slate* of live
//! engines and round-robins [`Engine::step`] over them one quantum at a
//! time. Between quanta the worker is at a synchronization-safe boundary
//! for every engine it owns, so it can
//!
//! * enforce wall-clock deadlines **cooperatively** — a job over its
//!   budget is checkpointed to `<state-dir>/job-<id>.snap` instead of
//!   killed, and `darco-fleet run --resume <dir>` picks it back up at
//!   the exact instruction it yielded at;
//! * drain a SIGINT gracefully by checkpointing every live engine, not
//!   just letting running jobs finish;
//! * persist finished jobs (`job-<id>.done`, a wire-encoded
//!   [`JobResult`]) so a resumed campaign re-runs nothing that already
//!   completed.
//!
//! Non-engine jobs (lint harness, fault injection) still go through
//! [`crate::runner::execute_job`]: they are atomic by nature and keep the
//! thread-based timeout protocol.
//!
//! Determinism: a job's simulation is a pure function of its spec, so
//! per-job results are identical whatever worker ran them and however
//! often they were checkpointed and resumed; the campaign artifact is
//! merged in id order exactly as in the pool path. The determinism
//! regression drives this at 1, 2 and 8 workers with an injected
//! checkpoint/resume cycle.

use crate::campaign::Campaign;
use crate::job::{run_payload, JobKind, JobResult, JobSpec, JobStatus};
use crate::live::{self, LiveHub};
use crate::pool::panic_message;
use crate::runner::{execute_job, CampaignOutcome};
use crate::workload::{resolve, Resolved};
use darco::{Engine, Snapshot, System};
use darco_guest::{Wire, WireError, WireReader};
use darco_obs::Registry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Scheduling knobs for a cooperative campaign run.
#[derive(Debug, Clone)]
pub struct SchedOpts {
    /// Guest instructions per engine slice. Small quanta interleave more
    /// finely but pay more loop-inversion overhead (see `BENCH_engine`);
    /// the default of 100k keeps the overhead under 2%.
    pub quantum: u64,
    /// Directory for checkpoints (`job-<id>.snap`) and finished-job
    /// records (`job-<id>.done`). `None` disables both: timeouts then
    /// discard progress exactly like the pool path.
    pub state_dir: Option<PathBuf>,
    /// Load prior state from `state_dir` before running: finished jobs
    /// are reused, checkpointed jobs restored mid-flight.
    pub resume: bool,
    /// Flight-dump directory for failing jobs (same contract as the pool
    /// path's `--flight-dir`).
    pub flight_dir: Option<PathBuf>,
    /// Live telemetry hub: workers publish job lifecycle, progress and
    /// registry-delta events into it (see [`crate::live`]). Publishing
    /// only reads engine state — the merged artifact is byte-identical
    /// with or without a hub attached.
    pub live: Option<Arc<LiveHub>>,
}

impl Default for SchedOpts {
    fn default() -> Self {
        SchedOpts { quantum: 100_000, state_dir: None, resume: false, flight_dir: None, live: None }
    }
}

/// Minimum wall-clock between per-job progress/delta publications (the
/// first boundary and terminal states always publish).
const PUBLISH_INTERVAL_MS: u128 = 200;

/// `<state-dir>/job-<id>.snap` — where a timed-out (or interrupted) job's
/// engine checkpoint lands.
pub fn snap_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id}.snap"))
}

/// `<state-dir>/job-<id>.done` — the wire-encoded result of a finished
/// job, reused verbatim on `--resume`.
pub fn done_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id}.done"))
}

const DONE_MAGIC: u64 = u64::from_le_bytes(*b"DARCODNE");
const DONE_VERSION: u32 = 1;

/// Serializes a terminal [`JobResult`] (its deterministic slice plus the
/// status detail; scheduling fields are not persisted).
fn encode_result(r: &JobResult) -> Vec<u8> {
    let mut w = Wire::new();
    w.put_u64(DONE_MAGIC);
    w.put_u32(DONE_VERSION);
    w.put_u64(r.id);
    w.put_str(&r.workload);
    w.put_bool(r.tag.is_some());
    if let Some(t) = &r.tag {
        w.put_str(t);
    }
    match &r.status {
        JobStatus::Ok => w.put_u8(0),
        JobStatus::Failed(e) => {
            w.put_u8(1);
            w.put_str(e);
        }
        JobStatus::Panicked(e) => {
            w.put_u8(2);
            w.put_str(e);
        }
        JobStatus::TimedOut(ms) => {
            w.put_u8(3);
            w.put_u64(*ms);
        }
        JobStatus::Skipped => w.put_u8(4),
    }
    w.put_bool(r.payload.is_some());
    if let Some(p) = &r.payload {
        w.put_str(p);
    }
    w.put_bool(r.metrics.is_some());
    if let Some(m) = &r.metrics {
        darco_tol::obs::registry_snapshot_into(m, &mut w);
    }
    w.finish()
}

fn decode_result(bytes: &[u8]) -> Result<JobResult, WireError> {
    let mut r = WireReader::new(bytes);
    let magic = r.get_u64()?;
    let version = r.get_u32()?;
    if magic != DONE_MAGIC || version != DONE_VERSION {
        return Err(WireError::Malformed { at: 0, what: "not a fleet job record" });
    }
    let id = r.get_u64()?;
    let workload = r.get_str()?;
    let tag = if r.get_bool()? { Some(r.get_str()?) } else { None };
    let status = match r.get_u8()? {
        0 => JobStatus::Ok,
        1 => JobStatus::Failed(r.get_str()?),
        2 => JobStatus::Panicked(r.get_str()?),
        3 => JobStatus::TimedOut(r.get_u64()?),
        4 => JobStatus::Skipped,
        _ => return Err(WireError::Malformed { at: r.pos(), what: "job status tag" }),
    };
    let payload = if r.get_bool()? { Some(r.get_str()?) } else { None };
    let metrics =
        if r.get_bool()? { Some(darco_tol::obs::registry_restore(&mut r)?) } else { None };
    r.expect_end()?;
    Ok(JobResult {
        id,
        workload,
        tag,
        status,
        attempts: 0,
        wall_ms: 0,
        metrics,
        payload,
        flight_path: None,
        checkpoint_path: None,
    })
}

/// A reused result only counts when it matches the campaign's job —
/// a state directory from a *different* campaign must not be trusted.
fn load_done(dir: &Path, spec: &JobSpec) -> Option<JobResult> {
    let bytes = std::fs::read(done_path(dir, spec.id)).ok()?;
    let r = decode_result(&bytes).ok()?;
    (r.id == spec.id && r.workload == spec.workload && r.tag == spec.tag).then_some(r)
}

fn persist_done(dir: &Path, r: &JobResult) {
    let path = done_path(dir, r.id);
    if let Err(e) = std::fs::write(&path, encode_result(r)) {
        eprintln!("warning: could not persist job {} result to {}: {e}", r.id, path.display());
    }
    // A completed job supersedes any mid-flight checkpoint.
    let _ = std::fs::remove_file(snap_path(dir, r.id));
}

/// One live engine on a worker's slate.
struct Slot {
    spec: JobSpec,
    engine: Box<Engine>,
    /// Wall-clock start of *this session* (a resumed job gets a fresh
    /// budget — the timeout bounds one scheduling session, not the sum).
    started: Instant,
    flight: Option<String>,
    /// Publisher state when a live hub is attached.
    live: Option<SlotLive>,
}

/// Per-slot telemetry publisher: the persistent registry mirror
/// accumulates honest epoch stamps across publications
/// ([`Registry::sync_from`]), so `delta_since(published_epoch)` is
/// exactly what changed since the job's previous `delta` event.
struct SlotLive {
    mirror: Registry,
    published_epoch: u64,
    last_pub: Option<Instant>,
    last_insns: u64,
}

impl Slot {
    fn over_deadline(&self) -> bool {
        match self.spec.timeout_ms {
            Some(ms) => self.started.elapsed().as_millis() as u64 >= ms,
            None => false,
        }
    }

    /// Publishes a `progress` + `delta` event pair for this job, rate
    /// limited unless `force` (terminal states flush unconditionally).
    fn publish_live(&mut self, hub: &LiveHub, worker: usize, force: bool) {
        let Some(live) = &mut self.live else { return };
        let due = force
            || match live.last_pub {
                None => true,
                Some(t) => t.elapsed().as_millis() >= PUBLISH_INTERVAL_MS,
            };
        if !due {
            return;
        }
        let insns = self.engine.insns();
        let dt = live.last_pub.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0);
        let mips =
            if dt > 0.0 { (insns - live.last_insns) as f64 / dt / 1e6 } else { 0.0 };
        let m = self.engine.machine();
        let mode = m.tol.mode_split();
        let rollbacks = m.tol.emu.counters.assert_fails + m.tol.emu.counters.alias_fails;
        let t_ms = hub.now_ms();
        let id = self.spec.id;
        hub.publish(
            Some(&live::model_key(2, id)),
            &live::progress_event(t_ms, id, worker, insns, mips, mode, rollbacks),
        );
        live.mirror.sync_from(&self.engine.metrics());
        let delta = live.mirror.delta_since(live.published_epoch);
        if !delta.is_empty() {
            hub.publish(Some(&live::model_key(3, id)), &live::delta_event(t_ms, id, &delta));
        }
        live.published_epoch = live.mirror.epoch();
        live.last_pub = Some(Instant::now());
        live.last_insns = insns;
    }
}

/// Publishes a terminal `job` lifecycle event.
fn publish_done(opts: &SchedOpts, r: &JobResult, worker: usize) {
    if let Some(hub) = &opts.live {
        hub.publish(
            Some(&live::model_key(1, r.id)),
            &live::job_event(hub.now_ms(), r.id, &r.workload, "done", Some(r.status.name()), worker),
        );
    }
}

fn result_shell(spec: &JobSpec, status: JobStatus) -> JobResult {
    JobResult {
        id: spec.id,
        workload: spec.workload.clone(),
        tag: spec.tag.clone(),
        status,
        attempts: 1,
        wall_ms: 0,
        metrics: None,
        payload: None,
        flight_path: None,
        checkpoint_path: None,
    }
}

/// Checkpoints a live slot into the state dir; returns the path on
/// success, an error-shaped status on failure.
fn checkpoint_slot(slot: &mut Slot, dir: &Path) -> Result<String, String> {
    let snap = slot.engine.checkpoint().map_err(|e| format!("checkpoint failed: {e}"))?;
    let path = snap_path(dir, slot.spec.id);
    std::fs::write(&path, snap.as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path.to_string_lossy().into_owned())
}

/// Builds the engine for a run job, restoring a prior checkpoint when
/// resuming. Returns an error status when the workload cannot resolve to
/// a program or the checkpoint does not fit the spec.
fn make_slot(spec: &JobSpec, opts: &SchedOpts) -> Result<Slot, Box<JobResult>> {
    let program = match resolve(&spec.workload, spec.scale) {
        Ok(Resolved::Program(p)) => p,
        Ok(Resolved::InjectedPanic) => {
            unreachable!("fault:panic jobs take the atomic path")
        }
        Err(e) => return Err(Box::new(result_shell(spec, JobStatus::Failed(e)))),
    };
    let mut cfg = spec.cfg.clone();
    let flight = opts.flight_dir.as_ref().map(|d| {
        d.join(format!("job-{}.flight.json", spec.id)).to_string_lossy().into_owned()
    });
    if cfg.flight_path.is_none() {
        cfg.flight_path = flight.clone();
    }
    let mut engine = Box::new(System::new(cfg, program).start());
    if opts.resume {
        if let Some(dir) = &opts.state_dir {
            let path = snap_path(dir, spec.id);
            if let Ok(bytes) = std::fs::read(&path) {
                let restored = Snapshot::from_bytes(bytes)
                    .and_then(|snap| engine.restore(&snap));
                if let Err(e) = restored {
                    return Err(Box::new(result_shell(
                        spec,
                        JobStatus::Failed(format!(
                            "cannot resume from {}: {e}",
                            path.display()
                        )),
                    )));
                }
            }
        }
    }
    let live = opts.live.is_some().then(|| SlotLive {
        mirror: Registry::default(),
        published_epoch: 0,
        last_pub: None,
        last_insns: engine.insns(),
    });
    Ok(Slot { spec: spec.clone(), engine, started: Instant::now(), flight, live })
}

/// Steps every slot on the slate round-robin until all are terminal (or
/// the stop flag interrupts), producing one result per slot.
fn drive_slate(
    mut slate: Vec<Slot>,
    opts: &SchedOpts,
    stop: &AtomicBool,
    worker: usize,
) -> Vec<JobResult> {
    let mut out = Vec::with_capacity(slate.len());
    while !slate.is_empty() {
        let mut i = 0;
        while i < slate.len() {
            if stop.load(Ordering::SeqCst) {
                // Graceful shutdown: checkpoint what we can, skip the rest.
                for mut slot in slate.drain(..) {
                    let mut r = result_shell(&slot.spec, JobStatus::Skipped);
                    if let Some(dir) = &opts.state_dir {
                        if let Ok(p) = checkpoint_slot(&mut slot, dir) {
                            r.checkpoint_path = Some(p);
                        }
                    }
                    publish_done(opts, &r, worker);
                    out.push(r);
                }
                return out;
            }
            let slot = &mut slate[i];
            let stepped = catch_unwind(AssertUnwindSafe(|| slot.engine.step(opts.quantum)));
            let done: Option<JobResult> = match stepped {
                Ok(Ok(exit)) => match exit {
                    darco::StepExit::Yielded | darco::StepExit::ValidationDue => {
                        if slot.over_deadline() {
                            let ms = slot.spec.timeout_ms.unwrap_or(0);
                            let mut r = result_shell(&slot.spec, JobStatus::TimedOut(ms));
                            if let Some(dir) = &opts.state_dir {
                                match checkpoint_slot(slot, dir) {
                                    Ok(p) => r.checkpoint_path = Some(p),
                                    Err(e) => r.status = JobStatus::Failed(e),
                                }
                            }
                            Some(r)
                        } else {
                            if let Some(hub) = &opts.live {
                                slot.publish_live(hub, worker, false);
                            }
                            None
                        }
                    }
                    darco::StepExit::Ended | darco::StepExit::GuestFault => {
                        let mut slot = slate.remove(i);
                        if let Some(hub) = &opts.live {
                            slot.publish_live(hub, worker, true);
                        }
                        let report = slot.engine.into_report();
                        let (payload, metrics) = run_payload(&report);
                        let mut r = result_shell(&slot.spec, JobStatus::Ok);
                        r.payload = Some(payload);
                        r.metrics = Some(metrics);
                        r.wall_ms = slot.started.elapsed().as_millis() as u64;
                        publish_done(opts, &r, worker);
                        out.push(r);
                        continue; // `i` now points at the next slot
                    }
                },
                Ok(Err(e)) => {
                    let mut r = result_shell(&slot.spec, JobStatus::Failed(e.to_string()));
                    r.flight_path = slot.flight.clone().filter(|p| Path::new(p).exists());
                    Some(r)
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    let mut r = result_shell(&slot.spec, JobStatus::Panicked(msg));
                    r.flight_path = slot.flight.clone().filter(|p| Path::new(p).exists());
                    Some(r)
                }
            };
            match done {
                Some(mut r) => {
                    let slot = slate.remove(i);
                    r.wall_ms = slot.started.elapsed().as_millis() as u64;
                    publish_done(opts, &r, worker);
                    out.push(r);
                }
                None => i += 1,
            }
        }
    }
    out
}

/// Whether a job runs as a time-sliced engine (run harness over a real
/// program) or atomically through [`execute_job`].
fn is_engine_job(spec: &JobSpec) -> bool {
    spec.kind == JobKind::Run && !spec.workload.starts_with("fault:panic")
}

/// Runs a campaign on `workers` cooperative worker threads. Each worker
/// owns a slate of engines (jobs dealt round-robin by id) and time-slices
/// them `opts.quantum` instructions at a time; atomic jobs (lint, fault
/// injection) run first through the classic per-job protocol. `stop`
/// mirrors the pool's poison flag: once set, unstarted jobs drain as
/// skipped and live engines are checkpointed (when a state dir is
/// configured) instead of finishing.
pub fn run_campaign_cooperative(
    c: &Campaign,
    workers: usize,
    opts: &SchedOpts,
    stop: &AtomicBool,
) -> CampaignOutcome {
    let workers = workers.max(1);
    if let Some(dir) = &opts.state_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create state dir {}: {e}", dir.display());
        }
    }
    if let Some(hub) = &opts.live {
        hub.publish(
            Some(&live::model_key(0, 0)),
            &live::campaign_event(hub.now_ms(), &c.name, c.jobs.len(), workers, opts.quantum),
        );
    }
    // Reused results and atomic-vs-engine classification happen up front,
    // single-threaded, in id order — cheap, and it keeps the worker loop
    // free of filesystem races on the state dir.
    let mut results: Vec<Option<JobResult>> = vec![None; c.jobs.len()];
    let mut pending: Vec<&JobSpec> = Vec::new();
    for (i, spec) in c.jobs.iter().enumerate() {
        let reused = match (&opts.state_dir, opts.resume) {
            (Some(dir), true) => load_done(dir, spec),
            _ => None,
        };
        match reused {
            Some(r) => {
                publish_done(opts, &r, 0);
                results[i] = Some(r);
            }
            None => pending.push(spec),
        }
    }
    let mut finished: Vec<JobResult> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let mine: Vec<&JobSpec> =
                pending.iter().enumerate().filter(|(i, _)| i % workers == w).map(|(_, s)| *s).collect();
            let opts = opts.clone();
            handles.push(s.spawn(move || {
                let mut out = Vec::with_capacity(mine.len());
                let mut slate = Vec::new();
                for spec in mine {
                    if !is_engine_job(spec) {
                        let r = if stop.load(Ordering::SeqCst) {
                            result_shell(spec, JobStatus::Skipped)
                        } else {
                            execute_job(spec, opts.flight_dir.as_deref())
                        };
                        publish_done(&opts, &r, w);
                        out.push(r);
                        continue;
                    }
                    match make_slot(spec, &opts) {
                        Ok(slot) => {
                            if let Some(hub) = &opts.live {
                                hub.publish(
                                    Some(&live::model_key(1, spec.id)),
                                    &live::job_event(
                                        hub.now_ms(),
                                        spec.id,
                                        &spec.workload,
                                        "running",
                                        None,
                                        w,
                                    ),
                                );
                            }
                            slate.push(slot);
                        }
                        Err(r) => {
                            publish_done(&opts, &r, w);
                            out.push(*r);
                        }
                    }
                }
                out.extend(drive_slate(slate, &opts, stop, w));
                out
            }));
        }
        handles.into_iter().flat_map(|h| h.join().expect("fleet worker thread")).collect()
    });
    finished.sort_by_key(|r| r.id);
    let mut finished = finished.into_iter();
    let results: Vec<JobResult> = results
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| finished.next().expect("one result per pending job")))
        .collect();
    if let Some(dir) = &opts.state_dir {
        for r in &results {
            // Terminal outcomes persist; timeouts/interrupts keep (only)
            // their checkpoint so a resume continues them.
            if matches!(r.status, JobStatus::Ok | JobStatus::Failed(_) | JobStatus::Panicked(_))
                && r.attempts > 0
            {
                persist_done(dir, r);
            }
        }
    }
    let outcome = CampaignOutcome { name: c.name.clone(), results };
    if let Some(hub) = &opts.live {
        hub.publish(
            Some(&live::model_key(9, 0)),
            &live::end_event(hub.now_ms(), outcome.ok_count(), outcome.failed_count()),
        );
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::parse_campaign;
    use darco_obs::Registry;

    fn no_stop() -> AtomicBool {
        AtomicBool::new(false)
    }

    #[test]
    fn done_record_round_trips() {
        let mut reg = Registry::new();
        reg.set_counter("sys.guest_insns", 42);
        let r = JobResult {
            id: 9,
            workload: "kernel:dot".into(),
            tag: Some("t".into()),
            status: JobStatus::Ok,
            attempts: 1,
            wall_ms: 55,
            metrics: Some(reg),
            payload: Some("{\"x\":1}".into()),
            flight_path: None,
            checkpoint_path: None,
        };
        let back = decode_result(&encode_result(&r)).unwrap();
        assert_eq!(back.id, 9);
        assert_eq!(back.workload, "kernel:dot");
        assert_eq!(back.status, JobStatus::Ok);
        assert_eq!(back.payload, r.payload);
        assert_eq!(back.metrics.unwrap().to_json(), r.metrics.unwrap().to_json());
        assert_eq!(back.wall_ms, 0, "scheduling fields are not persisted");
        assert!(decode_result(b"junk").is_err());
    }

    #[test]
    fn cooperative_run_matches_pool_run() {
        let c = parse_campaign(
            r#"{"name":"coop","defaults":{"scale":"1/4"},
                "jobs":[{"workload":"kernel:dot"},{"workload":"kernel:crc32"},
                        {"workload":"fault:panic"}]}"#,
        )
        .unwrap();
        let pool = crate::Pool::new(2);
        let via_pool = crate::runner::run_campaign(&c, &pool, None).merged_json();
        let via_coop =
            run_campaign_cooperative(&c, 2, &SchedOpts::default(), &no_stop()).merged_json();
        assert_eq!(via_pool, via_coop, "both schedulers produce the same artifact");
    }

    #[test]
    fn timeout_checkpoints_and_resume_completes() {
        let dir = std::env::temp_dir().join("fleet-sched-resume");
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = parse_campaign(
            r#"{"name":"ckpt","jobs":[{"workload":"kernel:crc32"}]}"#,
        )
        .unwrap();
        // A zero timeout deterministically fires at the first quantum
        // boundary: the job must checkpoint, not die.
        c.jobs[0].timeout_ms = Some(0);
        let opts = SchedOpts {
            quantum: 2_000,
            state_dir: Some(dir.clone()),
            ..SchedOpts::default()
        };
        let first = run_campaign_cooperative(&c, 1, &opts, &no_stop());
        assert_eq!(first.results[0].status, JobStatus::TimedOut(0));
        let snap = snap_path(&dir, 0);
        assert!(snap.exists(), "timed-out job left a checkpoint");
        let ckpt_insns = first.results[0].checkpoint_path.as_ref().unwrap();
        assert_eq!(ckpt_insns, &snap.to_string_lossy().into_owned());

        // Resume without the timeout: the job continues from the snapshot
        // and its result is byte-identical to an uninterrupted run *under
        // the same stepping schedule* (overhead accounting legitimately
        // depends on where fuel boundaries land, so the quantum must
        // match — checkpoint/restore itself must add nothing).
        c.jobs[0].timeout_ms = None;
        let resumed =
            run_campaign_cooperative(&c, 1, &SchedOpts { resume: true, ..opts.clone() }, &no_stop());
        assert_eq!(resumed.results[0].status, JobStatus::Ok);
        assert!(!snap.exists(), "completion removes the checkpoint");
        assert!(done_path(&dir, 0).exists(), "completion persists the result");
        let uninterrupted = run_campaign_cooperative(
            &c,
            1,
            &SchedOpts { quantum: opts.quantum, ..SchedOpts::default() },
            &no_stop(),
        );
        assert_eq!(resumed.merged_json(), uninterrupted.merged_json());

        // A second resume reuses the persisted record without running.
        let reused =
            run_campaign_cooperative(&c, 1, &SchedOpts { resume: true, ..opts }, &no_stop());
        assert_eq!(reused.results[0].attempts, 0, "loaded, not re-run");
        assert_eq!(reused.merged_json(), uninterrupted.merged_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_flag_checkpoints_live_engines() {
        let dir = std::env::temp_dir().join("fleet-sched-stop");
        let _ = std::fs::remove_dir_all(&dir);
        let c = parse_campaign(r#"{"name":"stop","jobs":[{"workload":"kernel:dot"}]}"#).unwrap();
        let stop = AtomicBool::new(true); // interrupted before the first slice
        let opts = SchedOpts { state_dir: Some(dir.clone()), ..SchedOpts::default() };
        let outcome = run_campaign_cooperative(&c, 1, &opts, &stop);
        assert_eq!(outcome.results[0].status, JobStatus::Skipped);
        assert!(snap_path(&dir, 0).exists(), "interrupted engine checkpoints");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
