//! The differential oracle: run one candidate through every lane and
//! compare the architecturally observable results bit-for-bit.
//!
//! Each lane is already *internally* differential — the co-designed
//! stack validates against the authoritative component at syscalls,
//! halt and periodically — so a translator bug inside a lane surfaces
//! as a [`darco::DarcoError::Validation`]. On top of that the oracle
//! compares lanes against each other (final output bytes, retire
//! counts, exit status, guest fault) and, between the emulator and
//! native backends of the identical configuration, the per-cause exit
//! counter stream. Semantic-verifier findings are treated as crashes.

use darco::{DarcoError, RunReport, SinkChoice, System, SystemConfig, TimingMode};
use darco_host::codegen::Backend;
use darco_tol::{Injection, TolConfig, VerifyLevel, VerifyMode};
use darco_workloads::fuzzprog::FuzzProgram;

/// Guest-instruction guard: structured fuel bounds every candidate far
/// below this; hitting it means the fuel gate itself broke.
pub const INSN_BUDGET: u64 = 4_000_000;

/// One lane: a named configuration of the whole stack.
#[derive(Debug, Clone)]
pub struct Lane {
    /// Short stable name (`im`, `bbm`, `sbm`, `sbm-native`,
    /// `sbm-timed`, `sbm-fast`).
    pub name: &'static str,
    /// The configuration the candidate runs under.
    pub cfg: SystemConfig,
}

/// The six differential lanes. `inject` plants a bug in every
/// translating lane (the interpreter lane never translates, so it acts
/// as the unperturbed reference either way). The last two lanes run the
/// identical configuration under the detailed and the accelerated
/// (cycle-annotated) timing paths: beyond agreeing with every other
/// lane on final guest state, the pair must agree with *each other*
/// bit-for-bit on retired events and cycles.
pub fn lanes(inject: Option<Injection>) -> Vec<Lane> {
    let base = |bbm: u64, sbm: u64, spec: bool, backend: Backend| SystemConfig {
        tol: TolConfig {
            bbm_threshold: bbm,
            sbm_threshold: sbm,
            speculation: spec,
            // Findings are recorded, not fatal: the oracle turns them
            // into divergences so they get minimized like any crash.
            verify: VerifyMode::Report,
            verify_level: VerifyLevel::Semantic,
            injection: inject,
            ..TolConfig::default()
        },
        compare_flags: true,
        sink: SinkChoice::None,
        max_guest_insns: INSN_BUDGET,
        backend,
        ..SystemConfig::default()
    };
    let timed = |mode: TimingMode| {
        let mut cfg = base(2, 6, true, Backend::Emu);
        cfg.sink = SinkChoice::InOrder;
        cfg.timing_mode = mode;
        cfg
    };
    vec![
        Lane { name: "im", cfg: base(u64::MAX, u64::MAX, false, Backend::Emu) },
        Lane { name: "bbm", cfg: base(2, u64::MAX, false, Backend::Emu) },
        Lane { name: "sbm", cfg: base(2, 6, true, Backend::Emu) },
        Lane { name: "sbm-native", cfg: base(2, 6, true, Backend::Native) },
        Lane { name: "sbm-timed", cfg: timed(TimingMode::Full) },
        Lane { name: "sbm-fast", cfg: timed(TimingMode::Fast) },
    ]
}

/// The deterministic, architecturally observable slice of one lane run.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneObs {
    /// Guest stdout (the exit stub publishes all scratch registers).
    pub output: Vec<u8>,
    /// Total retired guest instructions.
    pub guest_insns: u64,
    /// Exit-syscall status, if the guest exited that way.
    pub exit_status: Option<u32>,
    /// Guest fault rendered to a string, if execution ended with one.
    pub guest_fault: Option<String>,
}

/// What one lane produced.
#[derive(Debug, Clone)]
pub enum LaneOutcome {
    /// The run completed (normally, faulted, or out of budget — all
    /// deterministic, comparable endings).
    Done(Box<RunReport>),
    /// The lane exhausted the guest-instruction guard.
    Budget,
    /// The lane failed: internal validation divergence or protocol
    /// error — a crash finding on its own.
    Error(String),
}

/// The oracle's verdict over all lanes.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// All lanes agreed; reports are kept for coverage extraction, in
    /// lane order.
    Clean(Vec<(&'static str, Box<RunReport>)>),
    /// Something diverged.
    Diverged(Divergence),
}

/// A divergence finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Stable discriminator used by the shrinker: a minimized program
    /// must reproduce the same kind.
    pub kind: DivKind,
    /// Human-readable detail.
    pub detail: String,
}

/// Divergence classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivKind {
    /// A lane failed its internal validation (or a protocol error).
    LaneError {
        /// Which lane.
        lane: &'static str,
    },
    /// The semantic verifier reported findings in a lane.
    VerifyFinding {
        /// Which lane.
        lane: &'static str,
    },
    /// Two lanes disagreed on an architecturally observable value.
    CrossLane {
        /// Which observable differed (`output`, `guest_insns`, ...).
        field: &'static str,
    },
    /// The emulator and native backends of the same configuration
    /// disagreed on the per-cause exit counter stream.
    ExitCounters {
        /// The differing counter name.
        counter: String,
    },
    /// The detailed and accelerated timing paths of the same
    /// configuration disagreed on a timing counter.
    Timing {
        /// The differing counter name.
        counter: String,
    },
}

impl DivKind {
    /// Stable short label for file names and stats.
    pub fn label(&self) -> String {
        match self {
            DivKind::LaneError { lane } => format!("lane-error-{lane}"),
            DivKind::VerifyFinding { lane } => format!("verify-{lane}"),
            DivKind::CrossLane { field } => format!("cross-{field}"),
            DivKind::ExitCounters { counter } => format!("exitctr-{counter}"),
            DivKind::Timing { counter } => format!("timing-{counter}"),
        }
    }
}

fn observe(r: &RunReport) -> LaneObs {
    LaneObs {
        output: r.output.clone(),
        guest_insns: r.guest_insns,
        exit_status: r.exit_status,
        guest_fault: r.guest_fault.clone(),
    }
}

/// Runs one lane to completion.
pub fn run_lane(lane: &Lane, prog: &darco_guest::GuestProgram) -> LaneOutcome {
    match System::new(lane.cfg.clone(), prog.clone()).run() {
        Ok(report) => LaneOutcome::Done(Box::new(report)),
        Err(DarcoError::BudgetExceeded) => LaneOutcome::Budget,
        Err(e) => LaneOutcome::Error(e.to_string()),
    }
}

/// The per-cause exit counters that must agree bit-for-bit between the
/// emulator and native backends of one configuration (the check order
/// inside a translation — probe, SMC, alias — is kept identical in both
/// backends precisely so this holds).
const EXIT_COUNTERS: [&str; 8] = [
    "emu.chkpts",
    "emu.commits",
    "emu.assert_fails",
    "emu.alias_fails",
    "emu.page_faults",
    "emu.ibtc_hits",
    "emu.ibtc_misses",
    "emu.smc_aborts",
];

/// Runs every lane over a candidate and compares.
pub fn run_differential(prog: &FuzzProgram, lanes: &[Lane]) -> Verdict {
    let guest = prog.lower();
    let mut done: Vec<(&'static str, Box<RunReport>)> = Vec::new();
    let mut budget_lanes: Vec<&'static str> = Vec::new();
    for lane in lanes {
        match run_lane(lane, &guest) {
            LaneOutcome::Done(r) => {
                if r.tol_stats.verify_findings > 0 {
                    return Verdict::Diverged(Divergence {
                        kind: DivKind::VerifyFinding { lane: lane.name },
                        detail: format!(
                            "lane {}: {} semantic-verifier finding(s)",
                            lane.name, r.tol_stats.verify_findings
                        ),
                    });
                }
                done.push((lane.name, r));
            }
            LaneOutcome::Budget => budget_lanes.push(lane.name),
            LaneOutcome::Error(e) => {
                return Verdict::Diverged(Divergence {
                    kind: DivKind::LaneError { lane: lane.name },
                    detail: format!("lane {}: {e}", lane.name),
                });
            }
        }
    }
    // Budget exhaustion must be unanimous to count as agreement.
    if !budget_lanes.is_empty() {
        if budget_lanes.len() == lanes.len() {
            return Verdict::Clean(done);
        }
        return Verdict::Diverged(Divergence {
            kind: DivKind::CrossLane { field: "budget" },
            detail: format!("only lanes {budget_lanes:?} exhausted the instruction budget"),
        });
    }

    // Architectural agreement across all lanes.
    if let Some((ref_name, ref_rep)) = done.first() {
        let reference = observe(ref_rep);
        for (name, rep) in &done[1..] {
            let obs = observe(rep);
            for (field, same) in [
                ("output", obs.output == reference.output),
                ("guest_insns", obs.guest_insns == reference.guest_insns),
                ("exit_status", obs.exit_status == reference.exit_status),
                ("guest_fault", obs.guest_fault == reference.guest_fault),
            ] {
                if !same {
                    return Verdict::Diverged(Divergence {
                        kind: DivKind::CrossLane { field },
                        detail: format!(
                            "{name} vs {ref_name}: {field} differs ({:?} vs {:?})",
                            field_of(&obs, field),
                            field_of(&reference, field)
                        ),
                    });
                }
            }
        }
    }

    // Backend agreement: identical config, emu vs native, per-cause
    // exit counters bit-for-bit.
    let find = |lane: &str| done.iter().find(|(n, _)| *n == lane).map(|(_, r)| r);
    if let (Some(emu), Some(native)) = (find("sbm"), find("sbm-native")) {
        for c in EXIT_COUNTERS {
            let (a, b) = (emu.metrics.counter_value(c), native.metrics.counter_value(c));
            if a != b {
                return Verdict::Diverged(Divergence {
                    kind: DivKind::ExitCounters { counter: c.to_string() },
                    detail: format!("sbm vs sbm-native: {c} = {a:?} vs {b:?}"),
                });
            }
        }
    }

    // Timing-path agreement: identical config, detailed versus
    // accelerated timing, retired events and cycles bit-for-bit. The
    // two lanes step on the same schedule (same quantum, same config),
    // so the accelerated path's memoized block costs must replay to
    // exactly the detailed model's totals.
    if let (Some(full), Some(fast)) = (find("sbm-timed"), find("sbm-fast")) {
        for c in ["timing.insns", "timing.cycles"] {
            let (a, b) = (full.metrics.counter_value(c), fast.metrics.counter_value(c));
            if a != b {
                return Verdict::Diverged(Divergence {
                    kind: DivKind::Timing { counter: c.to_string() },
                    detail: format!("sbm-timed vs sbm-fast: {c} = {a:?} vs {b:?}"),
                });
            }
        }
    }
    Verdict::Clean(done)
}

fn field_of(o: &LaneObs, field: &str) -> String {
    match field {
        "output" => format!("{:02x?}", o.output),
        "guest_insns" => o.guest_insns.to_string(),
        "exit_status" => format!("{:?}", o.exit_status),
        _ => format!("{:?}", o.guest_fault),
    }
}
