//! Translation-path coverage: the fuzzer's fitness signal.
//!
//! Coverage is read off the existing metrics registry rather than from
//! instrumented code: every deterministic `tol.*`/`emu.*` counter a lane
//! produced becomes a set of *edges* `(lane.counter, log2-bucket)`. A
//! candidate is interesting — and enters the corpus — exactly when it
//! lights up an edge no earlier candidate did: a new promotion path, a
//! new rollback cause, an SMC invalidation, a verifier invariant, or an
//! order-of-magnitude-new count on any of them.

use darco_fleet::deterministic_metric;
use darco_obs::Registry;
use std::collections::BTreeSet;

/// One coverage edge: lane-qualified counter name plus log2 bucket.
pub type Edge = (String, u8);

/// Buckets a counter value: 0 stays 0 (no edge), otherwise
/// `1 + floor(log2(v))` so each order of magnitude is a distinct edge.
fn bucket(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// Extracts the edges one lane's registry contributes.
pub fn edges_of(lane: &str, reg: &Registry) -> Vec<Edge> {
    let mut out = Vec::new();
    for (name, v) in reg.counters_iter() {
        if v == 0 || !deterministic_metric(name) {
            continue;
        }
        if !(name.starts_with("tol.") || name.starts_with("emu.")) {
            continue;
        }
        out.push((format!("{lane}.{name}"), bucket(v)));
    }
    out
}

/// The campaign-global coverage map.
#[derive(Debug, Default, Clone)]
pub struct CovMap {
    seen: BTreeSet<Edge>,
}

impl CovMap {
    /// An empty map.
    pub fn new() -> CovMap {
        CovMap::default()
    }

    /// Adds edges; returns how many were new.
    pub fn add_all(&mut self, edges: impl IntoIterator<Item = Edge>) -> usize {
        let mut fresh = 0;
        for e in edges {
            if self.seen.insert(e) {
                fresh += 1;
            }
        }
        fresh
    }

    /// Total distinct edges observed.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no edge has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Writes the `fuzz.cov.*` family counters into a registry:
    /// promotion paths, rollback causes, invalidation kinds, verifier
    /// invariants, and the total.
    pub fn report_into(&self, reg: &mut Registry) {
        let mut fam = [0u64; 5];
        for (name, _) in &self.seen {
            fam[family_of(name)] += 1;
        }
        reg.set_counter("fuzz.cov.edges", self.seen.len() as u64);
        reg.set_counter("fuzz.cov.promotion", fam[0]);
        reg.set_counter("fuzz.cov.rollback", fam[1]);
        reg.set_counter("fuzz.cov.invalidation", fam[2]);
        reg.set_counter("fuzz.cov.verifier", fam[3]);
        reg.set_counter("fuzz.cov.other", fam[4]);
    }
}

/// Maps a lane-qualified counter name onto its `fuzz.cov.*` family.
fn family_of(name: &str) -> usize {
    const PROMOTION: [&str; 6] =
        ["translations", "recreations", "chain", "promot", "ibtc", "chkpt"];
    const ROLLBACK: [&str; 4] = ["rollback", "assert", "alias", "fault"];
    const INVALIDATION: [&str; 3] = ["smc", "flush", "invalid"];
    if PROMOTION.iter().any(|k| name.contains(k)) {
        0
    } else if ROLLBACK.iter().any(|k| name.contains(k)) {
        1
    } else if INVALIDATION.iter().any(|k| name.contains(k)) {
        2
    } else if name.contains("verify") {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_split_orders_of_magnitude() {
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(1024), 11);
    }

    #[test]
    fn only_new_edges_count() {
        let mut m = CovMap::new();
        let e = |n: &str, b: u8| (n.to_string(), b);
        assert_eq!(m.add_all([e("im.tol.blocks", 3), e("im.tol.blocks", 4)]), 2);
        assert_eq!(m.add_all([e("im.tol.blocks", 3)]), 0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn edges_skip_zeros_and_wall_clock() {
        let mut r = Registry::new();
        r.set_counter("tol.translations_bb", 4);
        r.set_counter("tol.verify_nanos", 123);
        r.set_counter("tol.idle", 0);
        r.set_counter("sync.pages", 9);
        let edges = edges_of("sbm", &r);
        assert_eq!(edges, vec![("sbm.tol.translations_bb".to_string(), 3)]);
    }

    #[test]
    fn families_classify() {
        let mut m = CovMap::new();
        m.add_all([
            ("sbm.tol.translations_bb".to_string(), 1),
            ("sbm.tol.spec_rollbacks".to_string(), 1),
            ("sbm.tol.smc_flushes".to_string(), 1),
            ("sbm.tol.verify_findings".to_string(), 1),
            ("sbm.tol.guest_insns".to_string(), 1),
        ]);
        let mut r = Registry::new();
        m.report_into(&mut r);
        assert_eq!(r.counter_value("fuzz.cov.edges"), Some(5));
        assert_eq!(r.counter_value("fuzz.cov.promotion"), Some(1));
        assert_eq!(r.counter_value("fuzz.cov.rollback"), Some(1));
        assert_eq!(r.counter_value("fuzz.cov.invalidation"), Some(1));
        assert_eq!(r.counter_value("fuzz.cov.verifier"), Some(1));
        assert_eq!(r.counter_value("fuzz.cov.other"), Some(1));
    }
}
