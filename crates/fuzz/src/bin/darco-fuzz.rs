//! `darco-fuzz` — coverage-guided differential fuzzing campaigns.
//!
//! ```text
//! darco-fuzz run --seed 7 --iters 500 --jobs 4 --out fuzz-out/
//! darco-fuzz replay fuzz-out/repro-verify-sbm-123.json
//! ```
//!
//! `run` executes a seeded campaign (see `darco_fuzz::campaign`): the
//! merged artifact (`fuzz-artifact.json`), the interesting-input corpus
//! and every minimized reproducer land in `--out`. The campaign is
//! byte-deterministic in `(--seed, --iters, --profile, --inject)` — the
//! artifact and corpus are identical for any `--jobs`. Exit status: 0
//! when no divergence was found, 1 when any was, 2 on usage errors.
//!
//! `replay` re-runs one reproducer (or corpus entry) through the full
//! differential oracle and reports the verdict — same exit convention.
//!
//! `--inject KIND[:ORDINAL]` plants a known translator bug (the
//! `darco_tol::BugKind` spellings) in every translating lane; it exists
//! so CI can verify the fuzzer actually finds what it is supposed to
//! find.

use darco_fuzz::{lanes, run_differential, FuzzOpts, Profile, Verdict};
use darco_tol::{BugKind, Injection};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage:\n\
         \u{20} darco-fuzz run [--seed N] [--iters N] [--jobs N] [--profile P]\n\
         \u{20}             [--out DIR] [--inject KIND[:ORDINAL]] [--live ADDR]\n\
         \u{20} darco-fuzz replay <reproducer.json> [--inject KIND[:ORDINAL]]\n\
         \n\
         \u{20} --seed N       campaign master seed (default 1)\n\
         \u{20} --iters N      candidate executions (default 200)\n\
         \u{20} --jobs N       worker threads (default 1; never affects results)\n\
         \u{20} --profile P    restrict generation: alu fp rep smc fault indirect\n\
         \u{20} --out DIR      artifact/corpus/reproducer directory (default fuzz-out)\n\
         \u{20} --inject K[:O] plant a translator bug: wrong-constant, bad-fold,\n\
         \u{20}                drop-store, clobber-pinned (test-only; ordinal\n\
         \u{20}                picks which translation is perturbed, default 0)\n\
         \u{20} --live ADDR    stream live telemetry; attach with `darco-top ADDR`"
    );
    std::process::exit(2);
}

fn parse_inject(s: &str) -> Option<Injection> {
    let (kind, ord) = match s.split_once(':') {
        Some((k, o)) => (k, o.parse().ok()?),
        None => (s, 0),
    };
    let kind = match kind {
        "wrong-constant" => BugKind::TranslatorWrongConstant,
        "bad-fold" => BugKind::OptimizerBadFold,
        "drop-store" => BugKind::CodegenDropStore,
        "clobber-pinned" => BugKind::CodegenClobberPinnedReg,
        _ => return None,
    };
    Some(Injection { kind, translation_ordinal: ord })
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut opts = FuzzOpts::default();
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--seed" => opts.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--iters" => opts.iters = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--jobs" => opts.jobs = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--profile" => {
                opts.profile = Some(Profile::parse(&take(&mut i)).unwrap_or_else(|| usage()))
            }
            "--out" => opts.out_dir = PathBuf::from(take(&mut i)),
            "--inject" => {
                opts.inject = Some(parse_inject(&take(&mut i)).unwrap_or_else(|| usage()))
            }
            "--live" => opts.live = Some(take(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    match darco_fuzz::campaign::run(&opts) {
        Ok(summary) => {
            eprintln!(
                "campaign {}: {} execs, corpus {}, {} coverage edges, {} divergences",
                summary.name,
                summary.execs,
                summary.corpus.len(),
                summary.cov.len(),
                summary.divergences()
            );
            println!("{}", summary.artifact_json());
            if summary.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                for f in &summary.findings {
                    eprintln!(
                        "finding [{}]: {} — reproducer {}",
                        f.label,
                        f.detail,
                        f.repro_path.as_deref().map(|p| p.display().to_string()).unwrap_or_default()
                    );
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let mut path: Option<PathBuf> = None;
    let mut inject = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--inject" => {
                i += 1;
                let v = args.get(i).cloned().unwrap_or_else(|| usage());
                inject = Some(parse_inject(&v).unwrap_or_else(|| usage()));
            }
            a if path.is_none() && !a.starts_with("--") => path = Some(PathBuf::from(a)),
            _ => usage(),
        }
        i += 1;
    }
    let Some(path) = path else { usage() };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let prog = match darco_workloads::fuzzprog::FuzzProgram::parse(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: parsing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    match run_differential(&prog, &lanes(inject)) {
        Verdict::Clean(reports) => {
            for (name, r) in &reports {
                eprintln!("lane {name}: {} guest insns, exit {:?}", r.guest_insns, r.exit_status);
            }
            println!("clean: all lanes agree");
            ExitCode::SUCCESS
        }
        Verdict::Diverged(d) => {
            println!("divergence [{}]: {}", d.kind.label(), d.detail);
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => usage(),
    }
}
