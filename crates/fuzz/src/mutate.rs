//! Deterministic structured mutation.
//!
//! Mutations operate on the [`FuzzProgram`] structure (and its total
//! `[i64; 5]` word encoding), never on raw instruction bytes — so every
//! mutant lowers to a well-formed, terminating guest program and the
//! search never wastes executions on undecodable garbage.

use darco_guest::prng::{Rng, SmallRng};
use darco_workloads::fuzzprog::{FuzzExit, FuzzOp, FuzzProgram};

/// Applies one random mutation, drawing donor material from `other`
/// (cross-program splice). Pure in `(p, other, rng state)`.
pub fn mutate(p: &FuzzProgram, other: &FuzzProgram, rng: &mut SmallRng) -> FuzzProgram {
    let mut out = p.clone();
    match rng.gen_range(0..7u32) {
        // Const tweak: nudge one field of one op.
        0 => {
            if let Some(op) = pick_op(&mut out, rng) {
                let mut w = op.encode();
                let field = rng.gen_range(1..5usize);
                w[field] = match rng.gen_range(0..3u32) {
                    0 => w[field].wrapping_add([1, -1][rng.gen_range(0..2usize)]),
                    1 => w[field] ^ (1 << rng.gen_range(0..32u32)),
                    _ => rng.gen(),
                };
                *op = FuzzOp::decode(w);
            }
        }
        // Opcode flip: new tag, same operand words.
        1 => {
            if let Some(op) = pick_op(&mut out, rng) {
                let mut w = op.encode();
                w[0] = rng.gen();
                *op = FuzzOp::decode(w);
            }
        }
        // Splice: replace a run of ops in one block with a run from a
        // donor block (of this program or the other parent).
        2 => {
            let donor: Vec<FuzzOp> = {
                let src = if rng.gen_bool(0.5) { other } else { &out };
                match pick_block(src, rng) {
                    Some(b) if !b.ops.is_empty() => {
                        let at = rng.gen_range(0..b.ops.len());
                        let len = 1 + rng.gen_range(0..b.ops.len() - at);
                        b.ops[at..at + len].to_vec()
                    }
                    _ => Vec::new(),
                }
            };
            if !donor.is_empty() && !out.blocks.is_empty() {
                let bi = rng.gen_range(0..out.blocks.len());
                let ops = &mut out.blocks[bi].ops;
                let at = rng.gen_range(0..=ops.len());
                let cut = rng.gen_range(0..=(ops.len() - at).min(donor.len()));
                ops.splice(at..at + cut, donor);
            }
        }
        // Block duplicate (jump targets are modular, so the new block
        // count re-routes existing exits too — intended turbulence).
        3 => {
            if let Some(b) = pick_block(&out, rng).cloned() {
                out.blocks.push(b);
            }
        }
        // Block drop.
        4 => {
            if out.blocks.len() > 1 {
                let bi = rng.gen_range(0..out.blocks.len());
                out.blocks.remove(bi);
            }
        }
        // Exit flip.
        5 => {
            if !out.blocks.is_empty() {
                let bi = rng.gen_range(0..out.blocks.len());
                let mut w = out.blocks[bi].exit.encode();
                w[rng.gen_range(0..5usize)] = rng.gen();
                out.blocks[bi].exit = FuzzExit::decode(w);
            }
        }
        // Fuel tweak: stretch or shrink the dynamic length.
        _ => {
            out.fuel = match rng.gen_range(0..3u32) {
                0 => (out.fuel / 2).max(1),
                1 => out.fuel.saturating_mul(2).min(2_000),
                _ => rng.gen_range(1..500u32),
            };
        }
    }
    out
}

fn pick_op<'a>(p: &'a mut FuzzProgram, rng: &mut SmallRng) -> Option<&'a mut FuzzOp> {
    let total: usize = p.blocks.iter().map(|b| b.ops.len()).sum();
    if total == 0 {
        return None;
    }
    let mut k = rng.gen_range(0..total);
    for b in &mut p.blocks {
        if k < b.ops.len() {
            return Some(&mut b.ops[k]);
        }
        k -= b.ops.len();
    }
    None
}

fn pick_block<'a>(
    p: &'a FuzzProgram,
    rng: &mut SmallRng,
) -> Option<&'a darco_workloads::fuzzprog::FuzzBlock> {
    if p.blocks.is_empty() {
        None
    } else {
        Some(&p.blocks[rng.gen_range(0..p.blocks.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Profile};

    #[test]
    fn mutation_is_deterministic_and_always_lowers() {
        let a = generate(Profile::Alu, 1);
        let b = generate(Profile::Fp, 2);
        let mut r1 = SmallRng::seed_from_u64(9);
        let mut r2 = SmallRng::seed_from_u64(9);
        let mut cur = a.clone();
        for _ in 0..200 {
            let m1 = mutate(&cur, &b, &mut r1);
            let m2 = mutate(&cur, &b, &mut r2);
            assert_eq!(m1, m2);
            // Every mutant still lowers to fully decodable code.
            let g = m1.lower();
            let mut off = 0;
            while off < g.code.len() {
                let (_, len) = darco_guest::decode(&g.code[off..]).expect("decodable mutant");
                off += len;
            }
            cur = m1;
        }
    }

    #[test]
    fn mutations_actually_change_programs() {
        let a = generate(Profile::Alu, 3);
        let b = generate(Profile::Smc, 4);
        let mut rng = SmallRng::seed_from_u64(5);
        let changed = (0..50).filter(|_| mutate(&a, &b, &mut rng) != a).count();
        assert!(changed > 40, "only {changed}/50 mutants differed");
    }
}
