//! Delta-debugging shrinker: minimize a diverging candidate while
//! preserving its divergence kind.
//!
//! Classic ddmin adapted to the two-level structure: drop whole blocks,
//! then binary-chunked op ranges inside each block, then simplify exits
//! to fall-through and halve the fuel — iterated to a fixpoint. Every
//! decision re-runs the full differential oracle, so the result is a
//! standalone reproducer; the procedure is a pure function of the
//! input program (the oracle is deterministic), so re-running the
//! shrinker reproduces the same minimized program byte for byte.

use crate::oracle::{run_differential, DivKind, Lane, Verdict};
use darco_workloads::fuzzprog::{FuzzExit, FuzzProgram};

/// Upper bound on oracle invocations per shrink (a cost valve: each
/// probe is four full simulations).
pub const MAX_PROBES: usize = 400;

/// Shrinks `p`, preserving divergence `kind` under `lanes`. Returns the
/// smallest program found and the number of oracle probes spent.
pub fn shrink(p: &FuzzProgram, lanes: &[Lane], kind: &DivKind) -> (FuzzProgram, usize) {
    let probes = std::cell::Cell::new(0usize);
    let still_diverges = |cand: &FuzzProgram| -> bool {
        if probes.get() >= MAX_PROBES {
            return false;
        }
        probes.set(probes.get() + 1);
        matches!(run_differential(cand, lanes), Verdict::Diverged(d) if d.kind == *kind)
    };

    let mut cur = p.clone();
    loop {
        let mut improved = false;

        // 1. Drop whole blocks, last to first (dropping later blocks
        // first keeps earlier targets' modular meaning more stable).
        let mut bi = cur.blocks.len();
        while bi > 0 && cur.blocks.len() > 1 {
            bi -= 1;
            if bi >= cur.blocks.len() {
                continue;
            }
            let mut cand = cur.clone();
            cand.blocks.remove(bi);
            if still_diverges(&cand) {
                cur = cand;
                improved = true;
            }
        }

        // 2. ddmin op ranges inside each block: chunk sizes n/2, n/4,
        // ..., 1.
        for bi in 0..cur.blocks.len() {
            let mut chunk = (cur.blocks[bi].ops.len() / 2).max(1);
            loop {
                let n = cur.blocks[bi].ops.len();
                if n == 0 {
                    break;
                }
                let mut at = 0;
                while at < cur.blocks[bi].ops.len() {
                    let end = (at + chunk).min(cur.blocks[bi].ops.len());
                    let mut cand = cur.clone();
                    cand.blocks[bi].ops.drain(at..end);
                    if still_diverges(&cand) {
                        cur = cand;
                        improved = true;
                        // Same `at` now addresses the next chunk.
                    } else {
                        at = end;
                    }
                }
                if chunk == 1 {
                    break;
                }
                chunk = (chunk / 2).max(1);
            }
        }

        // 3. Simplify exits to fall-through.
        for bi in 0..cur.blocks.len() {
            if cur.blocks[bi].exit == FuzzExit::Fall {
                continue;
            }
            let mut cand = cur.clone();
            cand.blocks[bi].exit = FuzzExit::Fall;
            if still_diverges(&cand) {
                cur = cand;
                improved = true;
            }
        }

        // 4. Halve the fuel.
        while cur.fuel > 1 {
            let mut cand = cur.clone();
            cand.fuel = (cur.fuel / 2).max(1);
            if still_diverges(&cand) {
                cur = cand;
                improved = true;
            } else {
                break;
            }
        }

        if !improved || probes.get() >= MAX_PROBES {
            break;
        }
    }
    (cur, probes.get())
}
