//! # darco-fuzz — coverage-guided differential fuzzing for the stack
//!
//! A seeded, fully deterministic fuzzing soup over the whole co-designed
//! stack (see `DESIGN.md` §15):
//!
//! * [`gen`] draws structured random guest programs from weighted
//!   opcode-class profiles (ALU-dense, FP, REP-string, self-modifying,
//!   fault-at-boundary, indirect-branch-heavy) — every candidate lowers
//!   to well-formed, terminating GISA code by construction;
//! * [`oracle`] runs each candidate differentially: interpreter vs BBM
//!   vs SBM+speculation, emulator vs native backend, with final guest
//!   output, retire counts, exit status, faults and per-cause exit
//!   counters compared bit-for-bit, and semantic-verifier findings
//!   treated as crashes;
//! * [`cov`] turns the existing `tol.*`/`emu.*` metric counters into a
//!   translation-path coverage signal (no instrumentation needed);
//! * [`mutate`] evolves interesting candidates structurally (splice,
//!   opcode flip, const tweak, block duplicate) — never byte-level;
//! * [`shrink`] delta-debugs every divergence down to a minimal
//!   standalone reproducer;
//! * [`campaign`] ties it together generation-synchronously on the
//!   fleet pool: the merged artifact, corpus and coverage trajectory
//!   are byte-identical at any `--jobs` count.

pub mod campaign;
pub mod cov;
pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod shrink;

pub use campaign::{run, CampaignSummary, Finding, FuzzOpts, GENERATION};
pub use cov::{edges_of, CovMap, Edge};
pub use gen::{generate, Profile, PROFILES};
pub use mutate::mutate;
pub use oracle::{lanes, run_differential, DivKind, Divergence, Lane, Verdict};
pub use shrink::shrink;
