//! Structured program generation: weighted opcode-class profiles.
//!
//! Each profile biases the op-tag distribution toward one stressor —
//! ALU-dense promotion pressure, FP/softfp, REP strings through the IM
//! safety net, self-modifying code against the invalidation machinery,
//! faults at the last mapped page, or indirect-branch soup through the
//! IBTC. Generation is a pure function of `(profile, seed)`.

use darco_guest::prng::{Rng, SmallRng};
use darco_workloads::fuzzprog::{FuzzBlock, FuzzExit, FuzzOp, FuzzProgram};

/// The opcode-class profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Integer-dense straight-line bodies with hot loops.
    Alu,
    /// FP/softfp heavy.
    Fp,
    /// REP string operations (interpreted: the IM safety net).
    RepString,
    /// Self-modifying: patchable slots and patches.
    Smc,
    /// Loads/stores straddling the last mapped data page.
    FaultBoundary,
    /// Indirect-branch-heavy control flow through the jump table.
    IndirectBranch,
}

/// All profiles, in the fixed cycling order the campaign uses.
pub const PROFILES: [Profile; 6] = [
    Profile::Alu,
    Profile::Fp,
    Profile::RepString,
    Profile::Smc,
    Profile::FaultBoundary,
    Profile::IndirectBranch,
];

impl Profile {
    /// Stable name (CLI `--profile` values).
    pub fn name(&self) -> &'static str {
        match self {
            Profile::Alu => "alu",
            Profile::Fp => "fp",
            Profile::RepString => "rep",
            Profile::Smc => "smc",
            Profile::FaultBoundary => "fault",
            Profile::IndirectBranch => "indirect",
        }
    }

    /// Parses a `--profile` value.
    pub fn parse(s: &str) -> Option<Profile> {
        PROFILES.iter().copied().find(|p| p.name() == s)
    }

    /// Per-op-tag weights (index = `FuzzOp` tag). The base mix keeps
    /// every class reachable; the profile multiplies its stressors.
    fn weights(&self) -> [u32; 20] {
        // Tags: 0 MovRI 1 AluRR 2 AluRI 3 Shift 4 MulDiv 5 Load 6 Store
        //       7 StoreI 8 AluM 9 CmpTest 10 Cmov 11 Setcc 12 PushPop
        //       13 Lea 14 Fp 15 Rep 16 Edge 17 Patchable 18 Patch 19 Nop
        let mut w = [4, 8, 8, 4, 3, 6, 6, 3, 4, 5, 3, 2, 3, 2, 2, 0, 0, 0, 0, 1];
        match self {
            Profile::Alu => {
                w[1] = 20;
                w[2] = 20;
                w[3] = 10;
                w[4] = 8;
            }
            Profile::Fp => {
                w[14] = 30;
            }
            Profile::RepString => {
                w[15] = 14;
            }
            Profile::Smc => {
                w[17] = 8;
                w[18] = 8;
            }
            Profile::FaultBoundary => {
                w[16] = 10;
            }
            Profile::IndirectBranch => {
                w[9] = 10;
            }
        }
        w
    }

    /// Exit-kind weights (index = `FuzzExit` tag: Fall, Jmp, Cond,
    /// Indirect, CallThen).
    fn exit_weights(&self) -> [u32; 5] {
        match self {
            Profile::IndirectBranch => [2, 2, 4, 12, 6],
            _ => [4, 3, 8, 1, 2],
        }
    }
}

fn weighted<R: Rng>(rng: &mut R, weights: &[u32]) -> i64 {
    let total: u32 = weights.iter().sum();
    let mut pick = rng.gen_range(0..total.max(1));
    for (i, w) in weights.iter().enumerate() {
        if pick < *w {
            return i as i64;
        }
        pick -= w;
    }
    0
}

/// Generates one candidate program for a profile from a seed.
pub fn generate(profile: Profile, seed: u64) -> FuzzProgram {
    let mut rng = SmallRng::seed_from_u64(seed);
    let weights = profile.weights();
    let exit_weights = profile.exit_weights();
    let nblocks = rng.gen_range(2..7usize);
    let mut blocks = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let nops = rng.gen_range(2..12usize);
        let ops = (0..nops)
            .map(|_| {
                let tag = weighted(&mut rng, &weights);
                FuzzOp::decode([tag, rng.gen(), rng.gen(), rng.gen(), rng.gen()])
            })
            .collect();
        let exit = FuzzExit::decode([
            weighted(&mut rng, &exit_weights),
            rng.gen(),
            rng.gen(),
            rng.gen(),
            rng.gen(),
        ]);
        blocks.push(FuzzBlock { ops, exit });
    }
    // Enough fuel for low-threshold promotion (bbm=2, sbm=6) to fire on
    // looping CFGs, small enough that a candidate stays milliseconds.
    let fuel = rng.gen_range(60..300u32);
    FuzzProgram { fuel, blocks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for p in PROFILES {
            assert_eq!(generate(p, 42), generate(p, 42), "{}", p.name());
            assert_ne!(generate(p, 1), generate(p, 2), "{}", p.name());
        }
    }

    #[test]
    fn profiles_bias_their_stressors() {
        let count = |p: Profile, pred: fn(&FuzzOp) -> bool| -> usize {
            (0..40)
                .flat_map(|s| generate(p, s).blocks)
                .flat_map(|b| b.ops)
                .filter(pred)
                .count()
        };
        assert!(count(Profile::Fp, |o| matches!(o, FuzzOp::Fp { .. })) > 40);
        assert!(count(Profile::RepString, |o| matches!(o, FuzzOp::Rep { .. })) > 20);
        assert!(
            count(Profile::Smc, |o| matches!(o, FuzzOp::Patchable { .. } | FuzzOp::Patch { .. }))
                > 20
        );
        assert!(count(Profile::FaultBoundary, |o| matches!(o, FuzzOp::Edge { .. })) > 20);
        // Edge probes never appear outside their profile.
        assert_eq!(count(Profile::Alu, |o| matches!(o, FuzzOp::Edge { .. })), 0);
    }

    #[test]
    fn profile_names_round_trip() {
        for p in PROFILES {
            assert_eq!(Profile::parse(p.name()), Some(p));
        }
        assert_eq!(Profile::parse("nope"), None);
    }
}
