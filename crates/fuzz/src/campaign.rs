//! The generation-synchronous fuzzing soup.
//!
//! Determinism is the design center: the campaign is a pure function of
//! `(seed, iters, profile, injection)` — never of `--jobs`. Candidates
//! are derived from `prng::derive(seed, global_index)`, each generation
//! is a **fixed-size batch** built from the corpus snapshot at the
//! generation barrier, the fleet pool evaluates the batch in parallel
//! but returns results in index order, and coverage/corpus updates (and
//! shrinks, which run on the coordinator) fold strictly in index order.
//! Workers only change *who* evaluates a candidate, never which
//! candidates exist or how their results are folded — so the merged
//! artifact and the corpus trajectory are byte-identical at any worker
//! count.

use crate::cov::{edges_of, CovMap, Edge};
use crate::gen::{generate, Profile, PROFILES};
use crate::mutate::mutate;
use crate::oracle::{run_differential, run_lane, Divergence, Lane, LaneOutcome, Verdict};
use crate::shrink::shrink;
use darco_fleet::{deterministic_metric, LiveHub, Pool, TaskError};
use darco_guest::prng::{derive, Rng, SmallRng};
use darco_obs::{JsonWriter, Registry};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Candidates per generation. Fixed (never scaled by `--jobs`) so the
/// corpus/coverage trajectory is identical at any worker count.
pub const GENERATION: usize = 24;

/// Probability that a candidate is a mutant of corpus parents rather
/// than a fresh profile generation (once the corpus has two entries).
const MUTATE_BIAS: f64 = 0.75;

/// Campaign options (the `darco-fuzz run` flags).
#[derive(Debug, Clone)]
pub struct FuzzOpts {
    /// Master seed: the whole campaign derives from it.
    pub seed: u64,
    /// Total candidate executions (rounded up to whole generations).
    pub iters: u64,
    /// Worker threads evaluating candidates.
    pub jobs: usize,
    /// Restrict generation to one profile (default: cycle all six).
    pub profile: Option<Profile>,
    /// Test-only bug injection planted in every translating lane.
    pub inject: Option<darco_tol::Injection>,
    /// Output directory (artifact, reproducers, flight dumps, corpus).
    pub out_dir: PathBuf,
    /// Live-telemetry bind address (`darco-top` connects here).
    pub live: Option<String>,
}

impl Default for FuzzOpts {
    fn default() -> Self {
        FuzzOpts {
            seed: 1,
            iters: 200,
            jobs: 1,
            profile: None,
            inject: None,
            out_dir: PathBuf::from("fuzz-out"),
            live: None,
        }
    }
}

/// One divergence class the campaign hit, with its minimized reproducer.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable divergence label ([`crate::oracle::DivKind::label`], or
    /// `worker-panic`).
    pub label: String,
    /// Human-readable detail from the first hit.
    pub detail: String,
    /// Global candidate index of the first hit.
    pub index: u64,
    /// The minimized reproducer (equal to the original candidate for
    /// `worker-panic`, which the oracle cannot re-classify).
    pub minimized: darco_workloads::fuzzprog::FuzzProgram,
    /// Oracle probes the shrinker spent.
    pub probes: usize,
    /// Further candidates that hit the same label (not re-shrunk).
    pub dup_count: u64,
    /// Where the reproducer JSON was written.
    pub repro_path: Option<PathBuf>,
    /// Where the flight dump was written.
    pub flight_path: Option<PathBuf>,
}

/// What a finished campaign produced.
#[derive(Debug)]
pub struct CampaignSummary {
    /// Campaign name (`fuzz-<seed>`).
    pub name: String,
    /// Candidates evaluated.
    pub execs: u64,
    /// The interesting-input corpus, in discovery order.
    pub corpus: Vec<darco_workloads::fuzzprog::FuzzProgram>,
    /// The campaign-global coverage map.
    pub cov: CovMap,
    /// Distinct divergence classes, in discovery order.
    pub findings: Vec<Finding>,
    /// Merged deterministic metrics (lanes of every clean candidate,
    /// plus the `fuzz.*` campaign counters).
    pub metrics: Registry,
}

impl CampaignSummary {
    /// Total divergent candidates (first hits plus duplicates).
    pub fn divergences(&self) -> u64 {
        self.findings.iter().map(|f| 1 + f.dup_count).sum()
    }

    /// The merged campaign artifact: a pure function of the simulated
    /// executions (no wall-clock values, no paths), byte-identical for
    /// any worker count.
    pub fn artifact_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj(None);
        w.field_str("campaign", &self.name);
        w.field_num("execs", self.execs);
        w.field_num("corpus_size", self.corpus.len());
        w.field_num("cov_edges", self.cov.len());
        w.field_num("divergences", self.divergences());
        w.begin_arr(Some("findings"));
        for f in &self.findings {
            let mut e = JsonWriter::new();
            e.begin_obj(None);
            e.field_str("kind", &f.label);
            e.field_str("detail", &f.detail);
            e.field_num("index", f.index);
            e.field_num("dup_count", f.dup_count);
            e.field_num("min_blocks", f.minimized.blocks.len());
            e.field_num("min_ops", f.minimized.op_count());
            e.end_obj();
            w.elem_raw(&e.finish());
        }
        w.end_arr();
        w.field_raw("metrics", &self.metrics.to_json());
        w.end_obj();
        w.finish()
    }
}

/// What one worker reports for one candidate: the deterministic slice
/// only (edges + projected metrics), so folding is order-stable.
enum Eval {
    Clean { edges: Vec<Edge>, metrics: Registry, guest_insns: u64 },
    Diverged(Divergence),
}

fn evaluate(prog: &darco_workloads::fuzzprog::FuzzProgram, lanes: &[Lane]) -> Eval {
    match run_differential(prog, lanes) {
        Verdict::Clean(reports) => {
            let mut edges = Vec::new();
            let mut metrics = Registry::new();
            let mut guest_insns = 0;
            for (name, rep) in &reports {
                edges.extend(edges_of(name, &rep.metrics));
                metrics.merge(&rep.metrics);
                guest_insns += rep.guest_insns;
            }
            metrics.retain(deterministic_metric);
            Eval::Clean { edges, metrics, guest_insns }
        }
        Verdict::Diverged(d) => Eval::Diverged(d),
    }
}

/// Builds candidate `idx` from the corpus snapshot at the generation
/// barrier. Pure in `(seed, idx, profiles, corpus)`.
fn candidate(
    seed: u64,
    idx: u64,
    profiles: &[Profile],
    corpus: &[darco_workloads::fuzzprog::FuzzProgram],
) -> darco_workloads::fuzzprog::FuzzProgram {
    let mut rng = SmallRng::seed_from_u64(derive(seed, idx));
    if corpus.len() >= 2 && rng.gen_bool(MUTATE_BIAS) {
        let a = rng.gen_range(0..corpus.len());
        let b = rng.gen_range(0..corpus.len());
        mutate(&corpus[a], &corpus[b], &mut rng)
    } else {
        let p = profiles[idx as usize % profiles.len()];
        generate(p, rng.gen())
    }
}

/// Writes the reproducer JSON and a flight dump for a minimized finding.
/// For lane-attributed kinds the lane is re-run with the flight recorder
/// armed (a failing lane dumps its own trace); otherwise — or when that
/// run ends cleanly — a dump is synthesized carrying the divergence
/// context and the reproducer inline.
fn emit_finding(out_dir: &Path, f: &mut Finding, lanes: &[Lane]) {
    let repro = out_dir.join(format!("repro-{}-{}.json", f.label, f.index));
    if std::fs::write(&repro, f.minimized.to_json()).is_ok() {
        f.repro_path = Some(repro);
    }
    let flight = out_dir.join(format!("repro-{}-{}.flight.json", f.label, f.index));
    let flight_str = flight.to_string_lossy().into_owned();
    let lane_name = match &f.label {
        l if l.starts_with("lane-error-") => l.trim_start_matches("lane-error-"),
        l if l.starts_with("verify-") => l.trim_start_matches("verify-"),
        _ => "sbm",
    };
    let mut metrics = Registry::new();
    if let Some(lane) = lanes.iter().find(|l| l.name == lane_name) {
        let mut armed = lane.clone();
        armed.cfg.flight_path = Some(flight_str.clone());
        armed.cfg.trace_capacity = Some(256);
        if let LaneOutcome::Done(r) = run_lane(&armed, &f.minimized.lower()) {
            metrics = r.metrics.clone();
        }
    }
    if !flight.exists() {
        // The lane ended cleanly (cross-lane or counter divergence):
        // synthesize the dump with the reproducer embedded.
        let mut repro_json = JsonWriter::new();
        repro_json.begin_obj(None);
        repro_json.field_str("kind", &f.label);
        repro_json.field_str("detail", &f.detail);
        repro_json.field_raw("program", &f.minimized.to_json());
        repro_json.end_obj();
        let dump = darco_obs::flight::flight_dump_with(
            &format!("fuzz divergence: {}", f.detail),
            &[],
            0,
            &metrics,
            &[("fuzz", &repro_json.finish())],
        );
        if std::fs::write(&flight, dump).is_err() {
            return;
        }
    }
    f.flight_path = Some(flight);
}

struct LiveFeed {
    hub: Arc<LiveHub>,
    mirror: Registry,
    epoch: u64,
}

impl LiveFeed {
    fn bind(addr: &str, name: &str, generations: usize, jobs: usize) -> Option<LiveFeed> {
        match LiveHub::bind(addr) {
            Ok((hub, bound)) => {
                eprintln!("live telemetry on {bound} (darco-top {bound})");
                let t = hub.now_ms();
                hub.publish(
                    Some(&darco_fleet::live::model_key(0, 0)),
                    &darco_fleet::live::campaign_event(t, name, generations, jobs, GENERATION as u64),
                );
                Some(LiveFeed { hub, mirror: Registry::new(), epoch: 0 })
            }
            Err(e) => {
                eprintln!("warning: could not bind live telemetry on {addr}: {e}");
                None
            }
        }
    }

    /// Publishes one generation barrier: a finished job row, the fuzz
    /// stats line, and the campaign-registry delta since the last one.
    fn generation(&mut self, gen: u64, insns: u64, reg: &Registry, stats: (u64, u64, u64, u64)) {
        let t = self.hub.now_ms();
        let key = darco_fleet::live::model_key(1, gen);
        self.hub.publish(
            Some(&key),
            &darco_fleet::live::job_event(t, gen, &format!("fuzz:gen{gen}"), "done", Some("ok"), 0),
        );
        self.hub.publish(
            Some(&darco_fleet::live::model_key(2, gen)),
            &darco_fleet::live::progress_event(t, gen, 0, insns, 0.0, (0, 0, insns), 0),
        );
        self.mirror.sync_from(reg);
        let delta = self.mirror.delta_since(self.epoch);
        self.epoch = self.mirror.epoch();
        if !delta.is_empty() {
            self.hub.publish(
                Some(&darco_fleet::live::model_key(3, 0)),
                &darco_fleet::live::delta_event(t, 0, &delta),
            );
        }
        let (execs, corpus, edges, divergences) = stats;
        self.hub.publish(
            Some(&darco_fleet::live::model_key(4, 0)),
            &darco_fleet::live::fuzz_event(t, execs, corpus, edges, divergences),
        );
    }

    fn end(&self, ok: usize, failed: usize) {
        let t = self.hub.now_ms();
        self.hub
            .publish(Some(&darco_fleet::live::model_key(9, 0)), &darco_fleet::live::end_event(t, ok, failed));
        self.hub.close();
    }
}

/// Runs a campaign.
///
/// # Errors
/// Output-directory creation; everything downstream is reported in the
/// summary instead of failing the campaign.
pub fn run(opts: &FuzzOpts) -> Result<CampaignSummary, String> {
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("creating {}: {e}", opts.out_dir.display()))?;
    let name = format!("fuzz-{}", opts.seed);
    let profiles: Vec<Profile> = match opts.profile {
        Some(p) => vec![p],
        None => PROFILES.to_vec(),
    };
    let lanes = crate::oracle::lanes(opts.inject);
    let pool = Pool::new(opts.jobs.max(1));

    let seeds = profiles.len() as u64;
    let generations =
        (opts.iters.saturating_sub(seeds)).div_ceil(GENERATION as u64) as usize;
    let mut live = opts
        .live
        .as_deref()
        .and_then(|a| LiveFeed::bind(a, &name, generations, opts.jobs.max(1)));

    let mut cov = CovMap::new();
    let mut corpus: Vec<darco_workloads::fuzzprog::FuzzProgram> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    let mut metrics = Registry::new();
    let mut execs = 0u64;
    let mut total_insns = 0u64;
    let mut next_idx = 0u64;
    let mut poisoned = false;

    // One batch = build candidates from the corpus snapshot, evaluate on
    // the pool (results return in index order), fold sequentially.
    let run_batch = |batch: Vec<darco_workloads::fuzzprog::FuzzProgram>,
                         first_idx: u64,
                         cov: &mut CovMap,
                         corpus: &mut Vec<darco_workloads::fuzzprog::FuzzProgram>,
                         findings: &mut Vec<Finding>,
                         metrics: &mut Registry,
                         execs: &mut u64,
                         total_insns: &mut u64,
                         poisoned: &mut bool| {
        let lanes_cl = lanes.clone();
        let results = pool.map(batch.clone(), move |_, prog| evaluate(prog, &lanes_cl));
        for (k, res) in results.into_iter().enumerate() {
            let idx = first_idx + k as u64;
            let prog = &batch[k];
            let outcome = match res {
                Ok(eval) => eval,
                Err(TaskError::Skipped) => {
                    *poisoned = true;
                    continue;
                }
                Err(TaskError::Panicked(msg)) => Eval::Diverged(Divergence {
                    kind: crate::oracle::DivKind::LaneError { lane: "worker" },
                    detail: format!("worker panic: {msg}"),
                }),
            };
            *execs += 1;
            match outcome {
                Eval::Clean { edges, metrics: m, guest_insns } => {
                    *total_insns += guest_insns;
                    if cov.add_all(edges) > 0 {
                        corpus.push(prog.clone());
                    }
                    metrics.merge(&m);
                }
                Eval::Diverged(d) => {
                    let label = d.kind.label();
                    if let Some(f) = findings.iter_mut().find(|f| f.label == label) {
                        f.dup_count += 1;
                        continue;
                    }
                    let is_panic = matches!(
                        d.kind,
                        crate::oracle::DivKind::LaneError { lane: "worker" }
                    );
                    let (minimized, probes) = if is_panic {
                        (prog.clone(), 0)
                    } else {
                        shrink(prog, &lanes, &d.kind)
                    };
                    let mut f = Finding {
                        label,
                        detail: d.detail,
                        index: idx,
                        minimized,
                        probes,
                        dup_count: 0,
                        repro_path: None,
                        flight_path: None,
                    };
                    emit_finding(&opts.out_dir, &mut f, &lanes);
                    eprintln!(
                        "divergence [{}] at candidate {idx}: {} (minimized to {} ops in {} probes)",
                        f.label,
                        f.detail,
                        f.minimized.op_count(),
                        f.probes
                    );
                    findings.push(f);
                }
            }
        }
    };

    // Seed corpus: one fresh generation per profile.
    let seed_batch: Vec<_> =
        (0..seeds).map(|i| generate(profiles[i as usize % profiles.len()], derive(opts.seed, i))).collect();
    next_idx += seeds;
    run_batch(
        seed_batch,
        0,
        &mut cov,
        &mut corpus,
        &mut findings,
        &mut metrics,
        &mut execs,
        &mut total_insns,
        &mut poisoned,
    );

    for gen in 0..generations as u64 {
        if poisoned {
            break;
        }
        let batch: Vec<_> = (0..GENERATION as u64)
            .map(|k| candidate(opts.seed, next_idx + k, &profiles, &corpus))
            .collect();
        let first = next_idx;
        next_idx += GENERATION as u64;
        run_batch(
            batch,
            first,
            &mut cov,
            &mut corpus,
            &mut findings,
            &mut metrics,
            &mut execs,
            &mut total_insns,
            &mut poisoned,
        );
        let divergences: u64 = findings.iter().map(|f| 1 + f.dup_count).sum();
        if let Some(feed) = live.as_mut() {
            let mut snap = metrics.clone();
            stamp_fuzz_counters(&mut snap, execs, corpus.len(), &cov, divergences);
            feed.generation(gen, total_insns, &snap, (execs, corpus.len() as u64, cov.len() as u64, divergences));
        }
    }

    stamp_fuzz_counters(&mut metrics, execs, corpus.len(), &cov, {
        findings.iter().map(|f| 1 + f.dup_count).sum()
    });

    let summary = CampaignSummary { name, execs, corpus, cov, findings, metrics };

    // Persist the corpus and the merged artifact.
    let corpus_dir = opts.out_dir.join("corpus");
    if std::fs::create_dir_all(&corpus_dir).is_ok() {
        for (i, p) in summary.corpus.iter().enumerate() {
            let _ = std::fs::write(corpus_dir.join(format!("cand-{i:05}.json")), p.to_json());
        }
    }
    let _ = std::fs::write(opts.out_dir.join("fuzz-artifact.json"), summary.artifact_json());

    if let Some(feed) = live.as_ref() {
        feed.end(summary.execs as usize, summary.findings.len());
    }
    Ok(summary)
}

/// Writes the campaign-level `fuzz.*` counters into a registry.
fn stamp_fuzz_counters(reg: &mut Registry, execs: u64, corpus: usize, cov: &CovMap, div: u64) {
    reg.set_counter("fuzz.execs", execs);
    reg.set_counter("fuzz.corpus_size", corpus as u64);
    reg.set_counter("fuzz.divergences", div);
    cov.report_into(reg);
}
