//! Minimizer property test: with an injected translator bug, the
//! shrinker converges to a tiny reproducer that still diverges with the
//! same kind, and re-running the whole procedure is deterministic.

use darco_fuzz::{generate, lanes, run_differential, shrink, Profile, Verdict};
use darco_tol::{BugKind, Injection};

#[test]
fn injected_bad_fold_shrinks_to_tiny_deterministic_reproducer() {
    let lanes = lanes(Some(Injection {
        kind: BugKind::OptimizerBadFold,
        translation_ordinal: 0,
    }));

    // Find a diverging candidate among the first few ALU seeds (the
    // injected fold perturbs an early translation, so promotion-heavy
    // candidates hit it quickly).
    let (prog, kind) = (0..20)
        .find_map(|s| {
            let p = generate(Profile::Alu, s);
            match run_differential(&p, &lanes) {
                Verdict::Diverged(d) => Some((p, d.kind)),
                Verdict::Clean(_) => None,
            }
        })
        .expect("an injected bad-fold must surface within 20 ALU seeds");

    let (min1, probes1) = shrink(&prog, &lanes, &kind);
    assert!(
        min1.op_count() <= 8,
        "minimized reproducer should be tiny, got {} ops",
        min1.op_count()
    );
    assert!(min1.op_count() <= prog.op_count());

    // The minimized program still diverges with the same kind.
    match run_differential(&min1, &lanes) {
        Verdict::Diverged(d) => assert_eq!(d.kind, kind),
        Verdict::Clean(_) => panic!("minimized reproducer no longer diverges"),
    }

    // Re-running the shrinker is byte-for-byte deterministic.
    let (min2, probes2) = shrink(&prog, &lanes, &kind);
    assert_eq!(min1, min2);
    assert_eq!(probes1, probes2);

    // And the reproducer round-trips through its JSON wire form.
    let parsed =
        darco_workloads::fuzzprog::FuzzProgram::parse(&min1.to_json()).expect("round trip");
    assert_eq!(parsed, min1);
}
