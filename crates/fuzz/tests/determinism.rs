//! The fuzzing determinism contract (mirrors the fleet's): same seed ⇒
//! byte-identical merged artifact and identical corpus/coverage
//! trajectory at any `--jobs` count, and coverage strictly grows over
//! the seed corpus once the soup evolves.

use darco_fuzz::campaign::{run, FuzzOpts};

fn opts(seed: u64, iters: u64, jobs: usize, dir: &str) -> FuzzOpts {
    let out = std::env::temp_dir().join(format!("darco-fuzz-test-{dir}"));
    let _ = std::fs::remove_dir_all(&out);
    FuzzOpts { seed, iters, jobs, profile: None, inject: None, out_dir: out, live: None }
}

fn corpus_files(dir: &std::path::Path) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if let Ok(rd) = std::fs::read_dir(dir.join("corpus")) {
        for e in rd.flatten() {
            out.push((
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read_to_string(e.path()).unwrap(),
            ));
        }
    }
    out.sort();
    out
}

#[test]
fn artifact_and_corpus_are_identical_for_any_worker_count() {
    let mut artifacts = Vec::new();
    let mut corpora = Vec::new();
    for jobs in [1usize, 2, 8] {
        let o = opts(11, 54, jobs, &format!("jobs{jobs}"));
        let s = run(&o).expect("campaign runs");
        assert!(s.findings.is_empty(), "clean build must not diverge: {:?}", s.findings);
        artifacts.push(s.artifact_json());
        corpora.push(corpus_files(&o.out_dir));
        let _ = std::fs::remove_dir_all(&o.out_dir);
    }
    assert_eq!(artifacts[0], artifacts[1], "jobs=1 vs jobs=2 artifact");
    assert_eq!(artifacts[0], artifacts[2], "jobs=1 vs jobs=8 artifact");
    assert_eq!(corpora[0], corpora[1], "jobs=1 vs jobs=2 corpus");
    assert_eq!(corpora[0], corpora[2], "jobs=1 vs jobs=8 corpus");
}

#[test]
fn coverage_strictly_grows_past_the_seed_corpus() {
    // Seed corpus only (iters == number of profiles: zero generations).
    let o_seed = opts(11, 6, 2, "cov-seed");
    let seed_only = run(&o_seed).expect("seed campaign");
    let _ = std::fs::remove_dir_all(&o_seed.out_dir);
    // Same seed with evolved generations on top.
    let o_full = opts(11, 54, 2, "cov-full");
    let full = run(&o_full).expect("full campaign");
    let _ = std::fs::remove_dir_all(&o_full.out_dir);
    assert!(
        full.cov.len() > seed_only.cov.len(),
        "evolution must find new coverage edges: {} vs {}",
        full.cov.len(),
        seed_only.cov.len()
    );
    assert!(full.execs > seed_only.execs);
    assert_eq!(
        full.metrics.counter_value("fuzz.cov.edges"),
        Some(full.cov.len() as u64)
    );
}
