//! Criterion micro-benchmarks of the infrastructure's core data paths:
//! guest decode, interpreter dispatch, host emulator throughput, the
//! optimizer pipeline, code-cache lookup, and the timing core.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use darco_guest::program::DEFAULT_CODE_BASE;
use darco_guest::{exec, Asm, Cond, GuestState, Gpr};
use darco_host::sink::NullSink;
use darco_host::{HostEmulator, ProfTable};
use darco_timing::{InOrderCore, TimingConfig};
use darco_tol::{Tol, TolConfig, TolEvent};

fn counting_loop(iters: i32) -> darco_guest::GuestProgram {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Ecx, iters);
    let top = a.here();
    a.add_rr(Gpr::Eax, Gpr::Ecx);
    a.alu_ri(darco_guest::AluOp::Xor, Gpr::Ebx, 0x5A);
    a.alu_ri(darco_guest::AluOp::Sub, Gpr::Ecx, 1);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    a.into_program()
}

fn bench_decode(c: &mut Criterion) {
    let p = counting_loop(1);
    let mut g = c.benchmark_group("guest");
    g.throughput(Throughput::Elements(p.static_insn_count() as u64));
    g.bench_function("decode_image", |b| {
        b.iter(|| {
            let mut off = 0;
            let mut n = 0;
            while off < p.code.len() {
                let (_, len) = darco_guest::decode(&p.code[off..]).unwrap();
                off += len;
                n += 1;
            }
            n
        })
    });
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let p = counting_loop(10_000);
    let mut g = c.benchmark_group("interpreter");
    g.throughput(Throughput::Elements(40_001));
    g.bench_function("dispatch_loop", |b| {
        b.iter_batched(
            || GuestState::boot(&p),
            |mut st| {
                loop {
                    if exec::step(&mut st).unwrap().next == exec::Next::Halt {
                        break;
                    }
                }
                st
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_tol_full_stack(c: &mut Criterion) {
    let p = counting_loop(20_000);
    let mut g = c.benchmark_group("tol");
    g.throughput(Throughput::Elements(80_001));
    g.sample_size(20);
    g.bench_function("translate_and_run", |b| {
        b.iter_batched(
            || (GuestState::boot(&p), Tol::new(TolConfig::default())),
            |(mut st, mut tol)| {
                loop {
                    match tol.run(&mut st, u64::MAX, &mut NullSink) {
                        TolEvent::Halted => break,
                        TolEvent::PageFault { addr, .. } => st.mem.map_zero(addr >> 12),
                        ev => panic!("{ev:?}"),
                    }
                }
                st
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_host_emulator(c: &mut Criterion) {
    use darco_host::{HAluOp, HInsn, HReg};
    // A tight self-loop: chkpt + 6 ALU ops + gcnt + branch.
    let code = vec![
        HInsn::Chkpt,
        HInsn::AluI { op: HAluOp::Add, rd: HReg(16), ra: HReg(16), imm: 1 },
        HInsn::Alu { op: HAluOp::Xor, rd: HReg(17), ra: HReg(17), rb: HReg(16) },
        HInsn::AluI { op: HAluOp::Add, rd: HReg(18), ra: HReg(18), imm: 3 },
        HInsn::Alu { op: HAluOp::Or, rd: HReg(19), ra: HReg(19), rb: HReg(18) },
        HInsn::AluI { op: HAluOp::Sub, rd: HReg(20), ra: HReg(20), imm: 1 },
        HInsn::Alu { op: HAluOp::And, rd: HReg(21), ra: HReg(21), rb: HReg(20) },
        HInsn::Gcnt { n: 4, sb: true },
        HInsn::B { rel: -9 },
    ];
    let mut g = c.benchmark_group("host_emu");
    g.throughput(Throughput::Elements(9 * 25_000));
    g.bench_function("alu_loop", |b| {
        b.iter(|| {
            let mut emu = HostEmulator::new();
            let mut mem = darco_guest::GuestMem::new();
            let ibtc = darco_host::emu::IbtcTable::new();
            let mut prof = ProfTable::new();
            emu.execute(&code, 0, &mut mem, &ibtc, &mut prof, 100_000, &mut NullSink)
        })
    });
    g.finish();
}

fn bench_timing_core(c: &mut Criterion) {
    use darco_host::sink::{EventKind, InsnSink, RetireEvent};
    let mut g = c.benchmark_group("timing");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("inorder_100k_events", |b| {
        b.iter(|| {
            let mut core = InOrderCore::new(TimingConfig::default());
            for i in 0..100_000u64 {
                core.retire(&RetireEvent {
                    host_pc: i % 64,
                    kind: if i % 5 == 0 {
                        EventKind::Load { addr: (i * 16) as u32 & 0xFFFF, bytes: 4 }
                    } else {
                        EventKind::IntAlu
                    },
                    dst: Some(16 + (i % 8) as u8),
                    srcs: [Some(16 + ((i + 1) % 8) as u8), None],
                });
            }
            core.stats().cycles
        })
    });
    g.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    use darco_tol::translate::{build_bb_region, decode_block};
    let p = counting_loop(1);
    let mut mem = darco_guest::GuestMem::new();
    p.map_into(&mut mem);
    let plan = decode_block(&mem, DEFAULT_CODE_BASE + 6).unwrap();
    let mut g = c.benchmark_group("optimizer");
    g.bench_function("bb_translate_and_o1", |b| {
        b.iter(|| {
            let mut region = build_bb_region(&plan, None, false);
            darco_ir::passes::run_pipeline(&mut region, darco_ir::OptLevel::O1);
            region.insts.len()
        })
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_decode,
    bench_interpreter,
    bench_tol_full_stack,
    bench_host_emulator,
    bench_timing_core,
    bench_optimizer
);
criterion_main!(micro);
