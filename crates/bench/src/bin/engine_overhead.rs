//! **BENCH_engine** — pins the cost of the re-entrant stepping engine.
//!
//! Two measurements, written to `BENCH_engine.json`:
//!
//! - `quanta`: wall-clock cost of driving the system through
//!   `Engine::step(quantum)` at 1k / 10k / 100k guest-instruction
//!   quanta versus the monolithic run (one unbounded `step` call — what
//!   `System::run` does). Budget: ≤ 2% overhead at the 100k quantum,
//!   the fleet scheduler's default time slice.
//! - `warmup_restore`: time to reach a mid-run execution point by
//!   checkpoint restore versus functional re-execution from zero — the
//!   speedup the sampling methodology's warm-start bank banks on.
//!
//! `--gate FILE` re-checks a committed measurement instead of running
//! (exit 1 when out of budget), so CI never gates on a wall clock taken
//! inside a noisy container.

use darco::json::JsonWriter;
use darco::{Snapshot, StepExit, SystemConfig, System};
use darco_bench::Scale;
use darco_obs::json::{parse, JsonValue};
use darco_workloads::benchmarks;
use std::time::Instant;

/// Same representative subset (one benchmark per suite) as `speed.rs`.
const SET: [usize; 3] = [0, 13, 24];
/// Repetitions per configuration; the minimum wall time wins.
const REPS: usize = 3;
/// Stepping quanta under test. 100k is `SchedOpts::default().quantum`.
const QUANTA: [u64; 3] = [1_000, 10_000, 100_000];
/// Overhead budget at the 100k (fleet default) quantum.
const BUDGET_100K: f64 = 0.02;

/// Drives one engine to completion in `quantum`-sized steps, returning
/// retired guest instructions.
fn drive(cfg: SystemConfig, program: darco_guest::GuestProgram, quantum: u64) -> u64 {
    let mut e = System::new(cfg, program).start();
    loop {
        match e.step(quantum) {
            Ok(StepExit::Ended | StepExit::GuestFault) => return e.insns(),
            Ok(_) => {}
            Err(err) => panic!("engine run failed: {err}"),
        }
    }
}

/// Runs the subset once at the given quantum (`u64::MAX` = monolithic).
fn run_set(scale: Scale, quantum: u64) -> (u64, f64) {
    let mut insns = 0u64;
    let mut wall = 0.0f64;
    for &idx in &SET {
        let b = &benchmarks()[idx];
        let program = darco_workloads::build(&b.profile.clone().scaled(scale.0, scale.1));
        let t0 = Instant::now();
        insns += drive(SystemConfig::default(), program, quantum);
        wall += t0.elapsed().as_secs_f64();
    }
    (insns, wall)
}

/// Best-of-`REPS` wall time for one configuration.
fn best(runs: &[(u64, f64)]) -> (u64, f64) {
    (runs[0].0, runs.iter().map(|r| r.1).fold(f64::INFINITY, f64::min))
}

/// Measures restore-vs-re-execution for the warm-start bank: reach the
/// 60% point of the first subset benchmark both ways.
fn warmup_restore(scale: Scale) -> (u64, f64, f64) {
    let b = &benchmarks()[SET[0]];
    let build = || darco_workloads::build(&b.profile.clone().scaled(scale.0, scale.1));
    let total = drive(SystemConfig::default(), build(), u64::MAX);
    let mut e = System::new(SystemConfig::default(), build()).start();
    // Cache-mode fuel stops land at translation granularity, so the
    // boundary may overshoot the requested point; the actual checkpoint
    // count is whatever the boundary landed on.
    while e.insns() < total * 6 / 10 {
        e.step(total * 6 / 10 - e.insns()).expect("warm-up prefix run");
    }
    let snap = Snapshot::from_bytes(e.checkpoint().expect("checkpoint").into_bytes())
        .expect("round trip");
    let at = snap.guest_insns();
    let mut reexec = f64::INFINITY;
    let mut restore = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let mut f = System::new(SystemConfig::default(), build()).start();
        while f.insns() < at {
            f.step(at - f.insns()).expect("re-execution");
        }
        reexec = reexec.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let mut f = System::new(SystemConfig::default(), build()).start();
        f.restore(&snap).expect("restore");
        restore = restore.min(t0.elapsed().as_secs_f64());
        assert_eq!(f.insns(), at);
    }
    (at, reexec, restore)
}

/// `--gate FILE`: re-checks a committed measurement. Exit 1 when the
/// 100k-quantum overhead exceeds the budget or restore is not faster
/// than re-execution.
fn gate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let overhead = doc
        .get("quanta")
        .and_then(|q| q.get("100000"))
        .and_then(|q| q.get("overhead"))
        .and_then(JsonValue::as_num)
        .ok_or("missing quanta.100000.overhead")?;
    if overhead > BUDGET_100K {
        return Err(format!(
            "stepping overhead at the 100k quantum is {:+.2}% (budget {:.0}%)",
            overhead * 100.0,
            BUDGET_100K * 100.0
        ));
    }
    let speedup = doc
        .get("warmup_restore")
        .and_then(|w| w.get("speedup"))
        .and_then(JsonValue::as_num)
        .ok_or("missing warmup_restore.speedup")?;
    if speedup < 1.0 {
        return Err(format!("checkpoint restore is slower than re-execution ({speedup:.2}x)"));
    }
    println!(
        "engine gate OK: 100k-quantum overhead {:+.2}% (budget {:.0}%), warm-up restore {:.1}x",
        overhead * 100.0,
        BUDGET_100K * 100.0,
        speedup
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--gate") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or("BENCH_engine.json");
        if let Err(e) = gate(path) {
            eprintln!("engine gate FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }

    let scale = Scale::from_args();
    let mut mono_runs = Vec::new();
    let mut quanta_runs: Vec<Vec<(u64, f64)>> = vec![Vec::new(); QUANTA.len()];
    for _ in 0..REPS {
        mono_runs.push(run_set(scale, u64::MAX));
        for (qi, &q) in QUANTA.iter().enumerate() {
            quanta_runs[qi].push(run_set(scale, q));
        }
    }
    let (insns, mono_wall) = best(&mono_runs);
    println!("== Engine stepping overhead ({} workloads, best of {REPS}) ==", SET.len());
    println!("{:<12} {:>14} {:>10} {:>10} {:>10}", "quantum", "guest insns", "wall s", "MIPS", "overhead");
    println!(
        "{:<12} {:>14} {:>10.3} {:>10.2} {:>10}",
        "monolithic", insns, mono_wall, insns as f64 / mono_wall / 1e6, "-"
    );
    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_str("bench", "engine");
    w.field_str("scale", &format!("{}/{}", scale.0, scale.1));
    w.field_num("reps", REPS as u64);
    w.begin_obj(Some("monolithic"))
        .field_num("guest_insns", insns)
        .field_f64("wall_s", mono_wall)
        .field_f64("mips", insns as f64 / mono_wall / 1e6)
        .end_obj();
    w.begin_obj(Some("quanta"));
    for (qi, &q) in QUANTA.iter().enumerate() {
        let (qinsns, wall) = best(&quanta_runs[qi]);
        let overhead = wall / mono_wall - 1.0;
        println!(
            "{:<12} {:>14} {:>10.3} {:>10.2} {:>+9.2}%",
            q,
            qinsns,
            wall,
            qinsns as f64 / wall / 1e6,
            overhead * 100.0
        );
        w.begin_obj(Some(&q.to_string()))
            .field_f64("wall_s", wall)
            .field_f64("mips", qinsns as f64 / wall / 1e6)
            .field_f64("overhead", overhead)
            .end_obj();
    }
    w.end_obj();

    let (at, reexec, restore) = warmup_restore(scale);
    let speedup = reexec / restore;
    println!(
        "warm-up to {at} insns: re-execution {:.4}s, restore {:.4}s ({speedup:.1}x)",
        reexec, restore
    );
    w.begin_obj(Some("warmup_restore"))
        .field_num("checkpoint_insns", at)
        .field_f64("reexec_s", reexec)
        .field_f64("restore_s", restore)
        .field_f64("speedup", speedup)
        .end_obj();
    w.end_obj();
    std::fs::write("BENCH_engine.json", w.finish()).expect("write BENCH_engine.json");
    println!("wrote BENCH_engine.json");
}
