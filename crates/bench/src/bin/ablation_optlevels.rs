//! **A5** — Optimization level sweep (plug-and-play optimizer, §V-D):
//! O0 (straight translation), O1 (fold+DCE), O2 (+copy-prop/CSE),
//! O3 (+memory disambiguation, scheduling).

use darco_bench::{default_config, run_one, Scale};
use darco_ir::OptLevel;
use darco_workloads::benchmarks;

fn main() {
    let scale = Scale::from_args();
    println!("== A5: SBM emulation cost by optimization level ==");
    println!("{:<16} {:>8} {:>8} {:>8} {:>8}", "benchmark", "O0", "O1", "O2", "O3");
    for idx in [13usize, 17, 24, 0] {
        let b = &benchmarks()[idx];
        let mut cells = Vec::new();
        for lvl in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            let mut cfg = default_config();
            cfg.tol.opt_level = lvl;
            let r = run_one(b, scale, cfg);
            cells.push(r.sbm_emulation_cost);
        }
        println!(
            "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            b.name, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!("(lower is better; the drop from O0 to O3 is the optimizer's emulation-cost win)");
}
