//! **A5** — Optimization level sweep (plug-and-play optimizer, §V-D):
//! O0 (straight translation), O1 (fold+DCE), O2 (+copy-prop/CSE),
//! O3 (+memory disambiguation, scheduling).

use darco_bench::{default_config, jobs_from_args, run_jobs, Scale};
use darco_ir::OptLevel;
use darco_workloads::benchmarks;

const LEVELS: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];

fn main() {
    let scale = Scale::from_args();
    let all = benchmarks();
    // Four jobs per benchmark (one per level) on the fleet pool.
    let mut work = Vec::new();
    for idx in [13usize, 17, 24, 0] {
        for lvl in LEVELS {
            let mut cfg = default_config();
            cfg.tol.opt_level = lvl;
            work.push((all[idx].clone(), cfg));
        }
    }
    let rows = run_jobs(scale, jobs_from_args(), work);
    println!("== A5: SBM emulation cost by optimization level ==");
    println!("{:<16} {:>8} {:>8} {:>8} {:>8}", "benchmark", "O0", "O1", "O2", "O3");
    for group in rows.chunks(LEVELS.len()) {
        let cells: Vec<f64> = group.iter().map(|(_, r)| r.sbm_emulation_cost).collect();
        println!(
            "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            group[0].0.name, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!("(lower is better; the drop from O0 to O3 is the optimizer's emulation-cost win)");
}
