//! **A2** — Translation chaining and the IBTC (§V-D "minimum TOL
//! overhead"): disabling them must multiply TOL invocations (prologue +
//! lookup overhead).

use darco_bench::{default_config, jobs_from_args, run_jobs, Scale};
use darco_workloads::benchmarks;

fn main() {
    let scale = Scale::from_args();
    let all = benchmarks();
    // Two jobs per benchmark — chained, then chaining+IBTC off — on the
    // fleet pool.
    let mut work = Vec::new();
    for idx in [0usize, 4, 13, 24, 28] {
        let b = &all[idx];
        work.push((b.clone(), default_config()));
        let mut cfg = default_config();
        cfg.tol.chaining = false;
        cfg.tol.ibtc = false;
        work.push((b.clone(), cfg));
    }
    let rows = run_jobs(scale, jobs_from_args(), work);
    println!("== A2: chaining + IBTC on/off ==");
    println!(
        "{:<16} {:>14} {:>14} {:>10}",
        "benchmark", "ovh% chained", "ovh% unchained", "dispatch x"
    );
    for pair in rows.chunks(2) {
        let [(b, on), (_, off)] = pair else { unreachable!("two jobs per benchmark") };
        let disp_ratio = (off.overhead.prologue + off.overhead.cache_lookup) as f64
            / (on.overhead.prologue + on.overhead.cache_lookup).max(1) as f64;
        println!(
            "{:<16} {:>13.1}% {:>13.1}% {:>10.1}",
            b.name,
            on.overhead_fraction() * 100.0,
            off.overhead_fraction() * 100.0,
            disp_ratio
        );
    }
}
