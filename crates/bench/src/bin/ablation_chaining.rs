//! **A2** — Translation chaining and the IBTC (§V-D "minimum TOL
//! overhead"): disabling them must multiply TOL invocations (prologue +
//! lookup overhead).

use darco_bench::{default_config, run_one, Scale};
use darco_workloads::benchmarks;

fn main() {
    let scale = Scale::from_args();
    println!("== A2: chaining + IBTC on/off ==");
    println!(
        "{:<16} {:>14} {:>14} {:>10}",
        "benchmark", "ovh% chained", "ovh% unchained", "dispatch x"
    );
    for idx in [0usize, 4, 13, 24, 28] {
        let b = &benchmarks()[idx];
        let on = run_one(b, scale, default_config());
        let mut cfg = default_config();
        cfg.tol.chaining = false;
        cfg.tol.ibtc = false;
        let off = run_one(b, scale, cfg);
        let disp_ratio = (off.overhead.prologue + off.overhead.cache_lookup) as f64
            / (on.overhead.prologue + on.overhead.cache_lookup).max(1) as f64;
        println!(
            "{:<16} {:>13.1}% {:>13.1}% {:>10.1}",
            b.name,
            on.overhead_fraction() * 100.0,
            off.overhead_fraction() * 100.0,
            disp_ratio
        );
    }
}
