//! **A4 / §III** — "Wide in-order or narrow out-of-order cores": IPC and
//! energy comparison of the two styles on identical co-designed
//! instruction streams.

use darco::SinkChoice;
use darco_bench::{default_config, jobs_from_args, run_jobs, with_timing, Scale};
use darco_workloads::benchmarks;

fn main() {
    let scale = Scale::from_args();
    let all = benchmarks();
    // Two jobs per benchmark — wide in-order, narrow out-of-order — on
    // the fleet pool.
    let mut work = Vec::new();
    for idx in [0usize, 4, 13, 24] {
        let b = &all[idx];
        let mut cfg = with_timing(default_config(), SinkChoice::InOrder);
        cfg.timing = darco_timing::TimingConfig::wide_inorder();
        cfg.power = true;
        work.push((b.clone(), cfg));
        let mut cfg = with_timing(default_config(), SinkChoice::OutOfOrder);
        cfg.timing = darco_timing::TimingConfig::narrow_ooo();
        cfg.power = true;
        work.push((b.clone(), cfg));
    }
    let rows = run_jobs(scale, jobs_from_args(), work);
    println!("== A4: wide in-order vs narrow out-of-order ==");
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>12}",
        "benchmark", "inord IPC", "ooo IPC", "inord mW", "ooo mW"
    );
    for pair in rows.chunks(2) {
        let [(b, ino), (_, ooo)] = pair else { unreachable!("two jobs per benchmark") };
        let (it, ot) = (ino.timing.as_ref().unwrap(), ooo.timing.as_ref().unwrap());
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>12.1} {:>12.1}",
            b.name,
            it.ipc(),
            ot.ipc(),
            ino.power.as_ref().unwrap().avg_power_mw,
            ooo.power.as_ref().unwrap().avg_power_mw,
        );
    }
    println!("(the co-designed bet: static scheduling lets the wide in-order core compete)");
}
