//! **A4 / §III** — "Wide in-order or narrow out-of-order cores": IPC and
//! energy comparison of the two styles on identical co-designed
//! instruction streams.

use darco_bench::{default_config, run_one, with_timing, Scale};
use darco::SinkChoice;
use darco_workloads::benchmarks;

fn main() {
    let scale = Scale::from_args();
    println!("== A4: wide in-order vs narrow out-of-order ==");
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>12}",
        "benchmark", "inord IPC", "ooo IPC", "inord mW", "ooo mW"
    );
    for idx in [0usize, 4, 13, 24] {
        let b = &benchmarks()[idx];
        let mut cfg = with_timing(default_config(), SinkChoice::InOrder);
        cfg.timing = darco_timing::TimingConfig::wide_inorder();
        cfg.power = true;
        let ino = run_one(b, scale, cfg);
        let mut cfg = with_timing(default_config(), SinkChoice::OutOfOrder);
        cfg.timing = darco_timing::TimingConfig::narrow_ooo();
        cfg.power = true;
        let ooo = run_one(b, scale, cfg);
        let (it, ot) = (ino.timing.unwrap(), ooo.timing.unwrap());
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>12.1} {:>12.1}",
            b.name,
            it.ipc(),
            ot.ipc(),
            ino.power.unwrap().avg_power_mw,
            ooo.power.unwrap().avg_power_mw,
        );
    }
    println!("(the co-designed bet: static scheduling lets the wide in-order core compete)");
}
