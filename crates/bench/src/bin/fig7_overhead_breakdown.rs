//! **E5 / Fig. 7** — Dynamic TOL overhead distribution across the paper's
//! seven categories: interpreter, BB translator, SB translator, prologue,
//! chaining, code-cache lookup, others.
//!
//! Paper shape: Physicsbench is dominated by interpretation + BB
//! translation (low dynamic-to-static ratio); the SB translator's share
//! is comparatively small everywhere.

use darco_bench::{default_config, run_suite, Scale};
use darco_workloads::Suite;

fn main() {
    let rows = run_suite(Scale::from_args(), |_| default_config());
    println!("== Fig. 7: TOL overhead breakdown (% of TOL overhead) ==");
    println!(
        "{:<16} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "benchmark", "interp", "bbxl", "sbxl", "prolog", "chain", "lookup", "others"
    );
    let print_row = |name: &str, o: &darco_tol::Overhead| {
        let t = o.total().max(1) as f64;
        println!(
            "{:<16} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            name,
            o.interpreter as f64 / t * 100.0,
            o.bb_translator as f64 / t * 100.0,
            o.sb_translator as f64 / t * 100.0,
            o.prologue as f64 / t * 100.0,
            o.chaining as f64 / t * 100.0,
            o.cache_lookup as f64 / t * 100.0,
            o.others as f64 / t * 100.0,
        );
    };
    for (b, r) in &rows {
        print_row(b.name, &r.overhead);
    }
    println!("{:-<76}", "");
    for s in [Suite::SpecInt, Suite::SpecFp, Suite::Physics] {
        let mut sum = darco_tol::Overhead::default();
        for (_, r) in rows.iter().filter(|(b, _)| b.suite == s) {
            sum.interpreter += r.overhead.interpreter;
            sum.bb_translator += r.overhead.bb_translator;
            sum.sb_translator += r.overhead.sb_translator;
            sum.prologue += r.overhead.prologue;
            sum.chaining += r.overhead.chaining;
            sum.cache_lookup += r.overhead.cache_lookup;
            sum.others += r.overhead.others;
        }
        print_row(&format!("avg {}", s.name()), &sum);
    }
    println!(
        "\npaper shape check: interpreter+BB-translator dominate Physicsbench;\n\
         the SB translator's share is comparatively small in SPEC suites."
    );
}
