//! **A1** — Lazy vs strict flag materialization (§V-D "DARCO writes to
//! the flag registers only if the written value is really going to be
//! consumed"): strict mode materializes all five flags at every
//! flag-writing instruction and must raise the SBM emulation cost.

use darco_bench::{default_config, jobs_from_args, run_jobs, suite_avg, Scale};
use darco_workloads::{benchmarks, Suite};

fn main() {
    let scale = Scale::from_args();
    let ints: Vec<_> = benchmarks().into_iter().filter(|b| b.suite == Suite::SpecInt).collect();
    // Two jobs per benchmark, lazy then strict, run on the fleet pool.
    let mut work = Vec::new();
    for b in &ints {
        work.push((b.clone(), default_config()));
        let mut cfg = default_config();
        cfg.tol.strict_flags = true;
        work.push((b.clone(), cfg));
    }
    let rows = run_jobs(scale, jobs_from_args(), work);
    let mut rows_lazy = Vec::new();
    let mut rows_strict = Vec::new();
    println!("== A1: lazy vs strict guest-flag materialization (SPECINT) ==");
    println!("{:<16} {:>10} {:>10} {:>8}", "benchmark", "lazy", "strict", "strict/lazy");
    for pair in rows.chunks(2) {
        let [(b, lazy), (_, strict)] = pair else { unreachable!("two jobs per benchmark") };
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>8.2}",
            b.name,
            lazy.sbm_emulation_cost,
            strict.sbm_emulation_cost,
            strict.sbm_emulation_cost / lazy.sbm_emulation_cost
        );
        rows_lazy.push((b.clone(), lazy.clone()));
        rows_strict.push((b.clone(), strict.clone()));
    }
    let l = suite_avg(&rows_lazy, Suite::SpecInt, |r| r.sbm_emulation_cost);
    let s = suite_avg(&rows_strict, Suite::SpecInt, |r| r.sbm_emulation_cost);
    println!("{:-<48}", "");
    println!("avg SBM cost: lazy {l:.2}, strict {s:.2} ({:.0}% increase)", (s / l - 1.0) * 100.0);
}
