//! **A1** — Lazy vs strict flag materialization (§V-D "DARCO writes to
//! the flag registers only if the written value is really going to be
//! consumed"): strict mode materializes all five flags at every
//! flag-writing instruction and must raise the SBM emulation cost.

use darco_bench::{default_config, run_one, suite_avg, Scale};
use darco_workloads::{benchmarks, Suite};

fn main() {
    let scale = Scale::from_args();
    let ints: Vec<_> = benchmarks().into_iter().filter(|b| b.suite == Suite::SpecInt).collect();
    let mut rows_lazy = Vec::new();
    let mut rows_strict = Vec::new();
    println!("== A1: lazy vs strict guest-flag materialization (SPECINT) ==");
    println!("{:<16} {:>10} {:>10} {:>8}", "benchmark", "lazy", "strict", "strict/lazy");
    for b in &ints {
        let lazy = run_one(b, scale, default_config());
        let mut cfg = default_config();
        cfg.tol.strict_flags = true;
        let strict = run_one(b, scale, cfg);
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>8.2}",
            b.name,
            lazy.sbm_emulation_cost,
            strict.sbm_emulation_cost,
            strict.sbm_emulation_cost / lazy.sbm_emulation_cost
        );
        rows_lazy.push((b.clone(), lazy));
        rows_strict.push((b.clone(), strict));
    }
    let l = suite_avg(&rows_lazy, Suite::SpecInt, |r| r.sbm_emulation_cost);
    let s = suite_avg(&rows_strict, Suite::SpecInt, |r| r.sbm_emulation_cost);
    println!("{:-<48}", "");
    println!("avg SBM cost: lazy {l:.2}, strict {s:.2} ({:.0}% increase)", (s / l - 1.0) * 100.0);
}
