//! **Verify overhead** — cost of running the static verifier on every
//! translation before cache insertion (the `TolConfig::verify` knob at
//! its default, `Fatal`).
//!
//! Runs the whole suite at default promotion thresholds and reports, per
//! workload, the wall-clock time spent translating versus inside the
//! verifier (IR check after each pipeline, DDG cross-check, host-code
//! check). Emits machine-readable `BENCH_verify.json`; the acceptance
//! budget for the default configuration is < 10% of translation time.

use darco::json::JsonWriter;
use darco_bench::{default_config, run_one, Scale};
use darco_workloads::benchmarks;

struct Row {
    name: String,
    translate_ns: u64,
    verify_ns: u64,
    regions: u64,
    findings: u64,
}

/// Verifier share of translation time, in percent. `translate_ns`
/// includes the verifier, so the share is verify / (translate - verify).
fn overhead_pct(translate_ns: u64, verify_ns: u64) -> f64 {
    let base = translate_ns.saturating_sub(verify_ns).max(1);
    verify_ns as f64 / base as f64 * 100.0
}

fn main() {
    // Default to 1/16 so the full-suite sweep stays quick; `--scale N/D`
    // overrides.
    let scale = if std::env::args().any(|a| a == "--scale") {
        Scale::from_args()
    } else {
        Scale(1, 16)
    };

    let mut rows: Vec<Row> = Vec::new();
    for b in benchmarks() {
        let r = run_one(&b, scale, default_config());
        let s = r.tol_stats;
        rows.push(Row {
            name: b.name.to_string(),
            translate_ns: s.translate_nanos,
            verify_ns: s.verify_nanos,
            regions: s.verify_regions,
            findings: s.verify_findings,
        });
    }

    println!("== verify overhead (scale {}/{}, default config) ==", scale.0, scale.1);
    println!("{:<16} {:>12} {:>12} {:>9} {:>8}", "benchmark", "translate_us", "verify_us", "overhead", "regions");
    let (mut t_total, mut v_total, mut regions, mut findings) = (0u64, 0u64, 0u64, 0u64);
    for row in &rows {
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>8.2}% {:>8}",
            row.name,
            row.translate_ns as f64 / 1e3,
            row.verify_ns as f64 / 1e3,
            overhead_pct(row.translate_ns, row.verify_ns),
            row.regions,
        );
        t_total += row.translate_ns;
        v_total += row.verify_ns;
        regions += row.regions;
        findings += row.findings;
    }
    let total_pct = overhead_pct(t_total, v_total);
    println!("{:-<62}", "");
    println!(
        "{:<16} {:>12.1} {:>12.1} {:>8.2}% {:>8}   (budget < 10%)",
        "total",
        t_total as f64 / 1e3,
        v_total as f64 / 1e3,
        total_pct,
        regions,
    );

    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_str("bench", "verify_overhead");
    w.field_str("scale", &format!("{}/{}", scale.0, scale.1));
    w.begin_obj(Some("workloads"));
    for row in &rows {
        w.begin_obj(Some(&row.name))
            .field_num("translate_ns", row.translate_ns)
            .field_num("verify_ns", row.verify_ns)
            .field_f64("overhead_pct", overhead_pct(row.translate_ns, row.verify_ns))
            .field_num("regions", row.regions)
            .field_num("findings", row.findings)
            .end_obj();
    }
    w.end_obj();
    w.begin_obj(Some("total"))
        .field_num("translate_ns", t_total)
        .field_num("verify_ns", v_total)
        .field_f64("overhead_pct", total_pct)
        .field_num("regions", regions)
        .field_num("findings", findings)
        .field_f64("budget_pct", 10.0)
        .end_obj();
    w.end_obj();
    let json = w.finish();
    std::fs::write("BENCH_verify.json", &json).expect("write BENCH_verify.json");
    println!("\nwrote BENCH_verify.json");
}
