//! **Verify overhead** — cost of running the static verifier on every
//! translation before cache insertion, at both verification levels:
//!
//! * **structural** (`TolConfig::verify_level` default): the 10
//!   `InvariantKind` IR checks after each pipeline, the DDG cross-check
//!   and the host-code check. Budget: < 10% of translation time.
//! * **semantic**: everything above plus symbolic translation validation
//!   (`darco_ir::sym`) — the optimized region is proven observationally
//!   equivalent to the translator's input before cache insertion.
//!   Budget: the *semantic share* (`verify_sem_nanos`) adds <= 15% of
//!   translation time on top, with the structural share staying within
//!   its own 10%.
//!
//! Runs the whole suite at default promotion thresholds and reports, per
//! workload and level, the wall-clock time spent translating versus
//! inside the verifier. Emits machine-readable `BENCH_verify.json` and
//! exits 1 if either level busts its budget.
//!
//! Overhead ratios are wall-clock against wall-clock, so ambient load
//! inflates them (both numerator and denominator are small slices of a
//! preempted run). `--repeat N` (default 3) runs each level's sweep N
//! times and keeps the sweep with the lowest gated share — min-of-N is
//! the standard noise-rejection for "how cheap can this be" questions,
//! where the quietest run is the closest to the true cost.

use darco::json::JsonWriter;
use darco_bench::{default_config, run_one, Scale};
use darco_tol::VerifyLevel;
use darco_workloads::benchmarks;

struct Row {
    name: String,
    translate_ns: u64,
    verify_ns: u64,
    sem_ns: u64,
    regions: u64,
    findings: u64,
}

struct LevelReport {
    label: &'static str,
    /// Budget for this level's *gated share*: total verify time at the
    /// structural level, the semantic layer's own time at the semantic
    /// level.
    budget_pct: f64,
    rows: Vec<Row>,
    t_total: u64,
    v_total: u64,
    sem_total: u64,
    regions: u64,
    findings: u64,
}

/// Share of translation time, in percent. `translate_ns` includes the
/// verifier, so shares are relative to `translate - verify`.
fn share_pct(translate_ns: u64, verify_ns: u64, part_ns: u64) -> f64 {
    let base = translate_ns.saturating_sub(verify_ns).max(1);
    part_ns as f64 / base as f64 * 100.0
}

fn sweep(level: VerifyLevel, label: &'static str, budget_pct: f64, scale: Scale) -> LevelReport {
    let mut rep = LevelReport {
        label,
        budget_pct,
        rows: Vec::new(),
        t_total: 0,
        v_total: 0,
        sem_total: 0,
        regions: 0,
        findings: 0,
    };
    for b in benchmarks() {
        let mut cfg = default_config();
        cfg.tol.verify_level = level;
        let r = run_one(&b, scale, cfg);
        let s = r.tol_stats;
        rep.t_total += s.translate_nanos;
        rep.v_total += s.verify_nanos;
        rep.sem_total += s.verify_sem_nanos;
        rep.regions += s.verify_regions;
        rep.findings += s.verify_findings;
        rep.rows.push(Row {
            name: b.name.to_string(),
            translate_ns: s.translate_nanos,
            verify_ns: s.verify_nanos,
            sem_ns: s.verify_sem_nanos,
            regions: s.verify_regions,
            findings: s.verify_findings,
        });
    }
    rep
}

/// The share this level is gated on: everything for the structural
/// level, the semantic layer's own time for the semantic level.
fn gated_ns(rep: &LevelReport, verify_ns: u64, sem_ns: u64) -> u64 {
    if rep.label == "semantic" {
        sem_ns
    } else {
        verify_ns
    }
}

fn gated_total_pct(rep: &LevelReport) -> f64 {
    share_pct(rep.t_total, rep.v_total, gated_ns(rep, rep.v_total, rep.sem_total))
}

/// Min-of-N sweep: keep the repetition with the lowest gated share.
fn best_sweep(
    level: VerifyLevel,
    label: &'static str,
    budget_pct: f64,
    scale: Scale,
    repeat: usize,
) -> LevelReport {
    let mut best: Option<LevelReport> = None;
    for _ in 0..repeat.max(1) {
        let rep = sweep(level, label, budget_pct, scale);
        if best.as_ref().is_none_or(|b| gated_total_pct(&rep) < gated_total_pct(b)) {
            best = Some(rep);
        }
    }
    best.expect("at least one sweep")
}

fn print_level(rep: &LevelReport) -> f64 {
    println!("\n-- level: {} (budget <= {:.0}%) --", rep.label, rep.budget_pct);
    println!(
        "{:<16} {:>12} {:>12} {:>11} {:>9} {:>8}",
        "benchmark", "translate_us", "verify_us", "semantic_us", "overhead", "regions"
    );
    for row in &rep.rows {
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>11.1} {:>8.2}% {:>8}",
            row.name,
            row.translate_ns as f64 / 1e3,
            row.verify_ns as f64 / 1e3,
            row.sem_ns as f64 / 1e3,
            share_pct(row.translate_ns, row.verify_ns, gated_ns(rep, row.verify_ns, row.sem_ns)),
            row.regions,
        );
    }
    let total_pct = gated_total_pct(rep);
    println!("{:-<74}", "");
    println!(
        "{:<16} {:>12.1} {:>12.1} {:>11.1} {:>8.2}% {:>8}",
        "total",
        rep.t_total as f64 / 1e3,
        rep.v_total as f64 / 1e3,
        rep.sem_total as f64 / 1e3,
        total_pct,
        rep.regions,
    );
    total_pct
}

fn write_level(w: &mut JsonWriter, rep: &LevelReport, total_pct: f64) {
    w.begin_obj(Some(rep.label));
    w.begin_obj(Some("workloads"));
    for row in &rep.rows {
        w.begin_obj(Some(&row.name))
            .field_num("translate_ns", row.translate_ns)
            .field_num("verify_ns", row.verify_ns)
            .field_num("semantic_ns", row.sem_ns)
            .field_f64("overhead_pct", share_pct(row.translate_ns, row.verify_ns, row.verify_ns))
            .field_num("regions", row.regions)
            .field_num("findings", row.findings)
            .end_obj();
    }
    w.end_obj();
    w.begin_obj(Some("total"))
        .field_num("translate_ns", rep.t_total)
        .field_num("verify_ns", rep.v_total)
        .field_num("semantic_ns", rep.sem_total)
        .field_f64("overhead_pct", share_pct(rep.t_total, rep.v_total, rep.v_total))
        .field_f64(
            "structural_pct",
            share_pct(rep.t_total, rep.v_total, rep.v_total - rep.sem_total),
        )
        .field_f64("semantic_pct", share_pct(rep.t_total, rep.v_total, rep.sem_total))
        .field_f64("gated_pct", total_pct)
        .field_num("regions", rep.regions)
        .field_num("findings", rep.findings)
        .field_f64("budget_pct", rep.budget_pct)
        .field_bool("within_budget", total_pct <= rep.budget_pct)
        .end_obj();
    w.end_obj();
}

fn arg_after(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn main() {
    // Default to 1/16 so the full-suite sweep stays quick; `--scale N/D`
    // overrides.
    let scale = if std::env::args().any(|a| a == "--scale") {
        Scale::from_args()
    } else {
        Scale(1, 16)
    };
    let repeat: usize = arg_after("--repeat").and_then(|v| v.parse().ok()).unwrap_or(3);

    let structural = best_sweep(VerifyLevel::Structural, "structural", 10.0, scale, repeat);
    let semantic = best_sweep(VerifyLevel::Semantic, "semantic", 15.0, scale, repeat);

    println!(
        "== verify overhead (scale {}/{}, min of {repeat}, default config) ==",
        scale.0, scale.1
    );
    let s_pct = print_level(&structural);
    let m_pct = print_level(&semantic);

    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_str("bench", "verify_overhead");
    w.field_str("scale", &format!("{}/{}", scale.0, scale.1));
    w.field_num("repeat", repeat as u64);
    write_level(&mut w, &structural, s_pct);
    write_level(&mut w, &semantic, m_pct);
    w.end_obj();
    let json = w.finish();
    std::fs::write("BENCH_verify.json", &json).expect("write BENCH_verify.json");
    println!("\nwrote BENCH_verify.json");

    let mut bust = false;
    for (rep, pct) in [(&structural, s_pct), (&semantic, m_pct)] {
        if pct > rep.budget_pct {
            eprintln!(
                "verify overhead gate FAILED: {} {:.2}% > budget {:.0}%",
                rep.label, pct, rep.budget_pct
            );
            bust = true;
        }
    }
    if bust {
        std::process::exit(1);
    }
}
