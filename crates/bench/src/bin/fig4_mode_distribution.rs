//! **E2 / Fig. 4** — Dynamic guest instruction distribution in IM, BBM
//! and SBM, per benchmark and per suite.
//!
//! Paper: 88% / 96% / 75% of the dynamic stream executes in SBM for
//! SPECINT2006 / SPECFP2006 / Physicsbench.

use darco_bench::{default_config, paper, print_table, run_suite, suite_avg, Scale};
use darco_workloads::Suite;

fn main() {
    let rows = run_suite(Scale::from_args(), |_| default_config());
    println!("== Fig. 4: dynamic guest instruction distribution ==");
    println!("{:<16} {:<13} {:>7} {:>7} {:>7}", "benchmark", "suite", "IM%", "BBM%", "SBM%");
    for (b, r) in &rows {
        let (im, bbm, sbm) = r.mode_insns;
        let t = (im + bbm + sbm) as f64;
        println!(
            "{:<16} {:<13} {:>6.1}% {:>6.1}% {:>6.1}%",
            b.name,
            b.suite.name(),
            im as f64 / t * 100.0,
            bbm as f64 / t * 100.0,
            sbm as f64 / t * 100.0
        );
    }
    println!("{:-<56}", "");
    for (i, s) in [Suite::SpecInt, Suite::SpecFp, Suite::Physics].into_iter().enumerate() {
        let sbm = suite_avg(&rows, s, |r| r.sbm_fraction());
        println!(
            "avg {:<13} SBM {:>5.1}%   (paper: {:>5.1}%)",
            s.name(),
            sbm * 100.0,
            paper::FIG4_SBM[i] * 100.0
        );
    }
    // Keep the generic table printer exercised for the percent path.
    print_table(
        "Fig. 4 (SBM fraction)",
        &rows,
        "SBM share",
        |r| r.sbm_fraction(),
        paper::FIG4_SBM,
        true,
    );
}
