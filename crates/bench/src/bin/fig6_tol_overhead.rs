//! **E4 / Fig. 6** — TOL overhead share of the host dynamic instruction
//! stream.
//!
//! Paper: 16% / 13% / 41% for SPECINT2006 / SPECFP2006 / Physicsbench —
//! the low dynamic-to-static instruction ratio keeps Physicsbench from
//! amortizing translation work.

use darco_bench::{default_config, paper, print_table, run_suite, Scale};

fn main() {
    let rows = run_suite(Scale::from_args(), |_| default_config());
    print_table(
        "Fig. 6: TOL overhead share of host dynamic stream",
        &rows,
        "overhead",
        |r| r.overhead_fraction(),
        paper::FIG6_OVERHEAD,
        true,
    );
}
