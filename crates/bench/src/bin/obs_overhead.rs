//! **BENCH_obs** — pins the cost of the observability layer.
//!
//! Four guardrails, enforced in CI by `darco-trace-check --obs-gate`:
//!
//! - `overhead_traced`: wall-clock cost of running with the trace ring
//!   enabled versus the disabled (`Tracer::Off`) path — budget 5%.
//! - `overhead_null_vs_baseline`: the disabled-tracer configuration
//!   versus the guest-MIPS rate recorded in `BENCH_hotpath.json` for the
//!   same mode and scale — budget 1%, i.e. threading the trace layer
//!   through the hot paths must stay in the noise when it is off.
//!   Omitted (null) when no baseline at the current scale is available.
//! - `overhead_stream`: the fleet suite under a subscribed live-telemetry
//!   hub (`SchedOpts::live`) versus the same campaign with streaming off
//!   — budget 2%.
//! - `overhead_profiler`: the engine subset with the guest-PC sampling
//!   profiler attached at its default cadence versus the same stepping
//!   schedule unprofiled — budget 2%.
//!
//! The workload subset and full-promotion configuration match the
//! hot-path harness (`speed.rs`) so the baseline comparison is
//! like-for-like.
//!
//! Methodology: min-of-N per *workload*, modes interleaved within each
//! repetition (the `verify_overhead` noise-rejection recipe). Summing
//! whole-set wall clocks and taking the min of the sums — what this
//! harness originally did — still lets one preempted workload poison a
//! repetition, which is how a physically-impossible negative "overhead"
//! (tracing 7% *faster* than not tracing) ended up in the committed
//! artifact. Per-workload minima converge on the quiet-machine cost of
//! each configuration, so the ratio gates an honest number.

use darco::json::JsonWriter;
use darco::{StepExit, System, SystemConfig};
use darco_bench::{default_config, run_one, Scale};
use darco_fleet::{parse_campaign, run_campaign_cooperative, Campaign, LiveHub, SchedOpts};
use darco_obs::json::{parse, JsonValue};
use darco_workloads::benchmarks;
use std::sync::atomic::AtomicBool;
use std::time::Instant;

/// Same representative subset (one benchmark per suite) as `speed.rs`.
const SET: [usize; 3] = [0, 13, 24];
/// Repetitions per configuration; the per-workload minimum wall wins.
const REPS: usize = 5;
/// Ring capacity for the traced mode (the `darco-run --trace` default).
const TRACE_CAP: usize = 1 << 16;
/// Stepping quantum for the profiler comparison: the profiler samples at
/// quantum boundaries, so `darco-run --profile` clamps the quantum to the
/// sampling period. Both sides step at this quantum; the delta is the
/// sampling itself.
const PROFILE_QUANTUM: u64 = darco::DEFAULT_SAMPLE_EVERY;

struct ModeResult {
    guest_insns: u64,
    wall_s: f64,
    mips: f64,
    trace_events: u64,
}

/// One timed run of one workload: `(guest_insns, wall_s, trace_events)`.
fn run_workload(idx: usize, scale: Scale, traced: bool) -> (u64, f64, u64) {
    let b = &benchmarks()[idx];
    let mut cfg = default_config();
    if traced {
        cfg.trace_capacity = Some(TRACE_CAP);
    }
    let t0 = Instant::now();
    let r = run_one(b, scale, cfg);
    (r.guest_insns, t0.elapsed().as_secs_f64(), r.trace.len() as u64)
}

/// Folds per-workload minima into one mode row.
fn fold(mins: &[(u64, f64, u64)]) -> ModeResult {
    let insns: u64 = mins.iter().map(|m| m.0).sum();
    let wall: f64 = mins.iter().map(|m| m.1).sum();
    let events: u64 = mins.iter().map(|m| m.2).sum();
    ModeResult { guest_insns: insns, wall_s: wall, mips: insns as f64 / wall / 1e6, trace_events: events }
}

/// Keeps the smaller-wall sample per workload slot.
fn keep_min(slot: &mut Option<(u64, f64, u64)>, sample: (u64, f64, u64)) {
    if slot.is_none_or(|s| sample.1 < s.1) {
        *slot = Some(sample);
    }
}

/// Reads `modes.sb.mips` out of `BENCH_hotpath.json` when it was recorded
/// at the same scale (the full-promotion mode is what `default_config`
/// runs here).
fn hotpath_baseline(scale: Scale) -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_hotpath.json").ok()?;
    let doc = parse(&text).ok()?;
    let want = format!("{}/{}", scale.0, scale.1);
    if doc.get("scale").and_then(JsonValue::as_str) != Some(want.as_str()) {
        return None;
    }
    doc.get("modes").and_then(|m| m.get("sb")).and_then(|s| s.get("mips")).and_then(JsonValue::as_num)
}

/// The subset as a fleet campaign at the measurement scale.
fn fleet_campaign(scale: Scale) -> Campaign {
    let jobs: Vec<String> =
        SET.iter().map(|&i| format!("{{\"workload\": \"{}\"}}", benchmarks()[i].name)).collect();
    let text = format!(
        "{{\"name\": \"obs-overhead\", \"defaults\": {{\"scale\": \"{}/{}\"}}, \"jobs\": [{}]}}",
        scale.0,
        scale.1,
        jobs.join(", ")
    );
    parse_campaign(&text).expect("subset campaign")
}

/// One fleet-suite run, optionally under a subscribed live hub. The
/// subscriber is a plain channel drained after the run — the worker-side
/// cost (rate limiting, mirror sync, delta encode, event serialization)
/// is what can perturb the suite, and that is what gets timed.
fn run_fleet(campaign: &Campaign, live: bool) -> f64 {
    let stop = AtomicBool::new(false);
    let (hub, _rx) = if live {
        let hub = LiveHub::detached();
        let (tx, rx) = std::sync::mpsc::channel();
        hub.subscribe_channel(tx);
        (Some(hub), Some(rx))
    } else {
        (None, None)
    };
    let opts = SchedOpts { live: hub, ..SchedOpts::default() };
    let t0 = Instant::now();
    let outcome = run_campaign_cooperative(campaign, 1, &opts, &stop);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(outcome.failed_count(), 0, "fleet subset must run clean");
    wall
}

/// Drives one engine to completion at `PROFILE_QUANTUM`, with or without
/// the sampling profiler, returning `(guest_insns, wall_s)`.
fn run_profiled(idx: usize, scale: Scale, profiled: bool) -> (u64, f64) {
    let b = &benchmarks()[idx];
    let program = darco_workloads::build(&b.profile.clone().scaled(scale.0, scale.1));
    let t0 = Instant::now();
    let mut e = System::new(SystemConfig::default(), program).start();
    if profiled {
        e.enable_profiler(darco::DEFAULT_SAMPLE_EVERY);
    }
    loop {
        match e.step(PROFILE_QUANTUM) {
            Ok(StepExit::Ended | StepExit::GuestFault) => break,
            Ok(_) => {}
            Err(err) => panic!("profiled run failed: {err}"),
        }
    }
    if profiled {
        let p = e.profiler().expect("profiler attached");
        assert!(p.samples() > 0, "profiler must actually sample");
    }
    (e.insns(), t0.elapsed().as_secs_f64())
}

fn mode_json(w: &mut JsonWriter, name: &str, m: &ModeResult, events: bool) {
    let obj = w
        .begin_obj(Some(name))
        .field_num("guest_insns", m.guest_insns)
        .field_f64("wall_s", m.wall_s)
        .field_f64("mips", m.mips);
    if events {
        obj.field_num("trace_events", m.trace_events);
    }
    obj.end_obj();
}

fn main() {
    let scale = Scale::from_args();

    // Trace-ring comparison: per-workload minima, modes interleaved.
    let mut off_min: Vec<Option<(u64, f64, u64)>> = vec![None; SET.len()];
    let mut ring_min: Vec<Option<(u64, f64, u64)>> = vec![None; SET.len()];
    for _ in 0..REPS {
        for (i, &idx) in SET.iter().enumerate() {
            keep_min(&mut off_min[i], run_workload(idx, scale, false));
            keep_min(&mut ring_min[i], run_workload(idx, scale, true));
        }
    }
    let off = fold(&off_min.iter().map(|s| s.unwrap()).collect::<Vec<_>>());
    let ring = fold(&ring_min.iter().map(|s| s.unwrap()).collect::<Vec<_>>());
    let overhead_traced = ring.wall_s / off.wall_s - 1.0;
    let baseline = hotpath_baseline(scale);
    let overhead_null = baseline.map(|b| b / off.mips - 1.0);

    // Fleet suite under live streaming, interleaved min-of-N.
    let campaign = fleet_campaign(scale);
    let (mut fleet_base, mut fleet_live) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..REPS {
        fleet_base = fleet_base.min(run_fleet(&campaign, false));
        fleet_live = fleet_live.min(run_fleet(&campaign, true));
    }
    let overhead_stream = fleet_live / fleet_base - 1.0;

    // Sampling profiler at its default cadence, per-workload minima.
    let mut plain_min: Vec<Option<(u64, f64, u64)>> = vec![None; SET.len()];
    let mut prof_min: Vec<Option<(u64, f64, u64)>> = vec![None; SET.len()];
    for _ in 0..REPS {
        for (i, &idx) in SET.iter().enumerate() {
            let (insns, wall) = run_profiled(idx, scale, false);
            keep_min(&mut plain_min[i], (insns, wall, 0));
            let (insns, wall) = run_profiled(idx, scale, true);
            keep_min(&mut prof_min[i], (insns, wall, 0));
        }
    }
    let plain = fold(&plain_min.iter().map(|s| s.unwrap()).collect::<Vec<_>>());
    let prof = fold(&prof_min.iter().map(|s| s.unwrap()).collect::<Vec<_>>());
    let overhead_profiler = prof.wall_s / plain.wall_s - 1.0;

    println!("== Observability overhead ({} workloads, per-workload min of {REPS}) ==", SET.len());
    println!("{:<10} {:>14} {:>10} {:>10} {:>14}", "mode", "guest insns", "wall s", "MIPS", "trace events");
    println!("{:<10} {:>14} {:>10.3} {:>10.2} {:>14}", "off", off.guest_insns, off.wall_s, off.mips, "-");
    println!("{:<10} {:>14} {:>10.3} {:>10.2} {:>14}", "ring", ring.guest_insns, ring.wall_s, ring.mips, ring.trace_events);
    println!("tracing-enabled overhead: {:+.2}% (budget 5%)", overhead_traced * 100.0);
    match (baseline, overhead_null) {
        (Some(b), Some(n)) => {
            println!("disabled-tracer vs hot-path baseline {b:.2} MIPS: {:+.2}% (budget 1%)", n * 100.0);
        }
        _ => println!("disabled-tracer vs hot-path baseline: no baseline at this scale"),
    }
    println!(
        "fleet suite: base {fleet_base:.3}s, live-streamed {fleet_live:.3}s: {:+.2}% (budget 2%)",
        overhead_stream * 100.0
    );
    println!(
        "profiler (sample every {PROFILE_QUANTUM}): off {:.3}s, on {:.3}s: {:+.2}% (budget 2%)",
        plain.wall_s,
        prof.wall_s,
        overhead_profiler * 100.0
    );

    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_str("bench", "obs");
    w.field_str("scale", &format!("{}/{}", scale.0, scale.1));
    w.field_num("reps", REPS as u64);
    w.begin_obj(Some("modes"));
    mode_json(&mut w, "off", &off, false);
    mode_json(&mut w, "ring", &ring, true);
    w.end_obj();
    w.field_f64("overhead_traced", overhead_traced);
    match baseline {
        Some(b) => w.field_f64("baseline_sb_mips", b),
        None => w.field_null("baseline_sb_mips"),
    };
    match overhead_null {
        Some(n) => w.field_f64("overhead_null_vs_baseline", n),
        None => w.field_null("overhead_null_vs_baseline"),
    };
    w.begin_obj(Some("fleet"))
        .field_f64("base_wall_s", fleet_base)
        .field_f64("live_wall_s", fleet_live)
        .end_obj();
    w.field_f64("overhead_stream", overhead_stream);
    w.begin_obj(Some("profiler"));
    mode_json(&mut w, "off", &plain, false);
    mode_json(&mut w, "on", &prof, false);
    w.field_num("sample_every", PROFILE_QUANTUM);
    w.end_obj();
    w.field_f64("overhead_profiler", overhead_profiler);
    w.end_obj();
    std::fs::write("BENCH_obs.json", w.finish()).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
}
