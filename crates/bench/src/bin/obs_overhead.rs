//! **BENCH_obs** — pins the cost of the observability layer.
//!
//! Two guardrails, enforced in CI by `darco-trace-check --obs-gate`:
//!
//! - `overhead_traced`: wall-clock cost of running with the trace ring
//!   enabled versus the disabled (`Tracer::Off`) path — budget 5%.
//! - `overhead_null_vs_baseline`: the disabled-tracer configuration
//!   versus the guest-MIPS rate recorded in `BENCH_hotpath.json` for the
//!   same mode and scale — budget 1%, i.e. threading the trace layer
//!   through the hot paths must stay in the noise when it is off.
//!   Omitted (null) when no baseline at the current scale is available.
//!
//! The workload subset and full-promotion configuration match the
//! hot-path harness (`speed.rs`) so the baseline comparison is
//! like-for-like. Each mode runs several repetitions interleaved and the
//! best wall time is kept, which filters scheduler noise out of what is a
//! sub-second measurement.

use darco::json::JsonWriter;
use darco_bench::{default_config, run_one, Scale};
use darco_obs::json::{parse, JsonValue};
use darco_workloads::benchmarks;
use std::time::Instant;

/// Same representative subset (one benchmark per suite) as `speed.rs`.
const SET: [usize; 3] = [0, 13, 24];
/// Repetitions per mode; the minimum wall time wins.
const REPS: usize = 3;
/// Ring capacity for the traced mode (the `darco-run --trace` default).
const TRACE_CAP: usize = 1 << 16;

struct ModeResult {
    guest_insns: u64,
    wall_s: f64,
    mips: f64,
    trace_events: u64,
}

/// Runs the subset once; returns `(guest_insns, wall_s, trace_events)`.
fn run_set(scale: Scale, traced: bool) -> (u64, f64, u64) {
    let mut insns = 0u64;
    let mut wall = 0.0f64;
    let mut events = 0u64;
    for &idx in &SET {
        let b = &benchmarks()[idx];
        let mut cfg = default_config();
        if traced {
            cfg.trace_capacity = Some(TRACE_CAP);
        }
        let t0 = Instant::now();
        let r = run_one(b, scale, cfg);
        wall += t0.elapsed().as_secs_f64();
        insns += r.guest_insns;
        events += r.trace.len() as u64;
    }
    (insns, wall, events)
}

/// Best-of-`REPS` for one mode, interleaving handled by the caller.
fn best(results: &[(u64, f64, u64)]) -> ModeResult {
    let &(insns, _, events) = &results[0];
    let wall = results.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    ModeResult { guest_insns: insns, wall_s: wall, mips: insns as f64 / wall / 1e6, trace_events: events }
}

/// Reads `modes.sb.mips` out of `BENCH_hotpath.json` when it was recorded
/// at the same scale (the full-promotion mode is what `default_config`
/// runs here).
fn hotpath_baseline(scale: Scale) -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_hotpath.json").ok()?;
    let doc = parse(&text).ok()?;
    let want = format!("{}/{}", scale.0, scale.1);
    if doc.get("scale").and_then(JsonValue::as_str) != Some(want.as_str()) {
        return None;
    }
    doc.get("modes").and_then(|m| m.get("sb")).and_then(|s| s.get("mips")).and_then(JsonValue::as_num)
}

fn main() {
    let scale = Scale::from_args();
    let mut off_runs = Vec::new();
    let mut ring_runs = Vec::new();
    for _ in 0..REPS {
        off_runs.push(run_set(scale, false));
        ring_runs.push(run_set(scale, true));
    }
    let off = best(&off_runs);
    let ring = best(&ring_runs);
    let overhead_traced = ring.wall_s / off.wall_s - 1.0;
    let baseline = hotpath_baseline(scale);
    let overhead_null = baseline.map(|b| b / off.mips - 1.0);

    println!("== Observability overhead ({} workloads, best of {REPS}) ==", SET.len());
    println!("{:<10} {:>14} {:>10} {:>10} {:>14}", "mode", "guest insns", "wall s", "MIPS", "trace events");
    println!("{:<10} {:>14} {:>10.3} {:>10.2} {:>14}", "off", off.guest_insns, off.wall_s, off.mips, "-");
    println!("{:<10} {:>14} {:>10.3} {:>10.2} {:>14}", "ring", ring.guest_insns, ring.wall_s, ring.mips, ring.trace_events);
    println!("tracing-enabled overhead: {:+.2}% (budget 5%)", overhead_traced * 100.0);
    match (baseline, overhead_null) {
        (Some(b), Some(n)) => {
            println!("disabled-tracer vs hot-path baseline {b:.2} MIPS: {:+.2}% (budget 1%)", n * 100.0);
        }
        _ => println!("disabled-tracer vs hot-path baseline: no baseline at this scale"),
    }

    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_str("bench", "obs");
    w.field_str("scale", &format!("{}/{}", scale.0, scale.1));
    w.field_num("reps", REPS as u64);
    w.begin_obj(Some("modes"));
    w.begin_obj(Some("off"))
        .field_num("guest_insns", off.guest_insns)
        .field_f64("wall_s", off.wall_s)
        .field_f64("mips", off.mips)
        .end_obj();
    w.begin_obj(Some("ring"))
        .field_num("guest_insns", ring.guest_insns)
        .field_f64("wall_s", ring.wall_s)
        .field_f64("mips", ring.mips)
        .field_num("trace_events", ring.trace_events)
        .end_obj();
    w.end_obj();
    w.field_f64("overhead_traced", overhead_traced);
    match baseline {
        Some(b) => w.field_f64("baseline_sb_mips", b),
        None => w.field_null("baseline_sb_mips"),
    };
    match overhead_null {
        Some(n) => w.field_f64("overhead_null_vs_baseline", n),
        None => w.field_null("overhead_null_vs_baseline"),
    };
    w.end_obj();
    std::fs::write("BENCH_obs.json", w.finish()).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
}
