//! **BENCH_fleet** — throughput scaling of the fleet campaign runner.
//!
//! Runs the fig4–fig7 campaign (the full 31-benchmark suite under the
//! default configuration — the same runs all four figure harnesses
//! consume) at 1/2/4/8 pool workers, recording wall-clock per worker
//! count and asserting the merged artifact is **byte-identical** across
//! all of them — parallelism must never change results. Then measures
//! serve-mode round-trip latency: a client submits small jobs to a local
//! `darco-fleet` server one at a time and the submit→result wall time
//! lands in a power-of-two histogram.
//!
//! Speedup is bounded by the host's CPU count (recorded as `host_cpus`);
//! on a single-core host every worker count costs the same wall-clock
//! and only the determinism claim is meaningful.

use darco::json::JsonWriter;
use darco_bench::Scale;
use darco_fleet::{parse_campaign, run_campaign, Pool, Server};
use darco_obs::Histogram;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Serve-mode round trips measured.
const ROUND_TRIPS: usize = 30;

fn campaign_json(scale: Scale) -> String {
    format!(
        r#"{{
          "name": "fig-suite",
          "defaults": {{"scale": "{}/{}"}},
          "matrix": {{"workloads": ["all-benchmarks"]}}
        }}"#,
        scale.0, scale.1
    )
}

fn serve_latency() -> Histogram {
    let server = Server::bind("127.0.0.1:0", 2, 8, None).expect("bind job server");
    let addr = server.local_addr().expect("server address");
    let stopper = server.stopper();
    let h = std::thread::spawn(move || server.run());
    let mut histo = Histogram::default();
    {
        let mut c = TcpStream::connect(addr).expect("connect to job server");
        c.set_nodelay(true).expect("set TCP_NODELAY");
        let mut reader = BufReader::new(c.try_clone().expect("clone stream"));
        let mut line = String::new();
        for _ in 0..ROUND_TRIPS {
            let t0 = Instant::now();
            c.write_all(b"{\"op\":\"job\",\"workload\":\"kernel:dot\",\"scale\":\"1/4\"}\n")
                .expect("send job");
            // Two lines per job: accepted, then the streamed result.
            for _ in 0..2 {
                line.clear();
                reader.read_line(&mut line).expect("read response");
            }
            assert!(line.contains("\"op\":\"result\""), "unexpected response: {line}");
            histo.record(t0.elapsed().as_micros() as u64);
        }
    }
    stopper();
    h.join().expect("server thread");
    histo
}

fn main() {
    let scale = Scale::from_args();
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let campaign = parse_campaign(&campaign_json(scale)).expect("campaign parses");
    println!(
        "== Fleet scaling: fig4-fig7 campaign ({} jobs) on {} host CPUs ==",
        campaign.jobs.len(),
        host_cpus
    );
    println!("{:<8} {:>10} {:>10}", "workers", "wall s", "speedup");
    let mut rows: Vec<(usize, f64)> = Vec::new();
    let mut reference: Option<String> = None;
    for workers in WORKER_COUNTS {
        let pool = Pool::new(workers);
        let t0 = Instant::now();
        let outcome = run_campaign(&campaign, &pool, None);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(outcome.failed_count(), 0, "figure suite must run clean");
        let merged = outcome.merged_json();
        match &reference {
            None => reference = Some(merged),
            Some(r) => assert_eq!(
                &merged, r,
                "merged artifact differs between 1 and {workers} workers"
            ),
        }
        let speedup = rows.first().map(|&(_, w1)| w1 / wall).unwrap_or(1.0);
        println!("{workers:<8} {wall:>10.2} {speedup:>9.2}x");
        rows.push((workers, wall));
    }
    let wall_1 = rows[0].1;
    let speedup_4 = wall_1 / rows[2].1;
    if host_cpus >= 4 && speedup_4 < 3.0 {
        println!("WARNING: 4-worker speedup {speedup_4:.2}x below the 3x target");
    }
    if host_cpus < 4 {
        println!("(host has {host_cpus} CPUs: wall-clock scaling is bounded by the hardware;");
        println!(" the byte-identical merge assertion above is the load-bearing check here)");
    }

    println!("\n== Serve-mode round-trip latency ({ROUND_TRIPS} jobs) ==");
    let latency = serve_latency();
    println!(
        "min {} us, mean {:.0} us, max {} us",
        latency.min,
        latency.mean(),
        latency.max
    );

    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_str("bench", "fleet");
    w.field_str("scale", &format!("{}/{}", scale.0, scale.1));
    w.field_num("host_cpus", host_cpus);
    w.field_num("suite_jobs", campaign.jobs.len());
    w.begin_arr(Some("suite"));
    for &(workers, wall) in &rows {
        let mut e = JsonWriter::new();
        e.begin_obj(None)
            .field_num("workers", workers)
            .field_f64("wall_s", wall)
            .field_f64("speedup_vs_1", wall_1 / wall)
            .end_obj();
        w.elem_raw(&e.finish());
    }
    w.end_arr();
    w.field_bool("merged_byte_identical", true);
    w.field_f64("speedup_4_workers", speedup_4);
    w.begin_obj(Some("serve_latency_us"))
        .field_num("round_trips", ROUND_TRIPS as u64)
        .field_num("min", latency.min)
        .field_f64("mean", latency.mean())
        .field_num("max", latency.max)
        .end_obj();
    w.begin_arr(Some("serve_latency_buckets"));
    for (lo, hi, n) in latency.nonzero_buckets() {
        let mut b = JsonWriter::new();
        b.begin_obj(None).field_num("lo_us", lo).field_num("hi_us", hi).field_num("n", n).end_obj();
        w.elem_raw(&b.finish());
    }
    w.end_arr();
    w.end_obj();
    std::fs::write("BENCH_fleet.json", w.finish()).expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json");
}
