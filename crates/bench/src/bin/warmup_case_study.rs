//! **E6 / §VI-E** — The warm-up simulation methodology case study:
//! promotion-threshold downscaling during sample warm-up, with the
//! offline configuration-matching heuristic.
//!
//! Paper: 65× simulation-cost reduction at 0.75% average error (on
//! full-size SPEC runs; our synthetic benchmarks are orders of magnitude
//! shorter, so the reduction factor scales with program length).

use darco::sampling::{warmup_study, WarmupConfig};
use darco_bench::{paper, Scale};
use darco_timing::TimingConfig;
use darco_tol::TolConfig;
use darco_workloads::benchmarks;

fn main() {
    let scale = Scale::from_args();
    let wcfg = WarmupConfig {
        sample_len: 20_000,
        num_samples: 4,
        warmup_lens: vec![20_000, 60_000],
        scale_factors: vec![4, 16],
    };
    println!("== §VI-E: warm-up methodology case study ==");
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>10}",
        "benchmark", "full CPI", "sampled", "err %", "cost red."
    );
    let mut errs = Vec::new();
    let mut reds = Vec::new();
    for idx in [0usize, 4, 13, 17, 24] {
        let b = &benchmarks()[idx];
        let prog = darco_workloads::build(&b.profile.clone().scaled(scale.0, scale.1));
        let Some(r) = warmup_study(&prog, &TolConfig::default(), &TimingConfig::default(), &wcfg)
        else {
            println!("{:<16} (too short for the sampling plan)", b.name);
            continue;
        };
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>7.2}% {:>9.1}x",
            b.name, r.full_cpi, r.sampled_cpi, r.error_pct, r.cost_reduction
        );
        errs.push(r.error_pct);
        reds.push(r.cost_reduction);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("{:-<58}", "");
    println!(
        "average: error {:.2}% (paper {:.2}%), cost reduction {:.1}x (paper {:.0}x)",
        avg(&errs),
        paper::WARMUP.1,
        avg(&reds),
        paper::WARMUP.0
    );
}
