//! **A3** — Control/memory speculation in superblocks (§V-B3): asserts
//! with rollback vs multi-exit-only superblocks, plus the unrolling knob.

use darco::SinkChoice;
use darco_bench::{default_config, jobs_from_args, run_jobs, with_timing, Scale};
use darco_workloads::benchmarks;

fn main() {
    let scale = Scale::from_args();
    let all = benchmarks();
    // Three jobs per benchmark — speculation, no-speculation, no-unroll —
    // on the fleet pool.
    let mut work = Vec::new();
    for idx in [0usize, 4, 13, 24, 25] {
        let b = &all[idx];
        work.push((b.clone(), with_timing(default_config(), SinkChoice::InOrder)));
        let mut cfg = with_timing(default_config(), SinkChoice::InOrder);
        cfg.tol.speculation = false;
        work.push((b.clone(), cfg));
        let mut cfg = with_timing(default_config(), SinkChoice::InOrder);
        cfg.tol.unroll = false;
        work.push((b.clone(), cfg));
    }
    let rows = run_jobs(scale, jobs_from_args(), work);
    println!("== A3: superblock speculation (asserts) vs multi-exit; unrolling ==");
    println!(
        "{:<16} {:>11} {:>11} {:>11} {:>9}",
        "benchmark", "spec CPI", "nospec CPI", "nounroll", "rollbacks"
    );
    // Guest CPI (host cycles per guest instruction) exposes the scheduling
    // freedom asserts buy: multi-exit superblocks must keep stores on
    // their side of every exit and cannot reorder may-alias pairs.
    let cpi = |r: &darco::RunReport| r.timing.as_ref().unwrap().cycles as f64 / r.guest_insns as f64;
    for group in rows.chunks(3) {
        let [(b, spec), (_, nospec), (_, nounroll)] = group else {
            unreachable!("three jobs per benchmark")
        };
        println!(
            "{:<16} {:>11.3} {:>11.3} {:>11.3} {:>9}",
            b.name,
            cpi(spec),
            cpi(nospec),
            cpi(nounroll),
            spec.rollbacks
        );
    }
    println!("(multi-exit superblocks forgo reordering freedom; unrolling amortizes shell work)");
}
