//! **A3** — Control/memory speculation in superblocks (§V-B3): asserts
//! with rollback vs multi-exit-only superblocks, plus the unrolling knob.

use darco::SinkChoice;
use darco_bench::{default_config, run_one, with_timing, Scale};
use darco_workloads::benchmarks;

fn main() {
    let scale = Scale::from_args();
    println!("== A3: superblock speculation (asserts) vs multi-exit; unrolling ==");
    println!(
        "{:<16} {:>11} {:>11} {:>11} {:>9}",
        "benchmark", "spec CPI", "nospec CPI", "nounroll", "rollbacks"
    );
    // Guest CPI (host cycles per guest instruction) exposes the scheduling
    // freedom asserts buy: multi-exit superblocks must keep stores on
    // their side of every exit and cannot reorder may-alias pairs.
    let cpi = |r: &darco::RunReport| r.timing.as_ref().unwrap().cycles as f64 / r.guest_insns as f64;
    for idx in [0usize, 4, 13, 24, 25] {
        let b = &benchmarks()[idx];
        let spec = run_one(b, scale, with_timing(default_config(), SinkChoice::InOrder));
        let mut cfg = with_timing(default_config(), SinkChoice::InOrder);
        cfg.tol.speculation = false;
        let nospec = run_one(b, scale, cfg);
        let mut cfg = with_timing(default_config(), SinkChoice::InOrder);
        cfg.tol.unroll = false;
        let nounroll = run_one(b, scale, cfg);
        println!(
            "{:<16} {:>11.3} {:>11.3} {:>11.3} {:>9}",
            b.name,
            cpi(&spec),
            cpi(&nospec),
            cpi(&nounroll),
            spec.rollbacks
        );
    }
    println!("(multi-exit superblocks forgo reordering freedom; unrolling amortizes shell work)");
}
