//! Calibration probe: one benchmark per suite, key shape metrics.
//! (Development tool; the per-figure binaries are the real harnesses.)

use darco_bench::{default_config, run_one, Scale};
use darco_workloads::benchmarks;

fn main() {
    let scale = Scale::from_args();
    for idx in [0usize, 4, 11, 15, 24, 25, 30] {
        let b = &benchmarks()[idx];
        let t0 = std::time::Instant::now();
        let r = run_one(b, scale, default_config());
        let dt = t0.elapsed().as_secs_f64();
        let (im, bbm, sbm) = r.mode_insns;
        let total = (im + bbm + sbm) as f64;
        println!(
            "{:<16} {:<13} dyn={:>9} static≈{:>5} | IM {:4.1}% BBM {:4.1}% SBM {:4.1}% | cost {:4.2} | ovh {:4.1}% | {:.2}s ({:.1} MIPS)",
            b.name,
            b.suite.name(),
            r.guest_insns,
            "-",
            im as f64 / total * 100.0,
            bbm as f64 / total * 100.0,
            sbm as f64 / total * 100.0,
            r.sbm_emulation_cost,
            r.overhead_fraction() * 100.0,
            dt,
            r.guest_insns as f64 / dt / 1e6,
        );
        let o = &r.overhead;
        println!(
            "    ovh breakdown: interp {} bb {} sb {} pro {} chain {} lookup {} other {}",
            o.interpreter, o.bb_translator, o.sb_translator, o.prologue, o.chaining, o.cache_lookup, o.others
        );
    }
}
