//! **Backend identity gate** — runs every workload under both backends
//! and requires the native JIT to be observationally identical to the
//! reference emulator.
//!
//! The native backend's contract is *bit-identity*: translated x86-64
//! code must mutate guest state, retire counters, mode accounting and
//! the profiling tables exactly as `HostEmulator::execute` does, so a
//! run's every architecturally-visible outcome matches. This harness
//! enforces the contract end to end: final output bytes, exit status,
//! guest faults, per-mode instruction counts, checkpoint/rollback
//! counts, sync-protocol traffic, and the full metrics registry.
//!
//! Excluded from comparison, by construction rather than tolerance:
//!
//! * timing counters (`*nanos*`, `*_ns*` names) — wall-clock, not
//!   architectural;
//! * `jit.*` counters — the native backend's own instrumentation,
//!   absent under the emulator by definition.
//!
//! Everything else must match to the last bit, across **all** workloads
//! at `--scale 1/16` (small enough for CI, large enough to reach sb
//! mode, speculation rollbacks and superblock recreation on every
//! program). On non-x86-64 hosts the gate passes trivially (there is
//! nothing to compare) but says so.

use darco_bench::{default_config, run_one, Scale};
use darco_host::codegen::Backend;
use darco_workloads::benchmarks;

fn timing(name: &str) -> bool {
    name.contains("nanos") || name.contains("_ns") || name.starts_with("jit.")
}

/// Deterministic view of a run: every architecturally-visible outcome,
/// ready for direct comparison.
struct Observation {
    lines: Vec<(String, String)>,
}

fn observe(idx: usize, backend: Backend) -> Observation {
    let b = &benchmarks()[idx];
    let mut cfg = default_config();
    cfg.backend = backend;
    let r = run_one(b, Scale(1, 16), cfg);
    let mut lines = Vec::new();
    let mut put = |k: &str, v: String| lines.push((k.to_string(), v));
    put("guest_insns", r.guest_insns.to_string());
    put("mode_insns", format!("{:?}", r.mode_insns));
    put("host_app_insns", r.host_app_insns.to_string());
    put("chkpts", r.chkpts.to_string());
    put("rollbacks", r.rollbacks.to_string());
    put("validations", r.validations.to_string());
    put("pages_served", r.pages_served.to_string());
    put("syscalls", r.syscalls.to_string());
    put("exit_status", format!("{:?}", r.exit_status));
    put("guest_fault", format!("{:?}", r.guest_fault));
    put("output", format!("{:?}", r.output));
    for (name, v) in r.metrics.counters_iter() {
        if !timing(name) {
            put(name, v.to_string());
        }
    }
    for (name, h) in r.metrics.histograms_iter() {
        if !timing(name) {
            put(name, format!("{:?}", h.buckets_raw()));
        }
    }
    Observation { lines }
}

fn main() {
    if !Backend::native_available() {
        println!("backend identity: skipped (no native JIT on this host)");
        return;
    }
    let n = benchmarks().len();
    let mut failures = 0usize;
    for idx in 0..n {
        let name = benchmarks()[idx].name;
        let emu = observe(idx, Backend::Emu);
        let nat = observe(idx, Backend::Native);
        let mut diffs = Vec::new();
        let lookup = |o: &Observation, k: &str| -> Option<String> {
            o.lines.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone())
        };
        for (k, v) in &emu.lines {
            match lookup(&nat, k) {
                Some(nv) if nv == *v => {}
                Some(nv) => diffs.push(format!("{k}: emu={v} native={nv}")),
                None => diffs.push(format!("{k}: missing under native")),
            }
        }
        for (k, _) in &nat.lines {
            if lookup(&emu, k).is_none() {
                diffs.push(format!("{k}: missing under emu"));
            }
        }
        if diffs.is_empty() {
            println!("{name}: identical");
        } else {
            failures += 1;
            println!("{name}: DIVERGED ({} fields)", diffs.len());
            for d in diffs.iter().take(8) {
                println!("  {d}");
            }
        }
    }
    if failures > 0 {
        eprintln!("backend identity FAILED: {failures}/{n} workloads diverged");
        std::process::exit(1);
    }
    println!("backend identity: {n}/{n} workloads bit-identical across backends");
}
