//! **Backend identity gate** — runs every workload under both backends
//! and requires the native JIT to be observationally identical to the
//! reference emulator.
//!
//! The native backend's contract is *bit-identity*: translated x86-64
//! code must mutate guest state, retire counters, mode accounting and
//! the profiling tables exactly as `HostEmulator::execute` does, so a
//! run's every architecturally-visible outcome matches. This harness
//! enforces the contract end to end: final output bytes, exit status,
//! guest faults, per-mode instruction counts, checkpoint/rollback
//! counts, sync-protocol traffic, and the full metrics registry.
//!
//! Excluded from comparison, by construction rather than tolerance:
//!
//! * timing counters (`*nanos*`, `*_ns*` names) — wall-clock, not
//!   architectural;
//! * `jit.*` counters — the native backend's own instrumentation,
//!   absent under the emulator by definition.
//!
//! Everything else must match to the last bit, across **all** 37
//! workloads: the 31 suite benchmarks at `--scale 1/16` (small enough
//! for CI, large enough to reach sb mode, speculation rollbacks and
//! superblock recreation on every program) plus the 6 microkernels at
//! SBM-promoting sizes. On non-x86-64 hosts the gate passes trivially
//! (there is nothing to compare) but says so.

use darco::System;
use darco_bench::{default_config, run_one, Scale};
use darco_guest::GuestProgram;
use darco_host::codegen::Backend;
use darco_workloads::{benchmarks, kernels};

fn timing(name: &str) -> bool {
    name.contains("nanos") || name.contains("_ns") || name.starts_with("jit.")
}

/// Deterministic view of a run: every architecturally-visible outcome,
/// ready for direct comparison.
struct Observation {
    lines: Vec<(String, String)>,
}

/// The 6 microkernels at the same SBM-promoting sizes `darco-lint`
/// uses: big enough for superblock formation, small enough for CI.
fn kernel_list() -> Vec<(&'static str, GuestProgram)> {
    vec![
        ("kernel:dot", kernels::dot_product(2_000)),
        ("kernel:matmul", kernels::matmul(12)),
        ("kernel:search", kernels::string_search(20_000, 12_345)),
        ("kernel:nbody", kernels::nbody_step(16, 50)),
        ("kernel:quicksort", kernels::quicksort(800)),
        ("kernel:crc32", kernels::crc32(5_000)),
    ]
}

fn observe(idx: usize, backend: Backend) -> Observation {
    let nbench = benchmarks().len();
    let mut cfg = default_config();
    cfg.backend = backend;
    let r = if idx < nbench {
        run_one(&benchmarks()[idx], Scale(1, 16), cfg)
    } else {
        let (name, program) = kernel_list().swap_remove(idx - nbench);
        System::new(cfg, program)
            .run()
            .unwrap_or_else(|e| panic!("{name} failed: {e}"))
    };
    let mut lines = Vec::new();
    let mut put = |k: &str, v: String| lines.push((k.to_string(), v));
    put("guest_insns", r.guest_insns.to_string());
    put("mode_insns", format!("{:?}", r.mode_insns));
    put("host_app_insns", r.host_app_insns.to_string());
    put("chkpts", r.chkpts.to_string());
    put("rollbacks", r.rollbacks.to_string());
    put("validations", r.validations.to_string());
    put("pages_served", r.pages_served.to_string());
    put("syscalls", r.syscalls.to_string());
    put("exit_status", format!("{:?}", r.exit_status));
    put("guest_fault", format!("{:?}", r.guest_fault));
    put("output", format!("{:?}", r.output));
    for (name, v) in r.metrics.counters_iter() {
        if !timing(name) {
            put(name, v.to_string());
        }
    }
    for (name, h) in r.metrics.histograms_iter() {
        if !timing(name) {
            put(name, format!("{:?}", h.buckets_raw()));
        }
    }
    Observation { lines }
}

fn main() {
    if !Backend::native_available() {
        println!("backend identity: skipped (no native JIT on this host)");
        return;
    }
    let nbench = benchmarks().len();
    let kernel_names: Vec<&'static str> = kernel_list().into_iter().map(|(n, _)| n).collect();
    let n = nbench + kernel_names.len();
    let mut failures = 0usize;
    for idx in 0..n {
        let name =
            if idx < nbench { benchmarks()[idx].name } else { kernel_names[idx - nbench] };
        let emu = observe(idx, Backend::Emu);
        let nat = observe(idx, Backend::Native);
        let mut diffs = Vec::new();
        let lookup = |o: &Observation, k: &str| -> Option<String> {
            o.lines.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone())
        };
        for (k, v) in &emu.lines {
            match lookup(&nat, k) {
                Some(nv) if nv == *v => {}
                Some(nv) => diffs.push(format!("{k}: emu={v} native={nv}")),
                None => diffs.push(format!("{k}: missing under native")),
            }
        }
        for (k, _) in &nat.lines {
            if lookup(&emu, k).is_none() {
                diffs.push(format!("{k}: missing under emu"));
            }
        }
        if diffs.is_empty() {
            println!("{name}: identical");
        } else {
            failures += 1;
            println!("{name}: DIVERGED ({} fields)", diffs.len());
            for d in diffs.iter().take(8) {
                println!("  {d}");
            }
        }
    }
    if failures > 0 {
        eprintln!("backend identity FAILED: {failures}/{n} workloads diverged");
        std::process::exit(1);
    }
    println!("backend identity: {n}/{n} workloads bit-identical across backends");
}
