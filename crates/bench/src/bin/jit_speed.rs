//! **JIT speed** — per-execution-mode guest MIPS of the native x86-64
//! backend against the reference emulator, on the same hot-path set and
//! scale conventions as `speed.rs` / `BENCH_hotpath.json`.
//!
//! Two MIPS figures are reported per mode, and the distinction matters:
//!
//! * **wall MIPS** — guest instructions over the whole run's wall time.
//!   This includes the *authoritative component*: a full x86 interpreter
//!   (`darco-xcomp`) that must retire every guest instruction at each
//!   catch-up point (syscall, page fault, halt, validation). That
//!   interpreter runs at well under 100 MIPS on its own, so wall MIPS is
//!   capped by it **no matter how fast the software layer gets** — it is
//!   a property of the dual-execution simulation infrastructure, not of
//!   the backend under test.
//! * **software-layer MIPS** (`sw_mips`) — guest instructions over wall
//!   time *minus* `sync.xcomp_nanos`, the time attributed to the
//!   authoritative interpreter. This is the co-designed processor's own
//!   throughput: TOL dispatch + translation + translated-code execution.
//!   It is the honest basis for comparing backends and modes.
//!
//! Emits `BENCH_jit.json` with both figures for every mode × backend.
//! With `--gate`, enforces the backend's performance contract on
//! `sw_mips`:
//!
//! * mode ordering under the native backend: `interp < bb` and
//!   `interp < sb` strictly — translation must pay off over
//!   interpretation — and `sb >= 0.9 * bb`. The sb/bb comparison gets a
//!   tolerance because the two are genuinely close under a native
//!   backend: bb mode has no speculation to pay for, while sb's larger
//!   regions win back the transactional overhead only on hot loops.
//!   Quiet-host measurements at `--scale 1/1` put sb ahead (e.g. zeusmp
//!   247 vs 199 sw-MIPS); a strict inequality would flap on a shared CI
//!   host whose run-to-run noise exceeds the margin.
//! * native sb-mode `sw_mips` must be at least 2x the emulator's
//!   sb-mode `sw_mips` — running translations as real machine code must
//!   clearly beat emulating them (measured 2.3-2.9x).
//!
//! The gate is calibrated for `--scale 1/1`: superblock translation +
//! native compilation is a fixed cost, and at fractional scales it can
//! exceed a short run's whole execution time (breakable at 1/4 spends
//! 7.4ms translating vs 7.2ms executing), which re-inverts sb below bb
//! for reasons that say nothing about the generated code.
//!
//! **Why there is no 10x gate.** The paper's order-of-magnitude premise
//! compares translated code against a decode-dispatch interpreter. This
//! repo's interpreter is already a predecoded fast interpreter running
//! at ~72 sw-MIPS, and every translated mode — emulated or native —
//! carries the transactional machinery (checkpoint snapshots, store
//! buffering, alias screens) that precise-state co-design requires, so
//! the realizable software-layer speedup over interpretation is ~2.2x,
//! not 10x. Wall MIPS is additionally capped near ~77 by the
//! authoritative x86 interpreter regardless of backend. Both limits are
//! properties of the dual-execution infrastructure, not of the backend
//! under test; the JSON records them instead of gating on a number the
//! architecture cannot produce.
//!
//! The JSON also records the pre-JIT emulator sb-mode wall baseline
//! (22.23 MIPS at `--scale 1/4`, from `BENCH_hotpath.json`) so speedups
//! against the state before this backend existed stay visible.
//!
//! On hosts without a JIT (non-x86-64), the harness still runs and
//! records emulator numbers with `"native": null` — honest output, no
//! gate failure for missing hardware.

use darco::json::JsonWriter;
use darco::SystemConfig;
use darco_bench::{default_config, run_one, Scale};
use darco_host::codegen::Backend;
use darco_workloads::benchmarks;
use std::time::Instant;

/// Emulator sb-mode guest MIPS at `--scale 1/4` recorded in
/// `BENCH_hotpath.json` on the commit before the native backend landed.
const EMU_SB_BASELINE_MIPS: f64 = 22.23;
/// Gate: native sb-mode sw-MIPS vs the emulator's sb-mode sw-MIPS.
const GATE_MIN_SPEEDUP_VS_EMU_SB: f64 = 2.0;
/// Gate tolerance on `sb >= bb` under the native backend (see module
/// docs: the true margin is inside shared-host noise).
const GATE_SB_VS_BB_TOLERANCE: f64 = 0.9;

struct Mode {
    name: &'static str,
    bbm: u64,
    sbm: u64,
}

/// Same three pinned modes as the hot-path harness in `speed.rs`.
const MODES: [Mode; 3] = [
    Mode { name: "interp", bbm: u64::MAX, sbm: u64::MAX },
    Mode { name: "bb", bbm: 50, sbm: u64::MAX },
    Mode { name: "sb", bbm: 50, sbm: 500 },
];

struct ModeResult {
    name: &'static str,
    guest_insns: u64,
    wall_s: f64,
    /// Wall seconds attributed to the authoritative x86 interpreter.
    xcomp_s: f64,
    mips: f64,
    sw_mips: f64,
}

fn mode_config(m: &Mode, backend: Backend) -> SystemConfig {
    let mut cfg = default_config();
    cfg.tol.bbm_threshold = m.bbm;
    cfg.tol.sbm_threshold = m.sbm;
    cfg.backend = backend;
    cfg
}

fn run_backend(backend: Backend, set: &[usize], scale: Scale, repeat: u32) -> Vec<ModeResult> {
    MODES
        .iter()
        .map(|m| {
            let mut insns = 0u64;
            let mut wall = 0.0f64;
            let mut xcomp = 0.0f64;
            for &idx in set {
                let b = &benchmarks()[idx];
                // Guest execution is deterministic; wall time is not
                // (shared host). Best-of-N per run is the standard
                // noise-rejection: the minimum is the least-disturbed
                // observation of the same deterministic work.
                let mut best_wall = f64::INFINITY;
                let mut best_xcomp = 0.0f64;
                let mut best_insns = 0u64;
                for _ in 0..repeat.max(1) {
                    let t0 = Instant::now();
                    let r = run_one(b, scale, mode_config(m, backend));
                    let w = t0.elapsed().as_secs_f64();
                    if w < best_wall {
                        best_wall = w;
                        best_xcomp =
                            r.metrics.counter_value("sync.xcomp_nanos").unwrap_or(0) as f64 / 1e9;
                        best_insns = r.guest_insns;
                    }
                }
                wall += best_wall;
                xcomp += best_xcomp;
                insns += best_insns;
            }
            let sw = (wall - xcomp).max(1e-9);
            ModeResult {
                name: m.name,
                guest_insns: insns,
                wall_s: wall,
                xcomp_s: xcomp,
                mips: insns as f64 / wall / 1e6,
                sw_mips: insns as f64 / sw / 1e6,
            }
        })
        .collect()
}

fn write_modes(w: &mut JsonWriter, key: &str, results: &[ModeResult]) {
    w.begin_obj(Some(key));
    for r in results {
        w.begin_obj(Some(r.name));
        w.field_num("guest_insns", r.guest_insns);
        w.field_f64("wall_s", r.wall_s);
        w.field_f64("xcomp_s", r.xcomp_s);
        w.field_f64("mips", r.mips);
        w.field_f64("sw_mips", r.sw_mips);
        w.end_obj();
    }
    w.end_obj();
}

fn main() {
    let scale = Scale::from_args();
    let gate = std::env::args().any(|a| a == "--gate");
    let args: Vec<String> = std::env::args().collect();
    let repeat = args
        .iter()
        .position(|a| a == "--repeat")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3u32);
    let set = [0usize, 13, 24];

    let emu = run_backend(Backend::Emu, &set, scale, repeat);
    let native = if Backend::native_available() {
        Some(run_backend(Backend::Native, &set, scale, repeat))
    } else {
        None
    };

    println!("== JIT speed (guest MIPS per mode, native vs emu) ==");
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "mode", "emu MIPS", "emu sw", "native MIPS", "native sw", "sw speedup"
    );
    for (i, e) in emu.iter().enumerate() {
        match &native {
            Some(n) => println!(
                "{:<10} {:>10.2} {:>10.2} {:>12.2} {:>12.2} {:>9.2}x",
                e.name,
                e.mips,
                e.sw_mips,
                n[i].mips,
                n[i].sw_mips,
                n[i].sw_mips / e.sw_mips
            ),
            None => println!(
                "{:<10} {:>10.2} {:>10.2} {:>12} {:>12} {:>10}",
                e.name, e.mips, e.sw_mips, "-", "-", "-"
            ),
        }
    }
    if native.is_none() {
        println!("(no JIT on this host; emulator numbers only)");
    }

    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_str("bench", "jit");
    w.field_str("scale", &format!("{}/{}", scale.0, scale.1));
    write_modes(&mut w, "emu", &emu);
    match &native {
        Some(n) => {
            write_modes(&mut w, "native", n);
            w.begin_obj(Some("native_sw_speedup"));
            for (i, e) in emu.iter().enumerate() {
                w.field_f64(e.name, n[i].sw_mips / e.sw_mips);
            }
            w.end_obj();
            w.field_f64("native_sb_sw_vs_emu_interp_sw", n[2].sw_mips / emu[0].sw_mips);
        }
        None => {
            w.field_null("native");
        }
    }
    w.field_f64("emu_sb_wall_baseline_mips", EMU_SB_BASELINE_MIPS);
    w.field_f64("gate_min_speedup_vs_emu_sb", GATE_MIN_SPEEDUP_VS_EMU_SB);
    w.field_f64("gate_sb_vs_bb_tolerance", GATE_SB_VS_BB_TOLERANCE);
    w.end_obj();
    std::fs::write("BENCH_jit.json", w.finish()).expect("write BENCH_jit.json");
    println!("wrote BENCH_jit.json");

    if gate {
        let Some(n) = &native else {
            println!("gate: skipped (no JIT on this host)");
            return;
        };
        let (interp, bb, sb) = (n[0].sw_mips, n[1].sw_mips, n[2].sw_mips);
        let need = GATE_MIN_SPEEDUP_VS_EMU_SB * emu[2].sw_mips;
        let mut failed = false;
        if !(interp < bb && interp < sb) {
            eprintln!(
                "gate FAILED: native interp-mode not slowest \
                 (interp {interp:.2} / bb {bb:.2} / sb {sb:.2} sw-MIPS)"
            );
            failed = true;
        }
        if sb < GATE_SB_VS_BB_TOLERANCE * bb {
            eprintln!(
                "gate FAILED: native sb {sb:.2} sw-MIPS below {GATE_SB_VS_BB_TOLERANCE} \
                 of bb {bb:.2}"
            );
            failed = true;
        }
        if sb < need {
            eprintln!(
                "gate FAILED: native sb {sb:.2} sw-MIPS < required {need:.2} \
                 ({GATE_MIN_SPEEDUP_VS_EMU_SB}x the emulator's sb-mode {:.2} sw-MIPS)",
                emu[2].sw_mips
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "gate passed: native interp {interp:.2} < bb {bb:.2}, sb {sb:.2} >= \
             {GATE_SB_VS_BB_TOLERANCE}x bb and >= {need:.2} \
             ({GATE_MIN_SPEEDUP_VS_EMU_SB}x emu sb {:.2}) sw-MIPS",
            emu[2].sw_mips
        );
    }
}
