//! **E1 / §VI-A** — DARCO speed: guest/host instruction rates with and
//! without the timing simulator, plus the hot-path benchmark used to
//! track emulator-loop optimizations.
//!
//! Paper (on their cluster): 3.4 guest MIPS emulated, 0.37 guest MIPS with
//! timing; 20 host MIPS emulated, 2 host MIPS with timing. Absolute rates
//! depend on the machine; the experiment checks the relative slowdown of
//! attaching the timing model.
//!
//! The hot-path section pins the system into each execution mode
//! (interpreter-only, BB-translated, SB-optimized) and reports guest MIPS
//! per mode, emitting machine-readable `BENCH_hotpath.json` so speedups
//! from hot-path work (monomorphized sinks, L0 TLB, predecode cache) are
//! tracked against the recorded pre-optimization baseline.

use darco::json::JsonWriter;
use darco::{SinkChoice, SystemConfig};
use darco_bench::{default_config, paper, run_one, with_timing, Scale};
use darco_workloads::benchmarks;
use std::time::Instant;

/// Pre-optimization guest-MIPS baseline `(interp, bb, sb)`, measured with
/// this same harness at `--scale 1/4` on the commit before the hot-path
/// overhaul (dyn-dispatch sinks, per-byte page-map walks, per-iteration
/// decode). `None` entries mean "no baseline recorded yet".
const BASELINE_MIPS: Option<(f64, f64, f64)> = Some((1.67, 2.84, 2.94));

/// One hot-path mode: a name plus the TOL thresholds that pin it.
struct Mode {
    name: &'static str,
    bbm: u64,
    sbm: u64,
}

const MODES: [Mode; 3] = [
    // Promotion disabled: every instruction interprets.
    Mode { name: "interp", bbm: u64::MAX, sbm: u64::MAX },
    // BB promotion at the default threshold, SB promotion disabled.
    Mode { name: "bb", bbm: 50, sbm: u64::MAX },
    // Full promotion pipeline (defaults).
    Mode { name: "sb", bbm: 50, sbm: 500 },
];

struct ModeResult {
    name: &'static str,
    guest_insns: u64,
    wall_s: f64,
    mips: f64,
}

fn hotpath_config(m: &Mode) -> SystemConfig {
    let mut cfg = default_config();
    cfg.tol.bbm_threshold = m.bbm;
    cfg.tol.sbm_threshold = m.sbm;
    cfg
}

/// Runs the hot-path set in one mode, aggregating instructions and time.
fn run_mode(m: &Mode, set: &[usize], scale: Scale) -> ModeResult {
    let mut insns = 0u64;
    let mut wall = 0.0f64;
    for &idx in set {
        let b = &benchmarks()[idx];
        let t0 = Instant::now();
        let r = run_one(b, scale, hotpath_config(m));
        wall += t0.elapsed().as_secs_f64();
        insns += r.guest_insns;
    }
    ModeResult { name: m.name, guest_insns: insns, wall_s: wall, mips: insns as f64 / wall / 1e6 }
}

fn write_hotpath_json(scale: Scale, results: &[ModeResult]) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_str("bench", "hotpath");
    w.field_str("scale", &format!("{}/{}", scale.0, scale.1));
    w.begin_obj(Some("modes"));
    for r in results {
        w.begin_obj(Some(r.name));
        w.field_num("guest_insns", r.guest_insns);
        w.field_f64("wall_s", r.wall_s);
        w.field_f64("mips", r.mips);
        w.end_obj();
    }
    w.end_obj();
    match BASELINE_MIPS {
        Some((bi, bb, bs)) => {
            w.begin_obj(Some("baseline_mips"));
            w.field_f64("interp", bi);
            w.field_f64("bb", bb);
            w.field_f64("sb", bs);
            w.end_obj();
            w.begin_obj(Some("speedup"));
            for (r, base) in results.iter().zip([bi, bb, bs]) {
                w.field_f64(r.name, r.mips / base);
            }
            w.end_obj();
        }
        None => {
            w.field_null("baseline_mips");
        }
    }
    w.end_obj();
    w.finish()
}

fn main() {
    let scale = Scale::from_args();
    // A representative subset (one per suite) keeps the run short.
    let set = [0usize, 13, 24];
    let mut rows = Vec::new();
    for idx in set {
        let b = &benchmarks()[idx];
        let t0 = Instant::now();
        let r = run_one(b, scale, default_config());
        let dt_fun = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let rt = run_one(b, scale, with_timing(default_config(), SinkChoice::InOrder));
        let dt_tim = t0.elapsed().as_secs_f64();
        let host_fun = (r.host_app_insns + r.overhead.total()) as f64;
        let host_tim = (rt.host_app_insns + rt.overhead.total()) as f64;
        rows.push((
            b.name,
            r.guest_insns as f64 / dt_fun / 1e6,
            rt.guest_insns as f64 / dt_tim / 1e6,
            host_fun / dt_fun / 1e6,
            host_tim / dt_tim / 1e6,
        ));
    }
    println!("== §VI-A: DARCO speed ==");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "guest MIPS", "guest+tim", "host MIPS", "host+tim"
    );
    for (n, a, b, c, d) in &rows {
        println!("{n:<16} {a:>12.2} {b:>12.2} {c:>12.2} {d:>12.2}");
    }
    let avg = |f: fn(&(&str, f64, f64, f64, f64)) -> f64| {
        rows.iter().map(f).sum::<f64>() / rows.len() as f64
    };
    let (ga, gt, ha, ht) = (avg(|r| r.1), avg(|r| r.2), avg(|r| r.3), avg(|r| r.4));
    println!("{:-<68}", "");
    println!(
        "average          {ga:>12.2} {gt:>12.2} {ha:>12.2} {ht:>12.2}   (paper: {:.2} / {:.2} / {:.0} / {:.0})",
        paper::SPEED.0, paper::SPEED.1, paper::SPEED.2, paper::SPEED.3
    );
    println!(
        "timing-attach slowdown: guest {:.1}x (paper {:.1}x), host {:.1}x (paper {:.1}x)",
        ga / gt,
        paper::SPEED.0 / paper::SPEED.1,
        ha / ht,
        paper::SPEED.2 / paper::SPEED.3
    );

    println!();
    println!("== Hot-path modes (guest MIPS per execution mode) ==");
    println!("{:<10} {:>14} {:>10} {:>10} {:>10}", "mode", "guest insns", "wall s", "MIPS", "vs base");
    let results: Vec<ModeResult> = MODES.iter().map(|m| run_mode(m, &set, scale)).collect();
    for (i, r) in results.iter().enumerate() {
        let vs = match BASELINE_MIPS {
            Some(b) => format!("{:.2}x", r.mips / [b.0, b.1, b.2][i]),
            None => "-".into(),
        };
        println!(
            "{:<10} {:>14} {:>10.3} {:>10.2} {:>10}",
            r.name, r.guest_insns, r.wall_s, r.mips, vs
        );
    }
    let json = write_hotpath_json(scale, &results);
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("wrote BENCH_hotpath.json");
}
