//! **E1 / §VI-A** — DARCO speed: guest/host instruction rates with and
//! without the timing simulator.
//!
//! Paper (on their cluster): 3.4 guest MIPS emulated, 0.37 guest MIPS with
//! timing; 20 host MIPS emulated, 2 host MIPS with timing. Absolute rates
//! depend on the machine; the experiment checks the relative slowdown of
//! attaching the timing model.

use darco_bench::{default_config, paper, run_one, with_timing, Scale};
use darco::SinkChoice;
use darco_workloads::benchmarks;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    // A representative subset (one per suite) keeps the run short.
    let set = [0usize, 13, 24];
    let mut rows = Vec::new();
    for idx in set {
        let b = &benchmarks()[idx];
        let t0 = Instant::now();
        let r = run_one(b, scale, default_config());
        let dt_fun = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let rt = run_one(b, scale, with_timing(default_config(), SinkChoice::InOrder));
        let dt_tim = t0.elapsed().as_secs_f64();
        let host_fun = (r.host_app_insns + r.overhead.total()) as f64;
        let host_tim = (rt.host_app_insns + rt.overhead.total()) as f64;
        rows.push((
            b.name,
            r.guest_insns as f64 / dt_fun / 1e6,
            rt.guest_insns as f64 / dt_tim / 1e6,
            host_fun / dt_fun / 1e6,
            host_tim / dt_tim / 1e6,
        ));
    }
    println!("== §VI-A: DARCO speed ==");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "guest MIPS", "guest+tim", "host MIPS", "host+tim"
    );
    for (n, a, b, c, d) in &rows {
        println!("{n:<16} {a:>12.2} {b:>12.2} {c:>12.2} {d:>12.2}");
    }
    let avg = |f: fn(&(&str, f64, f64, f64, f64)) -> f64| {
        rows.iter().map(f).sum::<f64>() / rows.len() as f64
    };
    let (ga, gt, ha, ht) = (avg(|r| r.1), avg(|r| r.2), avg(|r| r.3), avg(|r| r.4));
    println!("{:-<68}", "");
    println!(
        "average          {ga:>12.2} {gt:>12.2} {ha:>12.2} {ht:>12.2}   (paper: {:.2} / {:.2} / {:.0} / {:.0})",
        paper::SPEED.0, paper::SPEED.1, paper::SPEED.2, paper::SPEED.3
    );
    println!(
        "timing-attach slowdown: guest {:.1}x (paper {:.1}x), host {:.1}x (paper {:.1}x)",
        ga / gt,
        paper::SPEED.0 / paper::SPEED.1,
        ha / ht,
        paper::SPEED.2 / paper::SPEED.3
    );
}
