//! **E3 / Fig. 5** — Host instructions per guest instruction in SBM.
//!
//! Paper: 4.0 / 2.6 / 3.1 for SPECINT2006 / SPECFP2006 / Physicsbench
//! (branches dominate SPECINT's cost; software-emulated trigonometry
//! raises Physicsbench's).

use darco_bench::{default_config, paper, print_table, run_suite, Scale};

fn main() {
    let rows = run_suite(Scale::from_args(), |_| default_config());
    print_table(
        "Fig. 5: host instructions per guest instruction (SBM)",
        &rows,
        "host/guest",
        |r| r.sbm_emulation_cost,
        paper::FIG5_COST,
        false,
    );
    println!(
        "note: absolute costs are lower than the paper's (this translator\n\
         folds addressing and fuses compare+branch aggressively); the\n\
         suite ordering and its drivers are what the experiment checks."
    );
}
