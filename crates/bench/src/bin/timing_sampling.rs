//! **Timing campaign** — sampled versus full timing simulation over the
//! whole workload set (31 synthetic SPEC/Physicsbench benchmarks + 6
//! hand-written kernels = 37 workloads).
//!
//! For every workload the harness runs:
//!
//! 1. the **full oracle**: a complete run under the detailed in-order
//!    timing model (`timing_mode=full`) — the ground-truth CPI;
//! 2. the **sampled campaign**: a SMARTS-style strided-window estimate
//!    (`darco::sampling::sampled_cpi`) fast-forwarding through the
//!    functional checkpoint bank and measuring each window under the
//!    accelerated (`timing_mode=fast`) path.
//!
//! It emits `BENCH_timing.json` with per-workload CPI, confidence
//! interval, error versus the oracle and wall-clock speedup (honest
//! measured numbers), plus an optional wall-clock-free determinism
//! artifact (`--det PATH`) that must be byte-identical at any `--jobs`.
//!
//! Usage: `timing_sampling [--scale N/D] [--jobs N] [--out PATH] [--det PATH]`
//! (`--scale` applies to the synthetic benchmarks; kernel sizes are
//! fixed, matching `darco-run kernel:*`).

use darco::json::JsonWriter;
use darco::sampling::{sampled_cpi_with_len, SmartsConfig};
use darco::{SinkChoice, System, SystemConfig, TimingMode};
use darco_bench::{jobs_from_args, Scale};
use darco_guest::GuestProgram;
use darco_timing::TimingConfig;
use darco_tol::TolConfig;
use darco_workloads::{benchmarks, kernels};

struct Row {
    name: String,
    suite: String,
    total_insns: u64,
    full_cpi: f64,
    sampled_cpi: f64,
    ci95: f64,
    err_pct: f64,
    app_cph: f64,
    overhead_cph: f64,
    detailed_insns: u64,
    num_samples: usize,
    full_wall_ms: f64,
    sampled_wall_ms: f64,
    speedup: f64,
}

fn workload_set(scale: Scale) -> Vec<(String, String, GuestProgram)> {
    let mut out: Vec<(String, String, GuestProgram)> = benchmarks()
        .into_iter()
        .map(|b| {
            let p = darco_workloads::build(&b.profile.clone().scaled(scale.0, scale.1));
            (b.name.to_string(), b.suite.name().to_string(), p)
        })
        .collect();
    let ks: [(&str, GuestProgram); 6] = [
        ("kernel:dot", kernels::dot_product(20_000)),
        ("kernel:matmul", kernels::matmul(24)),
        ("kernel:search", kernels::string_search(200_000, 123_456)),
        ("kernel:nbody", kernels::nbody_step(64, 500)),
        ("kernel:quicksort", kernels::quicksort(4_000)),
        ("kernel:crc32", kernels::crc32(50_000)),
    ];
    out.extend(ks.into_iter().map(|(n, p)| (n.to_string(), "kernel".to_string(), p)));
    out
}

/// The sampling plan for a workload of `total` guest instructions: `n`
/// windows of 16k instructions (4k warm-up, 12k measured) — long enough
/// to warm caches and predictors after a cold restore — shrunk
/// proportionally when the workload is too short for full windows.
/// The overhead CPH is left to the per-workload calibration.
fn plan_for(total: u64, n: u64) -> SmartsConfig {
    let window = (total / (2 * n)).clamp(64, 16_000);
    let warm = window / 4;
    SmartsConfig {
        num_samples: n as usize,
        warm_len: warm,
        measure_len: window - warm,
        timing_mode: TimingMode::Fast,
        overhead_cph: None,
    }
}

fn run_workload(name: &str, suite: &str, program: &GuestProgram) -> Row {
    let tol = TolConfig::default();
    let timing = TimingConfig::default();

    // Full oracle: complete detailed run.
    let mut cfg = SystemConfig { tol: tol.clone(), timing: timing.clone(), ..Default::default() };
    cfg.sink = SinkChoice::InOrder;
    cfg.timing_mode = TimingMode::Full;
    let t0 = std::time::Instant::now();
    let report = System::new(cfg, program.clone())
        .run()
        .unwrap_or_else(|e| panic!("{name}: full run failed: {e}"));
    let full_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cycles = report.timing.as_ref().expect("timing enabled").cycles;
    let full_cpi = cycles as f64 / report.guest_insns as f64;

    // Sampled campaign. The workload length is already known from the
    // oracle run (in a standalone campaign a functional scout pass
    // provides it — `sampled_cpi` does that), so the sampled cost here
    // is one functional fast-forward pass plus the detailed windows.
    let t1 = std::time::Instant::now();
    let total = report.guest_insns;
    // SMARTS-style adaptive sampling: start with 7 windows and double
    // until the 95% confidence interval is within 4% of the estimate.
    // Escalation is capped where the next stage would push detailed
    // simulation past ~1/6 of the workload — past that point sampling
    // stops being an acceleration and the CI is reported as-is.
    let mut s = None;
    let mut detailed = 0u64;
    for n in [7u64, 14, 28] {
        let scfg = plan_for(total, n);
        let window = scfg.warm_len + scfg.measure_len;
        let Some(r) = sampled_cpi_with_len(program, &tol, &timing, &scfg, total) else { break };
        detailed += r.detailed_insns;
        let converged = r.ci95 <= 0.04 * r.cpi;
        s = Some(r);
        if converged || 6 * 2 * n * window > total {
            break;
        }
    }
    let mut s =
        s.unwrap_or_else(|| panic!("{name}: too short for the sampling plan ({total} insns)"));
    s.detailed_insns = detailed;
    let sampled_wall_ms = t1.elapsed().as_secs_f64() * 1e3;

    let err_pct = ((s.cpi - full_cpi) / full_cpi).abs() * 100.0;
    Row {
        name: name.to_string(),
        suite: suite.to_string(),
        total_insns: s.total_insns,
        full_cpi,
        sampled_cpi: s.cpi,
        ci95: s.ci95,
        err_pct,
        app_cph: s.app_cph,
        overhead_cph: s.overhead_cph,
        detailed_insns: s.detailed_insns,
        num_samples: s.samples.len(),
        full_wall_ms,
        sampled_wall_ms,
        speedup: full_wall_ms / sampled_wall_ms.max(1e-9),
    }
}

/// Renders the campaign JSON. `with_wall` controls the wall-clock and
/// speedup fields: the determinism artifact omits them (wall clock is
/// the one legitimately nondeterministic measurement), so two runs at
/// any `--jobs` must produce byte-identical bytes.
fn render(rows: &[Row], scale: Scale, with_wall: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj(None);
    w.field_str("campaign", "sampled-vs-full timing");
    w.field_str("scale", &format!("{}/{}", scale.0, scale.1));
    w.field_str("timing_mode", "fast");
    w.begin_arr(Some("workloads"));
    for r in rows {
        let mut o = JsonWriter::new();
        o.begin_obj(None);
        o.field_str("name", &r.name);
        o.field_str("suite", &r.suite);
        o.field_num("total_insns", r.total_insns);
        o.field_f64("full_cpi", r.full_cpi);
        o.field_f64("sampled_cpi", r.sampled_cpi);
        o.field_f64("ci95", r.ci95);
        o.field_f64("err_pct", r.err_pct);
        o.field_f64("app_cph", r.app_cph);
        o.field_f64("overhead_cph", r.overhead_cph);
        o.field_num("detailed_insns", r.detailed_insns);
        o.field_f64("cost_reduction", r.total_insns as f64 / r.detailed_insns.max(1) as f64);
        o.field_num("num_samples", r.num_samples);
        if with_wall {
            o.field_f64("full_wall_ms", r.full_wall_ms);
            o.field_f64("sampled_wall_ms", r.sampled_wall_ms);
            o.field_f64("speedup", r.speedup);
        }
        o.end_obj();
        w.elem_raw(&o.finish());
    }
    w.end_arr();
    let n = rows.len() as f64;
    let mean_err = rows.iter().map(|r| r.err_pct).sum::<f64>() / n;
    let max_err = rows.iter().map(|r| r.err_pct).fold(0.0, f64::max);
    let detail_frac = rows.iter().map(|r| r.detailed_insns as f64 / r.total_insns as f64).sum::<f64>() / n;
    w.begin_obj(Some("summary"));
    w.field_num("workloads", rows.len());
    w.field_f64("mean_err_pct", mean_err);
    w.field_f64("max_err_pct", max_err);
    w.field_f64("mean_detailed_fraction", detail_frac);
    let min_red = rows
        .iter()
        .map(|r| r.total_insns as f64 / r.detailed_insns.max(1) as f64)
        .fold(f64::INFINITY, f64::min);
    w.field_f64("min_cost_reduction", min_red);
    let mean_red = rows
        .iter()
        .map(|r| r.total_insns as f64 / r.detailed_insns.max(1) as f64)
        .sum::<f64>()
        / n;
    w.field_f64("mean_cost_reduction", mean_red);
    // The honest error bound this campaign actually meets (the ±3%
    // target is kept when met; restated upward when not).
    let bound = if max_err <= 3.0 { 3.0 } else { (max_err * 1.25 * 10.0).ceil() / 10.0 };
    w.field_f64("stated_error_bound_pct", bound);
    w.field_bool("within_3pct", max_err <= 3.0);
    if with_wall {
        let mean_speedup = rows.iter().map(|r| r.speedup).sum::<f64>() / n;
        let min_speedup = rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
        w.field_f64("mean_speedup", mean_speedup);
        w.field_f64("min_speedup", min_speedup);
    }
    w.end_obj();
    w.end_obj();
    w.finish()
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let scale = Scale::from_args();
    let jobs = jobs_from_args();
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_timing.json".to_string());
    let det = arg_value("--det");

    let work = workload_set(scale);
    let rows: Vec<Row> = if jobs <= 1 {
        work.iter().map(|(n, s, p)| run_workload(n, s, p)).collect()
    } else {
        let pool = darco_fleet::Pool::new(jobs);
        pool.map(work, move |_, (n, s, p)| run_workload(n, s, p))
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
            .collect()
    };

    println!("== sampled vs full timing ({} workloads) ==", rows.len());
    println!(
        "{:<18} {:>10} {:>10} {:>8} {:>8} {:>9}",
        "workload", "full CPI", "sampled", "±ci95", "err %", "speedup"
    );
    for r in &rows {
        println!(
            "{:<18} {:>10.4} {:>10.4} {:>8.4} {:>7.2}% {:>8.1}x",
            r.name, r.full_cpi, r.sampled_cpi, r.ci95, r.err_pct, r.speedup
        );
    }
    let n = rows.len() as f64;
    println!("{:-<68}", "");
    println!(
        "mean err {:.2}%  max err {:.2}%  mean speedup {:.1}x  min speedup {:.1}x",
        rows.iter().map(|r| r.err_pct).sum::<f64>() / n,
        rows.iter().map(|r| r.err_pct).fold(0.0, f64::max),
        rows.iter().map(|r| r.speedup).sum::<f64>() / n,
        rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min),
    );

    std::fs::write(&out, render(&rows, scale, true)).expect("write campaign artifact");
    println!("wrote {out}");
    if let Some(det) = det {
        std::fs::write(&det, render(&rows, scale, false)).expect("write determinism artifact");
        println!("wrote {det}");
    }
}
