//! Shared harness for the experiment binaries: runs benchmarks through
//! the full DARCO system, aggregates per-suite averages, and renders the
//! paper-versus-measured tables that back `EXPERIMENTS.md`.

use darco::{RunReport, SinkChoice, System, SystemConfig};
use darco_tol::TolConfig;
use darco_workloads::{benchmarks, Benchmark, Suite};

/// Paper reference values for the headline figures.
pub mod paper {
    /// Fig. 4: fraction of dynamic guest instructions in SBM per suite
    /// (SPECINT, SPECFP, Physicsbench).
    pub const FIG4_SBM: [f64; 3] = [0.88, 0.96, 0.75];
    /// Fig. 5: host instructions per guest instruction in SBM.
    pub const FIG5_COST: [f64; 3] = [4.0, 2.6, 3.1];
    /// Fig. 6: TOL overhead share of the host dynamic stream.
    pub const FIG6_OVERHEAD: [f64; 3] = [0.16, 0.13, 0.41];
    /// §VI-A: DARCO speed (guest MIPS emulated, guest MIPS with timing,
    /// host MIPS, host MIPS with timing).
    pub const SPEED: (f64, f64, f64, f64) = (3.4, 0.37, 20.0, 2.0);
    /// §VI-E: warm-up methodology (cost reduction ×, CPI error %).
    pub const WARMUP: (f64, f64) = (65.0, 0.75);
}

/// Scale of a run (numerator, denominator applied to iteration counts).
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub u32, pub u32);

impl Scale {
    /// Parses `--scale N/D` from argv; default 1/1 (full size).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for i in 0..args.len() {
            if args[i] == "--scale" {
                if let Some(v) = args.get(i + 1) {
                    let mut it = v.split('/');
                    let n = it.next().and_then(|x| x.parse().ok()).unwrap_or(1);
                    let d = it.next().and_then(|x| x.parse().ok()).unwrap_or(1);
                    return Scale(n, d.max(1));
                }
            }
        }
        Scale(1, 1)
    }
}

/// Parses the shared `--jobs N` harness flag from argv; defaults to
/// available parallelism. Every figure/ablation binary (and the
/// fleet-backed suite helpers) honors it.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--jobs" {
            if let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                if n > 0 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The default experiment configuration (functional mode).
pub fn default_config() -> SystemConfig {
    SystemConfig::default()
}

/// Runs one benchmark at a scale with a config.
///
/// # Panics
/// Panics if the run fails validation — experiments must run correct.
pub fn run_one(b: &Benchmark, scale: Scale, cfg: SystemConfig) -> RunReport {
    let profile = b.profile.clone().scaled(scale.0, scale.1);
    let program = darco_workloads::build(&profile);
    System::new(cfg, program)
        .run()
        .unwrap_or_else(|e| panic!("{} failed: {e}", b.name))
}

/// Runs an explicit `(benchmark, config)` job list, returning reports in
/// input order. With `jobs > 1` the list executes on a `darco-fleet`
/// work-stealing pool; results still come back in input order (the
/// pool's determinism contract), so output is identical to a serial run.
///
/// # Panics
/// Propagates [`run_one`]'s panic for any failing job — experiments must
/// run correct.
pub fn run_jobs(
    scale: Scale,
    jobs: usize,
    work: Vec<(Benchmark, SystemConfig)>,
) -> Vec<(Benchmark, RunReport)> {
    if jobs.max(1) == 1 {
        return work
            .into_iter()
            .map(|(b, cfg)| {
                let r = run_one(&b, scale, cfg);
                (b, r)
            })
            .collect();
    }
    let benches: Vec<Benchmark> = work.iter().map(|(b, _)| b.clone()).collect();
    let pool = darco_fleet::Pool::new(jobs);
    let out = pool.map(work, move |_, (b, cfg)| run_one(b, scale, cfg.clone()));
    benches
        .into_iter()
        .zip(out)
        .map(|(b, r)| match r {
            Ok(report) => (b, report),
            Err(e) => panic!("{}: {e}", b.name),
        })
        .collect()
}

/// Runs the whole suite on `jobs` workers, returning `(benchmark,
/// report)` pairs in suite order.
pub fn run_suite_jobs(
    scale: Scale,
    jobs: usize,
    mk_cfg: impl Fn(&Benchmark) -> SystemConfig,
) -> Vec<(Benchmark, RunReport)> {
    let work = benchmarks()
        .into_iter()
        .map(|b| {
            let cfg = mk_cfg(&b);
            (b, cfg)
        })
        .collect();
    run_jobs(scale, jobs, work)
}

/// Runs the whole suite, returning `(benchmark, report)` pairs. Honors
/// the shared `--jobs N` flag (default: available parallelism) via the
/// fleet pool; see [`run_suite_jobs`] for an explicit worker count.
pub fn run_suite(
    scale: Scale,
    mk_cfg: impl Fn(&Benchmark) -> SystemConfig,
) -> Vec<(Benchmark, RunReport)> {
    run_suite_jobs(scale, jobs_from_args(), mk_cfg)
}

/// Per-suite average of a metric.
pub fn suite_avg(
    rows: &[(Benchmark, RunReport)],
    suite: Suite,
    f: impl Fn(&RunReport) -> f64,
) -> f64 {
    let xs: Vec<f64> = rows.iter().filter(|(b, _)| b.suite == suite).map(|(_, r)| f(r)).collect();
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

/// Renders a per-benchmark table plus suite averages and the paper row.
pub fn print_table(
    title: &str,
    rows: &[(Benchmark, RunReport)],
    metric_name: &str,
    f: impl Fn(&RunReport) -> f64,
    paper_by_suite: [f64; 3],
    as_percent: bool,
) {
    let fmt = |v: f64| if as_percent { format!("{:6.1}%", v * 100.0) } else { format!("{v:7.2}") };
    println!("== {title} ==");
    println!("{:<16} {:<13} {}", "benchmark", "suite", metric_name);
    for (b, r) in rows {
        println!("{:<16} {:<13} {}", b.name, b.suite.name(), fmt(f(r)));
    }
    println!("{:-<44}", "");
    for (i, s) in [Suite::SpecInt, Suite::SpecFp, Suite::Physics].into_iter().enumerate() {
        println!(
            "{:<16} {:<13} {}   (paper: {})",
            format!("avg {}", s.name()),
            "",
            fmt(suite_avg(rows, s, &f)),
            fmt(paper_by_suite[i]),
        );
    }
    println!();
}

/// A hotter TOL config used by the quick smoke paths (not by the figure
/// harnesses, which use the defaults).
pub fn smoke_tol() -> TolConfig {
    TolConfig { bbm_threshold: 10, sbm_threshold: 60, ..TolConfig::default() }
}

/// Enables timing with the given sink.
pub fn with_timing(mut cfg: SystemConfig, sink: SinkChoice) -> SystemConfig {
    cfg.sink = sink;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_jobs_match_serial_results() {
        let work = || {
            benchmarks()
                .into_iter()
                .take(3)
                .map(|b| (b, default_config()))
                .collect::<Vec<_>>()
        };
        let serial = run_jobs(Scale(1, 64), 1, work());
        let pooled = run_jobs(Scale(1, 64), 4, work());
        assert_eq!(serial.len(), pooled.len());
        for ((b1, r1), (b2, r2)) in serial.iter().zip(&pooled) {
            assert_eq!(b1.name, b2.name, "input order preserved");
            assert_eq!(r1.guest_insns, r2.guest_insns, "{}", b1.name);
            assert_eq!(r1.mode_insns, r2.mode_insns, "{}", b1.name);
            assert_eq!(r1.overhead.total(), r2.overhead.total(), "{}", b1.name);
        }
    }

    #[test]
    fn one_benchmark_of_each_suite_runs_at_tiny_scale() {
        for idx in [0usize, 11, 24] {
            let b = &benchmarks()[idx];
            let r = run_one(b, Scale(1, 50), default_config());
            assert!(r.guest_insns > 1_000, "{}: {}", b.name, r.guest_insns);
            assert_eq!(r.syscalls, 1, "checksum write syscall");
        }
    }
}
