//! The verifier-acceptance sweep: every suite benchmark, at every
//! optimization level, must translate with zero static-verification
//! findings (`VerifyMode::Fatal` panics on the first one).
//!
//! This is the "verifier accepts every region from the workload suite"
//! half of the verifier contract; the rejection half lives in the
//! `darco-ir` unit tests against hand-built invalid regions.

use darco::machine::Machine;
use darco_host::sink::NullSink;
use darco_ir::OptLevel;
use darco_tol::{TolConfig, VerifyMode};
use darco_workloads::benchmarks;

/// Retired-instruction cap per run: enough for every workload to promote
/// well into SBM at the aggressive thresholds below, small enough to keep
/// the 4-level sweep quick.
const CAP: u64 = 150_000;

#[test]
fn whole_suite_verifies_clean_at_every_opt_level() {
    let mut regions = 0u64;
    let mut sbs = 0u64;
    for lvl in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
        for b in benchmarks() {
            let profile = b.profile.clone().scaled(1, 512);
            let program = darco_workloads::build(&profile);
            let cfg = TolConfig {
                bbm_threshold: 2,
                sbm_threshold: 8,
                opt_level: lvl,
                verify: VerifyMode::Fatal,
                ..TolConfig::default()
            };
            let mut m = Machine::new(cfg, &program);
            if let Err(e) = m.run_to(CAP, true, &mut NullSink) {
                panic!("{} at {lvl:?}: {e}", b.name);
            }
            assert_eq!(m.tol.stats.verify_findings, 0, "{} at {lvl:?}", b.name);
            regions += m.tol.stats.verify_regions;
            sbs += m.tol.stats.translations_sb;
        }
    }
    assert!(regions > 1_000, "sweep too shallow: {regions} regions verified");
    assert!(sbs > 100, "sweep must exercise the SBM pipeline: {sbs} superblocks");
}
