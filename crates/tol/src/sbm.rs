//! SBM — superblock formation, speculation and loop unrolling
//! (paper §V-B3).
//!
//! A superblock starts at a hot basic block and follows the biased branch
//! directions collected by BBM's edge counters. Formation stops at the
//! paper's four conditions: (1) an indirect branch/call/return, (2) an
//! unbiased branch or a reach probability below threshold, (3) too many
//! instructions, (4) too many basic blocks.
//!
//! In assert mode, inner branches become `assert`s (single-entry,
//! single-exit: maximum reordering freedom); after repeated assert
//! failures the TOL rebuilds the superblock *multi-exit* with real side
//! exits and conservative memory ordering. Single-block loops whose
//! backedge is biased-taken are unrolled `unroll_factor`× with the
//! original loop reachable as the fallback path.

use crate::config::TolConfig;
use crate::translate::{
    self, decode_block, BlockPlan, RegionBuilder, TermKind,
};
use darco_guest::GuestMem;
use darco_ir::Region;

/// Edge bias data the planner queries per basic block, `(taken_count,
/// fall_count)`.
pub type EdgeQuery<'a> = &'a dyn Fn(u32) -> Option<(u64, u64)>;

/// The deterministic shape of a superblock (kept with the translation so
/// assert-failure recreation rebuilds the exact same trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SbShape {
    /// Entry PC.
    pub entry: u32,
    /// Basic-block PCs along the trace.
    pub bbs: Vec<u32>,
    /// For each non-final block ending in a conditional branch: the
    /// followed direction.
    pub dirs: Vec<Option<bool>>,
    /// Unroll count (1 = not unrolled).
    pub unroll: u8,
}

/// Plans a superblock starting at `entry`.
///
/// # Errors
/// Returns `None` when the entry block cannot be decoded or is not
/// translatable (callers fall back to keeping the BBM translation).
pub fn plan_superblock(
    mem: &GuestMem,
    entry: u32,
    edges: EdgeQuery<'_>,
    cfg: &TolConfig,
) -> Option<SbShape> {
    let mut bbs = Vec::new();
    let mut dirs = Vec::new();
    let mut insns = 0usize;
    let mut prob = 1.0f64;
    let mut pc = entry;
    loop {
        let plan = decode_block(mem, pc).ok()?;
        if !plan.translatable {
            break;
        }
        // Check the self-loop unroll pattern first: a single-block loop
        // whose backedge is biased-taken.
        if bbs.is_empty() && cfg.unroll {
            if let TermKind::Jcc { target, .. } = plan.term_kind {
                if target == entry {
                    if let Some((taken, fall)) = edges(pc) {
                        let total = taken + fall;
                        if total > 0 && taken as f64 / total as f64 >= cfg.edge_bias {
                            return Some(SbShape {
                                entry,
                                bbs: vec![pc],
                                dirs: vec![Some(true)],
                                unroll: cfg.unroll_factor.max(1),
                            });
                        }
                    }
                }
            }
        }
        insns += plan.body.len() + plan.term.is_some() as usize;
        bbs.push(pc);
        if bbs.len() >= cfg.max_sb_bbs || insns >= cfg.max_sb_insns {
            dirs.push(None);
            break;
        }
        match plan.term_kind {
            TermKind::Jmp { target } => {
                if bbs.contains(&target) {
                    dirs.push(None);
                    break; // loop back into the trace: stop
                }
                dirs.push(None);
                pc = target;
            }
            TermKind::Jcc { target, fall, .. } => {
                let Some((taken, fallc)) = edges(pc) else {
                    dirs.push(None);
                    break;
                };
                let total = taken + fallc;
                if total == 0 {
                    dirs.push(None);
                    break;
                }
                let bias_taken = taken as f64 / total as f64;
                let (follow_taken, bias) = if bias_taken >= 0.5 {
                    (true, bias_taken)
                } else {
                    (false, 1.0 - bias_taken)
                };
                if bias < cfg.edge_bias {
                    dirs.push(None);
                    break;
                }
                prob *= bias;
                if prob < cfg.min_reach_prob {
                    dirs.push(None);
                    break;
                }
                let next = if follow_taken { target } else { fall };
                if bbs.contains(&next) {
                    dirs.push(None);
                    break;
                }
                dirs.push(Some(follow_taken));
                pc = next;
            }
            // Indirect, call, return, syscall, halt, split: the block
            // terminates the superblock.
            _ => {
                dirs.push(None);
                break;
            }
        }
    }
    if bbs.is_empty() {
        return None;
    }
    Some(SbShape { entry, bbs, dirs, unroll: 1 })
}

/// Builds the superblock region for a shape.
///
/// `asserts` selects assert mode (speculative, single-exit) vs multi-exit
/// recreation.
///
/// # Errors
/// Returns `None` if the code changed under the shape (blocks no longer
/// decodable/translatable).
pub fn build_sb_region(
    mem: &GuestMem,
    shape: &SbShape,
    asserts: bool,
    cfg: &TolConfig,
) -> Option<Region> {
    let mut plans: Vec<BlockPlan> = Vec::with_capacity(shape.bbs.len());
    for &pc in &shape.bbs {
        let p = decode_block(mem, pc).ok()?;
        if !p.translatable {
            return None;
        }
        plans.push(p);
    }
    let mut b = RegionBuilder::new(shape.entry, cfg.strict_flags);
    let copies = shape.unroll.max(1) as usize;
    for copy in 0..copies {
        for (i, plan) in plans.iter().enumerate() {
            let last_overall = copy == copies - 1 && i == plans.len() - 1;
            for d in &plan.body {
                b.translate_insn(d);
            }
            // Mid-trace unconditional jumps are straightened away (the
            // planner records them with no direction).
            let mid_trace_jmp =
                !last_overall && shape.dirs[i].is_none() && matches!(plan.term_kind, TermKind::Jmp { .. });
            if mid_trace_jmp {
                b.bump_gcnt();
                continue;
            }
            if last_overall || shape.dirs[i].is_none() {
                translate::finish_terminal(&mut b, plan, None);
                debug_assert!(last_overall, "mid-trace block without direction");
                break;
            }
            let follow_taken = shape.dirs[i].unwrap();
            match plan.term_kind {
                TermKind::Jcc { cc, target, fall } => {
                    b.cur_pc_for_term(plan);
                    b.bump_gcnt();
                    if asserts && cfg.speculation {
                        let cond = b.eval_cond(cc);
                        b.assert(cond, follow_taken);
                    } else {
                        // Multi-exit: leave when the branch goes the
                        // unfollowed way.
                        let exit_cc = if follow_taken { cc.negate() } else { cc };
                        let cond = b.eval_cond(exit_cc);
                        let exit_target = if follow_taken { fall } else { target };
                        let e = b.exit_desc(darco_ir::ExitKind::Jump { target: exit_target });
                        let idx = b.push_exit(e);
                        b.exit_if(cond, idx);
                    }
                }
                TermKind::Jmp { .. } => {
                    // Straightened away inside the superblock — zero host
                    // instructions, but it still retires.
                    b.bump_gcnt();
                }
                _ => unreachable!("planner only follows jcc/jmp edges"),
            }
        }
    }
    b.region.validate();
    Some(b.region)
}

impl RegionBuilder {
    /// Sets the current guest PC to a plan's terminator (for debug
    /// attribution of the emitted condition/assert).
    pub fn cur_pc_for_term(&mut self, plan: &BlockPlan) {
        if let Some(t) = plan.term {
            self.set_cur_pc(t.pc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::program::DEFAULT_CODE_BASE;
    use darco_guest::{Asm, Cond, Gpr};
    use darco_ir::IrOp;
    use std::collections::HashMap;

    fn setup(build: impl FnOnce(&mut Asm)) -> GuestMem {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        build(&mut a);
        let p = a.into_program();
        let mut mem = GuestMem::new();
        p.map_into(&mut mem);
        mem
    }

    fn edges_from(map: HashMap<u32, (u64, u64)>) -> impl Fn(u32) -> Option<(u64, u64)> {
        move |pc| map.get(&pc).copied()
    }

    #[test]
    fn follows_biased_edges_and_stops_at_indirect() {
        // bb0: cmp/jcc (biased taken) -> bb1: ... ret
        let mut taken_pc = 0;
        let mem = setup(|a| {
            a.cmp_ri(Gpr::Eax, 0);
            let l = a.label();
            a.jcc_to(Cond::E, l);
            a.nop(); // fallthrough path (not followed)
            a.bind(l);
            taken_pc = a.addr();
            a.inc(Gpr::Ebx);
            a.ret();
        });
        let mut e = HashMap::new();
        e.insert(DEFAULT_CODE_BASE, (90u64, 10u64));
        let q = edges_from(e);
        let shape =
            plan_superblock(&mem, DEFAULT_CODE_BASE, &q, &TolConfig::default()).unwrap();
        assert_eq!(shape.bbs.len(), 2);
        assert_eq!(shape.bbs[1], taken_pc);
        assert_eq!(shape.dirs[0], Some(true));
        assert_eq!(shape.unroll, 1);
    }

    #[test]
    fn unbiased_branch_stops_formation() {
        let mem = setup(|a| {
            a.cmp_ri(Gpr::Eax, 0);
            let l = a.label();
            a.jcc_to(Cond::E, l);
            a.nop();
            a.bind(l);
            a.ret();
        });
        let mut e = HashMap::new();
        e.insert(DEFAULT_CODE_BASE, (55u64, 45u64)); // bias 0.55 < 0.7
        let q = edges_from(e);
        let shape =
            plan_superblock(&mem, DEFAULT_CODE_BASE, &q, &TolConfig::default()).unwrap();
        assert_eq!(shape.bbs.len(), 1);
    }

    #[test]
    fn detects_unrollable_self_loop() {
        let mem = setup(|a| {
            let top = a.here();
            a.add_rr(Gpr::Eax, Gpr::Ecx);
            a.dec(Gpr::Ecx);
            a.jcc_to(Cond::Ne, top);
            a.halt();
        });
        let mut e = HashMap::new();
        e.insert(DEFAULT_CODE_BASE, (95u64, 5u64));
        let q = edges_from(e);
        let cfg = TolConfig::default();
        let shape = plan_superblock(&mem, DEFAULT_CODE_BASE, &q, &cfg).unwrap();
        assert_eq!(shape.unroll, cfg.unroll_factor);
        assert_eq!(shape.bbs, vec![DEFAULT_CODE_BASE]);
    }

    #[test]
    fn assert_mode_region_has_asserts_and_single_terminal() {
        let mem = setup(|a| {
            let top = a.here();
            a.add_rr(Gpr::Eax, Gpr::Ecx);
            a.dec(Gpr::Ecx);
            a.jcc_to(Cond::Ne, top);
            a.halt();
        });
        let cfg = TolConfig::default();
        let shape = SbShape {
            entry: DEFAULT_CODE_BASE,
            bbs: vec![DEFAULT_CODE_BASE],
            dirs: vec![Some(true)],
            unroll: 4,
        };
        let region = build_sb_region(&mem, &shape, true, &cfg).unwrap();
        let asserts =
            region.insts.iter().filter(|i| matches!(i.op, IrOp::Assert { .. })).count();
        assert_eq!(asserts, 3, "copies 1..U-1 assert the backedge");
        // Terminal copy: ExitIf (loop continues) + ExitAlways (loop exits).
        let exitifs =
            region.insts.iter().filter(|i| matches!(i.op, IrOp::ExitIf { .. })).count();
        assert_eq!(exitifs, 1);
        // Loop-continue exit chains back to the entry.
        assert!(region
            .exits
            .iter()
            .any(|e| e.kind == darco_ir::ExitKind::Jump { target: DEFAULT_CODE_BASE }));
        // The unrolled region retires 3 guest insns per iteration.
        let max_gcnt = region.exits.iter().map(|e| e.gcnt).max().unwrap();
        assert_eq!(max_gcnt, 12, "4 unrolled iterations x 3 insns");
    }

    #[test]
    fn multi_exit_recreation_uses_side_exits() {
        let mem = setup(|a| {
            let top = a.here();
            a.add_rr(Gpr::Eax, Gpr::Ecx);
            a.dec(Gpr::Ecx);
            a.jcc_to(Cond::Ne, top);
            a.halt();
        });
        let cfg = TolConfig::default();
        let shape = SbShape {
            entry: DEFAULT_CODE_BASE,
            bbs: vec![DEFAULT_CODE_BASE],
            dirs: vec![Some(true)],
            unroll: 4,
        };
        let region = build_sb_region(&mem, &shape, false, &cfg).unwrap();
        let asserts =
            region.insts.iter().filter(|i| matches!(i.op, IrOp::Assert { .. })).count();
        assert_eq!(asserts, 0, "multi-exit recreation has no asserts");
        let exitifs =
            region.insts.iter().filter(|i| matches!(i.op, IrOp::ExitIf { .. })).count();
        assert_eq!(exitifs, 4, "every unrolled branch is a real side exit");
        // Side exits carry partial gcnts (3, 6, 9 for the early exits).
        let mut gcnts: Vec<u16> = region.exits.iter().map(|e| e.gcnt).collect();
        gcnts.sort_unstable();
        assert_eq!(gcnts, vec![3, 6, 9, 12, 12]);
    }
}
