//! The TOL driver: mode dispatch, promotion, chaining, speculation
//! recovery and overhead accounting (paper Fig. 3's execution flow).

use crate::cache::{CodeCache, TransKind, Translation};
use crate::config::{BugKind, TolConfig, VerifyLevel, VerifyMode};
use crate::flags::{self, PendingFlags};
use crate::interp::{self, BlockStop};
use crate::obs::TolObs;
use crate::overhead::{Accountant, CostModel, Overhead, OverheadKind};
use crate::sbm::{self, SbShape};
use crate::translate::{self, EdgeCounters};
use darco_guest::{DecodeCache, Fault, GuestState, Wire, WireError, WireReader, PAGE_SHIFT};
use darco_host::codegen::{Backend, CheckMode, HostCodeGen, JitStats};
use darco_host::emu::ProfTable;
use darco_host::regs::{FLAG_REGS, R_DEF_A, R_DEF_B, R_DEF_KIND, R_IND, R_SPILL_BASE};
use darco_host::sink::InsnSink;
use darco_host::{ExitCause, HInsn, HostEmulator};
use darco_ir::codegen::{self, CodegenCtx, SPILL_AREA_BASE};
use darco_ir::passes::{level_passes, run_pipeline, OptLevel};
use darco_ir::sym::{check_equiv, try_summarize, RegionSummary, TermPool};
use darco_ir::sched::list_schedule;
use darco_ir::{ddg, ExitKind, FlagsKind, IrOp, Region, VerifyReport, KIND_COUNT};
use darco_obs::{ExecMode, TraceEventKind};

use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// One entry of a [`SemanticCheck`] replay script: a transform that ran
/// since the last clean baseline and is re-run step-by-step when a
/// divergence needs attribution.
#[derive(Clone, Copy)]
enum SemStep {
    /// A full optimization pipeline — replayed pass-by-pass.
    Pipeline(OptLevel),
    /// DDG redundant-load elimination / store forwarding.
    MemoryOpt,
}

/// In-flight semantic translation validation for one region (DESIGN.md
/// §13): a hash-consed term pool, a pristine copy of the region taken
/// before the optimizer ran, and the first recorded divergence. Opened
/// by `Tol::sem_begin`, closed by `Tol::sem_finish`.
///
/// Validation is lazy end to end: the whole transform sequence is
/// compared at once at the phase boundary (the term evaluator models
/// store-to-load forwarding, so even the DDG memory phase folds into
/// one composite check), and both summaries — baseline and after — are
/// deferred to that single [`SemanticCheck::check`] call. When the
/// optimizer left the region untouched (a third of all translations)
/// equivalence is decided by a direct structural compare and no
/// summary is computed at all. Only when a divergence is actually
/// found does it replay the recorded steps one at a time on the
/// pristine copy to name the offending pass — so the clean case (every
/// translation, all the time) costs at most two summaries instead of
/// one per pass, and the failing case still reports
/// `ConstFold`/`Cse`/`memory_opt`/… by name.
struct SemanticCheck {
    pool: TermPool,
    /// Copy of the region as the translator produced it: the baseline
    /// the optimized region is checked against, and the starting point
    /// for step-by-step attribution replay.
    pristine: Region,
    /// Transforms run since the baseline was taken (the replay script
    /// for attribution).
    steps: Vec<SemStep>,
    /// Whether any recorded transform reported doing work. `false`
    /// means the region is *expected* to still equal `pristine`, so the
    /// check leads with the cheap structural compare; `true` skips the
    /// compare and goes straight to the summaries. Purely a hint —
    /// either way disagreement falls through to the full proof.
    dirty: bool,
    region_pc: u32,
    /// Wall nanoseconds spent summarizing/comparing (the semantic share
    /// of `verify_nanos`).
    nanos: u64,
    /// First divergence; later checks are skipped so the report names
    /// the pass that introduced the bug, not every pass after it.
    failed: Option<VerifyReport>,
}

impl SemanticCheck {
    /// Phase-boundary check: proves the optimized `region`
    /// observationally equivalent to the pristine input. If no
    /// transform actually changed the region the proof is a structural
    /// compare (no summaries); otherwise both sides are summarized into
    /// the shared pool and their event lists compared. Divergent → the
    /// transforms recorded since `sem_begin` are replayed for
    /// attribution; if every step replays clean, the divergence came
    /// from outside the recorded transforms and stays attributed to
    /// `context`.
    fn check(&mut self, region: &Region, context: &str) {
        if self.failed.is_some() {
            return;
        }
        let t0 = Instant::now();
        if !self.dirty
            && self.pristine.insts == region.insts
            && self.pristine.exits == region.exits
            && self.pristine.entry == region.entry
        {
            self.nanos += t0.elapsed().as_nanos() as u64;
            return;
        }
        let outcome = match try_summarize(&self.pristine, &mut self.pool, "<input>") {
            Err(report) => Err(report),
            Ok(baseline) => match try_summarize(region, &mut self.pool, context) {
                Err(report) => Err(report),
                Ok(after) => {
                    let report = check_equiv(&self.pool, &baseline, &after, context);
                    if report.is_ok() {
                        Ok(())
                    } else {
                        Err(self.attribute(baseline, report))
                    }
                }
            },
        };
        self.nanos += t0.elapsed().as_nanos() as u64;
        if let Err(report) = outcome {
            self.failed = Some(report);
        }
    }

    /// Slow path, divergence already established: replays the recorded
    /// steps one at a time on the pristine copy, returning the first
    /// transform whose output is not equivalent to its input (pipelines
    /// are replayed pass-by-pass, so the report names the pass). Falls
    /// back to the whole-phase report (with the caller's context) when
    /// every step replays clean — the bug was introduced between the
    /// last recorded transform and this check.
    fn attribute(&mut self, mut baseline: RegionSummary, whole: VerifyReport) -> VerifyReport {
        let mut region = self.pristine.clone();
        let mut step = |region: &Region, name: &'static str, pool: &mut TermPool| {
            let after = match try_summarize(region, pool, name) {
                Ok(a) => a,
                Err(report) => return Err(report),
            };
            let report = check_equiv(pool, &baseline, &after, name);
            if !report.is_ok() {
                return Err(report);
            }
            baseline = after;
            Ok(())
        };
        let steps = std::mem::take(&mut self.steps);
        for s in &steps {
            match s {
                SemStep::Pipeline(level) => {
                    for p in level_passes(*level) {
                        p.run(&mut region);
                        if let Err(report) = step(&region, p.name(), &mut self.pool) {
                            return report;
                        }
                    }
                }
                SemStep::MemoryOpt => {
                    let _ = ddg::memory_opt(&mut region);
                    if let Err(report) = step(&region, "memory_opt", &mut self.pool) {
                        return report;
                    }
                }
            }
        }
        whole
    }
}

/// Runs the optimization pipeline for `level`. With a [`SemanticCheck`]
/// scope open the level is recorded as part of the current phase's
/// replay script — the equivalence check itself happens at the next
/// phase boundary ([`SemanticCheck::check`]), not per pass. Without a
/// scope this is exactly [`run_pipeline`]; either way the debug-build
/// structural verify-each inside `run_pipeline` still runs.
fn run_pipeline_sem(sem: &mut Option<Box<SemanticCheck>>, region: &mut Region, level: OptLevel) {
    if let Some(sem) = sem.as_mut() {
        sem.steps.push(SemStep::Pipeline(level));
    }
    let stats = run_pipeline(region, level);
    if let Some(sem) = sem.as_mut() {
        if stats.rewritten + stats.removed > 0 {
            sem.dirty = true;
        }
    }
}

/// Events that hand control to the controller (DARCO's synchronization
/// triggers, §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TolEvent {
    /// First touch of an unmapped guest page — the paper's *data request*.
    PageFault {
        /// Faulting address.
        addr: u32,
        /// Write access?
        write: bool,
    },
    /// The guest reached a system call (`EIP` points at it).
    Syscall,
    /// The guest halted.
    Halted,
    /// A non-recoverable guest fault.
    GuestError(Fault),
    /// The per-call guest-instruction budget was exhausted (periodic
    /// validation hook).
    FuelOut,
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TolStats {
    /// Guest instructions retired in interpretation mode.
    pub guest_im: u64,
    /// BBM translations produced.
    pub translations_bb: u64,
    /// SBM translations produced.
    pub translations_sb: u64,
    /// Multi-exit recreations after speculation-failure limits.
    pub recreations: u64,
    /// Host instructions executed as application code.
    pub host_app: u64,
    /// Interpreted blocks.
    pub interp_blocks: u64,
    /// Assert/alias rollbacks.
    pub spec_rollbacks: u64,
    /// Transactions aborted by a store into a marked code page
    /// (self-modifying code), rolled back pre-store.
    pub smc_aborts: u64,
    /// Translation-cache flushes forced by a code-generation bump
    /// (self-modifying code made installed translations stale).
    pub smc_flushes: u64,
    /// Successful chain patches.
    pub chain_patches: u64,
    /// IBTC insertions.
    pub ibtc_inserts: u64,
    /// Instructions retired on the co-designed component's behalf by the
    /// authoritative component (system calls).
    pub guest_external: u64,
    /// Guest instructions statically inside SBM translations.
    pub sb_static_guest: u64,
    /// Host instructions statically inside SBM translations.
    pub sb_static_host: u64,
    /// Verifier invocations (IR, DDG and host-code checks all count).
    pub verify_regions: u64,
    /// Total verifier findings across all invocations.
    pub verify_findings: u64,
    /// Findings per [`darco_ir::InvariantKind`] (indexed by `kind.index()`).
    pub verify_by_kind: [u64; KIND_COUNT],
    /// Wall-clock nanoseconds spent inside the verifier.
    pub verify_nanos: u64,
    /// The semantic-validation share of `verify_nanos`: time spent in
    /// `SemanticCheck` (summaries + equivalence), zero at the default
    /// structural level. Lets the overhead gates budget the structural
    /// checks and the semantic layer separately. Not serialized (wall
    /// clock, like the other timing telemetry).
    pub verify_sem_nanos: u64,
    /// Wall-clock nanoseconds spent translating (BBM + SBM, including
    /// optimization, verification and code generation).
    pub translate_nanos: u64,
    /// Sum of static cycle annotations over installed translations (the
    /// timing sink's steady-state cost stamps; 0 with a null sink).
    pub static_cycles: u64,
}

enum CacheOutcome {
    Event(TolEvent),
    Continue,
    InterpretNext,
}

#[derive(Debug, Default, Clone)]
struct ImProf {
    count: u64,
    taken: u64,
    fall: u64,
}

/// The Translation Optimization Layer.
pub struct Tol {
    /// Configuration.
    pub cfg: TolConfig,
    /// Code cache.
    pub cache: CodeCache,
    /// Software profile counters (updated by translated code).
    pub prof: ProfTable,
    /// The host functional emulator.
    pub emu: HostEmulator,
    /// Overhead accounting.
    pub acct: Accountant,
    /// Cost model.
    pub costs: CostModel,
    /// Statistics.
    pub stats: TolStats,
    /// Deferred guest-flag descriptor pending materialization.
    pub pending_flags: Option<PendingFlags>,
    /// Verifier findings collected in [`VerifyMode::Report`] mode, with
    /// the pipeline stage and guest provenance of each.
    pub verify_log: Vec<String>,
    /// Observability: trace sink (off by default) + live metrics.
    pub obs: TolObs,
    /// Native code-generation backend, if selected and available. Purely
    /// a runtime accelerator: never serialized (compiled code is a cache
    /// over the arena), and bypassed for any run that needs retire events
    /// (the emulator is the only backend that can feed a real sink).
    native: Option<Box<dyn HostCodeGen>>,
    /// Native-backend counters at the last trace emission: the deltas
    /// across one `execute` call become the `jit.*` / `verify.mcode`
    /// trace events. Transient like the backend itself.
    jit_seen: JitStats,
    counter_bb: HashMap<u32, u32>, // exec counter idx per BB pc
    bb_edges: HashMap<u32, EdgeCounters>,
    im_prof: HashMap<u32, ImProf>,
    do_not_translate: HashSet<u32>,
    translation_ordinal: u64,
    spill_mapped: bool,
    /// Block head of an interpretation split by the fuel budget, so the
    /// repetition counter credits the true head when the block completes.
    im_split_entry: Option<u32>,
    /// Guest code generation observed at the last dispatch. A bump means
    /// self-modifying code landed (interpreted store, committed
    /// transaction, or code page unmapped): installed translations were
    /// built from the old bytes, so the dispatcher flushes them before
    /// the next cache entry. `u64::MAX` until the first dispatch.
    last_code_gen: u64,
    /// Predecoded guest-block cache backing the IM interpreter.
    decode: DecodeCache,
    /// Recycled semantic-validation scratch (term pool + pristine-region
    /// buffers): taken by `sem_begin`, returned by `sem_finish`, so
    /// back-to-back translations reuse the same allocations. Purely
    /// transient — never serialized.
    sem_spare: Option<Box<SemanticCheck>>,
}

impl std::fmt::Debug for Tol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tol").field("stats", &self.stats).field("cache", &self.cache).finish()
    }
}

impl Tol {
    /// Creates a TOL with the given configuration. Charges the one-time
    /// initialization cost.
    pub fn new(cfg: TolConfig) -> Tol {
        let cache = CodeCache::new(cfg.code_cache_words);
        let costs = CostModel::default();
        let mut acct = Accountant::new(false);
        acct.overhead.others += costs.init;
        Tol {
            cache,
            prof: ProfTable::new(),
            emu: HostEmulator::new(),
            acct,
            costs,
            stats: TolStats::default(),
            pending_flags: None,
            verify_log: Vec::new(),
            obs: TolObs::new(),
            native: None,
            jit_seen: JitStats::default(),
            counter_bb: HashMap::new(),
            bb_edges: HashMap::new(),
            im_prof: HashMap::new(),
            do_not_translate: HashSet::new(),
            translation_ordinal: 0,
            spill_mapped: false,
            im_split_entry: None,
            last_code_gen: u64::MAX,
            decode: DecodeCache::new(),
            sem_spare: None,
            cfg,
        }
    }

    /// Enables synthesis of TOL-overhead instructions into the timing
    /// stream.
    pub fn set_synthesize_overhead(&mut self, on: bool) {
        self.acct.synthesize = on;
    }

    /// Selects the host-code backend. `Backend::Native` silently keeps
    /// the emulator on hosts without a JIT.
    pub fn set_backend(&mut self, backend: Backend) {
        self.native = darco_host::codegen::new_backend(backend);
        self.sync_native_verify();
    }

    /// Propagates the configured verification depth to the native
    /// backend's machine-code checker, and arms the planted
    /// pinned-register-clobber mutation when one is configured. For
    /// [`BugKind::CodegenClobberPinnedReg`] the injection ordinal counts
    /// *compiled fragments*, not TOL translations (the bug lives below
    /// the translation layer).
    fn sync_native_verify(&mut self) {
        let Some(native) = self.native.as_mut() else { return };
        let mode = if self.cfg.verify_level == VerifyLevel::Semantic {
            match self.cfg.verify {
                VerifyMode::Off => CheckMode::Off,
                VerifyMode::Report => CheckMode::Report,
                VerifyMode::Fatal => CheckMode::Fatal,
            }
        } else {
            CheckMode::Off
        };
        native.set_verify(mode);
        if let Some(inj) = self.cfg.injection {
            if inj.kind == BugKind::CodegenClobberPinnedReg {
                native.plant_clobber(inj.translation_ordinal);
            }
        }
    }

    /// The native backend's self-counters, if one is active.
    pub fn jit_stats(&self) -> Option<JitStats> {
        self.native.as_ref().map(|n| n.stats())
    }

    /// Total guest instructions retired so far, across all modes
    /// (including syscalls retired by the authoritative component).
    pub fn total_guest(&self) -> u64 {
        self.stats.guest_im + self.stats.guest_external + self.emu.gcnt_bb + self.emu.gcnt_sb
    }

    /// Credits instructions retired externally (the controller calls this
    /// after the authoritative component executes a system call, keeping
    /// the two components' instruction counts aligned).
    pub fn credit_external(&mut self, n: u64) {
        self.stats.guest_external += n;
    }

    /// Guest instructions retired per mode `(IM, BBM, SBM)` — Fig. 4's
    /// distribution.
    pub fn mode_split(&self) -> (u64, u64, u64) {
        (self.stats.guest_im, self.emu.gcnt_bb, self.emu.gcnt_sb)
    }

    /// Dynamic host-per-guest instruction ratio in SBM (Fig. 5).
    pub fn sbm_emulation_cost(&self) -> f64 {
        if self.emu.gcnt_sb == 0 {
            return 0.0;
        }
        self.emu.host_sb as f64 / self.emu.gcnt_sb as f64
    }

    /// The overhead accounting (Figs. 6 and 7).
    pub fn overhead(&self) -> &Overhead {
        &self.acct.overhead
    }

    /// Runs the guest for up to `fuel_guest` retired instructions or until
    /// an event needs the controller.
    pub fn run<S: InsnSink>(
        &mut self,
        st: &mut GuestState,
        fuel_guest: u64,
        sink: &mut S,
    ) -> TolEvent {
        let limit = self.total_guest().saturating_add(fuel_guest);
        let mut interp_next = false;
        loop {
            if self.total_guest() >= limit {
                return TolEvent::FuelOut;
            }
            // Self-modifying code: a code-generation bump means installed
            // translations may describe stale bytes. Flush them (chains
            // and IBTC included) before the next cache entry; the decode
            // cache re-checks the generation itself.
            let gen = st.mem.code_gen();
            if gen != self.last_code_gen {
                if self.last_code_gen != u64::MAX && self.cache.live_translations() > 0 {
                    self.obs.emit(TraceEventKind::CacheFlush {
                        live: self.cache.live_translations() as u32,
                        used_words: self.cache.used_words() as u64,
                    });
                    self.cache.flush();
                    self.stats.smc_flushes += 1;
                }
                self.last_code_gen = gen;
            }
            self.acct.charge(OverheadKind::Others, self.costs.dispatch, sink);
            if !interp_next {
                self.acct.charge(OverheadKind::CacheLookup, self.costs.cache_lookup, sink);
                if let Some(id) = self.cache.lookup(st.eip) {
                    match self.enter_cache(st, id, limit, sink) {
                        CacheOutcome::Event(ev) => return ev,
                        CacheOutcome::Continue => continue,
                        CacheOutcome::InterpretNext => {
                            interp_next = true;
                            continue;
                        }
                    }
                }
                // Promotion check (IM → BBM). Skipped on the speculation
                // recovery path so a failing superblock is not demoted.
                let pc = st.eip;
                let im_count = self.im_prof.get(&pc).map(|p| p.count).unwrap_or(0);
                if im_count >= self.cfg.bbm_threshold
                    && !self.do_not_translate.contains(&pc)
                    && self.translate_bb(st, pc, sink)
                {
                    self.obs.emit(TraceEventKind::Promotion { pc, to: ExecMode::Bbm });
                    continue;
                }
            }
            interp_next = false;

            // Interpret one basic block.
            self.obs.mode(ExecMode::Im, st.eip);
            flags::resolve(st, &mut self.pending_flags);
            let budget = limit - self.total_guest();
            let run = interp::interpret_block_cached(st, budget, &mut self.decode);
            self.stats.guest_im += run.insns;
            self.stats.interp_blocks += 1;
            self.acct.charge(
                OverheadKind::Interpreter,
                run.insns * self.costs.interp_per_insn,
                sink,
            );
            self.acct.charge(OverheadKind::Others, self.costs.profile_block, sink);
            // Budget splits resume mid-block; credit the true block head.
            let head = self.im_split_entry.take().unwrap_or(run.entry_pc);
            if run.stop == BlockStop::Budget {
                self.im_split_entry = Some(head);
            }
            let prof = self.im_prof.entry(head).or_default();
            if run.stop == BlockStop::End {
                prof.count += 1;
                if let Some((_t, _f, taken)) = run.jcc {
                    if taken {
                        prof.taken += 1;
                    } else {
                        prof.fall += 1;
                    }
                }
            }
            match run.stop {
                BlockStop::End | BlockStop::Budget => {}
                BlockStop::Syscall => return TolEvent::Syscall,
                BlockStop::Halt => return TolEvent::Halted,
                BlockStop::PageFault { addr, write } => {
                    return TolEvent::PageFault { addr, write }
                }
                BlockStop::GuestError(f) => return TolEvent::GuestError(f),
            }
        }
    }

    // -- code-cache execution --------------------------------------------------

    fn enter_cache<S: InsnSink>(
        &mut self,
        st: &mut GuestState,
        id: usize,
        limit: u64,
        sink: &mut S,
    ) -> CacheOutcome {
        if !self.spill_mapped {
            st.mem.map_zero(SPILL_AREA_BASE >> PAGE_SHIFT);
            self.spill_mapped = true;
        }
        if self.obs.is_on() {
            let mode = match self.cache.translation(id).kind {
                TransKind::Bb => ExecMode::Bbm,
                TransKind::Sb { .. } => ExecMode::Sbm,
            };
            self.obs.mode(mode, st.eip);
        }
        self.im_split_entry = None;
        if self.cache.translation(id).needs_flags_mask != 0 {
            flags::resolve(st, &mut self.pending_flags);
        }
        // Prologue: pin the guest state into the host register file.
        self.acct.charge(OverheadKind::Prologue, self.costs.prologue_per_transition, sink);
        for (i, v) in st.gprs().into_iter().enumerate() {
            self.emu.iregs[i] = v;
        }
        for (i, v) in st.fprs().into_iter().enumerate() {
            self.emu.fregs[i] = v;
        }
        let bits = st.flags.to_bits();
        for (j, r) in FLAG_REGS.into_iter().enumerate() {
            self.emu.iregs[r.index()] = (bits >> j & 1) as u32;
        }
        match self.pending_flags {
            Some(p) => {
                self.emu.iregs[R_DEF_KIND.index()] = p.kind.code() as u32;
                self.emu.iregs[R_DEF_A.index()] = p.a;
                self.emu.iregs[R_DEF_B.index()] = p.b;
            }
            None => self.emu.iregs[R_DEF_KIND.index()] = 0,
        }
        self.emu.iregs[R_SPILL_BASE.index()] = SPILL_AREA_BASE;

        let remaining = limit.saturating_sub(self.total_guest());
        let guest_fuel = (self.emu.gcnt_bb + self.emu.gcnt_sb).saturating_add(remaining);
        let base = self.cache.translation(id).host_base;
        // The native backend only runs when no retire events are wanted:
        // it produces the same architectural state, counters and exits as
        // the emulator, but no per-instruction stream.
        let info = match self.native.as_mut() {
            Some(native) if sink.is_null() => native.execute(
                &mut self.emu,
                &self.cache.arena,
                base,
                &mut st.mem,
                &self.cache.ibtc,
                &mut self.prof,
                guest_fuel,
                self.cache.mutations(),
            ),
            _ => self.emu.execute(
                &self.cache.arena,
                base,
                &mut st.mem,
                &self.cache.ibtc,
                &mut self.prof,
                guest_fuel,
                sink,
            ),
        };
        if let Some(native) = self.native.as_mut() {
            // Machine-code checker findings queued under Report mode
            // (Fatal panics inside the backend before the code runs).
            let findings = native.take_verify_findings();
            if !findings.is_empty() {
                self.stats.verify_findings += findings.len() as u64;
                for f in findings {
                    self.verify_log.push(format!("[native-code] {f}"));
                }
            }
            let jit = native.stats();
            if self.obs.is_on() {
                let prev = self.jit_seen;
                if jit.frags_compiled > prev.frags_compiled {
                    self.obs.emit(TraceEventKind::JitCompile {
                        frags: jit.frags_compiled - prev.frags_compiled,
                        bytes: jit.code_bytes_emitted - prev.code_bytes_emitted,
                        ns: jit.compile_nanos - prev.compile_nanos,
                    });
                }
                if jit.jump_patches > prev.jump_patches {
                    self.obs.emit(TraceEventKind::JitPatch {
                        jumps: jit.jump_patches - prev.jump_patches,
                        ibtc: jit.ibtc_patches - prev.ibtc_patches,
                    });
                }
                if jit.code_bytes_flushed > prev.code_bytes_flushed {
                    self.obs.emit(TraceEventKind::JitInvalidate {
                        bytes: jit.code_bytes_flushed - prev.code_bytes_flushed,
                    });
                }
                if jit.verify_fragments > prev.verify_fragments {
                    self.obs.emit(TraceEventKind::McodeVerify {
                        fragments: jit.verify_fragments - prev.verify_fragments,
                        findings: jit.verify_findings - prev.verify_findings,
                        ns: jit.verify_nanos - prev.verify_nanos,
                    });
                }
            }
            self.jit_seen = jit;
        }
        self.stats.host_app += info.executed;

        match info.cause {
            ExitCause::Exit { id: exit_id } => {
                let tid = self
                    .cache
                    .translation_at_host(info.host_pc)
                    .expect("exit outside any translation");
                self.attribute_unattributed(tid);
                self.writeback(st);
                let meta = self.cache.translation(tid).exits[exit_id as usize];
                if std::env::var_os("DARCO_TRACE_EXITS").is_some() {
                    eprintln!(
                        "EXIT t{tid}@{:#x} exit{exit_id} kind {:?} count={} eax={:#x} ecx={:#x}",
                        self.cache.translation(tid).guest_pc,
                        meta.kind,
                        self.total_guest(),
                        st.gprs()[0],
                        st.gprs()[1],
                    );
                }
                match meta.kind {
                    ExitKind::Jump { target } => {
                        st.eip = target;
                        if self.cfg.chaining {
                            if let Some(slot) = meta.chain_slot {
                                self.acct.charge(
                                    OverheadKind::Chaining,
                                    self.costs.chain_attempt,
                                    sink,
                                );
                                if let Some(to) = self.cache.lookup(target) {
                                    let need = self.cache.translation(to).needs_flags_mask;
                                    // Legal iff every flag the target reads
                                    // is published by this exit.
                                    if need & !meta.flags_valid == 0 {
                                        let slot_addr =
                                            self.cache.translation(tid).host_base + slot;
                                        self.cache.chain(tid, slot_addr, to);
                                        self.stats.chain_patches += 1;
                                        if self.obs.is_on() {
                                            let from_pc = self.cache.translation(tid).guest_pc;
                                            self.obs.emit(TraceEventKind::ChainPatch {
                                                from_pc,
                                                to_pc: target,
                                            });
                                        }
                                        self.acct.charge(
                                            OverheadKind::Chaining,
                                            self.costs.chain_patch,
                                            sink,
                                        );
                                    }
                                }
                            }
                        }
                        CacheOutcome::Continue
                    }
                    ExitKind::Indirect => {
                        let target = self.emu.iregs[R_IND.index()];
                        st.eip = target;
                        if self.cfg.ibtc {
                            self.acct.charge(
                                OverheadKind::Chaining,
                                self.costs.chain_attempt,
                                sink,
                            );
                            if let Some(to) = self.cache.lookup(target) {
                                // IBTC entries are global (any indirect
                                // branch can hit them), so only flag-free
                                // targets are eligible.
                                if self.cache.translation(to).needs_flags_mask == 0 {
                                    self.cache.ibtc_insert(target, to);
                                    self.stats.ibtc_inserts += 1;
                                    self.obs.emit(TraceEventKind::IbtcInsert { pc: target });
                                    self.acct.charge(
                                        OverheadKind::Chaining,
                                        self.costs.chain_patch,
                                        sink,
                                    );
                                }
                            }
                        }
                        CacheOutcome::Continue
                    }
                    ExitKind::Syscall { pc } => {
                        st.eip = pc;
                        CacheOutcome::Event(TolEvent::Syscall)
                    }
                    ExitKind::Halt => CacheOutcome::Event(TolEvent::Halted),
                }
            }
            ExitCause::AssertFail | ExitCause::AliasFail => {
                let tid = self
                    .cache
                    .translation_at_host(info.chkpt_pc)
                    .expect("rollback outside any translation");
                self.attribute_unattributed(tid);
                self.writeback(st);
                st.eip = self.cache.translation(tid).guest_pc;
                self.stats.spec_rollbacks += 1;
                self.obs.rollback(st.eip, info.executed);
                let t = self.cache.translation_mut(tid);
                t.spec_fails += 1;
                let recreate = t.spec_fails > self.cfg.assert_fail_limit
                    && matches!(t.kind, TransKind::Sb { asserts: true });
                if recreate {
                    self.recreate_multi_exit(st, tid, sink);
                }
                // Forward progress through the interpreter (paper §V-B1).
                CacheOutcome::InterpretNext
            }
            ExitCause::PageFault { addr, write } => {
                let tid = self
                    .cache
                    .translation_at_host(info.chkpt_pc)
                    .expect("fault outside any translation");
                self.attribute_unattributed(tid);
                self.writeback(st);
                st.eip = self.cache.translation(tid).guest_pc;
                CacheOutcome::Event(TolEvent::PageFault { addr, write })
            }
            ExitCause::DivByZero => {
                let tid = self
                    .cache
                    .translation_at_host(info.chkpt_pc)
                    .expect("fault outside any translation");
                self.attribute_unattributed(tid);
                self.writeback(st);
                st.eip = self.cache.translation(tid).guest_pc;
                // Interpretation raises the precise guest fault.
                CacheOutcome::InterpretNext
            }
            ExitCause::ProfileTrip { idx } => {
                let tid = self
                    .cache
                    .translation_at_host(info.host_pc)
                    .expect("trip outside any translation");
                self.attribute_unattributed(tid);
                self.writeback(st);
                let pc = self.cache.translation(tid).guest_pc;
                st.eip = pc;
                debug_assert_eq!(self.counter_bb.get(&pc), Some(&idx));
                self.translate_sb(st, pc, sink);
                CacheOutcome::Continue
            }
            ExitCause::Fuel => {
                let tid = self
                    .cache
                    .translation_at_host(info.host_pc)
                    .expect("fuel stop outside any translation");
                self.attribute_unattributed(tid);
                self.writeback(st);
                st.eip = self.cache.translation(tid).guest_pc;
                CacheOutcome::Continue // outer loop re-checks the budget
            }
            ExitCause::SmcWrite { addr: _ } => {
                // A store into a marked code page aborted the transaction
                // before the write was buffered: state is back at the
                // last checkpoint. Interpreting forward executes the
                // store with per-instruction visibility (the generation
                // bump then makes the dispatcher flush stale
                // translations), exactly matching the reference
                // component's view of self-modifying code.
                let tid = self
                    .cache
                    .translation_at_host(info.chkpt_pc)
                    .expect("smc abort outside any translation");
                self.attribute_unattributed(tid);
                self.writeback(st);
                st.eip = self.cache.translation(tid).guest_pc;
                self.stats.smc_aborts += 1;
                self.obs.rollback(st.eip, info.executed);
                CacheOutcome::InterpretNext
            }
        }
    }

    fn attribute_unattributed(&mut self, tid: usize) {
        let n = self.emu.drain_unattributed();
        match self.cache.translation(tid).kind {
            TransKind::Bb => self.emu.host_bb += n,
            TransKind::Sb { .. } => self.emu.host_sb += n,
        }
    }

    /// Writes the pinned host register file back into the guest state,
    /// including the dynamic flag descriptor (see `regs` docs).
    fn writeback(&mut self, st: &mut GuestState) {
        for (i, g) in darco_guest::Gpr::ALL.into_iter().enumerate() {
            st.set_gpr(g, self.emu.iregs[i]);
        }
        for i in 0..8 {
            st.set_fpr(darco_guest::Fpr::new(i), self.emu.fregs[i as usize]);
        }
        let kind_code = self.emu.iregs[R_DEF_KIND.index()];
        match FlagsKind::from_code(kind_code) {
            None => {
                // Flags are materialized in r8–r12.
                let mut bits = 0u8;
                for (j, r) in FLAG_REGS.into_iter().enumerate() {
                    bits |= ((self.emu.iregs[r.index()] != 0) as u8) << j;
                }
                st.flags = darco_guest::Flags::from_bits(bits);
                self.pending_flags = None;
            }
            Some(kind) => {
                if matches!(kind, FlagsKind::Inc | FlagsKind::Dec) {
                    st.flags.cf = self.emu.iregs[FLAG_REGS[0].index()] != 0;
                }
                self.pending_flags = Some(PendingFlags {
                    kind,
                    a: self.emu.iregs[R_DEF_A.index()],
                    b: self.emu.iregs[R_DEF_B.index()],
                });
            }
        }
    }

    // -- static verification -------------------------------------------------------

    /// Opens a semantic translation-validation scope over `region`
    /// (DESIGN.md §13): the region's guest-observable behaviour is
    /// summarized symbolically now, and [`SemanticCheck::check`] compares
    /// every later rewrite against it. Returns `None` unless
    /// `verify_level` is [`VerifyLevel::Semantic`] (and `verify` is on).
    fn sem_begin(&mut self, region: &Region) -> Option<Box<SemanticCheck>> {
        if self.cfg.verify == VerifyMode::Off || self.cfg.verify_level != VerifyLevel::Semantic {
            return None;
        }
        let t0 = Instant::now();
        let mut sem = match self.sem_spare.take() {
            Some(mut s) => {
                // Terms are closed expressions over entry state
                // (`EntryGpr(i)`, `InitMem`), so the pool carries over
                // across regions: shared subexpressions become memo hits
                // instead of fresh interns. Clear only to bound memory.
                if s.pool.len() > (1 << 16) {
                    s.pool.clear();
                }
                s.pristine.clone_from(region);
                s.steps.clear();
                s.dirty = false;
                s.region_pc = region.guest_entry_pc;
                s.nanos = 0;
                s.failed = None;
                s
            }
            None => Box::new(SemanticCheck {
                pool: TermPool::new(),
                pristine: region.clone(),
                steps: Vec::new(),
                dirty: false,
                region_pc: region.guest_entry_pc,
                nanos: 0,
                failed: None,
            }),
        };
        sem.nanos = t0.elapsed().as_nanos() as u64;
        self.obs.emit(TraceEventKind::SemBegin { pc: sem.region_pc });
        Some(sem)
    }

    /// Closes a semantic-validation scope: reports the first divergence
    /// (or a clean empty report, so the region still counts toward
    /// `verify_regions`/`verify_nanos` for overhead accounting).
    fn sem_finish(&mut self, sem: Option<Box<SemanticCheck>>, stage: &'static str) {
        let Some(mut sem) = sem else { return };
        let report = sem
            .failed
            .take()
            .unwrap_or(VerifyReport { region_pc: sem.region_pc, findings: Vec::new() });
        let nanos = sem.nanos;
        self.sem_spare = Some(sem);
        self.stats.verify_sem_nanos += nanos;
        self.obs.emit(TraceEventKind::SemEnd {
            pc: report.region_pc,
            ns: nanos,
            findings: report.findings.len() as u32,
        });
        self.note_report(stage, report, nanos);
    }

    /// Verifies the IR invariants of `region` after an optimization
    /// pipeline ran (see [`darco_ir::verify_region`]).
    fn verify_ir(&mut self, region: &Region, stage: &'static str) {
        if self.cfg.verify == VerifyMode::Off {
            return;
        }
        let t0 = Instant::now();
        let report = darco_ir::verify_region(region);
        let nanos = t0.elapsed().as_nanos() as u64;
        self.note_report(stage, report, nanos);
    }

    /// Cross-checks a built data-dependence graph against the region's
    /// hardware ordering contract (see [`darco_ir::verify_ddg`]).
    fn verify_ddg_stage(&mut self, region: &Region, graph: &ddg::Ddg, stage: &'static str) {
        if self.cfg.verify == VerifyMode::Off {
            return;
        }
        let t0 = Instant::now();
        let report = darco_ir::verify_ddg(region, graph);
        let nanos = t0.elapsed().as_nanos() as u64;
        self.note_report(stage, report, nanos);
    }

    /// Checks the generated host code against the region (register
    /// discipline, branch targets, memory-op parity; see
    /// [`darco_ir::check_host_code`]).
    fn verify_host(&mut self, region: &Region, out: &codegen::CodegenOut, stage: &'static str) {
        if self.cfg.verify == VerifyMode::Off {
            return;
        }
        let t0 = Instant::now();
        let report = darco_ir::check_host_code(region, out);
        let nanos = t0.elapsed().as_nanos() as u64;
        self.note_report(stage, report, nanos);
    }

    fn note_report(&mut self, stage: &'static str, report: VerifyReport, nanos: u64) {
        self.stats.verify_regions += 1;
        self.stats.verify_nanos += nanos;
        if report.is_ok() {
            return;
        }
        self.stats.verify_findings += report.findings.len() as u64;
        for (i, n) in report.by_kind().into_iter().enumerate() {
            self.stats.verify_by_kind[i] += n;
        }
        if self.obs.is_on() {
            for f in &report.findings {
                self.obs.emit(TraceEventKind::VerifierFinding {
                    stage,
                    kind: f.kind.name(),
                    pc: f.guest_pc,
                });
            }
        }
        match self.cfg.verify {
            VerifyMode::Fatal => {
                panic!("TOL static verification failed at stage `{stage}`: {report}")
            }
            VerifyMode::Report => self.verify_log.push(format!("[{stage}] {report}")),
            VerifyMode::Off => unreachable!("verify hooks are gated on VerifyMode::Off"),
        }
    }

    // -- translation -------------------------------------------------------------

    /// Translates the basic block at `pc` (BBM). Returns false if the
    /// block is untranslatable or undecodable.
    fn translate_bb<S: InsnSink>(&mut self, st: &mut GuestState, pc: u32, sink: &mut S) -> bool {
        self.obs.emit(TraceEventKind::TranslateStart { sb: false, pc });
        let t0 = Instant::now();
        let ok = self.translate_bb_inner(st, pc, sink);
        let ns = t0.elapsed().as_nanos() as u64;
        self.stats.translate_nanos += ns;
        self.obs.translate_end(false, pc, ns, ok);
        ok
    }

    fn translate_bb_inner<S: InsnSink>(
        &mut self,
        st: &mut GuestState,
        pc: u32,
        sink: &mut S,
    ) -> bool {
        let plan = match translate::decode_block(&st.mem, pc) {
            Ok(p) => p,
            Err(_) => return false, // page not resident yet: interpret on
        };
        if !plan.translatable {
            self.do_not_translate.insert(pc);
            return false;
        }
        let src_insns = plan.retired_insns();
        self.acct.charge(
            OverheadKind::BbTranslator,
            (src_insns as u64 + 1) * self.costs.bb_translate_per_insn,
            sink,
        );
        // Profiling counters (§V-B3: exec + edge counters in BBM code).
        let trip = self.cfg.sbm_threshold.saturating_sub(self.cfg.bbm_threshold).max(1);
        let exec_idx = self.prof.alloc(trip);
        let edges = match plan.term_kind {
            translate::TermKind::Jcc { .. } => {
                let e = EdgeCounters { taken: self.prof.alloc(0), fall: self.prof.alloc(0) };
                self.bb_edges.insert(pc, e);
                Some(e)
            }
            _ => None,
        };
        let mut region = translate::build_bb_region(&plan, edges, self.cfg.strict_flags);
        self.inject_bug_region(&mut region, BugKind::TranslatorWrongConstant);
        let bbm_level = match self.cfg.opt_level {
            OptLevel::O0 => OptLevel::O0,
            _ => OptLevel::O1,
        };
        let mut sem = self.sem_begin(&region);
        run_pipeline_sem(&mut sem, &mut region, bbm_level);
        self.inject_bug_region(&mut region, BugKind::OptimizerBadFold);
        if let Some(s) = sem.as_mut() {
            s.check(&region, "optimizer");
        }
        region.validate();
        self.sem_finish(sem, "bbm-semantic");
        self.verify_ir(&region, "bbm-pipeline");
        self.install(region, TransKind::Bb, Some(exec_idx), None, src_insns, sink);
        self.counter_bb.insert(pc, exec_idx);
        self.stats.translations_bb += 1;
        true
    }

    /// Promotes the block at `pc` to a superblock (SBM).
    fn translate_sb<S: InsnSink>(&mut self, st: &mut GuestState, pc: u32, sink: &mut S) {
        let edges = |bb: u32| -> Option<(u64, u64)> {
            if let Some(e) = self.bb_edges.get(&bb) {
                let t = self.prof.count(e.taken);
                let f = self.prof.count(e.fall);
                if t + f > 0 {
                    return Some((t, f));
                }
            }
            self.im_prof.get(&bb).and_then(|p| (p.taken + p.fall > 0).then_some((p.taken, p.fall)))
        };
        let Some(shape) = sbm::plan_superblock(&st.mem, pc, &edges, &self.cfg) else {
            return;
        };
        if self.build_and_install_sb(st, &shape, self.cfg.speculation, sink) {
            self.obs.emit(TraceEventKind::Promotion { pc, to: ExecMode::Sbm });
        }
    }

    fn build_and_install_sb<S: InsnSink>(
        &mut self,
        st: &mut GuestState,
        shape: &SbShape,
        asserts: bool,
        sink: &mut S,
    ) -> bool {
        self.obs.emit(TraceEventKind::TranslateStart { sb: true, pc: shape.entry });
        let t0 = Instant::now();
        let ok = self.build_and_install_sb_inner(st, shape, asserts, sink);
        let ns = t0.elapsed().as_nanos() as u64;
        self.stats.translate_nanos += ns;
        self.obs.translate_end(true, shape.entry, ns, ok);
        ok
    }

    fn build_and_install_sb_inner<S: InsnSink>(
        &mut self,
        st: &mut GuestState,
        shape: &SbShape,
        asserts: bool,
        sink: &mut S,
    ) -> bool {
        let Some(mut region) = sbm::build_sb_region(&st.mem, shape, asserts, &self.cfg) else {
            return false;
        };
        let src_insns: u32 = region.exits.iter().map(|e| e.gcnt as u32).max().unwrap_or(0);
        self.acct.charge(
            OverheadKind::SbTranslator,
            (src_insns as u64 + 2) * self.costs.sb_translate_per_insn,
            sink,
        );
        self.inject_bug_region(&mut region, BugKind::TranslatorWrongConstant);
        let mut sem = self.sem_begin(&region);
        run_pipeline_sem(&mut sem, &mut region, self.cfg.opt_level);
        self.inject_bug_region(&mut region, BugKind::OptimizerBadFold);
        if self.cfg.opt_level >= OptLevel::O3 {
            let rle = ddg::memory_opt(&mut region);
            if let Some(s) = sem.as_mut() {
                s.steps.push(SemStep::MemoryOpt);
                if rle > 0 {
                    s.dirty = true;
                }
            }
            // Clean up RLE-introduced copies.
            run_pipeline_sem(&mut sem, &mut region, OptLevel::O2);
        }
        // One composite check covers the pipeline(s) and memory_opt —
        // the term evaluator's store-forwarding model proves the RLE
        // rewrites equivalent, and a divergence is attributed to the
        // offending pass by replaying the recorded steps.
        if let Some(s) = sem.as_mut() {
            s.check(&region, "optimizer");
        }
        if self.cfg.opt_level >= OptLevel::O3 {
            let allow_spec = asserts && self.cfg.speculation;
            let graph = ddg::build(&mut region, allow_spec);
            self.verify_ddg_stage(&region, &graph, "sbm-ddg");
            list_schedule(&mut region, &graph, &self.cfg.sched);
        }
        region.validate();
        self.sem_finish(sem, "sbm-semantic");
        self.verify_ir(&region, "sbm-pipeline");
        let id = self.install(
            region,
            TransKind::Sb { asserts },
            None,
            Some(shape.clone()),
            src_insns,
            sink,
        );
        let _ = id;
        self.stats.translations_sb += 1;
        true
    }

    fn recreate_multi_exit<S: InsnSink>(&mut self, st: &mut GuestState, tid: usize, sink: &mut S) {
        let Some(shape) = self.cache.translation(tid).shape.clone() else {
            return;
        };
        self.cache.invalidate(tid);
        self.stats.recreations += 1;
        self.obs.emit(TraceEventKind::Recreate { pc: shape.entry });
        self.build_and_install_sb(st, &shape, false, sink);
    }

    fn install<S: InsnSink>(
        &mut self,
        region: Region,
        kind: TransKind,
        exec_counter: Option<u32>,
        shape: Option<SbShape>,
        src_insns: u32,
        sink: &mut S,
    ) -> usize {
        let sb_mode = matches!(kind, TransKind::Sb { .. });
        if std::env::var_os("DARCO_DUMP_REGIONS").is_some() {
            eprintln!("--- installing {kind:?} ---\n{region}");
        }
        let ctx = CodegenCtx {
            base: self.cache.next_base(),
            sin_addr: self.cache.sin_addr(),
            cos_addr: self.cache.cos_addr(),
            entry_count_idx: exec_counter,
            sb_mode,
        };
        let mut out = codegen::generate(&region, &ctx);
        if self.cache.would_overflow(out.encoded_words) {
            // Full cache: flush everything (translations, chains, IBTC)
            // and retry; profiling state survives.
            self.obs.emit(TraceEventKind::CacheFlush {
                live: self.cache.live_translations() as u32,
                used_words: self.cache.used_words() as u64,
            });
            self.cache.flush();
            self.decode.flush();
            self.acct.charge(OverheadKind::Others, self.costs.init / 2, sink);
            let ctx = CodegenCtx { base: self.cache.next_base(), ..ctx };
            out = codegen::generate(&region, &ctx);
        }
        // Check the generated code before any fault injection touches it
        // (a planted codegen bug must reach the cache so the debug
        // toolchain can hunt it down).
        self.verify_host(&region, &out, "codegen");
        self.inject_bug_code(&mut out.code);
        self.translation_ordinal += 1;
        if sb_mode {
            self.stats.sb_static_guest += src_insns as u64;
            self.stats.sb_static_host += out.code.iter().map(HInsn::dyn_cost).sum::<u64>();
        }
        let mut needs_flags_mask = 0u8;
        for (j, f) in region.entry.flags.iter().enumerate() {
            if f.is_some() {
                needs_flags_mask |= 1 << j;
            }
        }
        // Static cycle annotation (accelerated timing): the timing sink
        // measures the steady-state cost of the translation body now, at
        // install time, and the cost is stamped on the cache entry. Null
        // sinks return None and the stamp stays 0.
        let host_base = self.cache.next_base();
        let static_cycles = sink.install_note(host_base as u64, &out.code).unwrap_or(0);
        self.stats.static_cycles += static_cycles;
        let t = Translation {
            guest_pc: region.guest_entry_pc,
            kind,
            host_base,
            len: 0,
            encoded_words: out.encoded_words,
            exits: out.exits,
            src_insns,
            host_insns: out.code.len() as u32,
            needs_flags_mask,
            spec_fails: 0,
            shape,
            valid: true,
            static_cycles,
        };
        let guest_pc = region.guest_entry_pc;
        let encoded_words = out.encoded_words;
        let id = self.cache.install(t, out.code);
        self.obs.region_size(src_insns);
        self.obs.emit(TraceEventKind::CacheInsert {
            id: id as u32,
            pc: guest_pc,
            words: encoded_words as u32,
        });
        self.obs
            .cache_occupancy(self.cache.used_words() as u64, self.cfg.code_cache_words as u64);
        id
    }

    // -- checkpointing ---------------------------------------------------------

    /// Serializes the complete TOL state. Must only be called at a mode
    /// boundary — i.e. after [`Tol::run`] has returned — where the host
    /// emulator's speculative transients (store buffer, speculative loads,
    /// unattributed counts) are provably empty.
    ///
    /// Serialized: code cache (arena + translations + chains + IBTC),
    /// profile tables (both the software [`ProfTable`] and the private
    /// IM/edge counters), emulator register files and retire counters,
    /// overhead accounting (including the synthesis rotor), statistics,
    /// pending lazy flags, the verifier log and the live metrics registry.
    ///
    /// Re-materialized on restore, not serialized: configuration and cost
    /// model (the restoring side must construct the TOL with the same
    /// [`TolConfig`]), the predecoded block cache (a pure cache over guest
    /// memory), and tracing state.
    pub fn snapshot_into(&self, w: &mut Wire) {
        self.cache.snapshot_into(w);
        w.put_usize(self.prof.counts.len());
        for (c, t) in self.prof.counts.iter().zip(&self.prof.trips) {
            w.put_u64(*c);
            w.put_u64(*t);
        }

        for r in self.emu.iregs {
            w.put_u32(r);
        }
        for r in self.emu.fregs {
            w.put_f64(r);
        }
        let ec = &self.emu.counters;
        for v in [
            ec.chkpts,
            ec.commits,
            ec.assert_fails,
            ec.alias_fails,
            ec.page_faults,
            ec.ibtc_hits,
            ec.ibtc_misses,
            ec.smc_aborts,
            self.emu.gcnt_bb,
            self.emu.gcnt_sb,
            self.emu.host_bb,
            self.emu.host_sb,
            self.last_code_gen,
        ] {
            w.put_u64(v);
        }
        let o = &self.acct.overhead;
        for v in [
            o.interpreter,
            o.bb_translator,
            o.sb_translator,
            o.prologue,
            o.chaining,
            o.cache_lookup,
            o.others,
            self.acct.rot(),
        ] {
            w.put_u64(v);
        }
        let s = &self.stats;
        for v in [
            s.guest_im,
            s.translations_bb,
            s.translations_sb,
            s.recreations,
            s.host_app,
            s.interp_blocks,
            s.spec_rollbacks,
            s.smc_aborts,
            s.smc_flushes,
            s.chain_patches,
            s.ibtc_inserts,
            s.guest_external,
            s.sb_static_guest,
            s.sb_static_host,
            s.verify_regions,
            s.verify_findings,
            // Wall-clock telemetry is serialized as zero: a snapshot is a
            // pure function of guest progress, and host timing is neither
            // (it differs run to run and backend to backend). A restored
            // engine restarts its timing accumulators from zero — they
            // then describe the resuming process, which is the honest
            // reading. The live engine that produced the snapshot keeps
            // its real values; only the wire image is normalized.
            0, // s.verify_nanos
            0, // s.translate_nanos
            s.static_cycles,
        ] {
            w.put_u64(v);
        }
        for v in s.verify_by_kind {
            w.put_u64(v);
        }
        w.put_bool(self.pending_flags.is_some());
        if let Some(p) = self.pending_flags {
            w.put_u32(p.kind.code() as u32);
            w.put_u32(p.a);
            w.put_u32(p.b);
        }
        w.put_usize(self.verify_log.len());
        for line in &self.verify_log {
            w.put_str(line);
        }
        crate::obs::registry_snapshot_into(&self.obs.metrics, w);
        let mut counter_bb: Vec<_> = self.counter_bb.iter().collect();
        counter_bb.sort_by_key(|(pc, _)| **pc);
        w.put_usize(counter_bb.len());
        for (pc, idx) in counter_bb {
            w.put_u32(*pc);
            w.put_u32(*idx);
        }
        let mut edges: Vec<_> = self.bb_edges.iter().collect();
        edges.sort_by_key(|(pc, _)| **pc);
        w.put_usize(edges.len());
        for (pc, e) in edges {
            w.put_u32(*pc);
            w.put_u32(e.taken);
            w.put_u32(e.fall);
        }
        let mut im_prof: Vec<_> = self.im_prof.iter().collect();
        im_prof.sort_by_key(|(pc, _)| **pc);
        w.put_usize(im_prof.len());
        for (pc, p) in im_prof {
            w.put_u32(*pc);
            w.put_u64(p.count);
            w.put_u64(p.taken);
            w.put_u64(p.fall);
        }
        let mut dnt: Vec<_> = self.do_not_translate.iter().copied().collect();
        dnt.sort_unstable();
        w.put_u32s(&dnt);
        w.put_u64(self.translation_ordinal);
        w.put_bool(self.spill_mapped);
        w.put_bool(self.im_split_entry.is_some());
        if let Some(pc) = self.im_split_entry {
            w.put_u32(pc);
        }
    }

    /// Restores from a [`Tol::snapshot_into`] stream. `self` must have
    /// been created with the same [`TolConfig`] as the snapshotted TOL
    /// (the caller checks a config fingerprint before getting here; the
    /// code cache additionally validates its own geometry).
    ///
    /// # Errors
    /// Wire decode failures or code-cache geometry mismatches.
    pub fn restore_from(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        self.cache.restore_from(r)?;
        let n = r.get_usize()?;
        let mut prof = ProfTable::new();
        for _ in 0..n {
            prof.counts.push(r.get_u64()?);
            prof.trips.push(r.get_u64()?);
        }
        self.prof = prof;
        // Fresh emulator + public fields: the speculative transients are
        // empty at every legal snapshot point, so none are serialized.
        let mut emu = HostEmulator::new();
        for i in 0..64 {
            emu.iregs[i] = r.get_u32()?;
        }
        for i in 0..64 {
            emu.fregs[i] = r.get_f64()?;
        }
        emu.counters.chkpts = r.get_u64()?;
        emu.counters.commits = r.get_u64()?;
        emu.counters.assert_fails = r.get_u64()?;
        emu.counters.alias_fails = r.get_u64()?;
        emu.counters.page_faults = r.get_u64()?;
        emu.counters.ibtc_hits = r.get_u64()?;
        emu.counters.ibtc_misses = r.get_u64()?;
        emu.counters.smc_aborts = r.get_u64()?;
        emu.gcnt_bb = r.get_u64()?;
        emu.gcnt_sb = r.get_u64()?;
        emu.host_bb = r.get_u64()?;
        emu.host_sb = r.get_u64()?;
        self.last_code_gen = r.get_u64()?;
        self.emu = emu;
        self.acct.overhead = Overhead {
            interpreter: r.get_u64()?,
            bb_translator: r.get_u64()?,
            sb_translator: r.get_u64()?,
            prologue: r.get_u64()?,
            chaining: r.get_u64()?,
            cache_lookup: r.get_u64()?,
            others: r.get_u64()?,
        };
        self.acct.set_rot(r.get_u64()?);
        let mut stats = TolStats {
            guest_im: r.get_u64()?,
            translations_bb: r.get_u64()?,
            translations_sb: r.get_u64()?,
            recreations: r.get_u64()?,
            host_app: r.get_u64()?,
            interp_blocks: r.get_u64()?,
            spec_rollbacks: r.get_u64()?,
            smc_aborts: r.get_u64()?,
            smc_flushes: r.get_u64()?,
            chain_patches: r.get_u64()?,
            ibtc_inserts: r.get_u64()?,
            guest_external: r.get_u64()?,
            sb_static_guest: r.get_u64()?,
            sb_static_host: r.get_u64()?,
            verify_regions: r.get_u64()?,
            verify_findings: r.get_u64()?,
            verify_nanos: r.get_u64()?,
            translate_nanos: r.get_u64()?,
            static_cycles: r.get_u64()?,
            ..TolStats::default()
        };
        for v in &mut stats.verify_by_kind {
            *v = r.get_u64()?;
        }
        self.stats = stats;
        self.pending_flags = if r.get_bool()? {
            let code = r.get_u32()?;
            let kind = FlagsKind::from_code(code).ok_or(WireError::Malformed {
                at: r.pos(),
                what: "unknown pending-flags code",
            })?;
            Some(PendingFlags { kind, a: r.get_u32()?, b: r.get_u32()? })
        } else {
            None
        };
        let n = r.get_usize()?;
        let mut verify_log = Vec::with_capacity(n);
        for _ in 0..n {
            verify_log.push(r.get_str()?);
        }
        self.verify_log = verify_log;
        self.obs.restore_metrics(crate::obs::registry_restore(r)?);
        let n = r.get_usize()?;
        let mut counter_bb = HashMap::with_capacity(n);
        for _ in 0..n {
            let pc = r.get_u32()?;
            counter_bb.insert(pc, r.get_u32()?);
        }
        self.counter_bb = counter_bb;
        let n = r.get_usize()?;
        let mut bb_edges = HashMap::with_capacity(n);
        for _ in 0..n {
            let pc = r.get_u32()?;
            bb_edges.insert(pc, EdgeCounters { taken: r.get_u32()?, fall: r.get_u32()? });
        }
        self.bb_edges = bb_edges;
        let n = r.get_usize()?;
        let mut im_prof = HashMap::with_capacity(n);
        for _ in 0..n {
            let pc = r.get_u32()?;
            im_prof.insert(
                pc,
                ImProf { count: r.get_u64()?, taken: r.get_u64()?, fall: r.get_u64()? },
            );
        }
        self.im_prof = im_prof;
        self.do_not_translate = r.get_u32s()?.into_iter().collect();
        self.translation_ordinal = r.get_u64()?;
        self.spill_mapped = r.get_bool()?;
        self.im_split_entry = if r.get_bool()? { Some(r.get_u32()?) } else { None };
        // Pure cache over guest memory — rebuilt on demand.
        self.decode = DecodeCache::new();
        Ok(())
    }

    // -- fault injection (debug-toolchain support) ---------------------------------

    fn inject_bug_region(&mut self, region: &mut Region, want: BugKind) {
        let Some(inj) = self.cfg.injection else { return };
        if inj.kind != want || inj.translation_ordinal != self.translation_ordinal {
            return;
        }
        // An optimizer bug only exists when the optimizer actually runs.
        if want == BugKind::OptimizerBadFold && self.cfg.opt_level == OptLevel::O0 {
            return;
        }
        for inst in &mut region.insts {
            if let IrOp::ConstI(c) = inst.op {
                inst.op = IrOp::ConstI(c.wrapping_add(1));
                return;
            }
        }
    }

    fn inject_bug_code(&mut self, code: &mut [HInsn]) {
        let Some(inj) = self.cfg.injection else { return };
        if inj.kind != BugKind::CodegenDropStore
            || inj.translation_ordinal != self.translation_ordinal
        {
            return;
        }
        for insn in code.iter_mut() {
            if matches!(insn, HInsn::Store { base, .. } if *base != R_SPILL_BASE) {
                *insn = HInsn::Nop;
                return;
            }
        }
    }
}
