//! IM — the interpretation mode (paper §V-B1).
//!
//! Interprets guest instructions through the architectural executor in
//! `darco_guest::exec`, one basic block at a time. IM guarantees forward
//! progress, serves as the safety net for instructions excluded from
//! translation, and provides recovery after speculation failures.

use darco_guest::exec::{self, Next};
use darco_guest::insn::Insn;
use darco_guest::{Fault, GuestState};

/// Why a block interpretation stopped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockStop {
    /// The block ended normally (branch, jump, call, ret or fall-through
    /// split); `next_pc` is in [`BlockRun`].
    End,
    /// The budget ran out mid-block (resumable).
    Budget,
    /// The next instruction is a syscall; `EIP` points at it.
    Syscall,
    /// The next instruction is `halt`; `EIP` points at it.
    Halt,
    /// A page fault; `EIP` points at the faulting instruction (resumable
    /// once the page is installed).
    PageFault {
        /// Faulting address.
        addr: u32,
        /// Write access?
        write: bool,
    },
    /// A non-recoverable guest fault (bad opcode, division by zero).
    GuestError(Fault),
}

/// Result of interpreting (up to) one basic block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockRun {
    /// PC the block started at.
    pub entry_pc: u32,
    /// Guest instructions retired.
    pub insns: u64,
    /// Why interpretation stopped.
    pub stop: BlockStop,
    /// For blocks ending in a conditional branch: `(taken_target,
    /// fallthrough, taken?)` — feeds the edge profiler.
    pub jcc: Option<(u32, u32, bool)>,
}

/// Maximum instructions in one "block" before an artificial split (keeps
/// profiling granularity bounded; mirrors the translator's block split).
pub const MAX_BLOCK_INSNS: u64 = 128;

/// Interprets one basic block (or until `budget` instructions).
///
/// Stops *before* executing `syscall`/`halt` so the controller can run the
/// synchronization protocol, and leaves the state untouched on faults so
/// execution can resume after the controller installs the missing page.
pub fn interpret_block(st: &mut GuestState, budget: u64) -> BlockRun {
    let entry_pc = st.eip;
    let mut insns = 0u64;
    let budget = budget.min(MAX_BLOCK_INSNS);
    loop {
        if insns >= budget {
            return BlockRun { entry_pc, insns, stop: BlockStop::Budget, jcc: None };
        }
        // Peek for syscall/halt before executing.
        match exec::fetch(&st.mem, st.eip) {
            Ok((Insn::Syscall, _)) => {
                return BlockRun { entry_pc, insns, stop: BlockStop::Syscall, jcc: None };
            }
            Ok((Insn::Halt, _)) => {
                return BlockRun { entry_pc, insns, stop: BlockStop::Halt, jcc: None };
            }
            Ok(_) => {}
            Err(Fault::Page(pf)) => {
                return BlockRun {
                    entry_pc,
                    insns,
                    stop: BlockStop::PageFault { addr: pf.addr, write: pf.write },
                    jcc: None,
                };
            }
            Err(f) => {
                return BlockRun { entry_pc, insns, stop: BlockStop::GuestError(f), jcc: None };
            }
        }
        match exec::step(st) {
            Ok(info) => {
                insns += 1;
                match info.next {
                    Next::RepContinue => continue,
                    Next::Seq => {
                        if info.insn.ends_block() {
                            // Not-taken conditional branch.
                            let jcc = match info.insn {
                                Insn::Jcc { rel, .. } => {
                                    let fall = info.pc.wrapping_add(info.len);
                                    Some((fall.wrapping_add(rel as u32), fall, false))
                                }
                                _ => None,
                            };
                            return BlockRun { entry_pc, insns, stop: BlockStop::End, jcc };
                        }
                    }
                    Next::Jump(t) => {
                        let jcc = match info.insn {
                            Insn::Jcc { .. } => {
                                let fall = info.pc.wrapping_add(info.len);
                                Some((t, fall, true))
                            }
                            _ => None,
                        };
                        return BlockRun { entry_pc, insns, stop: BlockStop::End, jcc };
                    }
                    Next::Syscall | Next::Halt => {
                        unreachable!("syscall/halt are intercepted before execution")
                    }
                }
            }
            Err(Fault::Page(pf)) => {
                return BlockRun {
                    entry_pc,
                    insns,
                    stop: BlockStop::PageFault { addr: pf.addr, write: pf.write },
                    jcc: None,
                };
            }
            Err(f) => {
                return BlockRun { entry_pc, insns, stop: BlockStop::GuestError(f), jcc: None };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::program::DEFAULT_CODE_BASE;
    use darco_guest::{Asm, Cond, Gpr};

    fn boot(build: impl FnOnce(&mut Asm)) -> GuestState {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        build(&mut a);
        let p = a.into_program();
        GuestState::boot(&p)
    }

    #[test]
    fn stops_at_block_end_with_edge_info() {
        let mut st = boot(|a| {
            a.mov_ri(Gpr::Eax, 1);
            a.cmp_ri(Gpr::Eax, 1);
            let l = a.label();
            a.jcc_to(Cond::E, l);
            a.nop();
            a.bind(l);
            a.halt();
        });
        let run = interpret_block(&mut st, u64::MAX);
        assert_eq!(run.stop, BlockStop::End);
        assert_eq!(run.insns, 3);
        let (_taken_t, _fall, taken) = run.jcc.unwrap();
        assert!(taken);
        // Next block: halt is intercepted.
        let run2 = interpret_block(&mut st, u64::MAX);
        assert_eq!(run2.stop, BlockStop::Halt);
        assert_eq!(run2.insns, 0);
    }

    #[test]
    fn syscall_is_not_executed() {
        let mut st = boot(|a| {
            a.mov_ri(Gpr::Eax, 2);
            a.syscall();
            a.halt();
        });
        let run = interpret_block(&mut st, u64::MAX);
        assert_eq!(run.stop, BlockStop::Syscall);
        assert_eq!(run.insns, 1);
        // EIP points at the syscall itself.
        let (insn, _) = exec::fetch(&st.mem, st.eip).unwrap();
        assert_eq!(insn, Insn::Syscall);
    }

    #[test]
    fn budget_splits_blocks_resumably() {
        let mut st = boot(|a| {
            for _ in 0..10 {
                a.inc(Gpr::Eax);
            }
            a.halt();
        });
        let run = interpret_block(&mut st, 4);
        assert_eq!(run.stop, BlockStop::Budget);
        assert_eq!(run.insns, 4);
        let run2 = interpret_block(&mut st, u64::MAX);
        assert_eq!(run2.insns, 6);
        assert_eq!(st.gpr(Gpr::Eax), 10);
    }

    #[test]
    fn page_fault_is_resumable() {
        let mut st = boot(|a| {
            a.mov_ri(Gpr::Ebx, 0x0900_0000);
            a.load(Gpr::Ecx, darco_guest::Addr::base(Gpr::Ebx));
            a.halt();
        });
        let run = interpret_block(&mut st, u64::MAX);
        assert!(matches!(run.stop, BlockStop::PageFault { addr: 0x0900_0000, write: false }));
        st.mem.map_zero(0x0900_0000 >> 12);
        let run2 = interpret_block(&mut st, u64::MAX);
        assert_eq!(run2.stop, BlockStop::Halt);
    }

    #[test]
    fn long_straightline_code_splits() {
        let mut st = boot(|a| {
            for _ in 0..200 {
                a.nop();
            }
            a.halt();
        });
        let run = interpret_block(&mut st, u64::MAX);
        assert_eq!(run.stop, BlockStop::Budget);
        assert_eq!(run.insns, MAX_BLOCK_INSNS);
    }
}
