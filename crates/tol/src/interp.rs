//! IM — the interpretation mode (paper §V-B1).
//!
//! Interprets guest instructions through the architectural executor in
//! `darco_guest::exec`, one basic block at a time. IM guarantees forward
//! progress, serves as the safety net for instructions excluded from
//! translation, and provides recovery after speculation failures.

use darco_guest::exec::{self, Next};
use darco_guest::insn::Insn;
use darco_guest::{DecodeCache, Fault, GuestState};

/// Why a block interpretation stopped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockStop {
    /// The block ended normally (branch, jump, call, ret or fall-through
    /// split); `next_pc` is in [`BlockRun`].
    End,
    /// The budget ran out mid-block (resumable).
    Budget,
    /// The next instruction is a syscall; `EIP` points at it.
    Syscall,
    /// The next instruction is `halt`; `EIP` points at it.
    Halt,
    /// A page fault; `EIP` points at the faulting instruction (resumable
    /// once the page is installed).
    PageFault {
        /// Faulting address.
        addr: u32,
        /// Write access?
        write: bool,
    },
    /// A non-recoverable guest fault (bad opcode, division by zero).
    GuestError(Fault),
}

/// Result of interpreting (up to) one basic block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockRun {
    /// PC the block started at.
    pub entry_pc: u32,
    /// Guest instructions retired.
    pub insns: u64,
    /// Why interpretation stopped.
    pub stop: BlockStop,
    /// For blocks ending in a conditional branch: `(taken_target,
    /// fallthrough, taken?)` — feeds the edge profiler.
    pub jcc: Option<(u32, u32, bool)>,
}

/// Maximum instructions in one "block" before an artificial split (keeps
/// profiling granularity bounded; mirrors the translator's block split).
pub const MAX_BLOCK_INSNS: u64 = 128;

/// Interprets one basic block (or until `budget` instructions).
///
/// Stops *before* executing `syscall`/`halt` so the controller can run the
/// synchronization protocol, and leaves the state untouched on faults so
/// execution can resume after the controller installs the missing page.
pub fn interpret_block(st: &mut GuestState, budget: u64) -> BlockRun {
    let entry_pc = st.eip;
    let mut insns = 0u64;
    let budget = budget.min(MAX_BLOCK_INSNS);
    loop {
        if insns >= budget {
            return BlockRun { entry_pc, insns, stop: BlockStop::Budget, jcc: None };
        }
        // Peek for syscall/halt before executing.
        match exec::fetch(&st.mem, st.eip) {
            Ok((Insn::Syscall, _)) => {
                return BlockRun { entry_pc, insns, stop: BlockStop::Syscall, jcc: None };
            }
            Ok((Insn::Halt, _)) => {
                return BlockRun { entry_pc, insns, stop: BlockStop::Halt, jcc: None };
            }
            Ok(_) => {}
            Err(Fault::Page(pf)) => {
                return BlockRun {
                    entry_pc,
                    insns,
                    stop: BlockStop::PageFault { addr: pf.addr, write: pf.write },
                    jcc: None,
                };
            }
            Err(f) => {
                return BlockRun { entry_pc, insns, stop: BlockStop::GuestError(f), jcc: None };
            }
        }
        match exec::step(st) {
            Ok(info) => {
                insns += 1;
                match info.next {
                    Next::RepContinue => continue,
                    Next::Seq => {
                        if info.insn.ends_block() {
                            // Not-taken conditional branch.
                            let jcc = match info.insn {
                                Insn::Jcc { rel, .. } => {
                                    let fall = info.pc.wrapping_add(info.len);
                                    Some((fall.wrapping_add(rel as u32), fall, false))
                                }
                                _ => None,
                            };
                            return BlockRun { entry_pc, insns, stop: BlockStop::End, jcc };
                        }
                    }
                    Next::Jump(t) => {
                        let jcc = match info.insn {
                            Insn::Jcc { .. } => {
                                let fall = info.pc.wrapping_add(info.len);
                                Some((t, fall, true))
                            }
                            _ => None,
                        };
                        return BlockRun { entry_pc, insns, stop: BlockStop::End, jcc };
                    }
                    Next::Syscall | Next::Halt => {
                        unreachable!("syscall/halt are intercepted before execution")
                    }
                }
            }
            Err(Fault::Page(pf)) => {
                return BlockRun {
                    entry_pc,
                    insns,
                    stop: BlockStop::PageFault { addr: pf.addr, write: pf.write },
                    jcc: None,
                };
            }
            Err(f) => {
                return BlockRun { entry_pc, insns, stop: BlockStop::GuestError(f), jcc: None };
            }
        }
    }
}

/// Interprets one basic block through a [`DecodeCache`] — the hot-path
/// variant of [`interpret_block`], decoding each block once and replaying
/// the predecoded run on every revisit.
///
/// Semantics match [`interpret_block`] with one benign exception: when a
/// block was cut short during predecode because the *next* fetch faulted,
/// replay of the prefix stops with [`BlockStop::Budget`]; the next call
/// re-enters at the faulting PC and reports the fault with `insns == 0`.
/// Either way `EIP` ends on the faulting instruction and execution
/// resumes identically once the page is installed.
pub fn interpret_block_cached(
    st: &mut GuestState,
    budget: u64,
    cache: &mut DecodeCache,
) -> BlockRun {
    let entry_pc = st.eip;
    let budget = budget.min(MAX_BLOCK_INSNS);
    if budget == 0 {
        return BlockRun { entry_pc, insns: 0, stop: BlockStop::Budget, jcc: None };
    }
    let block = match cache.block(&mut st.mem, entry_pc) {
        Ok(b) => b,
        Err(Fault::Page(pf)) => {
            return BlockRun {
                entry_pc,
                insns: 0,
                stop: BlockStop::PageFault { addr: pf.addr, write: pf.write },
                jcc: None,
            };
        }
        Err(f) => {
            return BlockRun { entry_pc, insns: 0, stop: BlockStop::GuestError(f), jcc: None };
        }
    };
    let mut insns = 0u64;
    let mut pc = entry_pc;
    // A store inside the block can overwrite the block itself; replay
    // re-checks the code generation after every retire and bails out so
    // the next entry re-decodes.
    let gen0 = st.mem.code_gen();
    for &(ref insn, len) in &block.insns {
        // The inner loop re-executes `REP` string instructions in place.
        loop {
            if insns >= budget {
                return BlockRun { entry_pc, insns, stop: BlockStop::Budget, jcc: None };
            }
            match insn {
                Insn::Syscall => {
                    return BlockRun { entry_pc, insns, stop: BlockStop::Syscall, jcc: None };
                }
                Insn::Halt => {
                    return BlockRun { entry_pc, insns, stop: BlockStop::Halt, jcc: None };
                }
                _ => {}
            }
            match exec::exec_insn(st, insn, pc, len) {
                Ok(next) => {
                    insns += 1;
                    match next {
                        Next::RepContinue => {
                            st.eip = pc;
                            if st.mem.code_gen() != gen0 {
                                return BlockRun { entry_pc, insns, stop: BlockStop::Budget, jcc: None };
                            }
                            continue;
                        }
                        Next::Seq => {
                            st.eip = pc.wrapping_add(len);
                            if insn.ends_block() {
                                // Not-taken conditional branch.
                                let jcc = match *insn {
                                    Insn::Jcc { rel, .. } => {
                                        let fall = pc.wrapping_add(len);
                                        Some((fall.wrapping_add(rel as u32), fall, false))
                                    }
                                    _ => None,
                                };
                                return BlockRun { entry_pc, insns, stop: BlockStop::End, jcc };
                            }
                            if st.mem.code_gen() != gen0 {
                                return BlockRun { entry_pc, insns, stop: BlockStop::Budget, jcc: None };
                            }
                            pc = st.eip;
                            break;
                        }
                        Next::Jump(t) => {
                            st.eip = t;
                            let jcc = match *insn {
                                Insn::Jcc { .. } => {
                                    let fall = pc.wrapping_add(len);
                                    Some((t, fall, true))
                                }
                                _ => None,
                            };
                            return BlockRun { entry_pc, insns, stop: BlockStop::End, jcc };
                        }
                        Next::Syscall | Next::Halt => {
                            unreachable!("syscall/halt are intercepted before execution")
                        }
                    }
                }
                Err(Fault::Page(pf)) => {
                    st.eip = pc;
                    return BlockRun {
                        entry_pc,
                        insns,
                        stop: BlockStop::PageFault { addr: pf.addr, write: pf.write },
                        jcc: None,
                    };
                }
                Err(f) => {
                    st.eip = pc;
                    return BlockRun { entry_pc, insns, stop: BlockStop::GuestError(f), jcc: None };
                }
            }
        }
    }
    // The run was cut short at predecode time (size cap or a faulting
    // tail): report an artificial split; the next call re-enters here.
    BlockRun { entry_pc, insns, stop: BlockStop::Budget, jcc: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::program::DEFAULT_CODE_BASE;
    use darco_guest::{Asm, Cond, Gpr};

    fn boot(build: impl FnOnce(&mut Asm)) -> GuestState {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        build(&mut a);
        let p = a.into_program();
        GuestState::boot(&p)
    }

    #[test]
    fn stops_at_block_end_with_edge_info() {
        let mut st = boot(|a| {
            a.mov_ri(Gpr::Eax, 1);
            a.cmp_ri(Gpr::Eax, 1);
            let l = a.label();
            a.jcc_to(Cond::E, l);
            a.nop();
            a.bind(l);
            a.halt();
        });
        let run = interpret_block(&mut st, u64::MAX);
        assert_eq!(run.stop, BlockStop::End);
        assert_eq!(run.insns, 3);
        let (_taken_t, _fall, taken) = run.jcc.unwrap();
        assert!(taken);
        // Next block: halt is intercepted.
        let run2 = interpret_block(&mut st, u64::MAX);
        assert_eq!(run2.stop, BlockStop::Halt);
        assert_eq!(run2.insns, 0);
    }

    #[test]
    fn syscall_is_not_executed() {
        let mut st = boot(|a| {
            a.mov_ri(Gpr::Eax, 2);
            a.syscall();
            a.halt();
        });
        let run = interpret_block(&mut st, u64::MAX);
        assert_eq!(run.stop, BlockStop::Syscall);
        assert_eq!(run.insns, 1);
        // EIP points at the syscall itself.
        let (insn, _) = exec::fetch(&st.mem, st.eip).unwrap();
        assert_eq!(insn, Insn::Syscall);
    }

    #[test]
    fn budget_splits_blocks_resumably() {
        let mut st = boot(|a| {
            for _ in 0..10 {
                a.inc(Gpr::Eax);
            }
            a.halt();
        });
        let run = interpret_block(&mut st, 4);
        assert_eq!(run.stop, BlockStop::Budget);
        assert_eq!(run.insns, 4);
        let run2 = interpret_block(&mut st, u64::MAX);
        assert_eq!(run2.insns, 6);
        assert_eq!(st.gpr(Gpr::Eax), 10);
    }

    #[test]
    fn page_fault_is_resumable() {
        let mut st = boot(|a| {
            a.mov_ri(Gpr::Ebx, 0x0900_0000);
            a.load(Gpr::Ecx, darco_guest::Addr::base(Gpr::Ebx));
            a.halt();
        });
        let run = interpret_block(&mut st, u64::MAX);
        assert!(matches!(run.stop, BlockStop::PageFault { addr: 0x0900_0000, write: false }));
        st.mem.map_zero(0x0900_0000 >> 12);
        let run2 = interpret_block(&mut st, u64::MAX);
        assert_eq!(run2.stop, BlockStop::Halt);
    }

    #[test]
    fn long_straightline_code_splits() {
        let mut st = boot(|a| {
            for _ in 0..200 {
                a.nop();
            }
            a.halt();
        });
        let run = interpret_block(&mut st, u64::MAX);
        assert_eq!(run.stop, BlockStop::Budget);
        assert_eq!(run.insns, MAX_BLOCK_INSNS);
    }

    /// The cached interpreter matches the plain one on the basic
    /// protocol: block ends, syscall interception, budget splits.
    #[test]
    fn cached_interpreter_matches_plain() {
        let build = |a: &mut Asm| {
            a.mov_ri(Gpr::Eax, 1);
            a.cmp_ri(Gpr::Eax, 1);
            let l = a.label();
            a.jcc_to(Cond::E, l);
            a.nop();
            a.bind(l);
            for _ in 0..6 {
                a.inc(Gpr::Ebx);
            }
            a.syscall();
            a.halt();
        };
        let mut plain = boot(build);
        let mut cached = boot(build);
        let mut cache = darco_guest::DecodeCache::new();
        loop {
            let a = interpret_block(&mut plain, 4);
            let b = interpret_block_cached(&mut cached, 4, &mut cache);
            assert_eq!(a, b);
            assert_eq!(plain.eip, cached.eip);
            assert_eq!(plain.gprs(), cached.gprs());
            if a.stop == BlockStop::Syscall {
                break;
            }
        }
    }

    /// A block that patches one of its *own* upcoming instructions: the
    /// per-retire generation check must stop replay of the stale run and
    /// the re-decode must execute the new bytes.
    #[test]
    fn intra_block_self_modification_is_observed() {
        use darco_guest::insn::UnaryOp;
        use darco_guest::{Addr, Width};
        let enc = |op: UnaryOp| {
            let mut b = Vec::new();
            darco_guest::encode(&Insn::Unary { op, dst: Gpr::Eax }, &mut b);
            b
        };
        let dec_bytes = enc(UnaryOp::Dec);
        assert_eq!(enc(UnaryOp::Inc).len(), dec_bytes.len(), "patch preserves length");
        let n = dec_bytes.len();
        let build = |target: u32| {
            let dec_bytes = dec_bytes.clone();
            move |a: &mut Asm| {
                a.mov_ri(Gpr::Ebx, target as i32);
                for (i, &byte) in dec_bytes.iter().enumerate() {
                    a.mov_ri(Gpr::Ecx, byte as i32);
                    a.store(Addr { disp: i as i32, ..Addr::base(Gpr::Ebx) }, Gpr::Ecx, Width::B);
                }
                a.inc(Gpr::Eax); // patched to `dec eax` by the stores above
                a.halt();
            }
        };
        // Pass 1 with a same-magnitude placeholder to learn the layout.
        let mut probe = Asm::new(DEFAULT_CODE_BASE);
        build(DEFAULT_CODE_BASE)(&mut probe);
        let target = {
            let st = GuestState::boot(&probe.into_program());
            // Walk the patch preamble to the patch target's address.
            let mut pc = DEFAULT_CODE_BASE;
            for _ in 0..1 + 2 * n {
                let (_, len) = exec::fetch(&st.mem, pc).unwrap();
                pc += len;
            }
            pc
        };
        let mut st = boot(build(target));
        let mut cache = darco_guest::DecodeCache::new();
        // Each patch store bumps the code generation, cutting replay of
        // the now-stale block (an artificial Budget split); the re-decode
        // must pick up the new bytes before control reaches them.
        let mut splits = 0;
        loop {
            let run = interpret_block_cached(&mut st, u64::MAX, &mut cache);
            match run.stop {
                BlockStop::Halt => break,
                BlockStop::Budget => {
                    splits += 1;
                    assert!(splits < 20, "no forward progress");
                }
                other => panic!("unexpected stop: {other:?}"),
            }
        }
        assert!(splits >= 1, "the generation check must cut the stale replay");
        assert_eq!(st.gpr(Gpr::Eax), u32::MAX, "the patched dec ran, not the stale inc");
    }
}
