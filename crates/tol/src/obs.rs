//! TOL observability: the tracer + live histograms the TOL carries, and
//! the registry bridge for [`TolStats`] / [`Overhead`].
//!
//! [`TolObs`] is a field of [`crate::Tol`]. With the tracer off (the
//! default) every hook is a single predictable branch, mirroring the
//! `NullSink` hot-path discipline; with a ring tracer attached the TOL
//! emits typed events for every mode switch, translation, promotion,
//! chain patch, rollback and cache operation, and records
//! power-of-two-bucket histograms for translation latency, region size
//! and rollback distance.

use crate::overhead::Overhead;
use crate::tol::TolStats;
use darco_guest::{Wire, WireError, WireReader};
use darco_obs::trace::TraceSink;
use darco_obs::{ExecMode, HistoId, Histogram, Registry, TraceEventKind, Tracer};

/// Observability state owned by the TOL.
#[derive(Debug)]
pub struct TolObs {
    /// The trace sink (off by default).
    pub trace: Tracer,
    /// Live metrics: histograms recorded during execution. Snapshot
    /// counters are bridged in from [`TolStats`] at report time.
    pub metrics: Registry,
    h_translate_bb: HistoId,
    h_translate_sb: HistoId,
    h_region_guest_insns: HistoId,
    h_rollback_host_insns: HistoId,
    last_mode: Option<ExecMode>,
}

impl Default for TolObs {
    fn default() -> Self {
        TolObs::new()
    }
}

impl TolObs {
    /// Creates the observability state with tracing off and the TOL's
    /// histograms registered.
    pub fn new() -> TolObs {
        let mut metrics = Registry::new();
        let h_translate_bb = metrics.histogram("tol.translate_ns.bb");
        let h_translate_sb = metrics.histogram("tol.translate_ns.sb");
        let h_region_guest_insns = metrics.histogram("tol.region_guest_insns");
        let h_rollback_host_insns = metrics.histogram("tol.rollback_host_insns");
        TolObs {
            trace: Tracer::Off,
            metrics,
            h_translate_bb,
            h_translate_sb,
            h_region_guest_insns,
            h_rollback_host_insns,
            last_mode: None,
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.trace.enabled()
    }

    /// Emits one event (no-op with the tracer off).
    #[inline]
    pub fn emit(&mut self, kind: TraceEventKind) {
        self.trace.emit(kind);
    }

    /// Notes the execution mode at `pc`, emitting a [`TraceEventKind::ModeSwitch`]
    /// only when it changed (IM blocks and chained cache entries would
    /// otherwise flood the ring).
    #[inline]
    pub fn mode(&mut self, to: ExecMode, pc: u32) {
        if !self.trace.enabled() {
            return;
        }
        if self.last_mode != Some(to) {
            let from = self.last_mode.unwrap_or(to);
            self.trace.emit(TraceEventKind::ModeSwitch { from, to, pc });
            self.last_mode = Some(to);
        }
    }

    /// Records a finished translation: latency histogram plus the
    /// [`TraceEventKind::TranslateEnd`] event.
    pub fn translate_end(&mut self, sb: bool, pc: u32, ns: u64, ok: bool) {
        let h = if sb { self.h_translate_sb } else { self.h_translate_bb };
        self.metrics.record(h, ns);
        self.emit(TraceEventKind::TranslateEnd { sb, pc, ns, ok });
    }

    /// Records an installed region's static guest-instruction size.
    pub fn region_size(&mut self, guest_insns: u32) {
        self.metrics.record(self.h_region_guest_insns, guest_insns as u64);
    }

    /// Records a rollback's distance (host instructions executed in the
    /// region before the failure).
    pub fn rollback(&mut self, pc: u32, host_insns: u64) {
        self.metrics.record(self.h_rollback_host_insns, host_insns);
        self.emit(TraceEventKind::Rollback { pc, host_insns });
    }

    /// Replaces the live metrics with a restored registry (checkpoint
    /// restore), re-resolving the TOL's histogram ids by name. Tracing
    /// state is deliberately not part of a checkpoint: the tracer resets
    /// to off and mode tracking restarts at the next switch.
    pub fn restore_metrics(&mut self, metrics: Registry) {
        self.metrics = metrics;
        self.h_translate_bb = self.metrics.histogram("tol.translate_ns.bb");
        self.h_translate_sb = self.metrics.histogram("tol.translate_ns.sb");
        self.h_region_guest_insns = self.metrics.histogram("tol.region_guest_insns");
        self.h_rollback_host_insns = self.metrics.histogram("tol.rollback_host_insns");
        self.last_mode = None;
    }

    /// Updates the code-cache occupancy gauge.
    pub fn cache_occupancy(&mut self, used_words: u64, capacity_words: u64) {
        self.metrics.set_gauge("tol.cache_used_words", used_words as f64);
        self.metrics.set_gauge(
            "tol.cache_occupancy",
            if capacity_words == 0 { 0.0 } else { used_words as f64 / capacity_words as f64 },
        );
    }
}

/// True for metrics that measure host wall-clock time rather than guest
/// progress. These are *normalized to zero in snapshots*: a snapshot must
/// be a pure function of guest progress (the same guest boundary yields
/// the same bytes regardless of host load, run, or backend), and nanos
/// are the one thing in the registry that is not. Restored runs restart
/// wall-clock accumulators from zero — they then describe the resuming
/// process. Registration order (and thus positional [`HistoId`]s) is
/// preserved; only the recorded values are blanked.
fn wall_clock(name: &str) -> bool {
    name.contains("nanos") || name.contains("_ns")
}

/// Serializes a registry for checkpoints: counters, gauges and
/// histograms in registration order (order is part of the state —
/// [`HistoId`]s are positional, and registration order is deterministic
/// for a deterministic run). Wall-clock metrics are serialized as zero
/// (see [`wall_clock`]); everything else is lossless.
///
/// Lives here rather than in `darco-obs` because the obs crate is
/// dependency-free and cannot see the wire codec.
pub fn registry_snapshot_into(reg: &Registry, w: &mut Wire) {
    let counters: Vec<_> = reg.counters_iter().collect();
    w.put_usize(counters.len());
    for (name, v) in counters {
        w.put_str(name);
        w.put_u64(if wall_clock(name) { 0 } else { v });
    }
    let gauges: Vec<_> = reg.gauges_iter().collect();
    w.put_usize(gauges.len());
    for (name, v) in gauges {
        w.put_str(name);
        w.put_f64(if wall_clock(name) { 0.0 } else { v });
    }
    let histos: Vec<_> = reg.histograms_iter().collect();
    w.put_usize(histos.len());
    for (name, h) in histos {
        w.put_str(name);
        if wall_clock(name) {
            // An empty histogram, exactly as `Histogram::default`:
            // count 0, sum 0, min u64::MAX, max 0, all buckets 0.
            w.put_u64(0);
            w.put_u64(0);
            w.put_u64(u64::MAX);
            w.put_u64(0);
            for _ in h.buckets_raw() {
                w.put_u64(0);
            }
            continue;
        }
        w.put_u64(h.count);
        w.put_u64(h.sum);
        w.put_u64(h.min);
        w.put_u64(h.max);
        for b in h.buckets_raw() {
            w.put_u64(*b);
        }
    }
}

/// Rebuilds a registry from a [`registry_snapshot_into`] stream.
///
/// # Errors
/// Wire decode failures.
pub fn registry_restore(r: &mut WireReader<'_>) -> Result<Registry, WireError> {
    let n = r.get_usize()?;
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.get_str()?;
        counters.push((name, r.get_u64()?));
    }
    let n = r.get_usize()?;
    let mut gauges = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.get_str()?;
        gauges.push((name, r.get_f64()?));
    }
    let n = r.get_usize()?;
    let mut histos = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.get_str()?;
        let count = r.get_u64()?;
        let sum = r.get_u64()?;
        let min = r.get_u64()?;
        let max = r.get_u64()?;
        let mut buckets = [0u64; 65];
        for b in &mut buckets {
            *b = r.get_u64()?;
        }
        histos.push((name, Histogram::from_raw(count, sum, min, max, buckets)));
    }
    Ok(Registry::from_contents(counters, gauges, histos))
}

fn key(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

impl TolStats {
    /// Registers every statistic as a named counter under `prefix`
    /// (empty prefix → bare field names). This is the single source both
    /// the debug JSON and `darco-run --json`/`--metrics` serialize from.
    pub fn register_into(&self, reg: &mut Registry, prefix: &str) {
        let fields: [(&str, u64); 20] = [
            ("guest_im", self.guest_im),
            ("static_cycles", self.static_cycles),
            ("translations_bb", self.translations_bb),
            ("translations_sb", self.translations_sb),
            ("recreations", self.recreations),
            ("host_app", self.host_app),
            ("interp_blocks", self.interp_blocks),
            ("spec_rollbacks", self.spec_rollbacks),
            ("smc_aborts", self.smc_aborts),
            ("smc_flushes", self.smc_flushes),
            ("chain_patches", self.chain_patches),
            ("ibtc_inserts", self.ibtc_inserts),
            ("guest_external", self.guest_external),
            ("sb_static_guest", self.sb_static_guest),
            ("sb_static_host", self.sb_static_host),
            ("verify_regions", self.verify_regions),
            ("verify_findings", self.verify_findings),
            ("verify_nanos", self.verify_nanos),
            ("verify_sem_nanos", self.verify_sem_nanos),
            ("translate_nanos", self.translate_nanos),
        ];
        for (name, v) in fields {
            reg.set_counter(&key(prefix, name), v);
        }
        darco_ir::register_kind_counters(
            &self.verify_by_kind,
            &key(prefix, "verify_by_kind"),
            reg,
        );
    }
}

impl Overhead {
    /// Registers the seven categories plus the total under
    /// `<prefix>.overhead.*`.
    pub fn register_into(&self, reg: &mut Registry, prefix: &str) {
        let base = key(prefix, "overhead");
        for (kind, v) in self.as_array() {
            let name = match kind {
                crate::overhead::OverheadKind::Interpreter => "interpreter",
                crate::overhead::OverheadKind::BbTranslator => "bb_translator",
                crate::overhead::OverheadKind::SbTranslator => "sb_translator",
                crate::overhead::OverheadKind::Prologue => "prologue",
                crate::overhead::OverheadKind::Chaining => "chaining",
                crate::overhead::OverheadKind::CacheLookup => "cache_lookup",
                crate::overhead::OverheadKind::Others => "others",
            };
            reg.set_counter(&format!("{base}.{name}"), v);
        }
        reg.set_counter(&format!("{base}.total"), self.total());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_switch_emits_only_on_change() {
        let mut o = TolObs::new();
        o.trace = Tracer::ring(16);
        o.mode(ExecMode::Im, 0x100);
        o.mode(ExecMode::Im, 0x104);
        o.mode(ExecMode::Bbm, 0x108);
        o.mode(ExecMode::Bbm, 0x10c);
        o.mode(ExecMode::Im, 0x110);
        let evs = o.trace.events();
        assert_eq!(evs.len(), 3);
        assert!(matches!(
            evs[1].kind,
            TraceEventKind::ModeSwitch { from: ExecMode::Im, to: ExecMode::Bbm, .. }
        ));
    }

    #[test]
    fn mode_tracking_is_inert_when_off() {
        let mut o = TolObs::new();
        o.mode(ExecMode::Sbm, 0x100);
        assert!(o.trace.events().is_empty());
        assert!(!o.is_on());
    }

    #[test]
    fn translate_end_feeds_the_right_histogram() {
        let mut o = TolObs::new();
        o.translate_end(false, 0x100, 1_000, true);
        o.translate_end(true, 0x200, 9_000, true);
        o.translate_end(true, 0x200, 11_000, false);
        assert_eq!(o.metrics.histogram_ref("tol.translate_ns.bb").unwrap().count, 1);
        let sb = o.metrics.histogram_ref("tol.translate_ns.sb").unwrap();
        assert_eq!(sb.count, 2);
        assert_eq!(sb.sum, 20_000);
    }

    #[test]
    fn stats_bridge_registers_all_fields_and_kinds() {
        let stats = TolStats { spec_rollbacks: 7, ..TolStats::default() };
        let mut reg = Registry::new();
        stats.register_into(&mut reg, "tol");
        assert_eq!(reg.counter_value("tol.spec_rollbacks"), Some(7));
        assert_eq!(reg.counter_value("tol.guest_im"), Some(0));
        let (counters, _, _) = reg.sizes();
        assert_eq!(counters, 20 + darco_ir::KIND_COUNT);
    }

    #[test]
    fn overhead_bridge_matches_totals() {
        let o = Overhead { interpreter: 1, chaining: 2, ..Overhead::default() };
        let mut reg = Registry::new();
        o.register_into(&mut reg, "tol");
        assert_eq!(reg.counter_value("tol.overhead.interpreter"), Some(1));
        assert_eq!(reg.counter_value("tol.overhead.total"), Some(3));
    }
}
