//! Deferred (lazy) guest-flag materialization.
//!
//! The paper's emulation-cost optimization: "DARCO writes to the flag
//! registers only if the written value is really going to be consumed by a
//! subsequent conditional instruction" (§V-D). Inside a translation this
//! is handled by the translator's flag-state tracking; *across* translation
//! boundaries the exit publishes a [`PendingFlags`] descriptor — the
//! last flag-writing operation's kind and operands — and whoever needs the
//! flags next re-derives them with the guest's own architectural
//! evaluation functions (the same technique QEMU uses with
//! `cc_op`/`cc_src`/`cc_dst`).

use darco_guest::exec::{eval_alu, eval_imul, eval_shift, eval_unary};
use darco_guest::insn::{AluOp, ShiftOp, UnaryOp};
use darco_guest::{Flags, GuestState};
use darco_ir::FlagsKind;

/// A deferred flag descriptor captured at a translation exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingFlags {
    /// The producing operation.
    pub kind: FlagsKind,
    /// First operand.
    pub a: u32,
    /// Second operand (ignored by `Inc`/`Dec`/`Logic`).
    pub b: u32,
}

impl PendingFlags {
    /// Materializes the descriptor into concrete flags, starting from the
    /// current flags (`Inc`/`Dec` preserve CF).
    pub fn materialize(&self, current: Flags) -> Flags {
        let mut fl = current;
        match self.kind {
            FlagsKind::Add => {
                fl = Flags::default();
                eval_alu(AluOp::Add, self.a, self.b, &mut fl);
            }
            FlagsKind::Sub => {
                fl = Flags::default();
                eval_alu(AluOp::Sub, self.a, self.b, &mut fl);
            }
            FlagsKind::Logic => {
                fl.cf = false;
                fl.of = false;
                fl.set_result(self.a);
            }
            FlagsKind::Inc => {
                eval_unary(UnaryOp::Inc, self.a, &mut fl);
            }
            FlagsKind::Dec => {
                eval_unary(UnaryOp::Dec, self.a, &mut fl);
            }
            FlagsKind::Imul => {
                eval_imul(self.a, self.b, &mut fl);
            }
            FlagsKind::Shl => {
                eval_shift(ShiftOp::Shl, self.a, self.b, &mut fl);
            }
            FlagsKind::Shr => {
                eval_shift(ShiftOp::Shr, self.a, self.b, &mut fl);
            }
            FlagsKind::Sar => {
                eval_shift(ShiftOp::Sar, self.a, self.b, &mut fl);
            }
        }
        fl
    }
}

/// Resolves a pending descriptor into `st.flags` (no-op when `None`).
pub fn resolve(st: &mut GuestState, pending: &mut Option<PendingFlags>) {
    if let Some(p) = pending.take() {
        st.flags = p.materialize(st.flags);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_descriptor_matches_interpreter() {
        let p = PendingFlags { kind: FlagsKind::Sub, a: 3, b: 5 };
        let fl = p.materialize(Flags::default());
        let mut want = Flags::default();
        eval_alu(AluOp::Sub, 3, 5, &mut want);
        assert_eq!(fl, want);
        assert!(fl.cf && fl.sf);
    }

    #[test]
    fn inc_preserves_carry() {
        let cur = Flags { cf: true, ..Flags::default() };
        let p = PendingFlags { kind: FlagsKind::Inc, a: u32::MAX, b: 0 };
        let fl = p.materialize(cur);
        assert!(fl.cf, "Inc must not clobber CF");
        assert!(fl.zf, "u32::MAX + 1 wraps to zero");
    }

    #[test]
    fn logic_clears_carry_and_overflow() {
        let p = PendingFlags { kind: FlagsKind::Logic, a: 0x8000_0000, b: 0 };
        let cur = Flags { cf: true, of: true, ..Flags::default() };
        let fl = p.materialize(cur);
        assert!(!fl.cf && !fl.of && fl.sf);
    }

    #[test]
    fn resolve_clears_pending() {
        let mut st = GuestState::new();
        let mut pend = Some(PendingFlags { kind: FlagsKind::Sub, a: 1, b: 1 });
        resolve(&mut st, &mut pend);
        assert!(pend.is_none());
        assert!(st.flags.zf);
        // Resolving nothing changes nothing.
        st.flags.cf = true;
        resolve(&mut st, &mut pend);
        assert!(st.flags.cf);
    }

    #[test]
    fn shift_descriptor_matches_interpreter() {
        for (kind, op) in [
            (FlagsKind::Shl, ShiftOp::Shl),
            (FlagsKind::Shr, ShiftOp::Shr),
            (FlagsKind::Sar, ShiftOp::Sar),
        ] {
            let p = PendingFlags { kind, a: 0x8000_0001, b: 3 };
            let fl = p.materialize(Flags::default());
            let mut want = Flags::default();
            eval_shift(op, 0x8000_0001, 3, &mut want);
            assert_eq!(fl, want, "{kind:?}");
        }
    }
}
