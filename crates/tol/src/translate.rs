//! Guest → IR translation: block decoding, the instruction translator
//! with lazy guest-flag tracking, and BBM/SBM region construction
//! (paper §V-B2/§V-B3).
//!
//! Translation builds regions directly in SSA form (every definition gets
//! a fresh virtual register), which removes anti and output dependences —
//! the effect of the paper's SSA transformation. Guest flags are tracked
//! symbolically: a flag-writing instruction only records *which* operation
//! last defined the flags; consumers materialize exactly the flags (or the
//! fused condition) they need, and exits publish a deferred descriptor.
//!
//! A few instructions are excluded from translation and fall back to the
//! interpreter safety net (paper §V-B1): `REP`-prefixed string operations,
//! shifts by `CL`, and rotates. These either have data-dependent iteration
//! counts or flag semantics that depend on older flag state in ways the
//! deferred descriptor cannot express.

use darco_guest::exec::{self};
use darco_guest::insn::{AluOp, Insn, ShiftAmount, ShiftOp, UnaryOp};
use darco_guest::reg::{Addr, Cond, Width};
use darco_guest::{Fault, GuestMem};
use darco_host::{FAluOp, FCmpOp, FUnOp2, HAluOp};
use darco_ir::{ExitDesc, ExitKind, FlagsKind, Inst, IrOp, RegClass, Region, VReg};
use std::collections::HashMap;

/// Maximum instructions per decoded block before an artificial split.
pub const MAX_BLOCK_INSNS: usize = 128;

/// A decoded guest instruction with its location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedInsn {
    /// Address.
    pub pc: u32,
    /// Encoded length.
    pub len: u32,
    /// The instruction.
    pub insn: Insn,
}

/// How a decoded block ends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TermKind {
    /// Conditional branch.
    Jcc {
        cc: Cond,
        target: u32,
        fall: u32,
    },
    /// Unconditional direct jump.
    Jmp {
        target: u32,
    },
    /// Direct call (pushes `ret`, continues at `target`).
    Call {
        target: u32,
        ret: u32,
    },
    /// Indirect control transfer (`jmp r`, `call r`, `ret`).
    Indirect,
    /// System call at `pc`.
    Syscall {
        pc: u32,
    },
    /// Program halt.
    Halt,
    /// Artificial split of an overlong straight-line run.
    Split {
        next: u32,
    },
}

/// A decoded basic block ready for translation.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPlan {
    /// Entry PC.
    pub pc: u32,
    /// Non-terminating instructions.
    pub body: Vec<DecodedInsn>,
    /// The terminating instruction (absent for splits and for
    /// syscall/halt, which are not translated).
    pub term: Option<DecodedInsn>,
    /// Terminator classification.
    pub term_kind: TermKind,
    /// Whether every instruction is translatable.
    pub translatable: bool,
}

impl BlockPlan {
    /// Guest instructions this block retires when executed to the end
    /// (body plus a translated terminator; syscall/halt are executed by
    /// the authoritative component and not counted here).
    pub fn retired_insns(&self) -> u32 {
        self.body.len() as u32 + self.term.is_some() as u32
    }
}

/// True for instructions excluded from translation (interpreter handles
/// them — the paper's safety net).
pub fn excluded_from_translation(insn: &Insn) -> bool {
    match insn {
        Insn::Shift { amount: ShiftAmount::Cl, .. } => true,
        Insn::Shift { op: ShiftOp::Rol | ShiftOp::Ror, .. } => true,
        Insn::Movs { rep, .. } | Insn::Stos { rep, .. } | Insn::Lods { rep, .. } => *rep,
        Insn::Scas { rep, .. } | Insn::Cmps { rep, .. } => rep.is_some(),
        _ => false,
    }
}

/// Decodes one basic block starting at `pc`.
///
/// # Errors
/// Propagates fetch faults (unmapped code page, bad opcode).
pub fn decode_block(mem: &GuestMem, pc: u32) -> Result<BlockPlan, Fault> {
    let mut body = Vec::new();
    let mut cur = pc;
    let mut translatable = true;
    loop {
        let (insn, len) = exec::fetch(mem, cur)?;
        if excluded_from_translation(&insn) {
            translatable = false;
        }
        let d = DecodedInsn { pc: cur, len, insn };
        if insn.ends_block() {
            let after = cur.wrapping_add(len);
            let (term, term_kind) = match insn {
                Insn::Jcc { cc, rel } => (
                    Some(d),
                    TermKind::Jcc { cc, target: after.wrapping_add(rel as u32), fall: after },
                ),
                Insn::Jmp { rel } => {
                    (Some(d), TermKind::Jmp { target: after.wrapping_add(rel as u32) })
                }
                Insn::Call { rel } => (
                    Some(d),
                    TermKind::Call { target: after.wrapping_add(rel as u32), ret: after },
                ),
                Insn::JmpInd { .. } | Insn::CallInd { .. } | Insn::Ret => {
                    (Some(d), TermKind::Indirect)
                }
                Insn::Syscall => (None, TermKind::Syscall { pc: cur }),
                Insn::Halt => (None, TermKind::Halt),
                _ => unreachable!(),
            };
            return Ok(BlockPlan { pc, body, term, term_kind, translatable });
        }
        body.push(d);
        cur = after_of(&d);
        if body.len() >= MAX_BLOCK_INSNS {
            return Ok(BlockPlan {
                pc,
                body,
                term: None,
                term_kind: TermKind::Split { next: cur },
                translatable,
            });
        }
    }
}

fn after_of(d: &DecodedInsn) -> u32 {
    d.pc.wrapping_add(d.len)
}

// ---------------------------------------------------------------------------

const CF: usize = 0;
const ZF: usize = 1;
const SF: usize = 2;
const OF: usize = 3;
const PF: usize = 4;

/// Symbolic guest-flag state during translation.
#[derive(Debug, Clone)]
enum FlagState {
    /// Flags are whatever they were on region entry.
    Entry,
    /// Flags defined by a descriptor-expressible producer.
    Deferred { kind: FlagsKind, a: VReg, b: VReg },
    /// `inc`/`dec`: CF preserved from the previous state.
    IncDec { inc: bool, a: VReg, prev: Box<FlagState> },
    /// `adc`/`sbb` with carry-in (not descriptor-expressible at exits).
    AdcSbb { add: bool, a: VReg, b: VReg, cin: VReg },
    /// FP compare (x86 `comisd` semantics).
    Fcmp { a: VReg, b: VReg },
    /// All five flags materialized as 0/1 vregs (CF, ZF, SF, OF, PF).
    Mat([VReg; 5]),
}

/// Incremental region builder shared by BBM and SBM construction.
pub struct RegionBuilder {
    /// The region being built.
    pub region: Region,
    gprs: [Option<VReg>; 8],
    fprs: [Option<VReg>; 8],
    flag_state: FlagState,
    consts: HashMap<u32, VReg>,
    seq: u16,
    gcnt: u32,
    strict_flags: bool,
    cur_pc: u32,
}

impl RegionBuilder {
    /// Creates a builder for a region entered at `entry_pc`.
    pub fn new(entry_pc: u32, strict_flags: bool) -> RegionBuilder {
        RegionBuilder {
            region: Region::new(entry_pc),
            gprs: [None; 8],
            fprs: [None; 8],
            flag_state: FlagState::Entry,
            consts: HashMap::new(),
            seq: 0,
            gcnt: 0,
            strict_flags,
            cur_pc: entry_pc,
        }
    }

    /// Guest instructions translated so far.
    pub fn gcnt(&self) -> u32 {
        self.gcnt
    }

    /// Counts one retired guest instruction that needed no emitted code
    /// (straightened jumps inside superblocks).
    pub fn bump_gcnt(&mut self) {
        self.gcnt += 1;
    }

    /// Sets the guest PC used for debug attribution of emitted IR.
    pub fn set_cur_pc(&mut self, pc: u32) {
        self.cur_pc = pc;
    }

    fn gpr(&mut self, g: darco_guest::Gpr) -> VReg {
        let i = g.index();
        if let Some(v) = self.gprs[i] {
            return v;
        }
        if let Some(v) = self.region.entry.gprs[i] {
            self.gprs[i] = Some(v);
            return v;
        }
        let nv = self.region.new_vreg(RegClass::Int);
        self.region.entry.gprs[i] = Some(nv);
        self.gprs[i] = Some(nv);
        nv
    }

    fn set_gpr(&mut self, g: darco_guest::Gpr, v: VReg) {
        self.gprs[g.index()] = Some(v);
    }

    fn fpr(&mut self, f: darco_guest::Fpr) -> VReg {
        let i = f.index();
        if let Some(v) = self.fprs[i] {
            return v;
        }
        let nv = self.region.new_vreg(RegClass::Fp);
        self.region.entry.fprs[i] = Some(nv);
        self.fprs[i] = Some(nv);
        nv
    }

    fn set_fpr(&mut self, f: darco_guest::Fpr, v: VReg) {
        self.fprs[f.index()] = Some(v);
    }

    fn entry_flag(&mut self, bit: usize) -> VReg {
        if let Some(v) = self.region.entry.flags[bit] {
            return v;
        }
        let nv = self.region.new_vreg(RegClass::Int);
        self.region.entry.flags[bit] = Some(nv);
        nv
    }

    fn ci(&mut self, c: u32) -> VReg {
        if let Some(&v) = self.consts.get(&c) {
            return v;
        }
        let v = self.emit_i(IrOp::ConstI(c), vec![]);
        self.consts.insert(c, v);
        v
    }

    fn cfp(&mut self, bits: u64) -> VReg {
        self.emit_f(IrOp::ConstF(bits), vec![])
    }

    fn emit_i(&mut self, op: IrOp, srcs: Vec<VReg>) -> VReg {
        let dst = self.region.new_vreg(RegClass::Int);
        let mut inst = Inst::new(op, Some(dst), srcs);
        inst.guest_pc = self.cur_pc;
        self.region.push(inst);
        dst
    }

    fn emit_f(&mut self, op: IrOp, srcs: Vec<VReg>) -> VReg {
        let dst = self.region.new_vreg(RegClass::Fp);
        let mut inst = Inst::new(op, Some(dst), srcs);
        inst.guest_pc = self.cur_pc;
        self.region.push(inst);
        dst
    }

    fn alu(&mut self, op: HAluOp, a: VReg, b: VReg) -> VReg {
        self.emit_i(IrOp::Alu(op), vec![a, b])
    }

    fn alu_ci(&mut self, op: HAluOp, a: VReg, c: u32) -> VReg {
        let b = self.ci(c);
        self.alu(op, a, b)
    }

    fn next_seq(&mut self) -> u16 {
        self.seq += 1;
        assert!(self.seq < 0x8000, "region memory-op sequence space exceeded");
        self.seq
    }

    fn load(&mut self, addr: VReg, width: Width, sign: bool) -> VReg {
        let dst = self.region.new_vreg(RegClass::Int);
        let mut inst = Inst::new(IrOp::Load { width, sign }, Some(dst), vec![addr]);
        inst.seq = self.next_seq();
        inst.guest_pc = self.cur_pc;
        self.region.push(inst);
        dst
    }

    fn store(&mut self, addr: VReg, val: VReg, width: Width) {
        let mut inst = Inst::new(IrOp::Store { width }, None, vec![addr, val]);
        inst.seq = self.next_seq();
        inst.guest_pc = self.cur_pc;
        self.region.push(inst);
    }

    fn loadf(&mut self, addr: VReg) -> VReg {
        let dst = self.region.new_vreg(RegClass::Fp);
        let mut inst = Inst::new(IrOp::LoadF, Some(dst), vec![addr]);
        inst.seq = self.next_seq();
        inst.guest_pc = self.cur_pc;
        self.region.push(inst);
        dst
    }

    fn storef(&mut self, addr: VReg, val: VReg) {
        let mut inst = Inst::new(IrOp::StoreF, None, vec![addr, val]);
        inst.seq = self.next_seq();
        inst.guest_pc = self.cur_pc;
        self.region.push(inst);
    }

    /// Effective address of a guest memory operand.
    fn ea(&mut self, a: &Addr) -> VReg {
        let mut cur: Option<VReg> = a.base.map(|b| self.gpr(b));
        if let Some(ix) = a.index {
            let ixv = self.gpr(ix);
            let scaled = if a.scale.shift() == 0 {
                ixv
            } else {
                self.alu_ci(HAluOp::Shl, ixv, a.scale.shift())
            };
            cur = Some(match cur {
                Some(c) => self.alu(HAluOp::Add, c, scaled),
                None => scaled,
            });
        }
        match (cur, a.disp) {
            (Some(c), 0) => c,
            (Some(c), d) => self.alu_ci(HAluOp::Add, c, d as u32),
            (None, d) => self.ci(d as u32),
        }
    }

    // -- flags ---------------------------------------------------------------

    fn set_flags(&mut self, state: FlagState) {
        if self.strict_flags {
            let mat = self.materialize_flags(&state);
            self.flag_state = FlagState::Mat(mat);
        } else {
            self.flag_state = state;
        }
    }

    fn materialize_flags(&mut self, state: &FlagState) -> [VReg; 5] {
        [
            self.flag_from(state.clone(), CF),
            self.flag_from(state.clone(), ZF),
            self.flag_from(state.clone(), SF),
            self.flag_from(state.clone(), OF),
            self.flag_from(state.clone(), PF),
        ]
    }

    fn get_flag(&mut self, bit: usize) -> VReg {
        let st = self.flag_state.clone();
        self.flag_from(st, bit)
    }

    fn flag_from(&mut self, state: FlagState, bit: usize) -> VReg {
        match state {
            FlagState::Entry => self.entry_flag(bit),
            FlagState::Mat(f) => f[bit],
            FlagState::Deferred { kind, a, b } => self.flag_from_desc(kind, a, b, bit),
            FlagState::IncDec { inc, a, prev } => {
                if bit == CF {
                    self.flag_from(*prev, CF)
                } else {
                    let one = self.ci(1);
                    let r = if inc {
                        self.alu(HAluOp::Add, a, one)
                    } else {
                        self.alu(HAluOp::Sub, a, one)
                    };
                    match bit {
                        ZF => self.alu_ci(HAluOp::Seq, r, 0),
                        SF => self.alu_ci(HAluOp::Shr, r, 31),
                        PF => self.emit_i(IrOp::Alu(HAluOp::Parity), vec![r]),
                        OF => {
                            let lim = if inc { 0x7FFF_FFFF } else { 0x8000_0000 };
                            self.alu_ci(HAluOp::Seq, a, lim)
                        }
                        _ => unreachable!(),
                    }
                }
            }
            FlagState::AdcSbb { add, a, b, cin } => {
                // r and carries computed per the architectural formulas.
                let t = if add {
                    self.alu(HAluOp::Add, a, b)
                } else {
                    self.alu(HAluOp::Sub, a, b)
                };
                let r = if add {
                    self.alu(HAluOp::Add, t, cin)
                } else {
                    self.alu(HAluOp::Sub, t, cin)
                };
                match bit {
                    CF => {
                        if add {
                            let c1 = self.alu(HAluOp::SltU, t, a);
                            let c2 = self.alu(HAluOp::SltU, r, t);
                            self.alu(HAluOp::Or, c1, c2)
                        } else {
                            // a < b + cin (u64) = (a<b) | ((a==b) & cin)
                            let lt = self.alu(HAluOp::SltU, a, b);
                            let eq = self.alu(HAluOp::Seq, a, b);
                            let e2 = self.alu(HAluOp::And, eq, cin);
                            self.alu(HAluOp::Or, lt, e2)
                        }
                    }
                    ZF => self.alu_ci(HAluOp::Seq, r, 0),
                    SF => self.alu_ci(HAluOp::Shr, r, 31),
                    PF => self.emit_i(IrOp::Alu(HAluOp::Parity), vec![r]),
                    OF => {
                        let (x, y) = if add {
                            let xa = self.alu(HAluOp::Xor, a, r);
                            let xb = self.alu(HAluOp::Xor, b, r);
                            (xa, xb)
                        } else {
                            let xa = self.alu(HAluOp::Xor, a, b);
                            let xb = self.alu(HAluOp::Xor, a, r);
                            (xa, xb)
                        };
                        let m = self.alu(HAluOp::And, x, y);
                        self.alu_ci(HAluOp::Shr, m, 31)
                    }
                    _ => unreachable!(),
                }
            }
            FlagState::Fcmp { a, b } => {
                let u = self.emit_i(IrOp::FCmp(FCmpOp::Unord), vec![a, b]);
                match bit {
                    CF => {
                        let lt = self.emit_i(IrOp::FCmp(FCmpOp::Lt), vec![a, b]);
                        self.alu(HAluOp::Or, lt, u)
                    }
                    ZF => {
                        let eq = self.emit_i(IrOp::FCmp(FCmpOp::Eq), vec![a, b]);
                        self.alu(HAluOp::Or, eq, u)
                    }
                    PF => u,
                    SF | OF => self.ci(0),
                    _ => unreachable!(),
                }
            }
        }
    }

    fn flag_from_desc(&mut self, kind: FlagsKind, a: VReg, b: VReg, bit: usize) -> VReg {
        match kind {
            FlagsKind::Sub => match bit {
                CF => self.alu(HAluOp::SltU, a, b),
                ZF => self.alu(HAluOp::Seq, a, b),
                SF => {
                    let r = self.alu(HAluOp::Sub, a, b);
                    self.alu_ci(HAluOp::Shr, r, 31)
                }
                OF => {
                    let r = self.alu(HAluOp::Sub, a, b);
                    let x = self.alu(HAluOp::Xor, a, b);
                    let y = self.alu(HAluOp::Xor, a, r);
                    let m = self.alu(HAluOp::And, x, y);
                    self.alu_ci(HAluOp::Shr, m, 31)
                }
                PF => {
                    let r = self.alu(HAluOp::Sub, a, b);
                    self.emit_i(IrOp::Alu(HAluOp::Parity), vec![r])
                }
                _ => unreachable!(),
            },
            FlagsKind::Add => {
                let r = self.alu(HAluOp::Add, a, b);
                match bit {
                    CF => self.alu(HAluOp::SltU, r, a),
                    ZF => self.alu_ci(HAluOp::Seq, r, 0),
                    SF => self.alu_ci(HAluOp::Shr, r, 31),
                    OF => {
                        let x = self.alu(HAluOp::Xor, a, r);
                        let y = self.alu(HAluOp::Xor, b, r);
                        let m = self.alu(HAluOp::And, x, y);
                        self.alu_ci(HAluOp::Shr, m, 31)
                    }
                    PF => self.emit_i(IrOp::Alu(HAluOp::Parity), vec![r]),
                    _ => unreachable!(),
                }
            }
            FlagsKind::Logic => match bit {
                CF | OF => self.ci(0),
                ZF => self.alu_ci(HAluOp::Seq, a, 0),
                SF => self.alu_ci(HAluOp::Shr, a, 31),
                PF => self.emit_i(IrOp::Alu(HAluOp::Parity), vec![a]),
                _ => unreachable!(),
            },
            FlagsKind::Imul => {
                let r = self.alu(HAluOp::Mul, a, b);
                match bit {
                    CF | OF => {
                        let hi = self.alu(HAluOp::MulHS, a, b);
                        let sx = self.alu_ci(HAluOp::Sar, r, 31);
                        self.alu(HAluOp::Sne, hi, sx)
                    }
                    ZF => self.alu_ci(HAluOp::Seq, r, 0),
                    SF => self.alu_ci(HAluOp::Shr, r, 31),
                    PF => self.emit_i(IrOp::Alu(HAluOp::Parity), vec![r]),
                    _ => unreachable!(),
                }
            }
            FlagsKind::Shl | FlagsKind::Shr | FlagsKind::Sar => {
                // `b` is a constant vreg holding the (non-zero) amount; we
                // regenerate the shifted result for result flags.
                let op = match kind {
                    FlagsKind::Shl => HAluOp::Shl,
                    FlagsKind::Shr => HAluOp::Shr,
                    _ => HAluOp::Sar,
                };
                let r = self.alu(op, a, b);
                match bit {
                    CF => match kind {
                        FlagsKind::Shl => {
                            let c32 = self.ci(32);
                            let sh = self.alu(HAluOp::Sub, c32, b);
                            let x = self.alu(HAluOp::Shr, a, sh);
                            self.alu_ci(HAluOp::And, x, 1)
                        }
                        _ => {
                            let one = self.ci(1);
                            let am1 = self.alu(HAluOp::Sub, b, one);
                            let x = self.alu(HAluOp::Shr, a, am1);
                            self.alu(HAluOp::And, x, one)
                        }
                    },
                    OF => self.ci(0),
                    ZF => self.alu_ci(HAluOp::Seq, r, 0),
                    SF => self.alu_ci(HAluOp::Shr, r, 31),
                    PF => self.emit_i(IrOp::Alu(HAluOp::Parity), vec![r]),
                    _ => unreachable!(),
                }
            }
            FlagsKind::Inc | FlagsKind::Dec => {
                unreachable!("Inc/Dec handled via FlagState::IncDec")
            }
        }
    }

    /// Evaluates condition code `cc` to a 0/1 vreg, using fused fast paths
    /// when the current flag state allows (the key to the paper's low
    /// branch emulation cost).
    pub fn eval_cond(&mut self, cc: Cond) -> VReg {
        // Fast path: flags from a subtraction/compare.
        if let FlagState::Deferred { kind: FlagsKind::Sub, a, b } = self.flag_state {
            let fused = match cc {
                Cond::E => Some(self.alu(HAluOp::Seq, a, b)),
                Cond::Ne => Some(self.alu(HAluOp::Sne, a, b)),
                Cond::B => Some(self.alu(HAluOp::SltU, a, b)),
                Cond::Ae => Some(self.alu(HAluOp::SleU, b, a)),
                Cond::Be => Some(self.alu(HAluOp::SleU, a, b)),
                Cond::A => Some(self.alu(HAluOp::SltU, b, a)),
                Cond::L => Some(self.alu(HAluOp::SltS, a, b)),
                Cond::Ge => Some(self.alu(HAluOp::SleS, b, a)),
                Cond::Le => Some(self.alu(HAluOp::SleS, a, b)),
                Cond::G => Some(self.alu(HAluOp::SltS, b, a)),
                _ => None,
            };
            if let Some(v) = fused {
                return v;
            }
        }
        // Fast path: flags from a logic result.
        if let FlagState::Deferred { kind: FlagsKind::Logic, a, .. } = self.flag_state {
            let fused = match cc {
                Cond::E => Some(self.alu_ci(HAluOp::Seq, a, 0)),
                Cond::Ne => Some(self.alu_ci(HAluOp::Sne, a, 0)),
                Cond::S => Some(self.alu_ci(HAluOp::Shr, a, 31)),
                Cond::B => Some(self.ci(0)), // CF = 0
                Cond::Ae => Some(self.ci(1)),
                _ => None,
            };
            if let Some(v) = fused {
                return v;
            }
        }
        // Generic: combine materialized flags.
        let one = self.ci(1);
        match cc {
            Cond::O => self.get_flag(OF),
            Cond::No => {
                let f = self.get_flag(OF);
                self.alu(HAluOp::Xor, f, one)
            }
            Cond::B => self.get_flag(CF),
            Cond::Ae => {
                let f = self.get_flag(CF);
                self.alu(HAluOp::Xor, f, one)
            }
            Cond::E => self.get_flag(ZF),
            Cond::Ne => {
                let f = self.get_flag(ZF);
                self.alu(HAluOp::Xor, f, one)
            }
            Cond::Be => {
                let c = self.get_flag(CF);
                let z = self.get_flag(ZF);
                self.alu(HAluOp::Or, c, z)
            }
            Cond::A => {
                let c = self.get_flag(CF);
                let z = self.get_flag(ZF);
                let o = self.alu(HAluOp::Or, c, z);
                self.alu(HAluOp::Xor, o, one)
            }
            Cond::S => self.get_flag(SF),
            Cond::Ns => {
                let f = self.get_flag(SF);
                self.alu(HAluOp::Xor, f, one)
            }
            Cond::P => self.get_flag(PF),
            Cond::Np => {
                let f = self.get_flag(PF);
                self.alu(HAluOp::Xor, f, one)
            }
            Cond::L => {
                let s = self.get_flag(SF);
                let o = self.get_flag(OF);
                self.alu(HAluOp::Xor, s, o)
            }
            Cond::Ge => {
                let s = self.get_flag(SF);
                let o = self.get_flag(OF);
                let x = self.alu(HAluOp::Xor, s, o);
                self.alu(HAluOp::Xor, x, one)
            }
            Cond::Le => {
                let s = self.get_flag(SF);
                let o = self.get_flag(OF);
                let x = self.alu(HAluOp::Xor, s, o);
                let z = self.get_flag(ZF);
                self.alu(HAluOp::Or, x, z)
            }
            Cond::G => {
                let s = self.get_flag(SF);
                let o = self.get_flag(OF);
                let x = self.alu(HAluOp::Xor, s, o);
                let z = self.get_flag(ZF);
                let le = self.alu(HAluOp::Or, x, z);
                self.alu(HAluOp::Xor, le, one)
            }
        }
    }

    // -- exits ----------------------------------------------------------------

    /// Builds an exit descriptor capturing the current guest-state
    /// mapping, flag state and retired-instruction count.
    pub fn exit_desc(&mut self, kind: ExitKind) -> ExitDesc {
        let mut e = ExitDesc::new(kind);
        e.gcnt = self.gcnt.min(u16::MAX as u32) as u16;
        for i in 0..8 {
            // Only publish values that changed since entry.
            if self.gprs[i].is_some() && self.gprs[i] != self.region.entry.gprs[i] {
                e.gprs[i] = self.gprs[i];
            }
            if self.fprs[i].is_some() && self.fprs[i] != self.region.entry.fprs[i] {
                e.fprs[i] = self.fprs[i];
            }
        }
        match self.flag_state.clone() {
            FlagState::Entry => {}
            FlagState::Deferred { kind, a, b } => e.deferred = Some((kind, a, b)),
            FlagState::IncDec { inc, a, prev } => {
                e.flags[CF] = Some(self.flag_from(*prev, CF));
                e.deferred = Some((if inc { FlagsKind::Inc } else { FlagsKind::Dec }, a, a));
            }
            st @ (FlagState::AdcSbb { .. } | FlagState::Fcmp { .. }) => {
                let f = self.materialize_flags(&st);
                for (i, v) in f.into_iter().enumerate() {
                    e.flags[i] = Some(v);
                }
            }
            FlagState::Mat(f) => {
                for (i, v) in f.into_iter().enumerate() {
                    e.flags[i] = Some(v);
                }
            }
        }
        e
    }

    /// Adds an exit and returns its index.
    pub fn push_exit(&mut self, e: ExitDesc) -> usize {
        self.region.exits.push(e);
        self.region.exits.len() - 1
    }

    /// Emits a conditional side exit.
    pub fn exit_if(&mut self, cond: VReg, exit: usize) {
        let mut inst = Inst::new(IrOp::ExitIf { exit }, None, vec![cond]);
        inst.guest_pc = self.cur_pc;
        self.region.push(inst);
    }

    /// Emits the terminal exit.
    pub fn exit_always(&mut self, exit: usize) {
        let mut inst = Inst::new(IrOp::ExitAlways { exit }, None, vec![]);
        inst.guest_pc = self.cur_pc;
        self.region.push(inst);
    }

    /// Emits an assert (speculated branch direction check).
    pub fn assert(&mut self, cond: VReg, expect_nz: bool) {
        let mut inst = Inst::new(IrOp::Assert { expect_nz }, None, vec![cond]);
        inst.guest_pc = self.cur_pc;
        // Asserts take a program-order sequence number like memory ops do:
        // the DDG keeps stores below earlier asserts (a store must not
        // retire on a failing speculative path) and the verifier checks
        // the ordering by comparing `seq` against instruction indices.
        inst.seq = self.next_seq();
        self.region.push(inst);
    }

    // -- instruction translation ----------------------------------------------

    /// Translates one (non-terminating, non-excluded) guest instruction.
    ///
    /// # Panics
    /// Panics on excluded or block-ending instructions (callers filter).
    pub fn translate_insn(&mut self, d: &DecodedInsn) {
        use darco_guest::Gpr;
        assert!(!excluded_from_translation(&d.insn), "excluded insn reached translator");
        self.cur_pc = d.pc;
        self.gcnt += 1;
        match d.insn {
            Insn::MovRR { dst, src } => {
                let v = self.gpr(src);
                self.set_gpr(dst, v);
            }
            Insn::MovRI { dst, imm } => {
                let v = self.ci(imm as u32);
                self.set_gpr(dst, v);
            }
            Insn::Load { dst, addr, width, sign } => {
                let a = self.ea(&addr);
                let v = self.load(a, width, sign);
                self.set_gpr(dst, v);
            }
            Insn::Store { addr, src, width } => {
                let a = self.ea(&addr);
                let v = self.gpr(src);
                self.store(a, v, width);
            }
            Insn::StoreI { addr, imm, width } => {
                let a = self.ea(&addr);
                let v = self.ci(imm as u32);
                self.store(a, v, width);
            }
            Insn::Lea { dst, addr } => {
                let a = self.ea(&addr);
                self.set_gpr(dst, a);
            }
            Insn::Xchg { a, b } => {
                let va = self.gpr(a);
                let vb = self.gpr(b);
                self.set_gpr(a, vb);
                self.set_gpr(b, va);
            }
            Insn::Cmov { cc, dst, src } => {
                let c = self.eval_cond(cc);
                let zero = self.ci(0);
                let mask = self.alu(HAluOp::Sub, zero, c);
                let nmask = self.alu_ci(HAluOp::Xor, mask, u32::MAX);
                let vs = self.gpr(src);
                let vd = self.gpr(dst);
                let t1 = self.alu(HAluOp::And, vs, mask);
                let t2 = self.alu(HAluOp::And, vd, nmask);
                let r = self.alu(HAluOp::Or, t1, t2);
                self.set_gpr(dst, r);
            }
            Insn::Setcc { cc, dst } => {
                let c = self.eval_cond(cc);
                self.set_gpr(dst, c);
            }
            Insn::Push { src } => {
                let v = self.gpr(src);
                self.push_value(v);
            }
            Insn::PushI { imm } => {
                let v = self.ci(imm as u32);
                self.push_value(v);
            }
            Insn::Pop { dst } => {
                let sp = self.gpr(Gpr::Esp);
                let v = self.load(sp, Width::D, false);
                let sp2 = self.alu_ci(HAluOp::Add, sp, 4);
                self.set_gpr(Gpr::Esp, sp2);
                self.set_gpr(dst, v);
            }
            Insn::AluRR { op, dst, src } => {
                let a = self.gpr(dst);
                let b = self.gpr(src);
                let r = self.guest_alu(op, a, b);
                self.set_gpr(dst, r);
            }
            Insn::AluRI { op, dst, imm } => {
                let a = self.gpr(dst);
                let b = self.ci(imm as u32);
                let r = self.guest_alu(op, a, b);
                self.set_gpr(dst, r);
            }
            Insn::AluRM { op, dst, addr } => {
                let ea = self.ea(&addr);
                let m = self.load(ea, Width::D, false);
                let a = self.gpr(dst);
                let r = self.guest_alu(op, a, m);
                self.set_gpr(dst, r);
            }
            Insn::AluMR { op, addr, src } => {
                let ea = self.ea(&addr);
                let m = self.load(ea, Width::D, false);
                let b = self.gpr(src);
                let r = self.guest_alu(op, m, b);
                self.store(ea, r, Width::D);
            }
            Insn::AluMI { op, addr, imm } => {
                let ea = self.ea(&addr);
                let m = self.load(ea, Width::D, false);
                let b = self.ci(imm as u32);
                let r = self.guest_alu(op, m, b);
                self.store(ea, r, Width::D);
            }
            Insn::CmpRR { a, b } => {
                let va = self.gpr(a);
                let vb = self.gpr(b);
                self.set_flags(FlagState::Deferred { kind: FlagsKind::Sub, a: va, b: vb });
            }
            Insn::CmpRI { a, imm } => {
                let va = self.gpr(a);
                let vb = self.ci(imm as u32);
                self.set_flags(FlagState::Deferred { kind: FlagsKind::Sub, a: va, b: vb });
            }
            Insn::CmpRM { a, addr } => {
                let ea = self.ea(&addr);
                let m = self.load(ea, Width::D, false);
                let va = self.gpr(a);
                self.set_flags(FlagState::Deferred { kind: FlagsKind::Sub, a: va, b: m });
            }
            Insn::TestRR { a, b } => {
                let va = self.gpr(a);
                let vb = self.gpr(b);
                let r = self.alu(HAluOp::And, va, vb);
                self.set_flags(FlagState::Deferred { kind: FlagsKind::Logic, a: r, b: r });
            }
            Insn::TestRI { a, imm } => {
                let va = self.gpr(a);
                let r = self.alu_ci(HAluOp::And, va, imm as u32);
                self.set_flags(FlagState::Deferred { kind: FlagsKind::Logic, a: r, b: r });
            }
            Insn::Unary { op, dst } => {
                let a = self.gpr(dst);
                let r = self.guest_unary(op, a);
                self.set_gpr(dst, r);
            }
            Insn::UnaryM { op, addr, width } => {
                let ea = self.ea(&addr);
                let m = self.load(ea, width, false);
                let r = self.guest_unary(op, m);
                self.store(ea, r, width);
            }
            Insn::Shift { op, dst, amount } => {
                let amt = match amount {
                    ShiftAmount::Imm(n) => n as u32 & 31,
                    ShiftAmount::Cl => unreachable!("CL shifts are excluded"),
                };
                if amt == 0 {
                    return; // no result change, no flag change
                }
                let a = self.gpr(dst);
                let (hop, fk) = match op {
                    ShiftOp::Shl => (HAluOp::Shl, FlagsKind::Shl),
                    ShiftOp::Shr => (HAluOp::Shr, FlagsKind::Shr),
                    ShiftOp::Sar => (HAluOp::Sar, FlagsKind::Sar),
                    ShiftOp::Rol | ShiftOp::Ror => unreachable!("rotates are excluded"),
                };
                let amtv = self.ci(amt);
                let r = self.alu(hop, a, amtv);
                self.set_gpr(dst, r);
                self.set_flags(FlagState::Deferred { kind: fk, a, b: amtv });
            }
            Insn::Imul { dst, src } => {
                let a = self.gpr(dst);
                let b = self.gpr(src);
                let r = self.alu(HAluOp::Mul, a, b);
                self.set_gpr(dst, r);
                self.set_flags(FlagState::Deferred { kind: FlagsKind::Imul, a, b });
            }
            Insn::ImulI { dst, src, imm } => {
                let a = self.gpr(src);
                let b = self.ci(imm as u32);
                let r = self.alu(HAluOp::Mul, a, b);
                self.set_gpr(dst, r);
                self.set_flags(FlagState::Deferred { kind: FlagsKind::Imul, a, b });
            }
            Insn::Idiv { dst, src } => {
                let a = self.gpr(dst);
                let b = self.gpr(src);
                let r = self.alu(HAluOp::Div, a, b);
                self.set_gpr(dst, r);
            }
            Insn::Irem { dst, src } => {
                let a = self.gpr(dst);
                let b = self.gpr(src);
                let r = self.alu(HAluOp::Rem, a, b);
                self.set_gpr(dst, r);
            }
            Insn::Movs { width, rep: false } => {
                use darco_guest::Gpr::{Edi, Esi};
                let esi = self.gpr(Esi);
                let edi = self.gpr(Edi);
                let v = self.load(esi, width, false);
                self.store(edi, v, width);
                let w = width.bytes();
                let esi2 = self.alu_ci(HAluOp::Add, esi, w);
                let edi2 = self.alu_ci(HAluOp::Add, edi, w);
                self.set_gpr(Esi, esi2);
                self.set_gpr(Edi, edi2);
            }
            Insn::Stos { width, rep: false } => {
                use darco_guest::Gpr::{Eax, Edi};
                let edi = self.gpr(Edi);
                let v = self.gpr(Eax);
                self.store(edi, v, width);
                let edi2 = self.alu_ci(HAluOp::Add, edi, width.bytes());
                self.set_gpr(Edi, edi2);
            }
            Insn::Lods { width, rep: false } => {
                use darco_guest::Gpr::{Eax, Esi};
                let esi = self.gpr(Esi);
                let v = self.load(esi, width, false);
                let esi2 = self.alu_ci(HAluOp::Add, esi, width.bytes());
                self.set_gpr(Esi, esi2);
                self.set_gpr(Eax, v);
            }
            Insn::Scas { width, rep: None } => {
                use darco_guest::Gpr::{Eax, Edi};
                let edi = self.gpr(Edi);
                let m = self.load(edi, width, false);
                let eax = self.gpr(Eax);
                let a = match width {
                    Width::D => eax,
                    Width::W => self.alu_ci(HAluOp::And, eax, 0xFFFF),
                    Width::B => self.alu_ci(HAluOp::And, eax, 0xFF),
                };
                self.set_flags(FlagState::Deferred { kind: FlagsKind::Sub, a, b: m });
                let edi2 = self.alu_ci(HAluOp::Add, edi, width.bytes());
                self.set_gpr(Edi, edi2);
            }
            Insn::Cmps { width, rep: None } => {
                use darco_guest::Gpr::{Edi, Esi};
                let esi = self.gpr(Esi);
                let edi = self.gpr(Edi);
                let a = self.load(esi, width, false);
                let b = self.load(edi, width, false);
                self.set_flags(FlagState::Deferred { kind: FlagsKind::Sub, a, b });
                let w = width.bytes();
                let esi2 = self.alu_ci(HAluOp::Add, esi, w);
                let edi2 = self.alu_ci(HAluOp::Add, edi, w);
                self.set_gpr(Esi, esi2);
                self.set_gpr(Edi, edi2);
            }
            Insn::Movs { .. }
            | Insn::Stos { .. }
            | Insn::Lods { .. }
            | Insn::Scas { .. }
            | Insn::Cmps { .. } => unreachable!("REP strings are excluded"),
            Insn::Fld { dst, addr } => {
                let ea = self.ea(&addr);
                let v = self.loadf(ea);
                self.set_fpr(dst, v);
            }
            Insn::Fst { addr, src } => {
                let ea = self.ea(&addr);
                let v = self.fpr(src);
                self.storef(ea, v);
            }
            Insn::FldI { dst, bits } => {
                let v = self.cfp(bits);
                self.set_fpr(dst, v);
            }
            Insn::FmovRR { dst, src } => {
                let v = self.fpr(src);
                self.set_fpr(dst, v);
            }
            Insn::Fbin { op, dst, src } => {
                let a = self.fpr(dst);
                let b = self.fpr(src);
                let r = self.emit_f(IrOp::FAlu(fbin_host(op)), vec![a, b]);
                self.set_fpr(dst, r);
            }
            Insn::FbinM { op, dst, addr } => {
                let ea = self.ea(&addr);
                let b = self.loadf(ea);
                let a = self.fpr(dst);
                let r = self.emit_f(IrOp::FAlu(fbin_host(op)), vec![a, b]);
                self.set_fpr(dst, r);
            }
            Insn::Funary { op, dst } => {
                let a = self.fpr(dst);
                let r = match op {
                    darco_guest::FUnOp::Sqrt => self.emit_f(IrOp::FUn(FUnOp2::Sqrt), vec![a]),
                    darco_guest::FUnOp::Abs => self.emit_f(IrOp::FUn(FUnOp2::Abs), vec![a]),
                    darco_guest::FUnOp::Neg => self.emit_f(IrOp::FUn(FUnOp2::Neg), vec![a]),
                    darco_guest::FUnOp::Sin => self.emit_f(IrOp::FSin, vec![a]),
                    darco_guest::FUnOp::Cos => self.emit_f(IrOp::FCos, vec![a]),
                };
                self.set_fpr(dst, r);
            }
            Insn::Fcmp { a, b } => {
                let va = self.fpr(a);
                let vb = self.fpr(b);
                self.set_flags(FlagState::Fcmp { a: va, b: vb });
            }
            Insn::Cvtsi2f { dst, src } => {
                let a = self.gpr(src);
                let r = self.emit_f(IrOp::CvtIF, vec![a]);
                self.set_fpr(dst, r);
            }
            Insn::Cvtf2si { dst, src } => {
                let a = self.fpr(src);
                let r = self.emit_i(IrOp::CvtFI, vec![a]);
                self.set_gpr(dst, r);
            }
            Insn::Nop => {}
            Insn::Jmp { .. }
            | Insn::Jcc { .. }
            | Insn::JmpInd { .. }
            | Insn::Call { .. }
            | Insn::CallInd { .. }
            | Insn::Ret
            | Insn::Syscall
            | Insn::Halt => unreachable!("terminators are handled by region construction"),
        }
    }

    fn push_value(&mut self, v: VReg) {
        use darco_guest::Gpr::Esp;
        let sp = self.gpr(Esp);
        let sp2 = self.alu_ci(HAluOp::Sub, sp, 4);
        self.store(sp2, v, Width::D);
        self.set_gpr(Esp, sp2);
    }

    fn guest_alu(&mut self, op: AluOp, a: VReg, b: VReg) -> VReg {
        match op {
            AluOp::Add => {
                let r = self.alu(HAluOp::Add, a, b);
                self.set_flags(FlagState::Deferred { kind: FlagsKind::Add, a, b });
                r
            }
            AluOp::Sub => {
                let r = self.alu(HAluOp::Sub, a, b);
                self.set_flags(FlagState::Deferred { kind: FlagsKind::Sub, a, b });
                r
            }
            AluOp::Adc => {
                let cin = self.get_flag(CF);
                let t = self.alu(HAluOp::Add, a, b);
                let r = self.alu(HAluOp::Add, t, cin);
                self.set_flags(FlagState::AdcSbb { add: true, a, b, cin });
                r
            }
            AluOp::Sbb => {
                let cin = self.get_flag(CF);
                let t = self.alu(HAluOp::Sub, a, b);
                let r = self.alu(HAluOp::Sub, t, cin);
                self.set_flags(FlagState::AdcSbb { add: false, a, b, cin });
                r
            }
            AluOp::And => {
                let r = self.alu(HAluOp::And, a, b);
                self.set_flags(FlagState::Deferred { kind: FlagsKind::Logic, a: r, b: r });
                r
            }
            AluOp::Or => {
                let r = self.alu(HAluOp::Or, a, b);
                self.set_flags(FlagState::Deferred { kind: FlagsKind::Logic, a: r, b: r });
                r
            }
            AluOp::Xor => {
                let r = self.alu(HAluOp::Xor, a, b);
                self.set_flags(FlagState::Deferred { kind: FlagsKind::Logic, a: r, b: r });
                r
            }
        }
    }

    fn guest_unary(&mut self, op: UnaryOp, a: VReg) -> VReg {
        match op {
            UnaryOp::Inc => {
                let r = self.alu_ci(HAluOp::Add, a, 1);
                let prev = std::mem::replace(&mut self.flag_state, FlagState::Entry);
                self.set_flags(FlagState::IncDec { inc: true, a, prev: Box::new(prev) });
                r
            }
            UnaryOp::Dec => {
                let r = self.alu_ci(HAluOp::Sub, a, 1);
                let prev = std::mem::replace(&mut self.flag_state, FlagState::Entry);
                self.set_flags(FlagState::IncDec { inc: false, a, prev: Box::new(prev) });
                r
            }
            UnaryOp::Not => self.alu_ci(HAluOp::Xor, a, u32::MAX),
            UnaryOp::Neg => {
                let zero = self.ci(0);
                let r = self.alu(HAluOp::Sub, zero, a);
                self.set_flags(FlagState::Deferred { kind: FlagsKind::Sub, a: zero, b: a });
                r
            }
        }
    }
}

fn fbin_host(op: darco_guest::FBinOp) -> FAluOp {
    match op {
        darco_guest::FBinOp::Add => FAluOp::Add,
        darco_guest::FBinOp::Sub => FAluOp::Sub,
        darco_guest::FBinOp::Mul => FAluOp::Mul,
        darco_guest::FBinOp::Div => FAluOp::Div,
        darco_guest::FBinOp::Min => FAluOp::Min,
        darco_guest::FBinOp::Max => FAluOp::Max,
    }
}

// ---------------------------------------------------------------------------

/// Per-block edge-profiling counter indices allocated by the TOL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeCounters {
    /// Counter bumped on the taken exit.
    pub taken: u32,
    /// Counter bumped on the fallthrough exit.
    pub fall: u32,
}

/// Builds a BBM region for one basic block (paper §V-B2).
pub fn build_bb_region(
    plan: &BlockPlan,
    edge_counters: Option<EdgeCounters>,
    strict_flags: bool,
) -> Region {
    let mut b = RegionBuilder::new(plan.pc, strict_flags);
    for d in &plan.body {
        b.translate_insn(d);
    }
    finish_terminal(&mut b, plan, edge_counters);
    b.region
}

/// Emits the terminal exits for a block's terminator (used by both BBM
/// regions and the final block of a superblock).
pub fn finish_terminal(
    b: &mut RegionBuilder,
    plan: &BlockPlan,
    edge_counters: Option<EdgeCounters>,
) {
    use darco_guest::Gpr;
    match plan.term_kind {
        TermKind::Jcc { cc, target, fall } => {
            b.cur_pc = plan.term.unwrap().pc;
            b.gcnt += 1;
            let cond = b.eval_cond(cc);
            let mut taken = b.exit_desc(ExitKind::Jump { target });
            taken.count_idx = edge_counters.map(|e| e.taken);
            let taken_idx = b.push_exit(taken);
            b.exit_if(cond, taken_idx);
            let mut fallthrough = b.exit_desc(ExitKind::Jump { target: fall });
            fallthrough.count_idx = edge_counters.map(|e| e.fall);
            let fall_idx = b.push_exit(fallthrough);
            b.exit_always(fall_idx);
        }
        TermKind::Jmp { target } => {
            b.cur_pc = plan.term.unwrap().pc;
            b.gcnt += 1;
            let e = b.exit_desc(ExitKind::Jump { target });
            let idx = b.push_exit(e);
            b.exit_always(idx);
        }
        TermKind::Call { target, ret } => {
            b.cur_pc = plan.term.unwrap().pc;
            b.gcnt += 1;
            let retv = b.ci(ret);
            b.push_value(retv);
            let e = b.exit_desc(ExitKind::Jump { target });
            let idx = b.push_exit(e);
            b.exit_always(idx);
        }
        TermKind::Indirect => {
            let term = plan.term.unwrap();
            b.cur_pc = term.pc;
            b.gcnt += 1;
            let target = match term.insn {
                Insn::JmpInd { target } => b.gpr(target),
                Insn::CallInd { target } => {
                    let t = b.gpr(target);
                    let retv = b.ci(after_of(&term));
                    b.push_value(retv);
                    t
                }
                Insn::Ret => {
                    let sp = b.gpr(Gpr::Esp);
                    let v = b.load(sp, Width::D, false);
                    let sp2 = b.alu_ci(HAluOp::Add, sp, 4);
                    b.set_gpr(Gpr::Esp, sp2);
                    v
                }
                other => unreachable!("not an indirect terminator: {other:?}"),
            };
            let mut e = b.exit_desc(ExitKind::Indirect);
            e.indirect_target = Some(target);
            let idx = b.push_exit(e);
            b.exit_always(idx);
        }
        TermKind::Syscall { pc } => {
            let e = b.exit_desc(ExitKind::Syscall { pc });
            let idx = b.push_exit(e);
            b.exit_always(idx);
        }
        TermKind::Halt => {
            let e = b.exit_desc(ExitKind::Halt);
            let idx = b.push_exit(e);
            b.exit_always(idx);
        }
        TermKind::Split { next } => {
            let e = b.exit_desc(ExitKind::Jump { target: next });
            let idx = b.push_exit(e);
            b.exit_always(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_guest::program::DEFAULT_CODE_BASE;
    use darco_guest::{Asm, Gpr};

    fn decode_first(build: impl FnOnce(&mut Asm)) -> (BlockPlan, GuestMem) {
        let mut a = Asm::new(DEFAULT_CODE_BASE);
        build(&mut a);
        let p = a.into_program();
        let mut mem = GuestMem::new();
        p.map_into(&mut mem);
        (decode_block(&mem, DEFAULT_CODE_BASE).unwrap(), mem)
    }

    #[test]
    fn decode_classifies_terminators() {
        let (p, _) = decode_first(|a| {
            a.mov_ri(Gpr::Eax, 1);
            a.cmp_ri(Gpr::Eax, 2);
            let l = a.here();
            a.jcc_to(Cond::Ne, l);
        });
        assert_eq!(p.body.len(), 2);
        assert!(matches!(p.term_kind, TermKind::Jcc { cc: Cond::Ne, .. }));
        assert!(p.translatable);

        let (p, _) = decode_first(|a| {
            a.syscall();
        });
        assert!(matches!(p.term_kind, TermKind::Syscall { .. }));
        assert!(p.term.is_none());
        assert_eq!(p.retired_insns(), 0);
    }

    #[test]
    fn decode_flags_untranslatable_blocks() {
        let (p, _) = decode_first(|a| {
            a.emit(Insn::Movs { width: Width::B, rep: true });
            a.ret();
        });
        assert!(!p.translatable);
        let (p, _) = decode_first(|a| {
            a.emit(Insn::Shift {
                op: ShiftOp::Shl,
                dst: Gpr::Eax,
                amount: ShiftAmount::Cl,
            });
            a.ret();
        });
        assert!(!p.translatable);
    }

    #[test]
    fn decode_splits_long_blocks() {
        let (p, _) = decode_first(|a| {
            for _ in 0..(MAX_BLOCK_INSNS + 40) {
                a.nop();
            }
            a.ret();
        });
        assert_eq!(p.body.len(), MAX_BLOCK_INSNS);
        assert!(matches!(p.term_kind, TermKind::Split { .. }));
    }

    #[test]
    fn bb_region_for_compare_branch_is_compact() {
        // cmp + jcc must fuse into a single compare host op (plus exits):
        // the paper's low branch emulation cost.
        let (p, _) = decode_first(|a| {
            a.cmp_ri(Gpr::Eax, 10);
            let l = a.here();
            a.jcc_to(Cond::L, l);
        });
        let region = build_bb_region(&p, None, false);
        region.validate();
        // One ConstI + one fused SltS + exits.
        let alus = region
            .insts
            .iter()
            .filter(|i| matches!(i.op, IrOp::Alu(_)))
            .count();
        assert_eq!(alus, 1, "cmp+jl must fuse to one SltS:\n{region}");
        // Exits carry the retired-instruction count (cmp + jcc = 2).
        assert_eq!(region.exits[0].gcnt, 2);
        assert_eq!(region.exits[1].gcnt, 2);
    }

    #[test]
    fn region_publishes_deferred_flags_at_exit() {
        let (p, _) = decode_first(|a| {
            a.alu_ri(AluOp::Add, Gpr::Eax, 7);
            a.ret();
        });
        let region = build_bb_region(&p, None, false);
        region.validate();
        // The terminal (indirect) exit must carry the Add descriptor.
        let exit = &region.exits[0];
        assert!(matches!(exit.deferred, Some((FlagsKind::Add, _, _))));
        assert_eq!(exit.kind, ExitKind::Indirect);
    }

    #[test]
    fn strict_flags_materializes_instead() {
        let (p, _) = decode_first(|a| {
            a.alu_ri(AluOp::Add, Gpr::Eax, 7);
            a.ret();
        });
        let region = build_bb_region(&p, None, true);
        region.validate();
        let exit = &region.exits[0];
        assert!(exit.deferred.is_none());
        assert!(exit.flags.iter().all(|f| f.is_some()), "all five flags materialized");
    }

    #[test]
    fn xchg_is_free_and_swaps_exit_map() {
        let (p, _) = decode_first(|a| {
            a.emit(Insn::Xchg { a: Gpr::Eax, b: Gpr::Ebx });
            a.emit(Insn::Jmp { rel: 0 });
        });
        let region = build_bb_region(&p, None, false);
        region.validate();
        let e = &region.exits[0];
        // eax's exit value is ebx's entry vreg and vice versa.
        assert_eq!(e.gprs[0], region.entry.gprs[3]);
        assert_eq!(e.gprs[3], region.entry.gprs[0]);
    }

    #[test]
    fn call_pushes_return_address() {
        let (p, _) = decode_first(|a| {
            let f = a.label();
            a.call_to(f);
            a.bind(f);
            a.ret();
        });
        assert!(matches!(p.term_kind, TermKind::Call { .. }));
        let region = build_bb_region(&p, None, false);
        region.validate();
        assert!(region.insts.iter().any(|i| i.op.is_store()), "call stores the return pc");
        // ESP changed: published at exit.
        assert!(region.exits[0].gprs[Gpr::Esp.index()].is_some());
    }

    #[test]
    fn edge_counters_attach_to_jcc_exits() {
        let (p, _) = decode_first(|a| {
            a.cmp_ri(Gpr::Ecx, 0);
            let l = a.here();
            a.jcc_to(Cond::Ne, l);
        });
        let region =
            build_bb_region(&p, Some(EdgeCounters { taken: 11, fall: 22 }), false);
        assert_eq!(region.exits[0].count_idx, Some(11));
        assert_eq!(region.exits[1].count_idx, Some(22));
    }
}
