//! TOL overhead accounting — the seven categories of the paper's Fig. 7.
//!
//! TOL in this reproduction is native Rust, so its execution cost is
//! charged through a calibrated cost model: each unit of TOL work costs a
//! fixed number of host instructions (see [`CostModel`]; the constants are
//! engineering estimates of an interpreter dispatch loop, a two-pass block
//! translator, the full superblock optimizer, etc. — see DESIGN.md §1).
//! When the timing simulator is attached, charged instructions are also
//! synthesized into the retired-instruction stream with a representative
//! mix so TOL execution occupies the pipeline and caches, modelling the
//! paper's "interaction between TOL and application" challenge.

use darco_host::sink::{EventKind, InsnSink, RetireEvent};

/// The paper's seven overhead categories (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverheadKind {
    /// Interpreting code before BBM promotion.
    Interpreter,
    /// Translating basic blocks.
    BbTranslator,
    /// Creating, translating and optimizing superblocks.
    SbTranslator,
    /// Entering/leaving the code cache (register file save/restore).
    Prologue,
    /// Checking for and patching translation chains.
    Chaining,
    /// Code cache lookups.
    CacheLookup,
    /// Main-loop control, statistics, initialization.
    Others,
}

/// Per-category accumulated host instructions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Overhead {
    pub interpreter: u64,
    pub bb_translator: u64,
    pub sb_translator: u64,
    pub prologue: u64,
    pub chaining: u64,
    pub cache_lookup: u64,
    pub others: u64,
}

impl Overhead {
    /// Total overhead host instructions.
    pub fn total(&self) -> u64 {
        self.interpreter
            + self.bb_translator
            + self.sb_translator
            + self.prologue
            + self.chaining
            + self.cache_lookup
            + self.others
    }

    /// Per-category values in Fig. 7 order.
    pub fn as_array(&self) -> [(OverheadKind, u64); 7] {
        [
            (OverheadKind::Interpreter, self.interpreter),
            (OverheadKind::BbTranslator, self.bb_translator),
            (OverheadKind::SbTranslator, self.sb_translator),
            (OverheadKind::Prologue, self.prologue),
            (OverheadKind::Chaining, self.chaining),
            (OverheadKind::CacheLookup, self.cache_lookup),
            (OverheadKind::Others, self.others),
        ]
    }

    fn slot(&mut self, kind: OverheadKind) -> &mut u64 {
        match kind {
            OverheadKind::Interpreter => &mut self.interpreter,
            OverheadKind::BbTranslator => &mut self.bb_translator,
            OverheadKind::SbTranslator => &mut self.sb_translator,
            OverheadKind::Prologue => &mut self.prologue,
            OverheadKind::Chaining => &mut self.chaining,
            OverheadKind::CacheLookup => &mut self.cache_lookup,
            OverheadKind::Others => &mut self.others,
        }
    }
}

/// Host-instruction costs of TOL activities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Per interpreted guest instruction (fetch/decode/dispatch/execute).
    pub interp_per_insn: u64,
    /// Per guest instruction translated in BBM (decode, IR build, two
    /// passes, naive allocation, emission).
    pub bb_translate_per_insn: u64,
    /// Per guest instruction translated in SBM (superblock formation, SSA
    /// renaming, four forward passes, DCE, O(n²) memory disambiguation,
    /// scheduling, linear scan, emission).
    pub sb_translate_per_insn: u64,
    /// Per code-cache entry/exit transition (pinned register file load
    /// plus state writeback).
    pub prologue_per_transition: u64,
    /// Per chaining opportunity check.
    pub chain_attempt: u64,
    /// Per successful chain patch (includes IBTC insertion).
    pub chain_patch: u64,
    /// Per code cache lookup.
    pub cache_lookup: u64,
    /// Per TOL main-loop dispatch.
    pub dispatch: u64,
    /// One-time TOL initialization.
    pub init: u64,
    /// Per interpreted basic block (profiling bookkeeping).
    pub profile_block: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            interp_per_insn: 45,
            bb_translate_per_insn: 1000,
            sb_translate_per_insn: 1400,
            prologue_per_transition: 36,
            chain_attempt: 25,
            chain_patch: 15,
            cache_lookup: 20,
            dispatch: 8,
            init: 30_000,
            profile_block: 6,
        }
    }
}

/// Synthetic host PC base for TOL code (used for timing events; far from
/// the code cache so the I-cache sees distinct regions).
const TOL_CODE_PC: u64 = 0x4000_0000;
/// Synthetic data address base for TOL data structures.
const TOL_DATA_ADDR: u32 = 0xF400_0000;

/// Accounting sink: accumulates per-category counts and optionally
/// synthesizes a representative instruction mix into the timing stream.
#[derive(Debug, Default)]
pub struct Accountant {
    /// The per-category totals.
    pub overhead: Overhead,
    /// Whether to synthesize retire events for charged instructions.
    pub synthesize: bool,
    rot: u64,
}

impl Accountant {
    /// Creates an accountant; `synthesize` controls timing-stream
    /// synthesis.
    pub fn new(synthesize: bool) -> Accountant {
        Accountant { overhead: Overhead::default(), synthesize, rot: 0 }
    }

    /// The rotation state driving the synthesized instruction mix.
    /// Checkpoints must carry it: with timing attached, a restored run
    /// replays the same synthetic PC/address/dependence sequence only if
    /// the rotor picks up exactly where the snapshotted run left off.
    pub fn rot(&self) -> u64 {
        self.rot
    }

    /// Restores the rotation state (snapshot-restore counterpart of
    /// [`Accountant::rot`]).
    pub fn set_rot(&mut self, rot: u64) {
        self.rot = rot;
    }

    /// Charges `n` host instructions to `kind`.
    pub fn charge<S: InsnSink>(&mut self, kind: OverheadKind, n: u64, sink: &mut S) {
        *self.overhead.slot(kind) += n;
        if !self.synthesize || n == 0 {
            return;
        }
        // Representative TOL mix: ~45% ALU, 25% loads, 10% stores,
        // 15% branches (75% taken), 5% other.
        let region = kind as u64;
        for _ in 0..n {
            self.rot = self.rot.wrapping_add(0x9E37_79B9);
            let r = self.rot % 100;
            // Small rotating footprints: the TOL's dispatch loop and hot
            // data structures are cache-resident in steady state.
            let pc = TOL_CODE_PC + region * 0x10_0000 + (self.rot >> 8) % 256;
            let addr = TOL_DATA_ADDR
                .wrapping_add((region as u32) << 16)
                .wrapping_add(((self.rot >> 16) % 64) as u32 * 8);
            let kind = if r < 45 {
                EventKind::IntAlu
            } else if r < 70 {
                EventKind::Load { addr, bytes: 4 }
            } else if r < 80 {
                EventKind::Store { addr, bytes: 4 }
            } else if r < 95 {
                EventKind::Branch { taken: !r.is_multiple_of(4), target: pc + 8, cond: true }
            } else {
                EventKind::Other
            };
            // Rotating synthetic dependences: realistic ILP for the core.
            let d = 16 + (self.rot >> 24) as u8 % 8;
            sink.retire(&RetireEvent {
                host_pc: pc,
                kind,
                dst: Some(d),
                srcs: [Some(16 + (d + 1) % 8), None],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_host::sink::{CountingSink, NullSink};

    #[test]
    fn charging_accumulates_per_category() {
        let mut a = Accountant::new(false);
        a.charge(OverheadKind::Interpreter, 100, &mut NullSink);
        a.charge(OverheadKind::Interpreter, 50, &mut NullSink);
        a.charge(OverheadKind::Chaining, 7, &mut NullSink);
        assert_eq!(a.overhead.interpreter, 150);
        assert_eq!(a.overhead.chaining, 7);
        assert_eq!(a.overhead.total(), 157);
    }

    #[test]
    fn synthesis_emits_exactly_n_events() {
        let mut a = Accountant::new(true);
        let mut s = CountingSink::default();
        a.charge(OverheadKind::BbTranslator, 1000, &mut s);
        assert_eq!(s.total, 1000);
        assert!(s.loads > 150 && s.loads < 350, "load share ≈ 25%: {}", s.loads);
        assert!(s.branches > 80 && s.branches < 220, "branch share ≈ 15%");
    }

    #[test]
    fn no_synthesis_when_disabled() {
        let mut a = Accountant::new(false);
        let mut s = CountingSink::default();
        a.charge(OverheadKind::Others, 1000, &mut s);
        assert_eq!(s.total, 0);
        assert_eq!(a.overhead.others, 1000);
    }

    #[test]
    fn as_array_order_matches_figure7() {
        let o = Overhead { interpreter: 1, bb_translator: 2, sb_translator: 3, prologue: 4, chaining: 5, cache_lookup: 6, others: 7 };
        let arr = o.as_array();
        assert_eq!(arr[0], (OverheadKind::Interpreter, 1));
        assert_eq!(arr[6], (OverheadKind::Others, 7));
    }
}
