//! # TOL — DARCO's Translation Optimization Layer
//!
//! The software half of the HW/SW co-designed processor (paper §II, §V-B).
//! TOL executes the guest program in three modes and promotes code between
//! them as it gets hotter:
//!
//! 1. **IM** (interpretation mode): instructions are interpreted one by
//!    one ([`interp`]) while software repetition counters profile basic
//!    blocks;
//! 2. **BBM** (basic-block translation mode): a block whose counter
//!    crosses `bbm_threshold` is translated to the host ISA
//!    ([`translate`]) with basic optimizations (constant folding + DCE)
//!    and instrumented with execution and edge counters;
//! 3. **SBM** (superblock mode): when the translated block's execution
//!    counter trips `sbm_threshold`, TOL forms a superblock along the
//!    biased branch directions ([`sbm`]), converts inner branches to
//!    `assert`s, optionally unrolls single-block loops, and runs the full
//!    optimizer pipeline (SSA-style forward passes, DCE, DDG with
//!    speculative memory disambiguation, list scheduling, linear-scan
//!    register allocation).
//!
//! Translations live in the [code cache](cache) and are chained to each
//! other (direct branches are patched into straight host jumps; indirect
//! branches go through the IBTC), so TOL is invoked "only when absolutely
//! necessary" (§V-D). All TOL work is charged to the paper's seven
//! overhead categories ([`overhead`]), which is what regenerates Figs. 6
//! and 7.
//!
//! Speculation failures (asserts, alias violations) roll back to the
//! region checkpoint and fall back to interpretation; a superblock that
//! fails more than `assert_fail_limit` times is recreated as a
//! single-entry **multiple-exit** region without asserts, exactly as §V-B3
//! describes.
//!
//! ## Debug hooks
//!
//! Two environment variables support the paper's "powerful debug
//! toolchain" requirement (beyond `darco::debug::diagnose`):
//! `DARCO_DUMP_REGIONS=1` prints every region's IR before code
//! generation, and `DARCO_TRACE_EXITS=1` logs every code-cache exit with
//! the guest state it published. [`CodeCache::disassemble`] renders any
//! installed translation.

pub mod cache;
pub mod config;
pub mod flags;
pub mod interp;
pub mod obs;
pub mod overhead;
pub mod sbm;
pub mod tol;
pub mod translate;

pub use cache::{CodeCache, TransKind, Translation};
pub use config::{BugKind, Injection, TolConfig, VerifyLevel, VerifyMode};
pub use flags::PendingFlags;
pub use obs::TolObs;
pub use overhead::{CostModel, Overhead, OverheadKind};
pub use tol::{Tol, TolEvent, TolStats};

// Send audit: darco-fleet moves whole per-job TOL states across worker
// threads. A field change that introduces `Rc`, `RefCell`-of-shared or a
// raw pointer would otherwise surface as a distant trait-bound error
// inside the pool; keep the constraint stated (and checked) at the type's
// home instead.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Tol>();
    assert_send::<TolConfig>();
    assert_send::<TolStats>();
    assert_send::<CodeCache>();
    assert_send::<TolObs>();
    assert_send::<Overhead>();
};
