//! TOL configuration.

use darco_ir::sched::SchedConfig;
use darco_ir::OptLevel;

/// A deliberately planted bug, for exercising the debug toolchain
/// (paper §IV "powerful debug toolchain", §V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugKind {
    /// The translator emits a wrong constant (off by one) — a
    /// guest-decoder/translator-stage bug.
    TranslatorWrongConstant,
    /// The optimizer folds a constant incorrectly — an optimizer-stage
    /// bug (only manifests at `O1`+).
    OptimizerBadFold,
    /// The code generator drops a store — a codegen-stage bug.
    CodegenDropStore,
    /// The native backend emits machine code that clobbers the pinned
    /// context register (r15) — a JIT-stage bug caught by the x86-64
    /// machine-code checker, not by any IR-level verifier. Ignored by
    /// the interpreter backend.
    CodegenClobberPinnedReg,
}

/// How the static IR verifier ([`darco_ir::verify`]) is applied to every
/// translation before it enters the code cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// Skip verification entirely.
    Off,
    /// Verify, record findings in [`crate::Tol::verify_log`] and the
    /// statistics, but install the translation anyway (lint mode).
    Report,
    /// Verify and panic on the first finding — a broken translation must
    /// never reach the code cache.
    Fatal,
}

/// How deep static verification goes (orthogonal to [`VerifyMode`],
/// which says what happens on a finding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyLevel {
    /// Structural invariants only: [`darco_ir::verify_region`],
    /// [`darco_ir::verify_ddg`] and the HISA shape check.
    Structural,
    /// Structural checks plus **semantic translation validation**
    /// (symbolic per-pass equivalence, [`darco_ir::sym`]) and, on the
    /// native backend, the x86-64 machine-code checker over every
    /// emitted fragment (DESIGN.md §13).
    Semantic,
}

/// Where and what to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// The kind of bug.
    pub kind: BugKind,
    /// Applied to the N-th translation TOL produces (0-based, counting
    /// BBM and SBM translations together).
    pub translation_ordinal: u64,
}

/// Translation Optimization Layer configuration. Defaults follow the
/// paper's design; every knob is exercised by an ablation bench.
#[derive(Debug, Clone, PartialEq)]
pub struct TolConfig {
    /// IM→BBM promotion threshold (block repetition count).
    pub bbm_threshold: u64,
    /// BBM→SBM promotion threshold (total block executions).
    pub sbm_threshold: u64,
    /// Minimum branch bias for following an edge into a superblock.
    pub edge_bias: f64,
    /// Minimum probability of reaching a block from the superblock entry.
    pub min_reach_prob: f64,
    /// Maximum guest instructions in a superblock.
    pub max_sb_insns: usize,
    /// Maximum basic blocks in a superblock.
    pub max_sb_bbs: usize,
    /// Assert failures before a superblock is recreated multi-exit.
    pub assert_fail_limit: u32,
    /// Unroll single-block loops during superblock creation.
    pub unroll: bool,
    /// Loop unroll factor.
    pub unroll_factor: u8,
    /// Optimization level of the SBM pipeline.
    pub opt_level: OptLevel,
    /// Enable control speculation (branches → asserts) and memory
    /// speculation (reordering may-alias pairs) in superblocks.
    pub speculation: bool,
    /// Materialize all five guest flags at every flag-writing instruction
    /// (disables the lazy-flags emulation-cost optimization; ablation A1).
    pub strict_flags: bool,
    /// Chain translations (patch direct-branch exits).
    pub chaining: bool,
    /// Use the indirect-branch translation cache.
    pub ibtc: bool,
    /// Code cache capacity in 32-bit words; the cache is flushed when
    /// exceeded.
    pub code_cache_words: usize,
    /// Scheduler resource model (should mirror the timing configuration).
    pub sched: SchedConfig,
    /// Optional planted bug for debug-toolchain tests.
    pub injection: Option<Injection>,
    /// Static-verification mode for IR, DDG and generated host code.
    pub verify: VerifyMode,
    /// Static-verification depth (structural vs semantic).
    pub verify_level: VerifyLevel,
}

impl Default for TolConfig {
    fn default() -> Self {
        TolConfig {
            bbm_threshold: 50,
            sbm_threshold: 500,
            edge_bias: 0.70,
            min_reach_prob: 0.40,
            max_sb_insns: 200,
            max_sb_bbs: 16,
            assert_fail_limit: 16,
            unroll: true,
            unroll_factor: 4,
            opt_level: OptLevel::O3,
            speculation: true,
            strict_flags: false,
            chaining: true,
            ibtc: true,
            code_cache_words: 4 << 20,
            sched: SchedConfig::default(),
            injection: None,
            verify: VerifyMode::Fatal,
            verify_level: VerifyLevel::Structural,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TolConfig::default();
        assert!(c.bbm_threshold < c.sbm_threshold);
        assert!(c.edge_bias > 0.5 && c.edge_bias < 1.0);
        assert!(c.unroll_factor >= 2);
        assert!(c.injection.is_none());
        assert_eq!(c.verify, VerifyMode::Fatal);
        assert_eq!(c.verify_level, VerifyLevel::Structural);
    }

    #[test]
    fn config_clone_roundtrip() {
        let c = TolConfig::default();
        let back = c.clone();
        assert_eq!(back, c);
    }
}
