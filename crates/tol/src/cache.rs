//! The translation code cache: arena, lookup, chaining, IBTC,
//! invalidation and flushing (paper §V-B, §V-D "minimum TOL overhead").

use crate::sbm::SbShape;
use darco_host::emu::IbtcTable;
use darco_host::runtime::build_runtime;
use darco_ir::codegen::ExitMeta;
use darco_host::HInsn;
use std::collections::HashMap;

/// Kind of translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransKind {
    /// Basic-block translation (BBM).
    Bb,
    /// Superblock (SBM); `asserts` distinguishes the speculative
    /// single-exit form from the multi-exit recreation.
    Sb {
        /// Inner branches are asserts.
        asserts: bool,
    },
}

/// One installed translation.
#[derive(Debug, Clone)]
pub struct Translation {
    /// Guest entry PC.
    pub guest_pc: u32,
    /// Kind.
    pub kind: TransKind,
    /// Host address of the first instruction.
    pub host_base: usize,
    /// Number of host instructions.
    pub len: usize,
    /// Encoded size in words (code-cache space accounting).
    pub encoded_words: usize,
    /// Exit metadata by exit id.
    pub exits: Vec<ExitMeta>,
    /// Guest instructions in the source region (static).
    pub src_insns: u32,
    /// Host instructions emitted (static, for emulation-cost stats).
    pub host_insns: u32,
    /// Mask (CF|ZF<<1|…) of guest flags the translation reads on entry.
    /// A chain into this translation is only legal from an exit that
    /// publishes at least these flags in r8–r12; otherwise the software
    /// layer must resolve deferred flags first.
    pub needs_flags_mask: u8,
    /// Assert/alias failures so far (recreation trigger).
    pub spec_fails: u32,
    /// Superblock shape for deterministic recreation.
    pub shape: Option<SbShape>,
    /// Still dispatchable?
    pub valid: bool,
}

/// The code cache.
pub struct CodeCache {
    /// The host-code arena (runtime routines live at the bottom).
    pub arena: Vec<HInsn>,
    /// Indirect-branch translation cache (guest pc → host address).
    pub ibtc: IbtcTable,
    sin_addr: usize,
    cos_addr: usize,
    runtime_len: usize,
    map: HashMap<u32, usize>,
    translations: Vec<Translation>,
    /// For each target translation: chain patches into it
    /// `(slot_host_addr, original_instruction)`.
    chains_in: HashMap<usize, Vec<(usize, HInsn)>>,
    /// IBTC entries per owning translation.
    ibtc_owner: HashMap<usize, Vec<u32>>,
    capacity_words: usize,
    used_words: usize,
    /// Number of full-cache flushes performed.
    pub flushes: u64,
}

impl std::fmt::Debug for CodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodeCache")
            .field("translations", &self.translations.len())
            .field("used_words", &self.used_words)
            .field("flushes", &self.flushes)
            .finish()
    }
}

impl CodeCache {
    /// Creates a cache with the given capacity (in encoded words) and the
    /// runtime routines installed.
    pub fn new(capacity_words: usize) -> CodeCache {
        let rt = build_runtime();
        let runtime_len = rt.code.len();
        CodeCache {
            arena: rt.code,
            ibtc: IbtcTable::new(),
            sin_addr: rt.sin_entry,
            cos_addr: rt.cos_entry,
            runtime_len,
            map: HashMap::new(),
            translations: Vec::new(),
            chains_in: HashMap::new(),
            ibtc_owner: HashMap::new(),
            capacity_words,
            used_words: 0,
            flushes: 0,
        }
    }

    /// Host address of the `sin` runtime routine.
    pub fn sin_addr(&self) -> usize {
        self.sin_addr
    }

    /// Host address of the `cos` runtime routine.
    pub fn cos_addr(&self) -> usize {
        self.cos_addr
    }

    /// Host address where the next translation will be installed.
    pub fn next_base(&self) -> usize {
        self.arena.len()
    }

    /// Whether installing `words` more would overflow the cache.
    pub fn would_overflow(&self, words: usize) -> bool {
        self.used_words + words > self.capacity_words
    }

    /// Looks up a dispatchable translation for a guest PC.
    pub fn lookup(&self, guest_pc: u32) -> Option<usize> {
        self.map.get(&guest_pc).copied().filter(|&i| self.translations[i].valid)
    }

    /// The translation with the given id.
    pub fn translation(&self, id: usize) -> &Translation {
        &self.translations[id]
    }

    /// Mutable access (spec-failure accounting).
    pub fn translation_mut(&mut self, id: usize) -> &mut Translation {
        &mut self.translations[id]
    }

    /// Number of live (valid) translations.
    pub fn live_translations(&self) -> usize {
        self.translations.iter().filter(|t| t.valid).count()
    }

    /// Code-cache words currently occupied (occupancy metric).
    pub fn used_words(&self) -> usize {
        self.used_words
    }

    /// Finds the translation containing a host address (exit handling:
    /// chained execution can stop in any translation).
    pub fn translation_at_host(&self, host_pc: usize) -> Option<usize> {
        // Arena allocation is monotonic, so binary search over bases.
        let mut lo = 0usize;
        let mut hi = self.translations.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.translations[mid].host_base <= host_pc {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let idx = lo.checked_sub(1)?;
        let t = &self.translations[idx];
        (host_pc < t.host_base + t.len).then_some(idx)
    }

    /// Installs a translation, replacing (and invalidating) any previous
    /// translation at the same guest PC.
    ///
    /// Returns the new translation id.
    ///
    /// # Panics
    /// Panics if the code does not fit the capacity even after a flush.
    pub fn install(&mut self, mut t: Translation, code: Vec<HInsn>) -> usize {
        assert_eq!(t.host_base, self.arena.len(), "translation must be placed at next_base");
        assert!(
            t.encoded_words <= self.capacity_words,
            "translation larger than the entire code cache"
        );
        if let Some(old) = self.map.get(&t.guest_pc).copied() {
            self.invalidate(old);
        }
        t.len = code.len();
        self.used_words += t.encoded_words;
        self.arena.extend(code);
        let id = self.translations.len();
        self.map.insert(t.guest_pc, id);
        self.translations.push(t);
        id
    }

    /// Invalidates a translation: unpatches chains into it and removes its
    /// IBTC entries. Its arena space is reclaimed at the next flush.
    pub fn invalidate(&mut self, id: usize) {
        if !self.translations[id].valid {
            return;
        }
        self.translations[id].valid = false;
        let pc = self.translations[id].guest_pc;
        if self.map.get(&pc) == Some(&id) {
            self.map.remove(&pc);
        }
        if let Some(slots) = self.chains_in.remove(&id) {
            for (addr, orig) in slots {
                self.arena[addr] = orig;
            }
        }
        if let Some(pcs) = self.ibtc_owner.remove(&id) {
            for p in pcs {
                self.ibtc.remove(&p);
            }
        }
    }

    /// Patches a chain: the `ChainSlot` at `slot_addr` (inside translation
    /// `from`) becomes a direct branch to translation `to`.
    ///
    /// # Panics
    /// Panics if the slot does not hold a `ChainSlot`.
    pub fn chain(&mut self, from: usize, slot_addr: usize, to: usize) {
        let _ = from;
        let orig = self.arena[slot_addr];
        assert!(matches!(orig, HInsn::ChainSlot { .. }), "chain target slot is {orig:?}");
        let target = self.translations[to].host_base;
        let rel = target as i32 - (slot_addr as i32 + 1);
        self.arena[slot_addr] = HInsn::B { rel };
        self.chains_in.entry(to).or_default().push((slot_addr, orig));
    }

    /// Inserts an IBTC entry for `guest_pc` resolving to translation `to`.
    pub fn ibtc_insert(&mut self, guest_pc: u32, to: usize) {
        self.ibtc.insert(guest_pc, self.translations[to].host_base);
        self.ibtc_owner.entry(to).or_default().push(guest_pc);
    }

    /// Disassembles a translation (the debug toolchain's view of emitted
    /// host code).
    pub fn disassemble(&self, id: usize) -> String {
        use std::fmt::Write;
        let t = &self.translations[id];
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; translation {id} for guest {:#010x} ({:?}, {} guest insns, {} words{})",
            t.guest_pc,
            t.kind,
            t.src_insns,
            t.encoded_words,
            if t.valid { "" } else { ", INVALID" },
        );
        for i in 0..t.len {
            let _ = writeln!(out, "{:6}: {}", t.host_base + i, self.arena[t.host_base + i]);
        }
        for (eid, e) in t.exits.iter().enumerate() {
            let _ = writeln!(out, "; exit {eid}: {:?}", e.kind);
        }
        out
    }

    /// Flushes everything except the runtime routines.
    pub fn flush(&mut self) {
        self.arena.truncate(self.runtime_len);
        self.map.clear();
        self.translations.clear();
        self.chains_in.clear();
        self.ibtc.clear();
        self.ibtc_owner.clear();
        self.used_words = 0;
        self.flushes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_ir::ExitKind;

    fn dummy_translation(cache: &CodeCache, pc: u32, code_len: usize) -> (Translation, Vec<HInsn>) {
        let code: Vec<HInsn> = std::iter::once(HInsn::Chkpt)
            .chain(std::iter::repeat_n(HInsn::Nop, code_len.saturating_sub(2)))
            .chain(std::iter::once(HInsn::TolExit { id: 0 }))
            .collect();
        let t = Translation {
            guest_pc: pc,
            kind: TransKind::Bb,
            host_base: cache.next_base(),
            len: 0,
            encoded_words: code.len(),
            exits: vec![ExitMeta {
                kind: ExitKind::Halt,
                flags_valid: 0,
                deferred: None,
                chain_slot: None,
            }],
            src_insns: 1,
            host_insns: code_len as u32,
            needs_flags_mask: 0,
            spec_fails: 0,
            shape: None,
            valid: true,
        };
        (t, code)
    }

    #[test]
    fn install_lookup_and_host_search() {
        let mut c = CodeCache::new(1 << 16);
        let (t1, code1) = dummy_translation(&c, 0x1000, 10);
        let id1 = c.install(t1, code1);
        let (t2, code2) = dummy_translation(&c, 0x2000, 12);
        let id2 = c.install(t2, code2);
        assert_eq!(c.lookup(0x1000), Some(id1));
        assert_eq!(c.lookup(0x2000), Some(id2));
        assert_eq!(c.lookup(0x3000), None);
        let base2 = c.translation(id2).host_base;
        assert_eq!(c.translation_at_host(base2), Some(id2));
        assert_eq!(c.translation_at_host(base2 + 5), Some(id2));
        assert_eq!(c.translation_at_host(base2 - 1), Some(id1));
        assert_eq!(c.translation_at_host(0), None, "runtime is not a translation");
    }

    #[test]
    fn reinstall_invalidates_previous() {
        let mut c = CodeCache::new(1 << 16);
        let (t1, code1) = dummy_translation(&c, 0x1000, 10);
        let id1 = c.install(t1, code1);
        let (t2, code2) = dummy_translation(&c, 0x1000, 20);
        let id2 = c.install(t2, code2);
        assert!(!c.translation(id1).valid);
        assert_eq!(c.lookup(0x1000), Some(id2));
        assert_eq!(c.live_translations(), 1);
    }

    #[test]
    fn chaining_patches_and_invalidation_unpatches() {
        let mut c = CodeCache::new(1 << 16);
        // Translation A with a chain slot in the middle.
        let base_a = c.next_base();
        let code_a = vec![HInsn::Chkpt, HInsn::ChainSlot { id: 0 }, HInsn::TolExit { id: 1 }];
        let (mut ta, _) = dummy_translation(&c, 0x1000, 3);
        ta.encoded_words = code_a.len();
        let id_a = c.install(ta, code_a);
        let (tb, code_b) = dummy_translation(&c, 0x2000, 6);
        let id_b = c.install(tb, code_b);
        let slot = base_a + 1;
        c.chain(id_a, slot, id_b);
        match c.arena[slot] {
            HInsn::B { rel } => {
                assert_eq!(slot as i32 + 1 + rel, c.translation(id_b).host_base as i32);
            }
            other => panic!("expected patched branch, got {other:?}"),
        }
        // Invalidate B: the chain must revert to the original slot.
        c.invalidate(id_b);
        assert!(matches!(c.arena[slot], HInsn::ChainSlot { id: 0 }));
    }

    #[test]
    fn ibtc_entries_follow_invalidation() {
        let mut c = CodeCache::new(1 << 16);
        let (t1, code1) = dummy_translation(&c, 0x1000, 4);
        let id1 = c.install(t1, code1);
        c.ibtc_insert(0x1000, id1);
        assert_eq!(c.ibtc.get(&0x1000), Some(&c.translation(id1).host_base));
        c.invalidate(id1);
        assert!(c.ibtc.is_empty());
    }

    #[test]
    fn flush_keeps_runtime() {
        let mut c = CodeCache::new(1 << 16);
        let rt_len = c.next_base();
        let (t1, code1) = dummy_translation(&c, 0x1000, 4);
        c.install(t1, code1);
        assert!(c.next_base() > rt_len);
        c.flush();
        assert_eq!(c.next_base(), rt_len);
        assert_eq!(c.lookup(0x1000), None);
        assert_eq!(c.flushes, 1);
        // Runtime entries still valid.
        assert!(c.sin_addr() < rt_len && c.cos_addr() < rt_len);
    }

    #[test]
    fn disassembly_is_readable() {
        let mut c = CodeCache::new(1 << 16);
        let (t, code) = dummy_translation(&c, 0x1000, 5);
        let id = c.install(t, code);
        let d = c.disassemble(id);
        assert!(d.contains("guest 0x00001000"));
        assert!(d.contains("chkpt"));
        assert!(d.contains("tolexit"));
        assert!(d.contains("exit 0"));
        c.invalidate(id);
        assert!(c.disassemble(id).contains("INVALID"));
    }

    #[test]
    fn overflow_accounting() {
        let mut c = CodeCache::new(64);
        assert!(!c.would_overflow(64));
        assert!(c.would_overflow(65));
        let (t1, code1) = dummy_translation(&c, 0x1000, 40);
        c.install(t1, code1);
        assert!(c.would_overflow(30));
    }
}
