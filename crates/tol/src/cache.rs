//! The translation code cache: arena, lookup, chaining, IBTC,
//! invalidation and flushing (paper §V-B, §V-D "minimum TOL overhead").

use crate::sbm::SbShape;
use darco_guest::{Wire, WireError, WireReader};
use darco_host::codegen::MutationLog;
use darco_host::emu::IbtcTable;
use darco_host::encode::{decode_insn, encode_all};
use darco_host::runtime::build_runtime;
use darco_ir::codegen::ExitMeta;
use darco_ir::{ExitKind, FlagsKind};
use darco_host::HInsn;
use std::collections::HashMap;

/// Kind of translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransKind {
    /// Basic-block translation (BBM).
    Bb,
    /// Superblock (SBM); `asserts` distinguishes the speculative
    /// single-exit form from the multi-exit recreation.
    Sb {
        /// Inner branches are asserts.
        asserts: bool,
    },
}

/// One installed translation.
#[derive(Debug, Clone)]
pub struct Translation {
    /// Guest entry PC.
    pub guest_pc: u32,
    /// Kind.
    pub kind: TransKind,
    /// Host address of the first instruction.
    pub host_base: usize,
    /// Number of host instructions.
    pub len: usize,
    /// Encoded size in words (code-cache space accounting).
    pub encoded_words: usize,
    /// Exit metadata by exit id.
    pub exits: Vec<ExitMeta>,
    /// Guest instructions in the source region (static).
    pub src_insns: u32,
    /// Host instructions emitted (static, for emulation-cost stats).
    pub host_insns: u32,
    /// Mask (CF|ZF<<1|…) of guest flags the translation reads on entry.
    /// A chain into this translation is only legal from an exit that
    /// publishes at least these flags in r8–r12; otherwise the software
    /// layer must resolve deferred flags first.
    pub needs_flags_mask: u8,
    /// Assert/alias failures so far (recreation trigger).
    pub spec_fails: u32,
    /// Superblock shape for deterministic recreation.
    pub shape: Option<SbShape>,
    /// Still dispatchable?
    pub valid: bool,
    /// Steady-state (miss-free, predicted) cycle cost of the main path,
    /// stamped at install time by the timing sink's static annotator
    /// ([`darco_host::sink::InsnSink::install_note`]); 0 when no timing
    /// sink is attached.
    pub static_cycles: u64,
}

/// The code cache.
pub struct CodeCache {
    /// The host-code arena (runtime routines live at the bottom).
    pub arena: Vec<HInsn>,
    /// Indirect-branch translation cache (guest pc → host address).
    pub ibtc: IbtcTable,
    sin_addr: usize,
    cos_addr: usize,
    runtime_len: usize,
    map: HashMap<u32, usize>,
    translations: Vec<Translation>,
    /// For each target translation: chain patches into it
    /// `(slot_host_addr, original_instruction)`.
    chains_in: HashMap<usize, Vec<(usize, HInsn)>>,
    /// IBTC entries per owning translation.
    ibtc_owner: HashMap<usize, Vec<u32>>,
    capacity_words: usize,
    used_words: usize,
    /// Number of full-cache flushes performed.
    pub flushes: u64,
    /// Records every arena range whose already-installed words changed
    /// meaning: chain patch, invalidation (unpatch + IBTC removal),
    /// flush, restore. Plain appends do NOT bump — existing code is
    /// unchanged by them. The native backend drops exactly the compiled
    /// fragments covering a mutated range (unpatching native jumps into
    /// them), falling back to a full recompile only when the bounded log
    /// cannot cover the gap. Not serialized (it is a cache-validity
    /// token, not simulated state).
    mutations: MutationLog,
}

impl std::fmt::Debug for CodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodeCache")
            .field("translations", &self.translations.len())
            .field("used_words", &self.used_words)
            .field("flushes", &self.flushes)
            .finish()
    }
}

impl CodeCache {
    /// Creates a cache with the given capacity (in encoded words) and the
    /// runtime routines installed.
    pub fn new(capacity_words: usize) -> CodeCache {
        let rt = build_runtime();
        let runtime_len = rt.code.len();
        CodeCache {
            arena: rt.code,
            ibtc: IbtcTable::new(),
            sin_addr: rt.sin_entry,
            cos_addr: rt.cos_entry,
            runtime_len,
            map: HashMap::new(),
            translations: Vec::new(),
            chains_in: HashMap::new(),
            ibtc_owner: HashMap::new(),
            capacity_words,
            used_words: 0,
            flushes: 0,
            mutations: MutationLog::new(),
        }
    }

    /// Current arena-mutation epoch (see the `mutations` field doc).
    pub fn mutation_epoch(&self) -> u64 {
        self.mutations.epoch()
    }

    /// The arena-mutation log backends sync their compiled code against.
    pub fn mutations(&self) -> &MutationLog {
        &self.mutations
    }

    /// Host address of the `sin` runtime routine.
    pub fn sin_addr(&self) -> usize {
        self.sin_addr
    }

    /// Host address of the `cos` runtime routine.
    pub fn cos_addr(&self) -> usize {
        self.cos_addr
    }

    /// Host address where the next translation will be installed.
    pub fn next_base(&self) -> usize {
        self.arena.len()
    }

    /// Whether installing `words` more would overflow the cache.
    pub fn would_overflow(&self, words: usize) -> bool {
        self.used_words + words > self.capacity_words
    }

    /// Looks up a dispatchable translation for a guest PC.
    pub fn lookup(&self, guest_pc: u32) -> Option<usize> {
        self.map.get(&guest_pc).copied().filter(|&i| self.translations[i].valid)
    }

    /// The translation with the given id.
    pub fn translation(&self, id: usize) -> &Translation {
        &self.translations[id]
    }

    /// Mutable access (spec-failure accounting).
    pub fn translation_mut(&mut self, id: usize) -> &mut Translation {
        &mut self.translations[id]
    }

    /// Number of live (valid) translations.
    pub fn live_translations(&self) -> usize {
        self.translations.iter().filter(|t| t.valid).count()
    }

    /// Code-cache words currently occupied (occupancy metric).
    pub fn used_words(&self) -> usize {
        self.used_words
    }

    /// Finds the translation containing a host address (exit handling:
    /// chained execution can stop in any translation).
    pub fn translation_at_host(&self, host_pc: usize) -> Option<usize> {
        // Arena allocation is monotonic, so binary search over bases.
        let mut lo = 0usize;
        let mut hi = self.translations.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.translations[mid].host_base <= host_pc {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let idx = lo.checked_sub(1)?;
        let t = &self.translations[idx];
        (host_pc < t.host_base + t.len).then_some(idx)
    }

    /// Installs a translation, replacing (and invalidating) any previous
    /// translation at the same guest PC.
    ///
    /// Returns the new translation id.
    ///
    /// # Panics
    /// Panics if the code does not fit the capacity even after a flush.
    pub fn install(&mut self, mut t: Translation, code: Vec<HInsn>) -> usize {
        assert_eq!(t.host_base, self.arena.len(), "translation must be placed at next_base");
        assert!(
            t.encoded_words <= self.capacity_words,
            "translation larger than the entire code cache"
        );
        if let Some(old) = self.map.get(&t.guest_pc).copied() {
            self.invalidate(old);
        }
        t.len = code.len();
        self.used_words += t.encoded_words;
        self.arena.extend(code);
        let id = self.translations.len();
        self.map.insert(t.guest_pc, id);
        self.translations.push(t);
        id
    }

    /// Invalidates a translation: unpatches chains into it and removes its
    /// IBTC entries. Its arena space is reclaimed at the next flush.
    pub fn invalidate(&mut self, id: usize) {
        if !self.translations[id].valid {
            return;
        }
        let (base, len) = (self.translations[id].host_base, self.translations[id].len);
        self.mutations.record(base, base + len);
        self.translations[id].valid = false;
        let pc = self.translations[id].guest_pc;
        if self.map.get(&pc) == Some(&id) {
            self.map.remove(&pc);
        }
        if let Some(slots) = self.chains_in.remove(&id) {
            for (addr, orig) in slots {
                self.arena[addr] = orig;
                // The unpatched slot lives inside a *different*
                // translation; native code compiled over it is stale too.
                self.mutations.record(addr, addr + 1);
            }
        }
        if let Some(pcs) = self.ibtc_owner.remove(&id) {
            for p in pcs {
                self.ibtc.remove(&p);
            }
        }
    }

    /// Patches a chain: the `ChainSlot` at `slot_addr` (inside translation
    /// `from`) becomes a direct branch to translation `to`.
    ///
    /// # Panics
    /// Panics if the slot does not hold a `ChainSlot`.
    pub fn chain(&mut self, from: usize, slot_addr: usize, to: usize) {
        let _ = from;
        let orig = self.arena[slot_addr];
        assert!(matches!(orig, HInsn::ChainSlot { .. }), "chain target slot is {orig:?}");
        let target = self.translations[to].host_base;
        let rel = target as i32 - (slot_addr as i32 + 1);
        self.mutations.record(slot_addr, slot_addr + 1);
        self.arena[slot_addr] = HInsn::B { rel };
        self.chains_in.entry(to).or_default().push((slot_addr, orig));
    }

    /// Inserts an IBTC entry for `guest_pc` resolving to translation `to`.
    pub fn ibtc_insert(&mut self, guest_pc: u32, to: usize) {
        self.ibtc.insert(guest_pc, self.translations[to].host_base);
        self.ibtc_owner.entry(to).or_default().push(guest_pc);
    }

    /// Disassembles a translation (the debug toolchain's view of emitted
    /// host code).
    pub fn disassemble(&self, id: usize) -> String {
        use std::fmt::Write;
        let t = &self.translations[id];
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; translation {id} for guest {:#010x} ({:?}, {} guest insns, {} words{})",
            t.guest_pc,
            t.kind,
            t.src_insns,
            t.encoded_words,
            if t.valid { "" } else { ", INVALID" },
        );
        for i in 0..t.len {
            let _ = writeln!(out, "{:6}: {}", t.host_base + i, self.arena[t.host_base + i]);
        }
        for (eid, e) in t.exits.iter().enumerate() {
            let _ = writeln!(out, "; exit {eid}: {:?}", e.kind);
        }
        out
    }

    /// Flushes everything except the runtime routines.
    pub fn flush(&mut self) {
        self.arena.truncate(self.runtime_len);
        self.map.clear();
        self.translations.clear();
        self.chains_in.clear();
        self.ibtc.clear();
        self.ibtc_owner.clear();
        self.used_words = 0;
        self.flushes += 1;
        self.mutations.record_full();
    }

    /// Serializes the full code-cache state: arena (including chain
    /// patches), every translation ever installed (arena layout and
    /// translation ids are history-dependent, so invalid entries must
    /// survive too), chain bookkeeping, IBTC, and space accounting.
    ///
    /// The lookup map is *not* serialized — it is always exactly
    /// `{t.guest_pc → id | t.valid}` (install invalidates any previous
    /// same-PC translation before inserting), so restore rebuilds it.
    pub fn snapshot_into(&self, w: &mut Wire) {
        w.put_usize(self.runtime_len);
        w.put_u32s(&encode_all(&self.arena));
        // Sidecar: sequence numbers of *non-speculative* memory
        // operations. The ISA encoding carries `seq` only in the
        // two-word speculative form, but the emulator's store-buffer
        // ordering (store-to-load forwarding) keys on `seq` for every
        // memory operation, so dropping them would change execution
        // after restore.
        w.put_u32s(&nonspec_seqs(&self.arena));
        w.put_usize(self.translations.len());
        for t in &self.translations {
            w.put_u32(t.guest_pc);
            w.put_u8(match t.kind {
                TransKind::Bb => 0,
                TransKind::Sb { asserts: false } => 1,
                TransKind::Sb { asserts: true } => 2,
            });
            w.put_usize(t.host_base);
            w.put_usize(t.len);
            w.put_usize(t.encoded_words);
            w.put_usize(t.exits.len());
            for e in &t.exits {
                match e.kind {
                    ExitKind::Jump { target } => {
                        w.put_u8(0);
                        w.put_u32(target);
                    }
                    ExitKind::Indirect => w.put_u8(1),
                    ExitKind::Syscall { pc } => {
                        w.put_u8(2);
                        w.put_u32(pc);
                    }
                    ExitKind::Halt => w.put_u8(3),
                }
                w.put_u8(e.flags_valid);
                // FlagsKind codes start at 1, so 0 is free for "none".
                w.put_u32(e.deferred.map_or(0, |k| u32::from(k.code())));
                w.put_bool(e.chain_slot.is_some());
                if let Some(s) = e.chain_slot {
                    w.put_usize(s);
                }
            }
            w.put_u32(t.src_insns);
            w.put_u32(t.host_insns);
            w.put_u8(t.needs_flags_mask);
            w.put_u32(t.spec_fails);
            w.put_bool(t.shape.is_some());
            if let Some(s) = &t.shape {
                w.put_u32(s.entry);
                w.put_u32s(&s.bbs);
                w.put_usize(s.dirs.len());
                for d in &s.dirs {
                    w.put_u8(match d {
                        None => 0,
                        Some(false) => 1,
                        Some(true) => 2,
                    });
                }
                w.put_u8(s.unroll);
            }
            w.put_bool(t.valid);
            w.put_u64(t.static_cycles);
        }
        let mut chains: Vec<_> = self.chains_in.iter().collect();
        chains.sort_by_key(|(id, _)| **id);
        w.put_usize(chains.len());
        for (id, slots) in chains {
            w.put_usize(*id);
            w.put_usize(slots.len());
            for (addr, orig) in slots {
                w.put_usize(*addr);
                w.put_u32s(&encode_all(std::slice::from_ref(orig)));
            }
        }
        let mut ibtc: Vec<_> = self.ibtc.iter().collect();
        ibtc.sort_by_key(|(pc, _)| **pc);
        w.put_usize(ibtc.len());
        for (pc, host) in ibtc {
            w.put_u32(*pc);
            w.put_usize(*host);
        }
        let mut owners: Vec<_> = self.ibtc_owner.iter().collect();
        owners.sort_by_key(|(id, _)| **id);
        w.put_usize(owners.len());
        for (id, pcs) in owners {
            w.put_usize(*id);
            w.put_u32s(pcs);
        }
        w.put_usize(self.capacity_words);
        w.put_usize(self.used_words);
        w.put_u64(self.flushes);
    }

    fn decode_arena(words: &[u32], at: usize) -> Result<Vec<HInsn>, WireError> {
        let mut arena = Vec::new();
        let mut pos = 0;
        while pos < words.len() {
            let (insn, n) = decode_insn(&words[pos..])
                .map_err(|_| WireError::Malformed { at, what: "undecodable host instruction" })?;
            arena.push(insn);
            pos += n;
        }
        Ok(arena)
    }

    /// Restores from a [`CodeCache::snapshot_into`] stream into a cache
    /// built with the same capacity (fresh or in use — all prior contents
    /// are replaced).
    ///
    /// # Errors
    /// Wire decode failures; runtime-length or capacity mismatches (the
    /// snapshot belongs to a differently-configured cache).
    pub fn restore_from(&mut self, r: &mut WireReader<'_>) -> Result<(), WireError> {
        let runtime_len = r.get_usize()?;
        if runtime_len != self.runtime_len {
            return Err(WireError::Malformed {
                at: r.pos(),
                what: "code-cache runtime length mismatch",
            });
        }
        let words = r.get_u32s()?;
        let mut arena = Self::decode_arena(&words, r.pos())?;
        if arena.len() < runtime_len {
            return Err(WireError::Malformed {
                at: r.pos(),
                what: "code-cache arena shorter than runtime",
            });
        }
        let seqs = r.get_u32s()?;
        restore_nonspec_seqs(&mut arena, &seqs)
            .map_err(|what| WireError::Malformed { at: r.pos(), what })?;
        let n_trans = r.get_usize()?;
        let mut translations = Vec::with_capacity(n_trans);
        for _ in 0..n_trans {
            let guest_pc = r.get_u32()?;
            let kind = match r.get_u8()? {
                0 => TransKind::Bb,
                1 => TransKind::Sb { asserts: false },
                2 => TransKind::Sb { asserts: true },
                _ => {
                    return Err(WireError::Malformed {
                        at: r.pos(),
                        what: "unknown translation kind",
                    })
                }
            };
            let host_base = r.get_usize()?;
            let len = r.get_usize()?;
            let encoded_words = r.get_usize()?;
            let n_exits = r.get_usize()?;
            let mut exits = Vec::with_capacity(n_exits);
            for _ in 0..n_exits {
                let kind = match r.get_u8()? {
                    0 => ExitKind::Jump { target: r.get_u32()? },
                    1 => ExitKind::Indirect,
                    2 => ExitKind::Syscall { pc: r.get_u32()? },
                    3 => ExitKind::Halt,
                    _ => {
                        return Err(WireError::Malformed { at: r.pos(), what: "unknown exit kind" })
                    }
                };
                let flags_valid = r.get_u8()?;
                let deferred = match r.get_u32()? {
                    0 => None,
                    c => Some(FlagsKind::from_code(c).ok_or(WireError::Malformed {
                        at: r.pos(),
                        what: "unknown deferred-flags code",
                    })?),
                };
                let chain_slot = if r.get_bool()? { Some(r.get_usize()?) } else { None };
                exits.push(ExitMeta { kind, flags_valid, deferred, chain_slot });
            }
            let src_insns = r.get_u32()?;
            let host_insns = r.get_u32()?;
            let needs_flags_mask = r.get_u8()?;
            let spec_fails = r.get_u32()?;
            let shape = if r.get_bool()? {
                let entry = r.get_u32()?;
                let bbs = r.get_u32s()?;
                let n_dirs = r.get_usize()?;
                let mut dirs = Vec::with_capacity(n_dirs);
                for _ in 0..n_dirs {
                    dirs.push(match r.get_u8()? {
                        0 => None,
                        1 => Some(false),
                        2 => Some(true),
                        _ => {
                            return Err(WireError::Malformed {
                                at: r.pos(),
                                what: "unknown branch direction",
                            })
                        }
                    });
                }
                let unroll = r.get_u8()?;
                Some(SbShape { entry, bbs, dirs, unroll })
            } else {
                None
            };
            let valid = r.get_bool()?;
            let static_cycles = r.get_u64()?;
            translations.push(Translation {
                guest_pc,
                kind,
                host_base,
                len,
                encoded_words,
                exits,
                src_insns,
                host_insns,
                needs_flags_mask,
                spec_fails,
                shape,
                valid,
                static_cycles,
            });
        }
        let n_chains = r.get_usize()?;
        let mut chains_in = HashMap::new();
        for _ in 0..n_chains {
            let id = r.get_usize()?;
            let n_slots = r.get_usize()?;
            let mut slots = Vec::with_capacity(n_slots);
            for _ in 0..n_slots {
                let addr = r.get_usize()?;
                let words = r.get_u32s()?;
                let insns = Self::decode_arena(&words, r.pos())?;
                if insns.len() != 1 {
                    return Err(WireError::Malformed {
                        at: r.pos(),
                        what: "chain slot original must be one instruction",
                    });
                }
                slots.push((addr, insns[0]));
            }
            chains_in.insert(id, slots);
        }
        let n_ibtc = r.get_usize()?;
        let mut ibtc = IbtcTable::new();
        for _ in 0..n_ibtc {
            let pc = r.get_u32()?;
            let host = r.get_usize()?;
            ibtc.insert(pc, host);
        }
        let n_owners = r.get_usize()?;
        let mut ibtc_owner = HashMap::new();
        for _ in 0..n_owners {
            let id = r.get_usize()?;
            ibtc_owner.insert(id, r.get_u32s()?);
        }
        let capacity_words = r.get_usize()?;
        if capacity_words != self.capacity_words {
            return Err(WireError::Malformed {
                at: r.pos(),
                what: "code-cache capacity mismatch",
            });
        }
        let used_words = r.get_usize()?;
        let flushes = r.get_u64()?;
        let mut map = HashMap::new();
        for (id, t) in translations.iter().enumerate() {
            if t.valid {
                map.insert(t.guest_pc, id);
            }
        }
        self.arena = arena;
        self.map = map;
        self.translations = translations;
        self.chains_in = chains_in;
        self.ibtc = ibtc;
        self.ibtc_owner = ibtc_owner;
        self.used_words = used_words;
        self.flushes = flushes;
        self.mutations.record_full();
        Ok(())
    }
}

/// Collects the `seq` of every non-speculative memory operation in
/// program order (speculative ones carry theirs in the encoding).
fn nonspec_seqs(arena: &[HInsn]) -> Vec<u32> {
    arena
        .iter()
        .filter_map(|i| match *i {
            HInsn::Load { spec: false, seq, .. }
            | HInsn::Store { spec: false, seq, .. }
            | HInsn::LoadF { spec: false, seq, .. }
            | HInsn::StoreF { spec: false, seq, .. } => Some(u32::from(seq)),
            _ => None,
        })
        .collect()
}

/// Re-applies a [`nonspec_seqs`] sidecar to a freshly decoded arena.
fn restore_nonspec_seqs(arena: &mut [HInsn], seqs: &[u32]) -> Result<(), &'static str> {
    let mut it = seqs.iter();
    for insn in arena.iter_mut() {
        match insn {
            HInsn::Load { spec: false, seq, .. }
            | HInsn::Store { spec: false, seq, .. }
            | HInsn::LoadF { spec: false, seq, .. }
            | HInsn::StoreF { spec: false, seq, .. } => {
                let v = *it.next().ok_or("memory-op seq sidecar too short")?;
                *seq =
                    u16::try_from(v).map_err(|_| "memory-op seq sidecar value out of range")?;
            }
            _ => {}
        }
    }
    if it.next().is_some() {
        return Err("memory-op seq sidecar too long");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_ir::ExitKind;

    fn dummy_translation(cache: &CodeCache, pc: u32, code_len: usize) -> (Translation, Vec<HInsn>) {
        let code: Vec<HInsn> = std::iter::once(HInsn::Chkpt)
            .chain(std::iter::repeat_n(HInsn::Nop, code_len.saturating_sub(2)))
            .chain(std::iter::once(HInsn::TolExit { id: 0 }))
            .collect();
        let t = Translation {
            guest_pc: pc,
            kind: TransKind::Bb,
            host_base: cache.next_base(),
            len: 0,
            encoded_words: code.len(),
            exits: vec![ExitMeta {
                kind: ExitKind::Halt,
                flags_valid: 0,
                deferred: None,
                chain_slot: None,
            }],
            src_insns: 1,
            host_insns: code_len as u32,
            needs_flags_mask: 0,
            spec_fails: 0,
            shape: None,
            valid: true,
            static_cycles: 0,
        };
        (t, code)
    }

    #[test]
    fn install_lookup_and_host_search() {
        let mut c = CodeCache::new(1 << 16);
        let (t1, code1) = dummy_translation(&c, 0x1000, 10);
        let id1 = c.install(t1, code1);
        let (t2, code2) = dummy_translation(&c, 0x2000, 12);
        let id2 = c.install(t2, code2);
        assert_eq!(c.lookup(0x1000), Some(id1));
        assert_eq!(c.lookup(0x2000), Some(id2));
        assert_eq!(c.lookup(0x3000), None);
        let base2 = c.translation(id2).host_base;
        assert_eq!(c.translation_at_host(base2), Some(id2));
        assert_eq!(c.translation_at_host(base2 + 5), Some(id2));
        assert_eq!(c.translation_at_host(base2 - 1), Some(id1));
        assert_eq!(c.translation_at_host(0), None, "runtime is not a translation");
    }

    #[test]
    fn reinstall_invalidates_previous() {
        let mut c = CodeCache::new(1 << 16);
        let (t1, code1) = dummy_translation(&c, 0x1000, 10);
        let id1 = c.install(t1, code1);
        let (t2, code2) = dummy_translation(&c, 0x1000, 20);
        let id2 = c.install(t2, code2);
        assert!(!c.translation(id1).valid);
        assert_eq!(c.lookup(0x1000), Some(id2));
        assert_eq!(c.live_translations(), 1);
    }

    #[test]
    fn chaining_patches_and_invalidation_unpatches() {
        let mut c = CodeCache::new(1 << 16);
        // Translation A with a chain slot in the middle.
        let base_a = c.next_base();
        let code_a = vec![HInsn::Chkpt, HInsn::ChainSlot { id: 0 }, HInsn::TolExit { id: 1 }];
        let (mut ta, _) = dummy_translation(&c, 0x1000, 3);
        ta.encoded_words = code_a.len();
        let id_a = c.install(ta, code_a);
        let (tb, code_b) = dummy_translation(&c, 0x2000, 6);
        let id_b = c.install(tb, code_b);
        let slot = base_a + 1;
        c.chain(id_a, slot, id_b);
        match c.arena[slot] {
            HInsn::B { rel } => {
                assert_eq!(slot as i32 + 1 + rel, c.translation(id_b).host_base as i32);
            }
            other => panic!("expected patched branch, got {other:?}"),
        }
        // Invalidate B: the chain must revert to the original slot.
        c.invalidate(id_b);
        assert!(matches!(c.arena[slot], HInsn::ChainSlot { id: 0 }));
    }

    #[test]
    fn ibtc_entries_follow_invalidation() {
        let mut c = CodeCache::new(1 << 16);
        let (t1, code1) = dummy_translation(&c, 0x1000, 4);
        let id1 = c.install(t1, code1);
        c.ibtc_insert(0x1000, id1);
        assert_eq!(c.ibtc.get(&0x1000), Some(&c.translation(id1).host_base));
        c.invalidate(id1);
        assert!(c.ibtc.is_empty());
    }

    #[test]
    fn flush_keeps_runtime() {
        let mut c = CodeCache::new(1 << 16);
        let rt_len = c.next_base();
        let (t1, code1) = dummy_translation(&c, 0x1000, 4);
        c.install(t1, code1);
        assert!(c.next_base() > rt_len);
        c.flush();
        assert_eq!(c.next_base(), rt_len);
        assert_eq!(c.lookup(0x1000), None);
        assert_eq!(c.flushes, 1);
        // Runtime entries still valid.
        assert!(c.sin_addr() < rt_len && c.cos_addr() < rt_len);
    }

    #[test]
    fn disassembly_is_readable() {
        let mut c = CodeCache::new(1 << 16);
        let (t, code) = dummy_translation(&c, 0x1000, 5);
        let id = c.install(t, code);
        let d = c.disassemble(id);
        assert!(d.contains("guest 0x00001000"));
        assert!(d.contains("chkpt"));
        assert!(d.contains("tolexit"));
        assert!(d.contains("exit 0"));
        c.invalidate(id);
        assert!(c.disassemble(id).contains("INVALID"));
    }

    #[test]
    fn snapshot_restore_round_trips_full_history() {
        let mut c = CodeCache::new(1 << 16);
        // History: install three translations (one with a chain slot and a
        // superblock shape), chain A→B, add IBTC entries, then invalidate
        // B so the arena holds dead space and an unpatched chain slot.
        let base_a = c.next_base();
        let code_a = vec![HInsn::Chkpt, HInsn::ChainSlot { id: 0 }, HInsn::TolExit { id: 1 }];
        let (mut ta, _) = dummy_translation(&c, 0x1000, 3);
        ta.encoded_words = code_a.len();
        ta.exits[0].deferred = Some(FlagsKind::Add);
        ta.exits[0].chain_slot = Some(base_a + 1);
        let id_a = c.install(ta, code_a);
        let (mut tb, code_b) = dummy_translation(&c, 0x2000, 6);
        tb.kind = TransKind::Sb { asserts: true };
        tb.shape = Some(SbShape {
            entry: 0x2000,
            bbs: vec![0x2000, 0x2040],
            dirs: vec![Some(true), None],
            unroll: 2,
        });
        tb.spec_fails = 3;
        let id_b = c.install(tb, code_b);
        let (tc, code_c) = dummy_translation(&c, 0x3000, 4);
        let id_c = c.install(tc, code_c);
        c.chain(id_a, base_a + 1, id_b);
        c.ibtc_insert(0x2000, id_b);
        c.ibtc_insert(0x3000, id_c);
        c.invalidate(id_b);

        let mut w = Wire::new();
        c.snapshot_into(&mut w);
        let bytes = w.finish();

        let mut c2 = CodeCache::new(1 << 16);
        let mut r = WireReader::new(&bytes);
        c2.restore_from(&mut r).unwrap();
        r.expect_end().unwrap();

        // Behavioural equivalence.
        assert_eq!(c2.lookup(0x1000), Some(id_a));
        assert_eq!(c2.lookup(0x2000), None, "invalidated B stays invalid");
        assert_eq!(c2.lookup(0x3000), Some(id_c));
        assert!(
            matches!(c2.arena[base_a + 1], HInsn::ChainSlot { id: 0 }),
            "chain into B was unpatched before snapshot"
        );
        assert_eq!(c2.ibtc.get(&0x3000), Some(&c2.translation(id_c).host_base));
        assert_eq!(c2.ibtc.get(&0x2000), None);
        assert_eq!(c2.translation(id_b).spec_fails, 3);
        assert_eq!(c2.translation(id_b).shape.as_ref().unwrap().bbs, vec![0x2000, 0x2040]);
        assert_eq!(c2.used_words(), c.used_words());
        // Invalidation after restore still unpatches chains correctly:
        // re-chain A→C and invalidate C on both caches.
        c.chain(id_a, base_a + 1, id_c);
        c2.chain(id_a, base_a + 1, id_c);
        c.invalidate(id_c);
        c2.invalidate(id_c);
        assert!(matches!(c2.arena[base_a + 1], HInsn::ChainSlot { id: 0 }));

        // Byte-identical re-snapshot.
        let mut w1 = Wire::new();
        c.snapshot_into(&mut w1);
        let mut w2 = Wire::new();
        c2.snapshot_into(&mut w2);
        assert_eq!(w1.finish(), w2.finish());
    }

    #[test]
    fn restore_rejects_wrong_capacity() {
        let mut c = CodeCache::new(1 << 16);
        let (t, code) = dummy_translation(&c, 0x1000, 4);
        c.install(t, code);
        let mut w = Wire::new();
        c.snapshot_into(&mut w);
        let bytes = w.finish();
        let mut other = CodeCache::new(1 << 12);
        assert!(other.restore_from(&mut WireReader::new(&bytes)).is_err());
    }

    #[test]
    fn overflow_accounting() {
        let mut c = CodeCache::new(64);
        assert!(!c.would_overflow(64));
        assert!(c.would_overflow(65));
        let (t1, code1) = dummy_translation(&c, 0x1000, 40);
        c.install(t1, code1);
        assert!(c.would_overflow(30));
    }
}
