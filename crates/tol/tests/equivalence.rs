//! Translation-equivalence tests: the DARCO correctness property.
//!
//! Any guest program must produce **identical architectural state** when
//! executed through the full Translation Optimization Layer (interpreter →
//! basic-block translations → speculative superblocks with scheduling and
//! register allocation) as when executed by the plain architectural
//! interpreter. This is exactly the validation the paper's x86 component
//! performs against the co-designed component.

use darco_guest::exec::{self, Next};
use darco_guest::insn::{AluOp, Insn, ShiftAmount, ShiftOp, UnaryOp};
use darco_guest::program::DEFAULT_CODE_BASE;
use darco_guest::reg::{Addr, Cond, Scale, Width};
use darco_guest::{Asm, Fpr, GuestProgram, GuestState, Gpr};
use darco_host::sink::NullSink;
use darco_ir::OptLevel;
use darco_tol::{flags, Tol, TolConfig, TolEvent};
use darco_guest::prng::{Rng, SmallRng};

/// Executes a program with the plain interpreter. Returns the final state
/// and retired instruction count.
fn run_reference(program: &GuestProgram, max: u64) -> (GuestState, u64) {
    let mut st = GuestState::boot(program);
    let mut n = 0;
    loop {
        assert!(n < max, "reference run did not halt");
        // Stop *at* halt/syscall, like the co-designed component does.
        match exec::fetch(&st.mem, st.eip) {
            Ok((Insn::Halt, _)) => return (st, n),
            Ok((Insn::Syscall, _)) => panic!("syscall in equivalence test"),
            _ => {}
        }
        match exec::step(&mut st) {
            Ok(info) => {
                n += 1;
                debug_assert!(!matches!(info.next, Next::Halt | Next::Syscall));
            }
            Err(f) => panic!("reference fault: {f}"),
        }
    }
}

/// Executes a program through the TOL. Returns the final state.
fn run_tol(program: &GuestProgram, cfg: TolConfig) -> (GuestState, Tol) {
    let mut st = GuestState::boot(program);
    let mut tol = Tol::new(cfg);
    loop {
        match tol.run(&mut st, u64::MAX, &mut NullSink) {
            TolEvent::Halted => break,
            TolEvent::PageFault { addr, .. } => {
                // Stand-in for the controller: map the page on demand.
                st.mem.map_zero(addr >> 12);
            }
            ev => panic!("unexpected TOL event: {ev:?}"),
        }
    }
    flags::resolve(&mut st, &mut tol.pending_flags);
    (st, tol)
}

/// Hot-threshold config so small tests exercise all three modes.
fn hot_cfg() -> TolConfig {
    TolConfig { bbm_threshold: 3, sbm_threshold: 12, ..TolConfig::default() }
}

fn assert_equivalent(program: &GuestProgram, cfg: TolConfig) -> Tol {
    let (ref_st, _) = run_reference(program, 100_000_000);
    let (tol_st, tol) = run_tol(program, cfg);
    if let Some(m) = ref_st.first_reg_mismatch(&tol_st, true) {
        panic!("register state diverged: {m}");
    }
    if let Some(addr) = ref_st.mem.first_difference(&tol_st.mem) {
        panic!("memory diverged at {addr:#010x}");
    }
    tol
}

#[test]
fn counting_loop_promotes_to_superblock_and_matches() {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Eax, 0);
    a.mov_ri(Gpr::Ecx, 500);
    let top = a.here();
    a.add_rr(Gpr::Eax, Gpr::Ecx);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    let p = a.into_program();
    let tol = assert_equivalent(&p, hot_cfg());
    assert!(tol.stats.translations_bb >= 1, "loop must reach BBM");
    assert!(tol.stats.translations_sb >= 1, "loop must reach SBM");
    let (_, _, sbm) = tol.mode_split();
    assert!(sbm > 0, "superblock must actually execute");
}

#[test]
fn memory_and_stack_heavy_program_matches() {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    // Fill an array with i*i via push/pop and memory operands, then sum it.
    a.mov_ri(Gpr::Esi, 0x0040_0000);
    a.mov_ri(Gpr::Ecx, 100);
    let fill = a.here();
    a.mov_rr(Gpr::Eax, Gpr::Ecx);
    a.imul(Gpr::Eax, Gpr::Ecx);
    a.push(Gpr::Eax);
    a.pop(Gpr::Edx);
    a.store(Addr::base_index(Gpr::Esi, Gpr::Ecx, Scale::S4), Gpr::Edx, Width::D);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, fill);
    a.mov_ri(Gpr::Ebx, 0);
    a.mov_ri(Gpr::Ecx, 100);
    let sum = a.here();
    a.emit(Insn::AluRM {
        op: AluOp::Add,
        dst: Gpr::Ebx,
        addr: Addr::base_index(Gpr::Esi, Gpr::Ecx, Scale::S4),
    });
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, sum);
    a.halt();
    let p = a.into_program().with_data(vec![0; 1024]);
    assert_equivalent(&p, hot_cfg());
}

#[test]
fn flags_across_block_boundaries_match() {
    // cmp in one block; adc/setcc consuming flags in the next block.
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Ecx, 300);
    let top = a.here();
    a.mov_rr(Gpr::Eax, Gpr::Ecx);
    a.alu_ri(AluOp::And, Gpr::Eax, 0xFF);
    a.cmp_ri(Gpr::Eax, 0x80); // sets CF when eax < 0x80
    let l = a.label();
    a.jcc_to(Cond::B, l); // block boundary; flags live across
    a.emit(Insn::Unary { op: UnaryOp::Inc, dst: Gpr::Ebx }); // preserves CF
    a.bind(l);
    a.alu_ri(AluOp::Adc, Gpr::Edx, 0); // consumes CF across blocks
    a.emit(Insn::Setcc { cc: Cond::B, dst: Gpr::Esi });
    a.add_rr(Gpr::Edi, Gpr::Esi);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    let p = a.into_program();
    assert_equivalent(&p, hot_cfg());
}

#[test]
fn fp_and_trig_kernel_matches_bit_exactly() {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.fld_i(Fpr::new(0), 0.0); // accumulator
    a.fld_i(Fpr::new(1), 0.1); // step
    a.fld_i(Fpr::new(2), 0.0); // x
    a.mov_ri(Gpr::Ecx, 200);
    let top = a.here();
    a.emit(Insn::FmovRR { dst: Fpr::new(3), src: Fpr::new(2) });
    a.emit(Insn::Funary { op: darco_guest::FUnOp::Sin, dst: Fpr::new(3) });
    a.emit(Insn::Fbin { op: darco_guest::FBinOp::Add, dst: Fpr::new(0), src: Fpr::new(3) });
    a.emit(Insn::FmovRR { dst: Fpr::new(4), src: Fpr::new(2) });
    a.emit(Insn::Funary { op: darco_guest::FUnOp::Cos, dst: Fpr::new(4) });
    a.emit(Insn::Fbin { op: darco_guest::FBinOp::Mul, dst: Fpr::new(4), src: Fpr::new(4) });
    a.emit(Insn::Fbin { op: darco_guest::FBinOp::Add, dst: Fpr::new(0), src: Fpr::new(4) });
    a.emit(Insn::Fbin { op: darco_guest::FBinOp::Add, dst: Fpr::new(2), src: Fpr::new(1) });
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    let p = a.into_program();
    assert_equivalent(&p, hot_cfg());
}

#[test]
fn calls_returns_and_indirect_jumps_match() {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    let func = a.label();
    let after = a.label();
    a.mov_ri(Gpr::Ecx, 150);
    let top = a.here();
    a.call_to(func);
    // `sub` (not `dec`) so the return target defines all flags and is
    // eligible for the global IBTC (a `dec`-headed block passes CF
    // through and may only be entered with resolved flags).
    a.alu_ri(AluOp::Sub, Gpr::Ecx, 1);
    a.jcc_to(Cond::Ne, top);
    a.jmp_to(after);
    a.bind(func);
    a.add_rr(Gpr::Eax, Gpr::Ecx);
    a.emit(Insn::Shift { op: ShiftOp::Shl, dst: Gpr::Ebx, amount: ShiftAmount::Imm(1) });
    a.alu_ri(AluOp::Xor, Gpr::Ebx, 0x5A5A);
    a.ret();
    a.bind(after);
    a.halt();
    let p = a.into_program();
    let tol = assert_equivalent(&p, hot_cfg());
    assert!(tol.stats.ibtc_inserts > 0 || tol.emu.counters.ibtc_hits > 0);
}

#[test]
fn string_instructions_and_rep_fallback_match() {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Ecx, 60);
    let top = a.here();
    // Non-rep strings are translated; rep strings hit the IM safety net.
    a.mov_ri(Gpr::Esi, 0x0040_0000);
    a.mov_ri(Gpr::Edi, 0x0040_0400);
    a.emit(Insn::Movs { width: Width::D, rep: false });
    a.emit(Insn::Stos { width: Width::B, rep: false });
    a.mov_ri(Gpr::Esi, 0x0040_0000);
    a.mov_ri(Gpr::Edi, 0x0040_0800);
    a.push(Gpr::Ecx);
    a.mov_ri(Gpr::Ecx, 16);
    a.emit(Insn::Movs { width: Width::D, rep: true });
    a.pop(Gpr::Ecx);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    let p = a.into_program().with_data((0u8..255).collect());
    assert_equivalent(&p, hot_cfg());
}

#[test]
fn speculation_failures_recover_through_interpreter() {
    // A loop whose inner branch alternates (bias ~50% but forced into a
    // superblock via a tiny edge-bias threshold) so asserts keep failing
    // and the superblock gets recreated multi-exit.
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Ecx, 400);
    let top = a.here();
    a.emit(Insn::TestRI { a: Gpr::Ecx, imm: 1 });
    let odd = a.label();
    let join = a.label();
    a.jcc_to(Cond::Ne, odd);
    a.alu_ri(AluOp::Add, Gpr::Eax, 3);
    a.jmp_to(join);
    a.bind(odd);
    a.alu_ri(AluOp::Xor, Gpr::Ebx, 0x77);
    a.bind(join);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    let p = a.into_program();
    let cfg = TolConfig {
        bbm_threshold: 3,
        sbm_threshold: 10,
        edge_bias: 0.4, // deliberately low: misspeculate
        min_reach_prob: 0.1,
        assert_fail_limit: 4,
        ..TolConfig::default()
    };
    let tol = assert_equivalent(&p, cfg);
    assert!(tol.stats.spec_rollbacks > 0, "test must exercise rollbacks");
    assert!(tol.stats.recreations > 0, "failing superblock must be recreated multi-exit");
}

#[test]
fn unrolled_loop_with_non_multiple_trip_count_matches() {
    // 403 iterations with unroll factor 4: the last partial group must
    // assert-fail and recover.
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Ecx, 403);
    a.mov_ri(Gpr::Eax, 0);
    let top = a.here();
    a.add_rr(Gpr::Eax, Gpr::Ecx);
    a.alu_ri(AluOp::Xor, Gpr::Eax, 0x1111);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    let p = a.into_program();
    let tol = assert_equivalent(&p, hot_cfg());
    assert!(tol.stats.translations_sb >= 1);
}

#[test]
fn every_opt_level_is_equivalent() {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Ecx, 120);
    a.mov_ri(Gpr::Esi, 0x0040_0000);
    let top = a.here();
    a.load(Gpr::Eax, Addr::base_disp(Gpr::Esi, 0));
    a.alu_ri(AluOp::Add, Gpr::Eax, 7);
    a.store(Addr::base_disp(Gpr::Esi, 0), Gpr::Eax, Width::D);
    a.load(Gpr::Ebx, Addr::base_disp(Gpr::Esi, 4)); // RLE candidate
    a.load(Gpr::Edx, Addr::base_disp(Gpr::Esi, 4));
    a.add_rr(Gpr::Ebx, Gpr::Edx);
    a.store(Addr::base_disp(Gpr::Esi, 8), Gpr::Ebx, Width::D);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    let p = a.into_program().with_data(vec![1; 64]);
    for lvl in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
        let cfg = TolConfig { opt_level: lvl, bbm_threshold: 3, sbm_threshold: 10, ..TolConfig::default() };
        assert_equivalent(&p, cfg);
        // Multi-exit superblocks from the start (regression: exit stubs
        // must read branch-time locations even under spill pressure).
        let cfg = TolConfig {
            opt_level: lvl,
            speculation: false,
            bbm_threshold: 3,
            sbm_threshold: 10,
            ..TolConfig::default()
        };
        assert_equivalent(&p, cfg);
    }
}

#[test]
fn strict_flags_mode_is_equivalent() {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Ecx, 100);
    let top = a.here();
    a.alu_ri(AluOp::Add, Gpr::Eax, 13);
    a.cmp_ri(Gpr::Eax, 1000);
    a.emit(Insn::Setcc { cc: Cond::G, dst: Gpr::Ebx });
    a.add_rr(Gpr::Edx, Gpr::Ebx);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    let p = a.into_program();
    let cfg = TolConfig { strict_flags: true, bbm_threshold: 3, sbm_threshold: 10, ..TolConfig::default() };
    assert_equivalent(&p, cfg);
}

#[test]
fn chaining_and_ibtc_disabled_still_equivalent() {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Ecx, 90);
    let top = a.here();
    a.inc(Gpr::Eax);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    let p = a.into_program();
    let cfg = TolConfig {
        chaining: false,
        ibtc: false,
        bbm_threshold: 3,
        sbm_threshold: 10,
        ..TolConfig::default()
    };
    assert_equivalent(&p, cfg);
}

// ---------------------------------------------------------------------------
// Randomized structured programs: the heavyweight equivalence sweep.

/// Generates a random but well-structured program: a chain of loops with
/// random straight-line bodies over registers and a scratch array.
fn random_program(seed: u64) -> GuestProgram {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    let scratch = 0x0040_0000u32;
    let nloops = rng.gen_range(1..4);
    for _ in 0..nloops {
        a.mov_ri(Gpr::Ecx, rng.gen_range(20..200));
        let top = a.here();
        let body_len = rng.gen_range(2..12);
        for _ in 0..body_len {
            random_body_insn(&mut rng, &mut a, scratch);
        }
        a.dec(Gpr::Ecx);
        a.jcc_to(Cond::Ne, top);
    }
    a.halt();
    a.into_program().with_data(vec![0x3C; 4096])
}

fn random_body_insn(rng: &mut SmallRng, a: &mut Asm, scratch: u32) {
    let reg = |rng: &mut SmallRng| {
        // Avoid ESP/ECX (stack discipline, loop counter).
        [Gpr::Eax, Gpr::Ebx, Gpr::Edx, Gpr::Esi, Gpr::Edi][rng.gen_range(0..5)]
    };
    let addr = |rng: &mut SmallRng| Addr::abs(scratch + rng.gen_range(0..64) * 4);
    match rng.gen_range(0..14) {
        0 => a.mov_ri(reg(rng), rng.gen()),
        1 => a.mov_rr(reg(rng), reg(rng)),
        2 => a.alu_rr(
            AluOp::from_index(rng.gen_range(0..7)),
            reg(rng),
            reg(rng),
        ),
        3 => a.alu_ri(AluOp::from_index(rng.gen_range(0..7)), reg(rng), rng.gen_range(-100..100)),
        4 => a.load(reg(rng), addr(rng)),
        5 => a.store(addr(rng), reg(rng), Width::D),
        6 => a.emit(Insn::AluMR {
            op: AluOp::from_index(rng.gen_range(0..2)),
            addr: addr(rng),
            src: reg(rng),
        }),
        7 => {
            a.push(reg(rng));
            a.pop(reg(rng));
        }
        8 => a.emit(Insn::Unary {
            op: UnaryOp::from_index(rng.gen_range(0..4)),
            dst: reg(rng),
        }),
        9 => a.emit(Insn::Shift {
            op: [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar][rng.gen_range(0..3)],
            dst: reg(rng),
            amount: ShiftAmount::Imm(rng.gen_range(0..31)),
        }),
        10 => a.imul(reg(rng), reg(rng)),
        11 => {
            a.cmp_rr(reg(rng), reg(rng));
            a.emit(Insn::Setcc {
                cc: Cond::from_index(rng.gen_range(0..16)),
                dst: reg(rng),
            });
        }
        12 => a.emit(Insn::Cmov {
            cc: Cond::from_index(rng.gen_range(0..16)),
            dst: reg(rng),
            src: reg(rng),
        }),
        _ => a.lea(
            reg(rng),
            Addr::full(reg(rng), reg(rng), Scale::S4, rng.gen_range(-64..64)),
        ),
    }
}

#[test]
fn randomized_programs_are_equivalent_across_the_full_stack() {
    for seed in 0..40 {
        let p = random_program(seed);
        let (ref_st, _) = run_reference(&p, 100_000_000);
        let (tol_st, mut tol) = run_tol(&p, hot_cfg());
        flags::resolve(&mut tol_st.clone(), &mut tol.pending_flags);
        if let Some(m) = ref_st.first_reg_mismatch(&tol_st, true) {
            panic!("seed {seed}: register divergence: {m}");
        }
        if let Some(addr) = ref_st.mem.first_difference(&tol_st.mem) {
            panic!("seed {seed}: memory divergence at {addr:#010x}");
        }
    }
}
