//! Timing-simulator configuration — the paper's §V-C parameter list:
//! "issue width, instruction queue size, numbers of execution units and
//! latencies, number of physical registers (scalar/vector), branch
//! predictor and BTB sizes, cache and TLB sizes/latencies, numbers of
//! memory read/write ports and vector length for SIMD units".


/// One cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line: u32,
    /// Hit latency in cycles.
    pub latency: u32,
}

/// One TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (fully associative, LRU).
    pub entries: u32,
    /// Miss penalty added when this level misses into the next.
    pub miss_penalty: u32,
}

/// Full core + memory-hierarchy configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions issued per cycle (in-order) / dispatched (OoO).
    pub issue_width: u32,
    /// Instruction queue size (front-end/back-end decoupling).
    pub iq_size: u32,
    /// Front-end depth in cycles (fetch→issue minimum).
    pub frontend_depth: u32,
    /// Number of simple integer units.
    pub simple_units: u32,
    /// Number of complex (multiply/divide) units.
    pub complex_units: u32,
    /// Number of FP/vector units.
    pub fp_units: u32,
    /// Memory read ports.
    pub mem_read_ports: u32,
    /// Memory write ports.
    pub mem_write_ports: u32,
    /// Scalar physical registers (in-order: architectural; kept for
    /// config fidelity with the paper's parameter list).
    pub phys_regs: u32,
    /// Vector physical registers.
    pub vec_phys_regs: u32,
    /// SIMD vector length in 64-bit lanes.
    pub vector_len: u32,
    /// Integer multiply latency.
    pub lat_mul: u32,
    /// Integer divide latency.
    pub lat_div: u32,
    /// FP add/compare/convert latency.
    pub lat_fpadd: u32,
    /// FP multiply latency.
    pub lat_fpmul: u32,
    /// FP divide latency.
    pub lat_fpdiv: u32,
    /// FP square-root latency.
    pub lat_fpsqrt: u32,
    /// gshare history bits (PHT has `2^bits` 2-bit counters).
    pub gshare_bits: u32,
    /// BTB entries (direct mapped).
    pub btb_entries: u32,
    /// Branch misprediction penalty (pipeline refill).
    pub mispredict_penalty: u32,
    /// L1 instruction cache.
    pub il1: CacheConfig,
    /// L1 data cache.
    pub dl1: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Memory latency after an L2 miss.
    pub mem_latency: u32,
    /// L1 instruction TLB.
    pub itlb: TlbConfig,
    /// L1 data TLB.
    pub dtlb: TlbConfig,
    /// Shared L2 TLB.
    pub l2tlb: TlbConfig,
    /// Enable the stride data prefetcher.
    pub prefetch: bool,
    /// Prefetch degree (lines fetched ahead).
    pub prefetch_degree: u32,
    /// Out-of-order extension: reorder-buffer size (used by `OooCore`).
    pub rob_size: u32,
    /// Core clock in MHz (power reporting only).
    pub clock_mhz: u32,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            fetch_width: 4,
            issue_width: 2,
            iq_size: 32,
            frontend_depth: 5,
            simple_units: 2,
            complex_units: 1,
            fp_units: 1,
            mem_read_ports: 1,
            mem_write_ports: 1,
            phys_regs: 64,
            vec_phys_regs: 16,
            vector_len: 4,
            lat_mul: 4,
            lat_div: 12,
            lat_fpadd: 3,
            lat_fpmul: 4,
            lat_fpdiv: 16,
            lat_fpsqrt: 20,
            gshare_bits: 12,
            btb_entries: 1024,
            mispredict_penalty: 8,
            il1: CacheConfig { size: 32 << 10, ways: 4, line: 64, latency: 1 },
            dl1: CacheConfig { size: 32 << 10, ways: 4, line: 64, latency: 2 },
            l2: CacheConfig { size: 512 << 10, ways: 8, line: 64, latency: 12 },
            mem_latency: 150,
            itlb: TlbConfig { entries: 32, miss_penalty: 8 },
            dtlb: TlbConfig { entries: 64, miss_penalty: 8 },
            l2tlb: TlbConfig { entries: 512, miss_penalty: 40 },
            prefetch: true,
            prefetch_degree: 2,
            rob_size: 32,
            clock_mhz: 1500,
        }
    }
}

impl TimingConfig {
    /// A wide in-order configuration (the §III design-choice study).
    pub fn wide_inorder() -> TimingConfig {
        TimingConfig { issue_width: 4, fetch_width: 6, simple_units: 4, ..Default::default() }
    }

    /// A narrow out-of-order configuration for the same study.
    pub fn narrow_ooo() -> TimingConfig {
        TimingConfig { issue_width: 2, fetch_width: 4, rob_size: 48, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_consistent() {
        let c = TimingConfig::default();
        assert!(c.issue_width <= c.fetch_width);
        assert!(c.dl1.size < c.l2.size);
        assert_eq!(c.dl1.line, c.l2.line);
        let back = c.clone();
        assert_eq!(back, c);
    }
}
