//! Branch prediction: gshare direction predictor + direct-mapped BTB
//! (the paper's front-end: "equipped with a BTB and gshare branch
//! predictor").

/// gshare: global history XOR PC indexes a table of 2-bit counters.
#[derive(Debug, Clone)]
pub struct Gshare {
    pht: Vec<u8>,
    mask: u64,
    ghr: u64,
    /// Conditional-branch predictions made.
    pub predictions: u64,
    /// Mispredictions.
    pub mispredicts: u64,
}

impl Gshare {
    /// Creates a predictor with `bits` of history (2^bits counters).
    pub fn new(bits: u32) -> Gshare {
        Gshare {
            pht: vec![1u8; 1 << bits], // weakly not-taken
            mask: (1u64 << bits) - 1,
            ghr: 0,
            predictions: 0,
            mispredicts: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc ^ self.ghr) & self.mask) as usize
    }

    /// Predicts the direction for a conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.pht[self.index(pc)] >= 2
    }

    /// Pure probe: would [`Gshare::update`] with this outcome count as a
    /// correct prediction? No state is touched.
    pub fn peek_correct(&self, pc: u64, taken: bool) -> bool {
        (self.pht[self.index(pc)] >= 2) == taken
    }

    /// Zeroes the global history register (PHT and counters are kept).
    /// The static annotator uses this between its training passes so the
    /// PHT entries trained by one pass are the ones indexed by the next.
    pub fn reset_history(&mut self) {
        self.ghr = 0;
    }

    /// Updates with the actual outcome; returns whether the prediction
    /// was correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let pred = self.pht[idx] >= 2;
        let ctr = &mut self.pht[idx];
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        self.ghr = (self.ghr << 1) | taken as u64;
        self.predictions += 1;
        if pred != taken {
            self.mispredicts += 1;
        }
        pred == taken
    }

    /// Serializes the predictor state (PHT, history, stat counters).
    pub fn snapshot_into(&self, w: &mut darco_guest::Wire) {
        w.put_bytes(&self.pht);
        w.put_u64(self.ghr);
        w.put_u64(self.predictions);
        w.put_u64(self.mispredicts);
    }

    /// Restores from a [`Gshare::snapshot_into`] stream; the PHT size must
    /// match this predictor's configuration.
    ///
    /// # Errors
    /// Wire decode failures or a PHT size mismatch.
    pub fn restore_from(&mut self, r: &mut darco_guest::WireReader<'_>) -> Result<(), darco_guest::WireError> {
        let pht = r.get_bytes()?;
        if pht.len() != self.pht.len() {
            return Err(darco_guest::WireError::Malformed {
                at: r.pos(),
                what: "gshare snapshot geometry mismatch",
            });
        }
        self.pht = pht;
        self.ghr = r.get_u64()?;
        self.predictions = r.get_u64()?;
        self.mispredicts = r.get_u64()?;
        Ok(())
    }
}

/// Direct-mapped branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (pc tag, target)
    mask: u64,
    /// Lookups.
    pub lookups: u64,
    /// Target misses (unknown or wrong target).
    pub target_misses: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots (power of two).
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: u32) -> Btb {
        assert!(entries.is_power_of_two());
        Btb {
            entries: vec![None; entries as usize],
            mask: (entries - 1) as u64,
            lookups: 0,
            target_misses: 0,
        }
    }

    /// Pure probe: does the slot for `pc` already hold exactly
    /// `(pc, target)`, i.e. would a lookup+update pair cause no redirect
    /// and change no entry? No state is touched.
    pub fn peek_same(&self, pc: u64, target: u64) -> bool {
        matches!(self.entries[(pc & self.mask) as usize], Some((tag, t)) if tag == pc && t == target)
    }

    /// Looks up the predicted target for a branch at `pc`; `None` if
    /// unknown. Call [`Btb::update`] with the real target afterwards.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.lookups += 1;
        match self.entries[(pc & self.mask) as usize] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Records the actual target; returns true if the prediction (or
    /// absence of one) was wrong — a front-end redirect.
    pub fn update(&mut self, pc: u64, target: u64) -> bool {
        let slot = (pc & self.mask) as usize;
        let wrong = match self.entries[slot] {
            Some((tag, t)) if tag == pc => t != target,
            _ => true,
        };
        if wrong {
            self.target_misses += 1;
        }
        self.entries[slot] = Some((pc, target));
        wrong
    }

    /// Serializes the BTB state (entries in slot order, stat counters).
    pub fn snapshot_into(&self, w: &mut darco_guest::Wire) {
        w.put_usize(self.entries.len());
        for e in &self.entries {
            match e {
                Some((tag, target)) => {
                    w.put_bool(true);
                    w.put_u64(*tag);
                    w.put_u64(*target);
                }
                None => w.put_bool(false),
            }
        }
        w.put_u64(self.lookups);
        w.put_u64(self.target_misses);
    }

    /// Restores from a [`Btb::snapshot_into`] stream; the entry count must
    /// match this BTB's configuration.
    ///
    /// # Errors
    /// Wire decode failures or an entry-count mismatch.
    pub fn restore_from(&mut self, r: &mut darco_guest::WireReader<'_>) -> Result<(), darco_guest::WireError> {
        let n = r.get_usize()?;
        if n != self.entries.len() {
            return Err(darco_guest::WireError::Malformed {
                at: r.pos(),
                what: "btb snapshot geometry mismatch",
            });
        }
        for e in &mut self.entries {
            *e = if r.get_bool()? {
                let tag = r.get_u64()?;
                let target = r.get_u64()?;
                Some((tag, target))
            } else {
                None
            };
        }
        self.lookups = r.get_u64()?;
        self.target_misses = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_a_bias() {
        let mut g = Gshare::new(10);
        for _ in 0..500 {
            g.update(0x40, true);
        }
        assert!(g.predict(0x40));
        let rate = g.mispredicts as f64 / g.predictions as f64;
        assert!(rate < 0.05, "biased branch should be learned: {rate}");
    }

    #[test]
    fn gshare_struggles_with_random_pattern() {
        let mut g = Gshare::new(10);
        let mut x = 0x12345u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            g.update(0x80, (x >> 33) & 1 == 1);
        }
        let rate = g.mispredicts as f64 / g.predictions as f64;
        assert!(rate > 0.3, "random branches mispredict often: {rate}");
    }

    #[test]
    fn gshare_learns_alternating_pattern_through_history() {
        let mut g = Gshare::new(10);
        for i in 0..2000 {
            g.update(0x100, i % 2 == 0);
        }
        // Last 1000: should be nearly perfect thanks to history.
        let mut wrong = 0;
        for i in 2000..3000 {
            if !g.update(0x100, i % 2 == 0) {
                wrong += 1;
            }
        }
        assert!(wrong < 50, "history should capture alternation: {wrong}");
    }

    #[test]
    fn btb_caches_targets() {
        let mut b = Btb::new(16);
        assert_eq!(b.lookup(0x40), None);
        assert!(b.update(0x40, 0x100), "first sighting is a redirect");
        assert_eq!(b.lookup(0x40), Some(0x100));
        assert!(!b.update(0x40, 0x100));
        assert!(b.update(0x40, 0x200), "target change redirects");
    }
}
