//! Stride data prefetcher (paper §V-C: "two level TLB and cache
//! hierarchies with a stride data prefetcher").

/// PC-indexed stride prefetcher with 2-bit confidence.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<Entry>,
    mask: u64,
    degree: u32,
    /// Prefetches issued.
    pub issued: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    tag: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

impl StridePrefetcher {
    /// Creates a prefetcher with a 256-entry table.
    pub fn new(degree: u32) -> StridePrefetcher {
        StridePrefetcher { table: vec![Entry::default(); 256], mask: 255, degree, issued: 0 }
    }

    /// Trains on a load at `pc` touching `addr`; returns the addresses to
    /// prefetch (empty while confidence is low).
    pub fn train(&mut self, pc: u64, addr: u64) -> Vec<u64> {
        let e = &mut self.table[(pc & self.mask) as usize];
        let mut out = Vec::new();
        if e.tag == pc {
            let stride = addr as i64 - e.last_addr as i64;
            if stride == e.stride && stride != 0 {
                e.confidence = (e.confidence + 1).min(3);
            } else {
                e.stride = stride;
                e.confidence = e.confidence.saturating_sub(1);
            }
            if e.confidence >= 2 && e.stride != 0 {
                for k in 1..=self.degree as i64 {
                    let p = addr as i64 + e.stride * k;
                    if p > 0 {
                        out.push(p as u64);
                        self.issued += 1;
                    }
                }
            }
        } else {
            *e = Entry { tag: pc, last_addr: addr, stride: 0, confidence: 0 };
        }
        e.last_addr = addr;
        e.tag = pc;
        out
    }

    /// Pure probe: would training on `(pc, addr)` issue any prefetches?
    /// No state is touched. When this returns false, a subsequent
    /// [`StridePrefetcher::train`] call is guaranteed to return an empty
    /// list (and is the way to commit the training update).
    pub fn would_issue(&self, pc: u64, addr: u64) -> bool {
        let e = self.table[(pc & self.mask) as usize];
        if e.tag != pc {
            return false;
        }
        let stride = addr as i64 - e.last_addr as i64;
        let confidence = if stride == e.stride && stride != 0 {
            (e.confidence + 1).min(3)
        } else {
            e.confidence.saturating_sub(1)
        };
        // `stride` is the value train() would leave in the entry either way.
        if confidence >= 2 && stride != 0 {
            (1..=self.degree as i64).any(|k| addr as i64 + stride * k > 0)
        } else {
            false
        }
    }

    /// Serializes the prefetcher state (training table, issue counter).
    pub fn snapshot_into(&self, w: &mut darco_guest::Wire) {
        w.put_usize(self.table.len());
        for e in &self.table {
            w.put_u64(e.tag);
            w.put_u64(e.last_addr);
            w.put_i64(e.stride);
            w.put_u8(e.confidence);
        }
        w.put_u64(self.issued);
    }

    /// Restores from a [`StridePrefetcher::snapshot_into`] stream.
    ///
    /// # Errors
    /// Wire decode failures or a table-size mismatch.
    pub fn restore_from(&mut self, r: &mut darco_guest::WireReader<'_>) -> Result<(), darco_guest::WireError> {
        let n = r.get_usize()?;
        if n != self.table.len() {
            return Err(darco_guest::WireError::Malformed {
                at: r.pos(),
                what: "prefetcher snapshot geometry mismatch",
            });
        }
        for e in &mut self.table {
            e.tag = r.get_u64()?;
            e.last_addr = r.get_u64()?;
            e.stride = r.get_i64()?;
            e.confidence = r.get_u8()?;
        }
        self.issued = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stride_triggers_prefetch() {
        let mut p = StridePrefetcher::new(2);
        let mut got = Vec::new();
        for i in 0..8u64 {
            got = p.train(0x10, 0x1000 + i * 64);
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], 0x1000 + 8 * 64);
        assert_eq!(got[1], 0x1000 + 9 * 64);
    }

    #[test]
    fn would_issue_agrees_with_train() {
        let mut p = StridePrefetcher::new(2);
        let mut x = 7u64;
        for i in 0..4_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pc = x % 32;
            // Mix of strided and erratic access patterns per pc.
            let addr = if pc.is_multiple_of(2) { 0x1000 + i * 64 } else { x % (1 << 20) };
            let predicted = p.would_issue(pc, addr);
            let issued = !p.train(pc, addr).is_empty();
            assert_eq!(predicted, issued, "at step {i} pc {pc}");
        }
        assert!(p.issued > 0, "the strided half must have issued prefetches");
    }

    #[test]
    fn random_pattern_stays_quiet() {
        let mut p = StridePrefetcher::new(2);
        let addrs = [0x100u64, 0x9000, 0x44, 0x7777, 0x2100, 0x80];
        let mut total = 0;
        for (i, a) in addrs.iter().cycle().take(60).enumerate() {
            total += p.train(0x20, a + i as u64).len();
        }
        assert_eq!(total, 0, "no stable stride, no prefetches");
    }
}
