//! Out-of-order core extension — the paper's §III design-choice study
//! ("wide in-order or narrow out-of-order cores").
//!
//! Same trace interface and memory hierarchy as [`crate::InOrderCore`],
//! but instructions issue as soon as their operands and a functional unit
//! are available within a ROB window, and retire in order. On identical
//! instruction streams this isolates the value of dynamic scheduling —
//! which is exactly the comparison the paper proposes (ablation A4).

use crate::bpred::{Btb, Gshare};
use crate::cache::{CacheModel, TlbModel};
use crate::config::TimingConfig;
use crate::core::TimingStats;
use crate::prefetch::StridePrefetcher;
use darco_host::sink::{EventKind, InsnSink, RetireEvent};
use std::collections::HashMap;

/// The out-of-order core model.
#[derive(Debug)]
pub struct OooCore {
    cfg: TimingConfig,
    fe_cycle: u64,
    fe_count: u32,
    last_fetch_line: u64,
    redirect_until: u64,
    rob_ring: Vec<u64>, // retire cycles of the last rob_size insns
    rob_pos: usize,
    last_retire: u64,
    scoreboard: [u64; 128],
    usage: HashMap<u64, (u32, u32, u32, u32, u32, u32)>, // per-cycle counters
    usage_floor: u64,
    last_complete: u64,
    gshare: Gshare,
    btb: Btb,
    il1: CacheModel,
    dl1: CacheModel,
    l2: CacheModel,
    itlb: TlbModel,
    dtlb: TlbModel,
    l2tlb: TlbModel,
    prefetcher: StridePrefetcher,
    insns: u64,
    loads: u64,
    stores: u64,
    int_ops: u64,
    mul_ops: u64,
    div_ops: u64,
    fp_ops: u64,
    reg_reads: u64,
    reg_writes: u64,
}

impl OooCore {
    /// Creates an out-of-order core.
    pub fn new(cfg: TimingConfig) -> OooCore {
        OooCore {
            fe_cycle: 0,
            fe_count: 0,
            last_fetch_line: u64::MAX,
            redirect_until: 0,
            rob_ring: vec![0; cfg.rob_size.max(1) as usize],
            rob_pos: 0,
            last_retire: 0,
            scoreboard: [0; 128],
            usage: HashMap::new(),
            usage_floor: 0,
            last_complete: 0,
            gshare: Gshare::new(cfg.gshare_bits),
            btb: Btb::new(cfg.btb_entries),
            il1: CacheModel::new(&cfg.il1),
            dl1: CacheModel::new(&cfg.dl1),
            l2: CacheModel::new(&cfg.l2),
            itlb: TlbModel::new(&cfg.itlb),
            dtlb: TlbModel::new(&cfg.dtlb),
            l2tlb: TlbModel::new(&cfg.l2tlb),
            prefetcher: StridePrefetcher::new(cfg.prefetch_degree),
            insns: 0,
            loads: 0,
            stores: 0,
            int_ops: 0,
            mul_ops: 0,
            div_ops: 0,
            fp_ops: 0,
            reg_reads: 0,
            reg_writes: 0,
            cfg,
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TimingStats {
        TimingStats {
            insns: self.insns,
            cycles: self.last_retire.max(self.last_complete).max(self.fe_cycle),
            loads: self.loads,
            stores: self.stores,
            int_ops: self.int_ops,
            mul_ops: self.mul_ops,
            div_ops: self.div_ops,
            fp_ops: self.fp_ops,
            branches: self.gshare.predictions,
            mispredicts: self.gshare.mispredicts,
            btb_redirects: self.btb.target_misses,
            il1_accesses: self.il1.accesses,
            il1_misses: self.il1.misses,
            dl1_accesses: self.dl1.accesses,
            dl1_misses: self.dl1.misses,
            l2_accesses: self.l2.accesses,
            l2_misses: self.l2.misses,
            itlb_misses: self.itlb.misses,
            dtlb_misses: self.dtlb.misses,
            prefetches: self.prefetcher.issued,
            reg_reads: self.reg_reads,
            reg_writes: self.reg_writes,
        }
    }

    /// Serializes the full microarchitectural state. The per-cycle usage
    /// map travels in sorted-key order so identical state yields identical
    /// bytes; configuration is not serialized (restore requires a core
    /// built from the same [`TimingConfig`]).
    pub fn snapshot_into(&self, w: &mut darco_guest::Wire) {
        w.put_u64(self.fe_cycle);
        w.put_u32(self.fe_count);
        w.put_u64(self.last_fetch_line);
        w.put_u64(self.redirect_until);
        w.put_usize(self.rob_ring.len());
        for &c in &self.rob_ring {
            w.put_u64(c);
        }
        w.put_usize(self.rob_pos);
        w.put_u64(self.last_retire);
        for &s in &self.scoreboard {
            w.put_u64(s);
        }
        let mut cycles: Vec<u64> = self.usage.keys().copied().collect();
        cycles.sort_unstable();
        w.put_usize(cycles.len());
        for c in cycles {
            let u = self.usage[&c];
            w.put_u64(c);
            for v in [u.0, u.1, u.2, u.3, u.4, u.5] {
                w.put_u32(v);
            }
        }
        w.put_u64(self.usage_floor);
        w.put_u64(self.last_complete);
        self.gshare.snapshot_into(w);
        self.btb.snapshot_into(w);
        self.il1.snapshot_into(w);
        self.dl1.snapshot_into(w);
        self.l2.snapshot_into(w);
        self.itlb.snapshot_into(w);
        self.dtlb.snapshot_into(w);
        self.l2tlb.snapshot_into(w);
        self.prefetcher.snapshot_into(w);
        for v in [
            self.insns,
            self.loads,
            self.stores,
            self.int_ops,
            self.mul_ops,
            self.div_ops,
            self.fp_ops,
            self.reg_reads,
            self.reg_writes,
        ] {
            w.put_u64(v);
        }
    }

    /// Restores microarchitectural state from an
    /// [`OooCore::snapshot_into`] stream. `self` must have been built from
    /// the same configuration as the snapshotted core.
    ///
    /// # Errors
    /// Wire decode failures or geometry mismatches against this core's
    /// configuration.
    pub fn restore_from(&mut self, r: &mut darco_guest::WireReader<'_>) -> Result<(), darco_guest::WireError> {
        self.fe_cycle = r.get_u64()?;
        self.fe_count = r.get_u32()?;
        self.last_fetch_line = r.get_u64()?;
        self.redirect_until = r.get_u64()?;
        let n = r.get_usize()?;
        if n != self.rob_ring.len() {
            return Err(darco_guest::WireError::Malformed {
                at: r.pos(),
                what: "rob ring size mismatch",
            });
        }
        for c in &mut self.rob_ring {
            *c = r.get_u64()?;
        }
        self.rob_pos = r.get_usize()?;
        if self.rob_pos >= self.rob_ring.len() {
            return Err(darco_guest::WireError::Malformed {
                at: r.pos(),
                what: "rob position out of range",
            });
        }
        self.last_retire = r.get_u64()?;
        for s in &mut self.scoreboard {
            *s = r.get_u64()?;
        }
        let entries = r.get_usize()?;
        self.usage.clear();
        for _ in 0..entries {
            let c = r.get_u64()?;
            let u = (
                r.get_u32()?,
                r.get_u32()?,
                r.get_u32()?,
                r.get_u32()?,
                r.get_u32()?,
                r.get_u32()?,
            );
            self.usage.insert(c, u);
        }
        self.usage_floor = r.get_u64()?;
        self.last_complete = r.get_u64()?;
        self.gshare.restore_from(r)?;
        self.btb.restore_from(r)?;
        self.il1.restore_from(r)?;
        self.dl1.restore_from(r)?;
        self.l2.restore_from(r)?;
        self.itlb.restore_from(r)?;
        self.dtlb.restore_from(r)?;
        self.l2tlb.restore_from(r)?;
        self.prefetcher.restore_from(r)?;
        self.insns = r.get_u64()?;
        self.loads = r.get_u64()?;
        self.stores = r.get_u64()?;
        self.int_ops = r.get_u64()?;
        self.mul_ops = r.get_u64()?;
        self.div_ops = r.get_u64()?;
        self.fp_ops = r.get_u64()?;
        self.reg_reads = r.get_u64()?;
        self.reg_writes = r.get_u64()?;
        Ok(())
    }

    fn mem_latency(&mut self, pc: u64, addr: u64, is_load: bool) -> u32 {
        let mut lat = self.dl1.latency;
        if !self.dtlb.access(addr) {
            lat += if self.l2tlb.access(addr) {
                self.dtlb.miss_penalty
            } else {
                self.dtlb.miss_penalty + self.l2tlb.miss_penalty
            };
        }
        if !self.dl1.access(addr) {
            lat += if self.l2.access(addr) {
                self.l2.latency
            } else {
                self.l2.latency + self.cfg.mem_latency
            };
        }
        if is_load && self.cfg.prefetch {
            for p in self.prefetcher.train(pc, addr) {
                if !self.dl1.fill(p) {
                    self.l2.fill(p);
                }
            }
        }
        lat
    }

    fn consume(&mut self, ev: &RetireEvent) {
        let pc_bytes = ev.host_pc * 4;
        // Front end — same as the in-order core.
        if self.fe_count >= self.cfg.fetch_width {
            self.fe_cycle += 1;
            self.fe_count = 0;
        }
        if self.fe_cycle < self.redirect_until {
            self.fe_cycle = self.redirect_until;
            self.fe_count = 0;
        }
        let line = pc_bytes / self.cfg.il1.line as u64;
        if line != self.last_fetch_line {
            let mut extra = 0;
            if !self.itlb.access(pc_bytes) {
                extra += if self.l2tlb.access(pc_bytes) {
                    self.itlb.miss_penalty
                } else {
                    self.itlb.miss_penalty + self.l2tlb.miss_penalty
                };
            }
            if !self.il1.access(pc_bytes) {
                extra += if self.l2.access(pc_bytes) {
                    self.l2.latency
                } else {
                    self.l2.latency + self.cfg.mem_latency
                };
            }
            self.fe_cycle += extra as u64;
            self.last_fetch_line = line;
        }
        // ROB window: dispatch stalls until the oldest in-window insn
        // retired.
        let gate = self.rob_ring[self.rob_pos];
        if self.fe_cycle < gate {
            self.fe_cycle = gate;
            self.fe_count = 0;
        }
        self.fe_count += 1;
        let dispatch = self.fe_cycle + self.cfg.frontend_depth as u64;

        // Issue: operands + any free slot from dispatch onward (dynamic
        // scheduling: NOT constrained by older instructions' issue order).
        let mut ready = dispatch;
        for s in ev.srcs.into_iter().flatten() {
            ready = ready.max(self.scoreboard[s as usize & 127]);
            self.reg_reads += 1;
        }
        let class = |k: &EventKind| -> u8 {
            match k {
                EventKind::IntMul | EventKind::IntDiv => 1,
                EventKind::FpAdd | EventKind::FpMul | EventKind::FpDiv | EventKind::FpSqrt => 2,
                EventKind::Load { .. } => 3,
                EventKind::Store { .. } => 4,
                _ => 0,
            }
        };
        let c = class(&ev.kind);
        let mut cycle = ready;
        loop {
            let u = self.usage.entry(cycle).or_default();
            let fits = u.0 < self.cfg.issue_width
                && match c {
                    0 => u.1 < self.cfg.simple_units,
                    1 => u.2 < self.cfg.complex_units,
                    2 => u.3 < self.cfg.fp_units,
                    3 => u.4 < self.cfg.mem_read_ports,
                    _ => u.5 < self.cfg.mem_write_ports,
                };
            if fits {
                u.0 += 1;
                match c {
                    0 => u.1 += 1,
                    1 => u.2 += 1,
                    2 => u.3 += 1,
                    3 => u.4 += 1,
                    _ => u.5 += 1,
                }
                break;
            }
            cycle += 1;
        }
        let issue = cycle;

        let lat = match ev.kind {
            EventKind::Load { addr, .. } => {
                self.loads += 1;
                self.mem_latency(pc_bytes, addr as u64, true)
            }
            EventKind::Store { addr, .. } => {
                self.stores += 1;
                self.mem_latency(pc_bytes, addr as u64, false);
                1
            }
            ref k => {
                match k {
                    EventKind::IntMul => {
                        self.mul_ops += 1;
                    }
                    EventKind::IntDiv => {
                        self.div_ops += 1;
                    }
                    EventKind::FpAdd | EventKind::FpMul | EventKind::FpDiv
                    | EventKind::FpSqrt => {
                        self.fp_ops += 1;
                    }
                    _ => {
                        self.int_ops += 1;
                    }
                }
                match k {
                    EventKind::IntMul => self.cfg.lat_mul,
                    EventKind::IntDiv => self.cfg.lat_div,
                    EventKind::FpAdd => self.cfg.lat_fpadd,
                    EventKind::FpMul => self.cfg.lat_fpmul,
                    EventKind::FpDiv => self.cfg.lat_fpdiv,
                    EventKind::FpSqrt => self.cfg.lat_fpsqrt,
                    _ => 1,
                }
            }
        };
        let complete = issue + lat as u64;
        if let Some(d) = ev.dst {
            self.scoreboard[d as usize & 127] = complete;
            self.reg_writes += 1;
        }
        self.last_complete = self.last_complete.max(complete);

        // In-order retirement.
        let retire = complete.max(self.last_retire);
        self.last_retire = retire;
        self.rob_ring[self.rob_pos] = retire;
        self.rob_pos = (self.rob_pos + 1) % self.rob_ring.len();

        // Branch resolution at completion.
        if let EventKind::Branch { taken, target, cond } = ev.kind {
            let mut redirect = false;
            if cond && !self.gshare.update(ev.host_pc, taken) {
                redirect = true;
            }
            if taken {
                let _ = self.btb.lookup(ev.host_pc);
                if self.btb.update(ev.host_pc, target) {
                    redirect = true;
                }
            }
            if redirect {
                self.redirect_until =
                    self.redirect_until.max(complete + self.cfg.mispredict_penalty as u64);
                self.last_fetch_line = u64::MAX;
            }
        }
        // Prune the usage map to bound memory.
        if self.insns.is_multiple_of(4096) {
            let floor = self.usage_floor;
            let min_live = self.rob_ring.iter().copied().min().unwrap_or(0);
            if min_live > floor + 8192 {
                self.usage.retain(|&c, _| c + 512 >= min_live);
                self.usage_floor = min_live;
            }
        }
        self.insns += 1;
    }
}

impl InsnSink for OooCore {
    fn retire(&mut self, ev: &RetireEvent) {
        self.consume(ev);
    }

    fn install_note(&mut self, host_base: u64, code: &[darco_host::insn::HInsn]) -> Option<u64> {
        // The annotation is defined on the in-order model regardless of the
        // consuming core, so fast/full/ooo stamp identical values and
        // reports stay comparable across sink choices.
        Some(crate::annotate::annotate(&self.cfg, host_base, code))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InOrderCore;

    /// A load-miss followed by independent ALU work: the OoO core should
    /// hide the miss; the in-order core cannot.
    #[test]
    fn ooo_hides_load_misses_that_stall_inorder() {
        let cfg = TimingConfig { prefetch: false, ..Default::default() };
        let mut ino = InOrderCore::new(cfg.clone());
        let mut ooo = OooCore::new(cfg);
        fn feed<S: InsnSink>(sink: &mut S) {
            for i in 0..4_000u64 {
                // Missy load into r20 (pointer chase), then a *dependent* op,
                // then independent work.
                let addr = (i.wrapping_mul(2654435761) % (32 << 20)) as u32;
                sink.retire(&RetireEvent {
                    host_pc: 3,
                    kind: EventKind::Load { addr, bytes: 4 },
                    dst: Some(20),
                    srcs: [Some(21), None],
                });
                sink.retire(&RetireEvent {
                    host_pc: 4,
                    kind: EventKind::IntAlu,
                    dst: Some(22),
                    srcs: [Some(20), None],
                });
                for k in 0..6u64 {
                    let d = 24 + (k % 4) as u8;
                    sink.retire(&RetireEvent {
                        host_pc: 5 + k,
                        kind: EventKind::IntAlu,
                        dst: Some(d),
                        srcs: [Some(30), Some(31)],
                    });
                }
            }
        }
        feed(&mut ino);
        feed(&mut ooo);
        let (i, o) = (ino.stats(), ooo.stats());
        assert!(
            o.cycles * 5 < i.cycles * 4,
            "OoO should be >= 25% faster here: inorder {} vs ooo {}",
            i.cycles,
            o.cycles
        );
    }

    #[test]
    fn ooo_snapshot_mid_stream_continues_identically() {
        let event = |i: u64| {
            let x = i.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            match x % 4 {
                0 => RetireEvent {
                    host_pc: i % 200,
                    kind: EventKind::Load { addr: ((x >> 18) % (8 << 20)) as u32, bytes: 4 },
                    dst: Some(20),
                    srcs: [Some(21), None],
                },
                1 => RetireEvent {
                    host_pc: i % 48,
                    kind: EventKind::Branch {
                        taken: (x >> 39) & 1 == 1,
                        target: (x >> 11) % 256,
                        cond: true,
                    },
                    dst: None,
                    srcs: [Some(20), None],
                },
                _ => RetireEvent {
                    host_pc: i % 96,
                    kind: EventKind::IntAlu,
                    dst: Some(24 + (i % 4) as u8),
                    srcs: [Some(30), Some(31)],
                },
            }
        };
        let mut whole = OooCore::new(TimingConfig::default());
        for i in 0..9_000 {
            whole.retire(&event(i));
        }
        // Snapshot past the first usage-map prune (every 4096 insns) so
        // pruned state round-trips too.
        let mut first = OooCore::new(TimingConfig::default());
        for i in 0..5_000 {
            first.retire(&event(i));
        }
        let mut w = darco_guest::Wire::new();
        first.snapshot_into(&mut w);
        let bytes = w.finish();

        let mut resumed = OooCore::new(TimingConfig::default());
        let mut r = darco_guest::WireReader::new(&bytes);
        resumed.restore_from(&mut r).unwrap();
        r.expect_end().unwrap();
        for i in 5_000..9_000 {
            resumed.retire(&event(i));
        }
        assert_eq!(resumed.stats(), whole.stats());
    }

    #[test]
    fn rob_size_bounds_the_window() {
        let small = TimingConfig { rob_size: 4, prefetch: false, ..Default::default() };
        let big = TimingConfig { rob_size: 128, prefetch: false, ..Default::default() };
        fn feed<S: InsnSink>(sink: &mut S) {
            for i in 0..4_000u64 {
                let addr = (i.wrapping_mul(2654435761) % (32 << 20)) as u32;
                sink.retire(&RetireEvent {
                    host_pc: 3,
                    kind: EventKind::Load { addr, bytes: 4 },
                    dst: Some(20),
                    srcs: [Some(21), None],
                });
                for k in 0..10u64 {
                    sink.retire(&RetireEvent {
                        host_pc: 5 + k,
                        kind: EventKind::IntAlu,
                        dst: Some(24 + (k % 4) as u8),
                        srcs: [Some(30), Some(31)],
                    });
                }
            }
        }
        let mut s = OooCore::new(small);
        let mut b = OooCore::new(big);
        feed(&mut s);
        feed(&mut b);
        assert!(b.stats().cycles < s.stats().cycles, "bigger window hides more");
    }
}
