//! Out-of-order core extension — the paper's §III design-choice study
//! ("wide in-order or narrow out-of-order cores").
//!
//! Same trace interface and memory hierarchy as [`crate::InOrderCore`],
//! but instructions issue as soon as their operands and a functional unit
//! are available within a ROB window, and retire in order. On identical
//! instruction streams this isolates the value of dynamic scheduling —
//! which is exactly the comparison the paper proposes (ablation A4).

use crate::bpred::{Btb, Gshare};
use crate::cache::{CacheModel, TlbModel};
use crate::config::TimingConfig;
use crate::core::TimingStats;
use crate::prefetch::StridePrefetcher;
use darco_host::sink::{EventKind, InsnSink, RetireEvent};
use std::collections::HashMap;

/// The out-of-order core model.
#[derive(Debug)]
pub struct OooCore {
    cfg: TimingConfig,
    fe_cycle: u64,
    fe_count: u32,
    last_fetch_line: u64,
    redirect_until: u64,
    rob_ring: Vec<u64>, // retire cycles of the last rob_size insns
    rob_pos: usize,
    last_retire: u64,
    scoreboard: [u64; 128],
    usage: HashMap<u64, (u32, u32, u32, u32, u32, u32)>, // per-cycle counters
    usage_floor: u64,
    last_complete: u64,
    gshare: Gshare,
    btb: Btb,
    il1: CacheModel,
    dl1: CacheModel,
    l2: CacheModel,
    itlb: TlbModel,
    dtlb: TlbModel,
    l2tlb: TlbModel,
    prefetcher: StridePrefetcher,
    insns: u64,
    loads: u64,
    stores: u64,
    int_ops: u64,
    mul_ops: u64,
    div_ops: u64,
    fp_ops: u64,
    reg_reads: u64,
    reg_writes: u64,
}

impl OooCore {
    /// Creates an out-of-order core.
    pub fn new(cfg: TimingConfig) -> OooCore {
        OooCore {
            fe_cycle: 0,
            fe_count: 0,
            last_fetch_line: u64::MAX,
            redirect_until: 0,
            rob_ring: vec![0; cfg.rob_size.max(1) as usize],
            rob_pos: 0,
            last_retire: 0,
            scoreboard: [0; 128],
            usage: HashMap::new(),
            usage_floor: 0,
            last_complete: 0,
            gshare: Gshare::new(cfg.gshare_bits),
            btb: Btb::new(cfg.btb_entries),
            il1: CacheModel::new(&cfg.il1),
            dl1: CacheModel::new(&cfg.dl1),
            l2: CacheModel::new(&cfg.l2),
            itlb: TlbModel::new(&cfg.itlb),
            dtlb: TlbModel::new(&cfg.dtlb),
            l2tlb: TlbModel::new(&cfg.l2tlb),
            prefetcher: StridePrefetcher::new(cfg.prefetch_degree),
            insns: 0,
            loads: 0,
            stores: 0,
            int_ops: 0,
            mul_ops: 0,
            div_ops: 0,
            fp_ops: 0,
            reg_reads: 0,
            reg_writes: 0,
            cfg,
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TimingStats {
        TimingStats {
            insns: self.insns,
            cycles: self.last_retire.max(self.last_complete).max(self.fe_cycle),
            loads: self.loads,
            stores: self.stores,
            int_ops: self.int_ops,
            mul_ops: self.mul_ops,
            div_ops: self.div_ops,
            fp_ops: self.fp_ops,
            branches: self.gshare.predictions,
            mispredicts: self.gshare.mispredicts,
            btb_redirects: self.btb.target_misses,
            il1_accesses: self.il1.accesses,
            il1_misses: self.il1.misses,
            dl1_accesses: self.dl1.accesses,
            dl1_misses: self.dl1.misses,
            l2_accesses: self.l2.accesses,
            l2_misses: self.l2.misses,
            itlb_misses: self.itlb.misses,
            dtlb_misses: self.dtlb.misses,
            prefetches: self.prefetcher.issued,
            reg_reads: self.reg_reads,
            reg_writes: self.reg_writes,
        }
    }

    fn mem_latency(&mut self, pc: u64, addr: u64, is_load: bool) -> u32 {
        let mut lat = self.dl1.latency;
        if !self.dtlb.access(addr) {
            lat += if self.l2tlb.access(addr) {
                self.dtlb.miss_penalty
            } else {
                self.dtlb.miss_penalty + self.l2tlb.miss_penalty
            };
        }
        if !self.dl1.access(addr) {
            lat += if self.l2.access(addr) {
                self.l2.latency
            } else {
                self.l2.latency + self.cfg.mem_latency
            };
        }
        if is_load && self.cfg.prefetch {
            for p in self.prefetcher.train(pc, addr) {
                if !self.dl1.fill(p) {
                    self.l2.fill(p);
                }
            }
        }
        lat
    }

    fn consume(&mut self, ev: &RetireEvent) {
        let pc_bytes = ev.host_pc * 4;
        // Front end — same as the in-order core.
        if self.fe_count >= self.cfg.fetch_width {
            self.fe_cycle += 1;
            self.fe_count = 0;
        }
        if self.fe_cycle < self.redirect_until {
            self.fe_cycle = self.redirect_until;
            self.fe_count = 0;
        }
        let line = pc_bytes / self.cfg.il1.line as u64;
        if line != self.last_fetch_line {
            let mut extra = 0;
            if !self.itlb.access(pc_bytes) {
                extra += if self.l2tlb.access(pc_bytes) {
                    self.itlb.miss_penalty
                } else {
                    self.itlb.miss_penalty + self.l2tlb.miss_penalty
                };
            }
            if !self.il1.access(pc_bytes) {
                extra += if self.l2.access(pc_bytes) {
                    self.l2.latency
                } else {
                    self.l2.latency + self.cfg.mem_latency
                };
            }
            self.fe_cycle += extra as u64;
            self.last_fetch_line = line;
        }
        // ROB window: dispatch stalls until the oldest in-window insn
        // retired.
        let gate = self.rob_ring[self.rob_pos];
        if self.fe_cycle < gate {
            self.fe_cycle = gate;
            self.fe_count = 0;
        }
        self.fe_count += 1;
        let dispatch = self.fe_cycle + self.cfg.frontend_depth as u64;

        // Issue: operands + any free slot from dispatch onward (dynamic
        // scheduling: NOT constrained by older instructions' issue order).
        let mut ready = dispatch;
        for s in ev.srcs.into_iter().flatten() {
            ready = ready.max(self.scoreboard[s as usize & 127]);
            self.reg_reads += 1;
        }
        let class = |k: &EventKind| -> u8 {
            match k {
                EventKind::IntMul | EventKind::IntDiv => 1,
                EventKind::FpAdd | EventKind::FpMul | EventKind::FpDiv | EventKind::FpSqrt => 2,
                EventKind::Load { .. } => 3,
                EventKind::Store { .. } => 4,
                _ => 0,
            }
        };
        let c = class(&ev.kind);
        let mut cycle = ready;
        loop {
            let u = self.usage.entry(cycle).or_default();
            let fits = u.0 < self.cfg.issue_width
                && match c {
                    0 => u.1 < self.cfg.simple_units,
                    1 => u.2 < self.cfg.complex_units,
                    2 => u.3 < self.cfg.fp_units,
                    3 => u.4 < self.cfg.mem_read_ports,
                    _ => u.5 < self.cfg.mem_write_ports,
                };
            if fits {
                u.0 += 1;
                match c {
                    0 => u.1 += 1,
                    1 => u.2 += 1,
                    2 => u.3 += 1,
                    3 => u.4 += 1,
                    _ => u.5 += 1,
                }
                break;
            }
            cycle += 1;
        }
        let issue = cycle;

        let lat = match ev.kind {
            EventKind::Load { addr, .. } => {
                self.loads += 1;
                self.mem_latency(pc_bytes, addr as u64, true)
            }
            EventKind::Store { addr, .. } => {
                self.stores += 1;
                self.mem_latency(pc_bytes, addr as u64, false);
                1
            }
            ref k => {
                match k {
                    EventKind::IntMul => {
                        self.mul_ops += 1;
                    }
                    EventKind::IntDiv => {
                        self.div_ops += 1;
                    }
                    EventKind::FpAdd | EventKind::FpMul | EventKind::FpDiv
                    | EventKind::FpSqrt => {
                        self.fp_ops += 1;
                    }
                    _ => {
                        self.int_ops += 1;
                    }
                }
                match k {
                    EventKind::IntMul => self.cfg.lat_mul,
                    EventKind::IntDiv => self.cfg.lat_div,
                    EventKind::FpAdd => self.cfg.lat_fpadd,
                    EventKind::FpMul => self.cfg.lat_fpmul,
                    EventKind::FpDiv => self.cfg.lat_fpdiv,
                    EventKind::FpSqrt => self.cfg.lat_fpsqrt,
                    _ => 1,
                }
            }
        };
        let complete = issue + lat as u64;
        if let Some(d) = ev.dst {
            self.scoreboard[d as usize & 127] = complete;
            self.reg_writes += 1;
        }
        self.last_complete = self.last_complete.max(complete);

        // In-order retirement.
        let retire = complete.max(self.last_retire);
        self.last_retire = retire;
        self.rob_ring[self.rob_pos] = retire;
        self.rob_pos = (self.rob_pos + 1) % self.rob_ring.len();

        // Branch resolution at completion.
        if let EventKind::Branch { taken, target, cond } = ev.kind {
            let mut redirect = false;
            if cond && !self.gshare.update(ev.host_pc, taken) {
                redirect = true;
            }
            if taken {
                let _ = self.btb.lookup(ev.host_pc);
                if self.btb.update(ev.host_pc, target) {
                    redirect = true;
                }
            }
            if redirect {
                self.redirect_until =
                    self.redirect_until.max(complete + self.cfg.mispredict_penalty as u64);
                self.last_fetch_line = u64::MAX;
            }
        }
        // Prune the usage map to bound memory.
        if self.insns.is_multiple_of(4096) {
            let floor = self.usage_floor;
            let min_live = self.rob_ring.iter().copied().min().unwrap_or(0);
            if min_live > floor + 8192 {
                self.usage.retain(|&c, _| c + 512 >= min_live);
                self.usage_floor = min_live;
            }
        }
        self.insns += 1;
    }
}

impl InsnSink for OooCore {
    fn retire(&mut self, ev: &RetireEvent) {
        self.consume(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InOrderCore;

    /// A load-miss followed by independent ALU work: the OoO core should
    /// hide the miss; the in-order core cannot.
    #[test]
    fn ooo_hides_load_misses_that_stall_inorder() {
        let cfg = TimingConfig { prefetch: false, ..Default::default() };
        let mut ino = InOrderCore::new(cfg.clone());
        let mut ooo = OooCore::new(cfg);
        fn feed<S: InsnSink>(sink: &mut S) {
            for i in 0..4_000u64 {
                // Missy load into r20 (pointer chase), then a *dependent* op,
                // then independent work.
                let addr = (i.wrapping_mul(2654435761) % (32 << 20)) as u32;
                sink.retire(&RetireEvent {
                    host_pc: 3,
                    kind: EventKind::Load { addr, bytes: 4 },
                    dst: Some(20),
                    srcs: [Some(21), None],
                });
                sink.retire(&RetireEvent {
                    host_pc: 4,
                    kind: EventKind::IntAlu,
                    dst: Some(22),
                    srcs: [Some(20), None],
                });
                for k in 0..6u64 {
                    let d = 24 + (k % 4) as u8;
                    sink.retire(&RetireEvent {
                        host_pc: 5 + k,
                        kind: EventKind::IntAlu,
                        dst: Some(d),
                        srcs: [Some(30), Some(31)],
                    });
                }
            }
        }
        feed(&mut ino);
        feed(&mut ooo);
        let (i, o) = (ino.stats(), ooo.stats());
        assert!(
            o.cycles * 5 < i.cycles * 4,
            "OoO should be >= 25% faster here: inorder {} vs ooo {}",
            i.cycles,
            o.cycles
        );
    }

    #[test]
    fn rob_size_bounds_the_window() {
        let small = TimingConfig { rob_size: 4, prefetch: false, ..Default::default() };
        let big = TimingConfig { rob_size: 128, prefetch: false, ..Default::default() };
        fn feed<S: InsnSink>(sink: &mut S) {
            for i in 0..4_000u64 {
                let addr = (i.wrapping_mul(2654435761) % (32 << 20)) as u32;
                sink.retire(&RetireEvent {
                    host_pc: 3,
                    kind: EventKind::Load { addr, bytes: 4 },
                    dst: Some(20),
                    srcs: [Some(21), None],
                });
                for k in 0..10u64 {
                    sink.retire(&RetireEvent {
                        host_pc: 5 + k,
                        kind: EventKind::IntAlu,
                        dst: Some(24 + (k % 4) as u8),
                        srcs: [Some(30), Some(31)],
                    });
                }
            }
        }
        let mut s = OooCore::new(small);
        let mut b = OooCore::new(big);
        feed(&mut s);
        feed(&mut b);
        assert!(b.stats().cycles < s.stats().cycles, "bigger window hides more");
    }
}
