//! Static cycle annotation of translated blocks.
//!
//! At translation install time the software layer hands the timing sink
//! the translation body ([`darco_host::sink::InsnSink::install_note`]).
//! This pass walks the translation's main path, synthesizes the retire
//! events the emulator would produce for it (same templates as
//! `host::emu`), and measures the path's *steady-state* cost on a scratch
//! [`InOrderCore`]: every cache/TLB line prefilled, branch predictor and
//! BTB trained to the path, prefetcher quiet. The result is the
//! miss-free, predicted cycle cost the fast timing path charges for the
//! common case — exactly the "precomputed cycle cost per translated
//! block" of cycle-accurate binary translation (Schnerr et al.), stamped
//! on the code-cache entry as `Translation::static_cycles`.

use crate::config::TimingConfig;
use crate::core::InOrderCore;
use darco_host::emu::PROF_TABLE_ADDR;
use darco_host::insn::{FAluOp, FUnOp2, HAluOp, HInsn};
use darco_host::regs::R_LINK;
use darco_host::sink::{fp_reg, EventKind, RetireEvent};

/// Walk limit: translations are region-sized; anything longer is not a
/// single block worth annotating precisely.
const MAX_WALK_EVENTS: usize = 4096;

/// Synthetic data address used by all loads/stores on the annotated path.
/// The scratch core prefills it, so data references cost an L1 hit — the
/// definition of the steady-state path.
const DATA_ADDR: u32 = 0x40;

/// Computes the steady-state (miss-free, predicted) cycle cost of the
/// translation's main path. Returns 0 for bodies with no retire events.
pub fn annotate(cfg: &TimingConfig, host_base: u64, code: &[HInsn]) -> u64 {
    let events = synthesize_events(host_base, code);
    if events.is_empty() {
        return 0;
    }
    steady_state_cycles(cfg, &events)
}

/// Synthesizes the retire-event stream of the translation's main path:
/// straight-line fall-through for conditional branches (superblocks are
/// biased that way by construction), followed unconditional branches,
/// stop at cache exits, calls, indirect jumps and transaction boundaries.
/// Event templates mirror `host::emu::HostEmulator::execute` exactly.
fn synthesize_events(host_base: u64, code: &[HInsn]) -> Vec<RetireEvent> {
    let mut events = Vec::new();
    let mut visited = vec![false; code.len()];
    let mut pc = 0usize;
    let mut seen_chkpt = false;
    while pc < code.len() && !visited[pc] && events.len() < MAX_WALK_EVENTS {
        visited[pc] = true;
        let hp = host_base + pc as u64;
        let mut next = pc + 1;
        match code[pc] {
            HInsn::Alu { op, rd, ra, rb } => events.push(RetireEvent {
                host_pc: hp,
                kind: alu_kind(op),
                dst: Some(rd.0),
                srcs: [Some(ra.0), Some(rb.0)],
            }),
            HInsn::AluI { op, rd, ra, .. } => events.push(RetireEvent {
                host_pc: hp,
                kind: alu_kind(op),
                dst: Some(rd.0),
                srcs: [Some(ra.0), None],
            }),
            HInsn::Lui { rd, .. } | HInsn::Li16 { rd, .. } => events.push(RetireEvent {
                host_pc: hp,
                kind: EventKind::IntAlu,
                dst: Some(rd.0),
                srcs: [None, None],
            }),
            HInsn::OriZ { rd, .. } => events.push(RetireEvent {
                host_pc: hp,
                kind: EventKind::IntAlu,
                dst: Some(rd.0),
                srcs: [Some(rd.0), None],
            }),
            HInsn::Load { rd, base, width, .. } => events.push(RetireEvent {
                host_pc: hp,
                kind: EventKind::Load { addr: DATA_ADDR, bytes: width.bytes() as u8 },
                dst: Some(rd.0),
                srcs: [Some(base.0), None],
            }),
            HInsn::Store { rs, base, width, .. } => events.push(RetireEvent {
                host_pc: hp,
                kind: EventKind::Store { addr: DATA_ADDR, bytes: width.bytes() as u8 },
                dst: None,
                srcs: [Some(rs.0), Some(base.0)],
            }),
            HInsn::LoadF { fd, base, .. } => events.push(RetireEvent {
                host_pc: hp,
                kind: EventKind::Load { addr: DATA_ADDR, bytes: 8 },
                dst: Some(fp_reg(fd.0)),
                srcs: [Some(base.0), None],
            }),
            HInsn::StoreF { fs, base, .. } => events.push(RetireEvent {
                host_pc: hp,
                kind: EventKind::Store { addr: DATA_ADDR, bytes: 8 },
                dst: None,
                srcs: [Some(fp_reg(fs.0)), Some(base.0)],
            }),
            HInsn::B { rel } => {
                next = add_rel(pc, rel);
                events.push(RetireEvent {
                    host_pc: hp,
                    kind: EventKind::Branch {
                        taken: true,
                        target: host_base.wrapping_add(next as u64),
                        cond: false,
                    },
                    dst: None,
                    srcs: [None, None],
                });
            }
            HInsn::Bl { rel } => {
                // Calls leave the annotated path (the callee is a runtime
                // routine with its own cost); charge the branch and stop.
                let target = add_rel(pc, rel);
                events.push(RetireEvent {
                    host_pc: hp,
                    kind: EventKind::Branch {
                        taken: true,
                        target: host_base.wrapping_add(target as u64),
                        cond: false,
                    },
                    dst: Some(R_LINK.0),
                    srcs: [None, None],
                });
                break;
            }
            HInsn::Blr => {
                events.push(RetireEvent {
                    host_pc: hp,
                    kind: EventKind::Branch { taken: true, target: host_base, cond: false },
                    dst: None,
                    srcs: [Some(R_LINK.0), None],
                });
                break;
            }
            HInsn::Bz { rs, rel } | HInsn::Bnz { rs, rel } => {
                // Main path assumes fall-through (not taken).
                let target = add_rel(pc, rel);
                events.push(RetireEvent {
                    host_pc: hp,
                    kind: EventKind::Branch {
                        taken: false,
                        target: host_base.wrapping_add(target as u64),
                        cond: true,
                    },
                    dst: None,
                    srcs: [Some(rs.0), None],
                });
            }
            HInsn::FAlu { op, fd, fa, fb } => events.push(RetireEvent {
                host_pc: hp,
                kind: falu_kind(op),
                dst: Some(fp_reg(fd.0)),
                srcs: [Some(fp_reg(fa.0)), Some(fp_reg(fb.0))],
            }),
            HInsn::FUn { op, fd, fa } => events.push(RetireEvent {
                host_pc: hp,
                kind: if op == FUnOp2::Sqrt { EventKind::FpSqrt } else { EventKind::FpAdd },
                dst: Some(fp_reg(fd.0)),
                srcs: [Some(fp_reg(fa.0)), None],
            }),
            HInsn::FCmp { rd, fa, fb, .. } => events.push(RetireEvent {
                host_pc: hp,
                kind: EventKind::FpAdd,
                dst: Some(rd.0),
                srcs: [Some(fp_reg(fa.0)), Some(fp_reg(fb.0))],
            }),
            HInsn::CvtIF { fd, ra } => events.push(RetireEvent {
                host_pc: hp,
                kind: EventKind::FpAdd,
                dst: Some(fp_reg(fd.0)),
                srcs: [Some(ra.0), None],
            }),
            HInsn::CvtFI { rd, fa } => events.push(RetireEvent {
                host_pc: hp,
                kind: EventKind::FpAdd,
                dst: Some(rd.0),
                srcs: [Some(fp_reg(fa.0)), None],
            }),
            HInsn::FLoadImm { fd, .. } => events.push(RetireEvent {
                host_pc: hp,
                kind: EventKind::Other,
                dst: Some(fp_reg(fd.0)),
                srcs: [None, None],
            }),
            HInsn::Chkpt => {
                if seen_chkpt {
                    // Next transaction: block boundary.
                    break;
                }
                seen_chkpt = true;
                events.push(RetireEvent::plain(hp, EventKind::Other));
            }
            HInsn::Commit => events.push(RetireEvent::plain(hp, EventKind::Other)),
            HInsn::AssertZ { rs } | HInsn::AssertNz { rs } => events.push(RetireEvent {
                host_pc: hp,
                kind: EventKind::IntAlu,
                dst: None,
                srcs: [Some(rs.0), None],
            }),
            HInsn::TolExit { .. } | HInsn::ChainSlot { .. } => {
                events.push(RetireEvent::plain(hp, EventKind::Other));
                break;
            }
            HInsn::IbtcJmp { rs, .. } => {
                // The 6-slot software IBTC probe, hit path.
                let table_addr = 0xF000_0000u32;
                events.push(RetireEvent {
                    host_pc: hp,
                    kind: EventKind::IntAlu,
                    dst: Some(57),
                    srcs: [Some(rs.0), None],
                });
                events.push(RetireEvent::plain(hp, EventKind::IntAlu));
                events.push(RetireEvent {
                    host_pc: hp,
                    kind: EventKind::Load { addr: table_addr, bytes: 8 },
                    dst: Some(58),
                    srcs: [Some(57), None],
                });
                events.push(RetireEvent {
                    host_pc: hp,
                    kind: EventKind::IntAlu,
                    dst: None,
                    srcs: [Some(58), None],
                });
                events.push(RetireEvent::plain(hp, EventKind::IntAlu));
                events.push(RetireEvent {
                    host_pc: hp,
                    kind: EventKind::Branch { taken: true, target: hp + 1, cond: false },
                    dst: None,
                    srcs: [Some(58), None],
                });
                break;
            }
            HInsn::Gcnt { .. } => {}
            HInsn::Count { idx } => {
                let slot = PROF_TABLE_ADDR + idx * 8;
                events.push(RetireEvent {
                    host_pc: hp,
                    kind: EventKind::Load { addr: slot, bytes: 8 },
                    dst: Some(59),
                    srcs: [None, None],
                });
                events.push(RetireEvent {
                    host_pc: hp,
                    kind: EventKind::IntAlu,
                    dst: Some(59),
                    srcs: [Some(59), None],
                });
                events.push(RetireEvent {
                    host_pc: hp,
                    kind: EventKind::Store { addr: slot, bytes: 8 },
                    dst: None,
                    srcs: [Some(59), None],
                });
            }
            HInsn::Nop => events.push(RetireEvent::plain(hp, EventKind::IntAlu)),
        }
        pc = next;
    }
    events
}

/// Measures the event stream's steady-state cycle cost: the stream is run
/// three times on a scratch core (first pass fills caches/TLBs and trains
/// the BTB, second saturates the direction predictor), and the cost is
/// the cycle delta of the third, fully clean pass. Global history is
/// reset between passes so gshare trains the same PHT entries it will
/// predict from.
fn steady_state_cycles(cfg: &TimingConfig, events: &[RetireEvent]) -> u64 {
    let mut core = InOrderCore::new(cfg.clone());
    let mut at_two = 0;
    for pass in 0..3 {
        core.gshare.reset_history();
        for ev in events {
            core.consume(ev);
        }
        if pass == 1 {
            at_two = core.stats().cycles;
        }
    }
    core.stats().cycles - at_two
}

fn add_rel(pc: usize, rel: i32) -> usize {
    (pc as i64 + 1 + rel as i64) as usize
}

fn alu_kind(op: HAluOp) -> EventKind {
    match op {
        HAluOp::Mul | HAluOp::MulHS => EventKind::IntMul,
        HAluOp::Div | HAluOp::Rem => EventKind::IntDiv,
        _ => EventKind::IntAlu,
    }
}

fn falu_kind(op: FAluOp) -> EventKind {
    match op {
        FAluOp::Mul => EventKind::FpMul,
        FAluOp::Div => EventKind::FpDiv,
        _ => EventKind::FpAdd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darco_host::regs::HReg;

    #[test]
    fn straight_line_block_costs_its_issue_packing() {
        // 8 independent ALU ops on a 2-wide core: ~4 cycles of issue, so
        // the annotation must be small and nonzero.
        let code: Vec<HInsn> = (0..8)
            .map(|i| HInsn::AluI {
                op: HAluOp::Add,
                rd: HReg(16 + i),
                ra: HReg(40),
                imm: 1,
            })
            .chain([HInsn::TolExit { id: 0 }])
            .collect();
        let c = annotate(&TimingConfig::default(), 0x100, &code);
        assert!(c >= 4, "issue width bounds the block at 4+ cycles: {c}");
        assert!(c <= 16, "a clean block must not charge miss costs: {c}");
    }

    #[test]
    fn divide_chain_costs_latency() {
        let cfg = TimingConfig::default();
        let code: Vec<HInsn> = (0..4)
            .map(|_| HInsn::Alu { op: HAluOp::Div, rd: HReg(16), ra: HReg(16), rb: HReg(17) })
            .chain([HInsn::TolExit { id: 0 }])
            .collect();
        let c = annotate(&cfg, 0, &code);
        assert!(
            c >= 3 * cfg.lat_div as u64,
            "serial divides must expose their latency: {c}"
        );
    }

    #[test]
    fn taken_branch_on_trained_path_is_cheap() {
        // chkpt; alu; b +1 (skip a nop); alu; tolexit — the unconditional
        // branch is BTB-trained by the measurement itself, so no
        // mispredict penalty lands in the steady state.
        let code = vec![
            HInsn::Chkpt,
            HInsn::AluI { op: HAluOp::Add, rd: HReg(16), ra: HReg(16), imm: 1 },
            HInsn::B { rel: 1 },
            HInsn::Nop,
            HInsn::AluI { op: HAluOp::Add, rd: HReg(17), ra: HReg(17), imm: 1 },
            HInsn::TolExit { id: 0 },
        ];
        let cfg = TimingConfig::default();
        let c = annotate(&cfg, 0x40, &code);
        assert!(c < cfg.mispredict_penalty as u64 + 8, "trained branch stays cheap: {c}");
    }

    #[test]
    fn empty_body_costs_nothing() {
        assert_eq!(annotate(&TimingConfig::default(), 0, &[HInsn::Gcnt { n: 1, sb: false }]), 0);
    }
}
