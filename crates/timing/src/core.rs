//! The in-order superscalar core model.
//!
//! Trace-driven: consumes the retired host-instruction stream through
//! [`InsnSink`]. Models a decoupled front-end (fetch groups, I-cache,
//! I-TLB, BTB + gshare, redirect penalties) and an in-order back-end
//! (register scoreboard, issue-width and functional-unit constraints,
//! memory hierarchy with a stride prefetcher), separated by an
//! instruction queue that lets fetch run ahead of issue.

use crate::bpred::{Btb, Gshare};
use crate::cache::{CacheModel, TlbModel};
use crate::config::TimingConfig;
use crate::prefetch::StridePrefetcher;
use darco_host::sink::{EventKind, InsnSink, RetireEvent};

/// Final simulation statistics (also the power model's activity input).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimingStats {
    /// Retired instructions.
    pub insns: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Simple integer operations.
    pub int_ops: u64,
    /// Multiplies.
    pub mul_ops: u64,
    /// Divides.
    pub div_ops: u64,
    /// FP operations.
    pub fp_ops: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Direction mispredictions.
    pub mispredicts: u64,
    /// BTB redirects (unknown/wrong targets).
    pub btb_redirects: u64,
    /// L1I accesses / misses.
    pub il1_accesses: u64,
    pub il1_misses: u64,
    /// L1D accesses / misses.
    pub dl1_accesses: u64,
    pub dl1_misses: u64,
    /// L2 accesses / misses.
    pub l2_accesses: u64,
    pub l2_misses: u64,
    /// I-TLB misses.
    pub itlb_misses: u64,
    /// D-TLB misses.
    pub dtlb_misses: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// Register file reads (power model).
    pub reg_reads: u64,
    /// Register file writes.
    pub reg_writes: u64,
}

impl TimingStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insns as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.insns == 0 {
            0.0
        } else {
            self.cycles as f64 / self.insns as f64
        }
    }

    /// Registers every statistic as a named counter under `prefix`, plus
    /// `ipc` as a gauge (single source for all timing reports).
    pub fn register_into(&self, reg: &mut darco_obs::Registry, prefix: &str) {
        let fields: [(&str, u64); 22] = [
            ("insns", self.insns),
            ("cycles", self.cycles),
            ("loads", self.loads),
            ("stores", self.stores),
            ("int_ops", self.int_ops),
            ("mul_ops", self.mul_ops),
            ("div_ops", self.div_ops),
            ("fp_ops", self.fp_ops),
            ("branches", self.branches),
            ("mispredicts", self.mispredicts),
            ("btb_redirects", self.btb_redirects),
            ("il1_accesses", self.il1_accesses),
            ("il1_misses", self.il1_misses),
            ("dl1_accesses", self.dl1_accesses),
            ("dl1_misses", self.dl1_misses),
            ("l2_accesses", self.l2_accesses),
            ("l2_misses", self.l2_misses),
            ("itlb_misses", self.itlb_misses),
            ("dtlb_misses", self.dtlb_misses),
            ("prefetches", self.prefetches),
            ("reg_reads", self.reg_reads),
            ("reg_writes", self.reg_writes),
        ];
        for (name, v) in fields {
            reg.set_counter(&format!("{prefix}.{name}"), v);
        }
        reg.set_gauge(&format!("{prefix}.ipc"), self.ipc());
    }
}

/// Rolling per-cycle resource usage for monotonic (in-order) issue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Usage {
    pub(crate) issued: u32,
    pub(crate) simple: u32,
    pub(crate) complex: u32,
    pub(crate) fp: u32,
    pub(crate) rports: u32,
    pub(crate) wports: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Class {
    Simple,
    Complex,
    Fp,
    Load,
    Store,
}

/// The in-order core.
///
/// Fields are crate-visible so the memoizing fast path
/// ([`crate::fast::FastTimer`]) can verify entry state and commit
/// recorded schedules without an abstraction tax.
#[derive(Debug)]
pub struct InOrderCore {
    pub(crate) cfg: TimingConfig,
    // front end
    pub(crate) fe_cycle: u64,
    pub(crate) fe_count: u32,
    pub(crate) last_fetch_line: u64,
    pub(crate) redirect_until: u64,
    // IQ decoupling: issue cycles of the last `iq_size` instructions.
    pub(crate) iq_ring: Vec<u64>,
    pub(crate) iq_pos: usize,
    // back end
    pub(crate) scoreboard: [u64; 128],
    pub(crate) cur_cycle: u64,
    pub(crate) usage: Usage,
    pub(crate) last_complete: u64,
    // structures
    pub(crate) gshare: Gshare,
    pub(crate) btb: Btb,
    pub(crate) il1: CacheModel,
    pub(crate) dl1: CacheModel,
    pub(crate) l2: CacheModel,
    pub(crate) itlb: TlbModel,
    pub(crate) dtlb: TlbModel,
    pub(crate) l2tlb: TlbModel,
    pub(crate) prefetcher: StridePrefetcher,
    // stats
    pub(crate) insns: u64,
    pub(crate) loads: u64,
    pub(crate) stores: u64,
    pub(crate) int_ops: u64,
    pub(crate) mul_ops: u64,
    pub(crate) div_ops: u64,
    pub(crate) fp_ops: u64,
    pub(crate) reg_reads: u64,
    pub(crate) reg_writes: u64,
}

impl InOrderCore {
    /// Creates a core from its configuration.
    pub fn new(cfg: TimingConfig) -> InOrderCore {
        InOrderCore {
            fe_cycle: 0,
            fe_count: 0,
            last_fetch_line: u64::MAX,
            redirect_until: 0,
            iq_ring: vec![0; cfg.iq_size.max(1) as usize],
            iq_pos: 0,
            scoreboard: [0; 128],
            cur_cycle: 0,
            usage: Usage::default(),
            last_complete: 0,
            gshare: Gshare::new(cfg.gshare_bits),
            btb: Btb::new(cfg.btb_entries),
            il1: CacheModel::new(&cfg.il1),
            dl1: CacheModel::new(&cfg.dl1),
            l2: CacheModel::new(&cfg.l2),
            itlb: TlbModel::new(&cfg.itlb),
            dtlb: TlbModel::new(&cfg.dtlb),
            l2tlb: TlbModel::new(&cfg.l2tlb),
            prefetcher: StridePrefetcher::new(cfg.prefetch_degree),
            insns: 0,
            loads: 0,
            stores: 0,
            int_ops: 0,
            mul_ops: 0,
            div_ops: 0,
            fp_ops: 0,
            reg_reads: 0,
            reg_writes: 0,
            cfg,
        }
    }

    /// Snapshot of the statistics (cycles = end of the last activity).
    pub fn stats(&self) -> TimingStats {
        TimingStats {
            insns: self.insns,
            cycles: self.last_complete.max(self.cur_cycle).max(self.fe_cycle),
            loads: self.loads,
            stores: self.stores,
            int_ops: self.int_ops,
            mul_ops: self.mul_ops,
            div_ops: self.div_ops,
            fp_ops: self.fp_ops,
            branches: self.gshare.predictions,
            mispredicts: self.gshare.mispredicts,
            btb_redirects: self.btb.target_misses,
            il1_accesses: self.il1.accesses,
            il1_misses: self.il1.misses,
            dl1_accesses: self.dl1.accesses,
            dl1_misses: self.dl1.misses,
            l2_accesses: self.l2.accesses,
            l2_misses: self.l2.misses,
            itlb_misses: self.itlb.misses,
            dtlb_misses: self.dtlb.misses,
            prefetches: self.prefetcher.issued,
            reg_reads: self.reg_reads,
            reg_writes: self.reg_writes,
        }
    }

    /// Serializes the full microarchitectural state — pipeline cursors,
    /// IQ ring, scoreboard, predictors, caches/TLBs, prefetcher and stat
    /// accumulators. The configuration is not serialized; restore requires
    /// a core built from the same [`TimingConfig`].
    pub fn snapshot_into(&self, w: &mut darco_guest::Wire) {
        w.put_u64(self.fe_cycle);
        w.put_u32(self.fe_count);
        w.put_u64(self.last_fetch_line);
        w.put_u64(self.redirect_until);
        w.put_usize(self.iq_ring.len());
        for &c in &self.iq_ring {
            w.put_u64(c);
        }
        w.put_usize(self.iq_pos);
        for &s in &self.scoreboard {
            w.put_u64(s);
        }
        w.put_u64(self.cur_cycle);
        for v in [
            self.usage.issued,
            self.usage.simple,
            self.usage.complex,
            self.usage.fp,
            self.usage.rports,
            self.usage.wports,
        ] {
            w.put_u32(v);
        }
        w.put_u64(self.last_complete);
        self.gshare.snapshot_into(w);
        self.btb.snapshot_into(w);
        self.il1.snapshot_into(w);
        self.dl1.snapshot_into(w);
        self.l2.snapshot_into(w);
        self.itlb.snapshot_into(w);
        self.dtlb.snapshot_into(w);
        self.l2tlb.snapshot_into(w);
        self.prefetcher.snapshot_into(w);
        for v in [
            self.insns,
            self.loads,
            self.stores,
            self.int_ops,
            self.mul_ops,
            self.div_ops,
            self.fp_ops,
            self.reg_reads,
            self.reg_writes,
        ] {
            w.put_u64(v);
        }
    }

    /// Restores microarchitectural state from an
    /// [`InOrderCore::snapshot_into`] stream. `self` must have been built
    /// from the same configuration as the snapshotted core.
    ///
    /// # Errors
    /// Wire decode failures or geometry mismatches against this core's
    /// configuration.
    pub fn restore_from(&mut self, r: &mut darco_guest::WireReader<'_>) -> Result<(), darco_guest::WireError> {
        self.fe_cycle = r.get_u64()?;
        self.fe_count = r.get_u32()?;
        self.last_fetch_line = r.get_u64()?;
        self.redirect_until = r.get_u64()?;
        let n = r.get_usize()?;
        if n != self.iq_ring.len() {
            return Err(darco_guest::WireError::Malformed {
                at: r.pos(),
                what: "iq ring size mismatch",
            });
        }
        for c in &mut self.iq_ring {
            *c = r.get_u64()?;
        }
        self.iq_pos = r.get_usize()?;
        if self.iq_pos >= self.iq_ring.len() {
            return Err(darco_guest::WireError::Malformed {
                at: r.pos(),
                what: "iq position out of range",
            });
        }
        for s in &mut self.scoreboard {
            *s = r.get_u64()?;
        }
        self.cur_cycle = r.get_u64()?;
        self.usage.issued = r.get_u32()?;
        self.usage.simple = r.get_u32()?;
        self.usage.complex = r.get_u32()?;
        self.usage.fp = r.get_u32()?;
        self.usage.rports = r.get_u32()?;
        self.usage.wports = r.get_u32()?;
        self.last_complete = r.get_u64()?;
        self.gshare.restore_from(r)?;
        self.btb.restore_from(r)?;
        self.il1.restore_from(r)?;
        self.dl1.restore_from(r)?;
        self.l2.restore_from(r)?;
        self.itlb.restore_from(r)?;
        self.dtlb.restore_from(r)?;
        self.l2tlb.restore_from(r)?;
        self.prefetcher.restore_from(r)?;
        self.insns = r.get_u64()?;
        self.loads = r.get_u64()?;
        self.stores = r.get_u64()?;
        self.int_ops = r.get_u64()?;
        self.mul_ops = r.get_u64()?;
        self.div_ops = r.get_u64()?;
        self.fp_ops = r.get_u64()?;
        self.reg_reads = r.get_u64()?;
        self.reg_writes = r.get_u64()?;
        Ok(())
    }

    pub(crate) fn classify(kind: &EventKind) -> (Class, u32) {
        match kind {
            EventKind::IntAlu | EventKind::Branch { .. } | EventKind::Other => (Class::Simple, 1),
            EventKind::IntMul => (Class::Complex, 0), // latency filled by caller
            EventKind::IntDiv => (Class::Complex, 0),
            EventKind::FpAdd => (Class::Fp, 0),
            EventKind::FpMul => (Class::Fp, 0),
            EventKind::FpDiv => (Class::Fp, 0),
            EventKind::FpSqrt => (Class::Fp, 0),
            EventKind::Load { .. } => (Class::Load, 0),
            EventKind::Store { .. } => (Class::Store, 1),
        }
    }

    pub(crate) fn latency_of(&self, kind: &EventKind) -> u32 {
        match kind {
            EventKind::IntMul => self.cfg.lat_mul,
            EventKind::IntDiv => self.cfg.lat_div,
            EventKind::FpAdd => self.cfg.lat_fpadd,
            EventKind::FpMul => self.cfg.lat_fpmul,
            EventKind::FpDiv => self.cfg.lat_fpdiv,
            EventKind::FpSqrt => self.cfg.lat_fpsqrt,
            _ => 1,
        }
    }

    /// Data-side memory access latency (D-TLB + D-cache hierarchy +
    /// prefetch training).
    fn mem_latency(&mut self, pc: u64, addr: u64, is_load: bool) -> u32 {
        let mut lat = self.dl1.latency;
        if !self.dtlb.access(addr) {
            lat += if self.l2tlb.access(addr) {
                self.dtlb.miss_penalty
            } else {
                self.dtlb.miss_penalty + self.l2tlb.miss_penalty
            };
        }
        if !self.dl1.access(addr) {
            lat += if self.l2.access(addr) { self.l2.latency } else { self.l2.latency + self.cfg.mem_latency };
        }
        if is_load && self.cfg.prefetch {
            for p in self.prefetcher.train(pc, addr) {
                // Prefetch fills both levels (next-line style).
                if !self.dl1.fill(p) {
                    self.l2.fill(p);
                }
            }
        }
        lat
    }

    /// Instruction-side fetch latency for a new cache line.
    fn fetch_latency(&mut self, pc_bytes: u64) -> u32 {
        let mut lat = 0;
        if !self.itlb.access(pc_bytes) {
            lat += if self.l2tlb.access(pc_bytes) {
                self.itlb.miss_penalty
            } else {
                self.itlb.miss_penalty + self.l2tlb.miss_penalty
            };
        }
        if !self.il1.access(pc_bytes) {
            lat += if self.l2.access(pc_bytes) {
                self.l2.latency
            } else {
                self.l2.latency + self.cfg.mem_latency
            };
        }
        lat
    }

    pub(crate) fn consume(&mut self, ev: &RetireEvent) {
        let pc_bytes = ev.host_pc * 4;

        // ---- front end -----------------------------------------------------
        if self.fe_count >= self.cfg.fetch_width {
            self.fe_cycle += 1;
            self.fe_count = 0;
        }
        if self.fe_cycle < self.redirect_until {
            self.fe_cycle = self.redirect_until;
            self.fe_count = 0;
        }
        let line = pc_bytes / self.cfg.il1.line as u64;
        if line != self.last_fetch_line {
            let extra = self.fetch_latency(pc_bytes);
            self.fe_cycle += extra as u64;
            self.last_fetch_line = line;
        }
        // IQ backpressure: cannot fetch more than iq_size ahead of issue.
        let gate = self.iq_ring[self.iq_pos];
        if self.fe_cycle < gate {
            self.fe_cycle = gate;
            self.fe_count = 0;
        }
        self.fe_count += 1;
        let fetched = self.fe_cycle;

        // ---- issue ---------------------------------------------------------
        let (class, _) = Self::classify(&ev.kind);
        let mut ready = fetched + self.cfg.frontend_depth as u64;
        for s in ev.srcs.into_iter().flatten() {
            ready = ready.max(self.scoreboard[s as usize & 127]);
            self.reg_reads += 1;
        }
        let mut cycle = ready.max(self.cur_cycle);
        loop {
            if cycle > self.cur_cycle {
                self.cur_cycle = cycle;
                self.usage = Usage::default();
            }
            let u = &self.usage;
            let fits = u.issued < self.cfg.issue_width
                && match class {
                    Class::Simple => u.simple < self.cfg.simple_units,
                    Class::Complex => u.complex < self.cfg.complex_units,
                    Class::Fp => u.fp < self.cfg.fp_units,
                    Class::Load => u.rports < self.cfg.mem_read_ports,
                    Class::Store => u.wports < self.cfg.mem_write_ports,
                };
            if fits {
                break;
            }
            cycle += 1;
        }
        self.usage.issued += 1;
        match class {
            Class::Simple => self.usage.simple += 1,
            Class::Complex => self.usage.complex += 1,
            Class::Fp => self.usage.fp += 1,
            Class::Load => self.usage.rports += 1,
            Class::Store => self.usage.wports += 1,
        }
        let issue = cycle;
        self.iq_ring[self.iq_pos] = issue;
        self.iq_pos = (self.iq_pos + 1) % self.iq_ring.len();

        // ---- execute -------------------------------------------------------
        let lat = match ev.kind {
            EventKind::Load { addr, .. } => {
                self.loads += 1;
                self.mem_latency(pc_bytes, addr as u64, true)
            }
            EventKind::Store { addr, .. } => {
                self.stores += 1;
                // Stores retire through the store buffer; the cache is
                // updated (write-allocate) but the latency is hidden.
                self.mem_latency(pc_bytes, addr as u64, false);
                1
            }
            ref k => {
                match k {
                    EventKind::IntMul => self.mul_ops += 1,
                    EventKind::IntDiv => self.div_ops += 1,
                    EventKind::FpAdd | EventKind::FpMul | EventKind::FpDiv
                    | EventKind::FpSqrt => self.fp_ops += 1,
                    _ => self.int_ops += 1,
                }
                self.latency_of(k)
            }
        };
        let complete = issue + lat as u64;
        if let Some(d) = ev.dst {
            self.scoreboard[d as usize & 127] = complete;
            self.reg_writes += 1;
        }
        self.last_complete = self.last_complete.max(complete);

        // ---- branch resolution ----------------------------------------------
        if let EventKind::Branch { taken, target, cond } = ev.kind {
            let mut redirect = false;
            if cond {
                let correct = self.gshare.update(ev.host_pc, taken);
                if !correct {
                    redirect = true;
                }
            }
            if taken {
                let _ = self.btb.lookup(ev.host_pc);
                if self.btb.update(ev.host_pc, target) {
                    redirect = true;
                }
            }
            if redirect {
                self.redirect_until =
                    self.redirect_until.max(complete + self.cfg.mispredict_penalty as u64);
                self.last_fetch_line = u64::MAX;
            }
        }
        self.insns += 1;
    }
}

impl InsnSink for InOrderCore {
    fn retire(&mut self, ev: &RetireEvent) {
        self.consume(ev);
    }

    fn install_note(&mut self, host_base: u64, code: &[darco_host::insn::HInsn]) -> Option<u64> {
        Some(crate::annotate::annotate(&self.cfg, host_base, code))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alu(pc: u64, dst: u8, a: u8, b: u8) -> RetireEvent {
        RetireEvent {
            host_pc: pc,
            kind: EventKind::IntAlu,
            dst: Some(dst),
            srcs: [Some(a), Some(b)],
        }
    }

    #[test]
    fn independent_alus_reach_issue_width_ipc() {
        let mut core = InOrderCore::new(TimingConfig::default());
        for i in 0..20_000u64 {
            let d = (i % 8) as u8 + 16;
            core.retire(&alu(i % 64, d, d, d.wrapping_add(1)));
        }
        let s = core.stats();
        let ipc = s.ipc();
        assert!(ipc > 1.6, "independent ALUs on a 2-wide core: ipc = {ipc}");
    }

    #[test]
    fn dependent_chain_limits_ipc_to_one() {
        let mut core = InOrderCore::new(TimingConfig::default());
        for i in 0..20_000u64 {
            core.retire(&alu(i % 64, 16, 16, 16)); // serial chain
        }
        let ipc = core.stats().ipc();
        assert!(ipc <= 1.05, "serial dependence chain: ipc = {ipc}");
    }

    #[test]
    fn long_latency_divides_slow_things_down() {
        let mut fast = InOrderCore::new(TimingConfig::default());
        let mut slow = InOrderCore::new(TimingConfig::default());
        for i in 0..5_000u64 {
            fast.retire(&alu(i % 64, 16, 16, 17));
            slow.retire(&RetireEvent {
                host_pc: i % 64,
                kind: EventKind::IntDiv,
                dst: Some(16),
                srcs: [Some(16), Some(17)],
            });
        }
        assert!(slow.stats().cycles > 5 * fast.stats().cycles);
    }

    #[test]
    fn cache_missing_loads_hurt() {
        let mut hit = InOrderCore::new(TimingConfig::default());
        let mut miss = InOrderCore::new(TimingConfig { prefetch: false, ..Default::default() });
        for i in 0..10_000u64 {
            hit.retire(&RetireEvent {
                host_pc: i % 16,
                kind: EventKind::Load { addr: 0x1000, bytes: 4 },
                dst: Some(16),
                srcs: [Some(17), None],
            });
            // Pointer-chasing pattern: random-ish lines over 16 MiB, and the
            // next load depends on the previous one.
            let a = (i.wrapping_mul(2654435761) % (16 << 20)) as u32;
            miss.retire(&RetireEvent {
                host_pc: i % 16,
                kind: EventKind::Load { addr: a, bytes: 4 },
                dst: Some(16),
                srcs: [Some(16), None],
            });
        }
        let (h, m) = (hit.stats(), miss.stats());
        assert!(h.dl1_misses < 10);
        assert!(m.dl1_misses > 9_000);
        assert!(m.cycles > 10 * h.cycles, "memory-bound: {} vs {}", m.cycles, h.cycles);
    }

    #[test]
    fn prefetcher_rescues_streaming_loads() {
        let run = |pf: bool| {
            let mut core =
                InOrderCore::new(TimingConfig { prefetch: pf, ..Default::default() });
            for i in 0..20_000u64 {
                // Load-to-load dependence: each miss is exposed, so the
                // prefetcher's conversion of misses to hits is visible.
                core.retire(&RetireEvent {
                    host_pc: 5,
                    kind: EventKind::Load { addr: (i * 64) as u32, bytes: 4 },
                    dst: Some(16),
                    srcs: [Some(16), None],
                });
            }
            core.stats()
        };
        let without = run(false);
        let with = run(true);
        assert!(with.prefetches > 10_000);
        assert!(
            with.cycles * 2 < without.cycles,
            "prefetching must help streaming: {} vs {}",
            with.cycles,
            without.cycles
        );
    }

    #[test]
    fn mispredicted_branches_cost_refills() {
        let run = |biased: bool| {
            let mut core = InOrderCore::new(TimingConfig::default());
            let mut x = 99u64;
            for i in 0..20_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let taken = if biased { true } else { (x >> 40) & 1 == 1 };
                core.retire(&RetireEvent {
                    host_pc: 7,
                    kind: EventKind::Branch {
                        taken,
                        target: if taken { 100 } else { 8 },
                        cond: true,
                    },
                    dst: None,
                    srcs: [Some(16), None],
                });
                core.retire(&alu(i % 32 + 8, (i % 8) as u8 + 16, 17, 18));
            }
            core.stats()
        };
        let good = run(true);
        let bad = run(false);
        assert!(bad.mispredicts > 20 * good.mispredicts.max(1));
        assert!(bad.cycles > good.cycles * 2, "{} vs {}", bad.cycles, good.cycles);
    }

    #[test]
    fn snapshot_mid_stream_continues_identically() {
        // A mixed stream exercising caches, predictors and the prefetcher.
        let event = |i: u64| {
            let x = i.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            match x % 5 {
                0 => RetireEvent {
                    host_pc: i % 256,
                    kind: EventKind::Load { addr: ((x >> 20) % (1 << 22)) as u32, bytes: 4 },
                    dst: Some(16 + (i % 8) as u8),
                    srcs: [Some(17), None],
                },
                1 => RetireEvent {
                    host_pc: i % 256,
                    kind: EventKind::Store { addr: ((x >> 24) % (1 << 20)) as u32, bytes: 4 },
                    dst: None,
                    srcs: [Some(16), Some(18)],
                },
                2 => RetireEvent {
                    host_pc: i % 64,
                    kind: EventKind::Branch {
                        taken: (x >> 40) & 1 == 1,
                        target: (x >> 13) % 512,
                        cond: true,
                    },
                    dst: None,
                    srcs: [Some(19), None],
                },
                _ => alu(i % 128, 16 + (i % 8) as u8, 17, 18),
            }
        };
        let mut whole = InOrderCore::new(TimingConfig::default());
        for i in 0..6_000 {
            whole.retire(&event(i));
        }

        let mut first = InOrderCore::new(TimingConfig::default());
        for i in 0..2_500 {
            first.retire(&event(i));
        }
        let mut w = darco_guest::Wire::new();
        first.snapshot_into(&mut w);
        let bytes = w.finish();

        let mut resumed = InOrderCore::new(TimingConfig::default());
        let mut r = darco_guest::WireReader::new(&bytes);
        resumed.restore_from(&mut r).unwrap();
        r.expect_end().unwrap();
        for i in 2_500..6_000 {
            resumed.retire(&event(i));
        }
        assert_eq!(resumed.stats(), whole.stats());
    }

    #[test]
    fn wider_issue_helps_parallel_code() {
        let run = |width: u32| {
            let mut core = InOrderCore::new(TimingConfig {
                issue_width: width,
                fetch_width: width * 2,
                simple_units: width,
                ..Default::default()
            });
            for i in 0..20_000u64 {
                let d = (i % 12) as u8 + 16;
                core.retire(&alu(i % 64, d, 40, 41));
            }
            core.stats()
        };
        let narrow = run(1);
        let wide = run(4);
        assert!(wide.ipc() > 2.5 * narrow.ipc());
    }
}
