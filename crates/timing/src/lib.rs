//! # The DARCO timing simulator
//!
//! A parameterized **in-order superscalar** core model (paper §V-C): a
//! decoupled front-end (BTB + gshare branch predictor, I-cache, I-TLB)
//! and back-end (scoreboard for dependences and resource tracking; simple,
//! complex and FP/vector units) separated by an instruction queue; a
//! two-level cache and TLB hierarchy with a stride data prefetcher.
//!
//! The simulator is trace-driven: it implements
//! [`darco_host::InsnSink`] and consumes the retired host-instruction
//! stream the co-designed component produces ("receives the dynamic
//! instruction stream from the co-designed component").
//!
//! As an extension for the paper's "wide in-order or narrow out-of-order"
//! challenge (§III), [`ooo::OooCore`] models a narrow out-of-order core
//! with a ROB window over the same event stream, so the two
//! microarchitecture styles can be compared on identical instruction
//! streams (ablation A4).

pub mod annotate;
pub mod bpred;
pub mod cache;
pub mod config;
pub mod core;
pub mod fast;
pub mod ooo;
pub mod prefetch;

pub use config::{CacheConfig, TimingConfig, TlbConfig};
pub use core::{InOrderCore, TimingStats};
pub use fast::{FastStats, FastTimer};
pub use ooo::OooCore;
