//! Set-associative cache and TLB models (LRU replacement).

use crate::config::{CacheConfig, TlbConfig};

/// A set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct CacheModel {
    line_shift: u32,
    set_mask: u64,
    ways: usize,
    /// `sets[set][way] = (tag, last_use)`.
    sets: Vec<Vec<(u64, u64)>>,
    tick: u64,
    /// Accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
    /// Hit latency.
    pub latency: u32,
}

impl CacheModel {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    /// Panics if the geometry is not a power of two.
    pub fn new(cfg: &CacheConfig) -> CacheModel {
        let lines = cfg.size / cfg.line;
        let sets = (lines / cfg.ways).max(1);
        assert!(sets.is_power_of_two(), "cache sets must be a power of two");
        assert!(cfg.line.is_power_of_two(), "line size must be a power of two");
        CacheModel {
            line_shift: cfg.line.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            ways: cfg.ways as usize,
            sets: vec![Vec::new(); sets as usize],
            tick: 0,
            accesses: 0,
            misses: 0,
            latency: cfg.latency,
        }
    }

    /// Accesses `addr`; returns true on hit. Misses allocate (the caller
    /// charges next-level latency).
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.tick += 1;
        let hit = self.probe_fill(addr);
        if !hit {
            self.misses += 1;
        }
        hit
    }

    /// Inserts a line without counting an access (prefetch fill). Returns
    /// true if it was already present.
    pub fn fill(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.probe_fill(addr)
    }

    /// Pure probe: returns the `(set, way)` of `addr` if it would hit,
    /// without touching any state. Pair with [`CacheModel::commit_hit`] to
    /// realize the access, or fall back to [`CacheModel::access`] on a
    /// miss. The pair `peek_hit` + `commit_hit` is byte-for-byte
    /// equivalent to one hitting `access` call.
    pub fn peek_hit(&self, addr: u64) -> Option<(u32, u32)> {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        self.sets[set]
            .iter()
            .position(|e| e.0 == tag)
            .map(|way| (set as u32, way as u32))
    }

    /// Applies the bookkeeping of a hitting access previously confirmed by
    /// [`CacheModel::peek_hit`] (same tick/LRU/counter effects as
    /// [`CacheModel::access`] returning true).
    pub fn commit_hit(&mut self, set: u32, way: u32) {
        self.accesses += 1;
        self.tick += 1;
        self.sets[set as usize][way as usize].1 = self.tick;
    }

    fn probe_fill(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let ways = &mut self.sets[set];
        if let Some(e) = ways.iter_mut().find(|e| e.0 == tag) {
            e.1 = self.tick;
            return true;
        }
        if ways.len() >= self.ways {
            let lru = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("nonempty");
            ways.swap_remove(lru);
        }
        ways.push((tag, self.tick));
        false
    }

    /// Serializes the full cache state: geometry-independent dynamic
    /// state only (tags in their exact storage order — `swap_remove`
    /// history is part of LRU behaviour — plus the tick and the stat
    /// counters). Geometry is re-derived from config on restore.
    pub fn snapshot_into(&self, w: &mut darco_guest::Wire) {
        w.put_usize(self.sets.len());
        for ways in &self.sets {
            w.put_usize(ways.len());
            for &(tag, last) in ways {
                w.put_u64(tag);
                w.put_u64(last);
            }
        }
        w.put_u64(self.tick);
        w.put_u64(self.accesses);
        w.put_u64(self.misses);
    }

    /// Restores dynamic state from a [`CacheModel::snapshot_into`]
    /// stream. `self` must have been built from the same configuration.
    ///
    /// # Errors
    /// Wire decode failures, or a set count that disagrees with this
    /// cache's geometry.
    pub fn restore_from(&mut self, r: &mut darco_guest::WireReader<'_>) -> Result<(), darco_guest::WireError> {
        let nsets = r.get_usize()?;
        if nsets != self.sets.len() {
            return Err(darco_guest::WireError::Malformed {
                at: r.pos(),
                what: "cache snapshot geometry mismatch",
            });
        }
        for ways in &mut self.sets {
            let n = r.get_usize()?;
            ways.clear();
            for _ in 0..n {
                let tag = r.get_u64()?;
                let last = r.get_u64()?;
                ways.push((tag, last));
            }
        }
        self.tick = r.get_u64()?;
        self.accesses = r.get_u64()?;
        self.misses = r.get_u64()?;
        Ok(())
    }

    /// Miss rate so far.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A fully associative, LRU TLB.
#[derive(Debug, Clone)]
pub struct TlbModel {
    entries: usize,
    map: Vec<(u64, u64)>, // (page, last_use)
    tick: u64,
    /// Accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
    /// Penalty on miss.
    pub miss_penalty: u32,
}

impl TlbModel {
    /// Builds a TLB from its configuration.
    pub fn new(cfg: &TlbConfig) -> TlbModel {
        TlbModel {
            entries: cfg.entries as usize,
            map: Vec::new(),
            tick: 0,
            accesses: 0,
            misses: 0,
            miss_penalty: cfg.miss_penalty,
        }
    }

    /// Accesses the page of `addr` (4 KiB pages); returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.tick += 1;
        let page = addr >> 12;
        if let Some(e) = self.map.iter_mut().find(|e| e.0 == page) {
            e.1 = self.tick;
            return true;
        }
        self.misses += 1;
        if self.map.len() >= self.entries {
            let lru = self
                .map
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("nonempty");
            self.map.swap_remove(lru);
        }
        self.map.push((page, self.tick));
        false
    }

    /// Pure probe: index of the entry mapping `addr`'s page, or `None` if
    /// the access would miss. No state is touched; pair with
    /// [`TlbModel::commit_hit`] to realize the access exactly as a hitting
    /// [`TlbModel::access`] would.
    pub fn peek_hit(&self, addr: u64) -> Option<u32> {
        let page = addr >> 12;
        self.map.iter().position(|e| e.0 == page).map(|i| i as u32)
    }

    /// Applies the bookkeeping of a hitting access previously confirmed by
    /// [`TlbModel::peek_hit`].
    pub fn commit_hit(&mut self, idx: u32) {
        self.accesses += 1;
        self.tick += 1;
        self.map[idx as usize].1 = self.tick;
    }

    /// Serializes the TLB's dynamic state (entries in storage order, tick,
    /// stat counters).
    pub fn snapshot_into(&self, w: &mut darco_guest::Wire) {
        w.put_usize(self.map.len());
        for &(page, last) in &self.map {
            w.put_u64(page);
            w.put_u64(last);
        }
        w.put_u64(self.tick);
        w.put_u64(self.accesses);
        w.put_u64(self.misses);
    }

    /// Restores dynamic state from a [`TlbModel::snapshot_into`] stream.
    ///
    /// # Errors
    /// Propagates wire decode failures.
    pub fn restore_from(&mut self, r: &mut darco_guest::WireReader<'_>) -> Result<(), darco_guest::WireError> {
        let n = r.get_usize()?;
        self.map.clear();
        for _ in 0..n {
            let page = r.get_u64()?;
            let last = r.get_u64()?;
            self.map.push((page, last));
        }
        self.tick = r.get_u64()?;
        self.accesses = r.get_u64()?;
        self.misses = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheModel::new(&CacheConfig { size: 1024, ways: 2, line: 64, latency: 1 });
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004), "same line");
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 2 ways; three conflicting lines evict the least recently used.
        let cfg = CacheConfig { size: 2 * 64, ways: 2, line: 64, latency: 1 };
        let mut c = CacheModel::new(&cfg); // 1 set
        c.access(0);
        c.access(0x40);
        c.access(0); // refresh line 0
        assert!(!c.access(0x80), "miss; evicts 0x40");
        assert!(c.access(0), "line 0 survives");
        assert!(!c.access(0x40), "0x40 was evicted");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let cfg = CacheConfig { size: 4096, ways: 4, line: 64, latency: 1 };
        let mut c = CacheModel::new(&cfg);
        for round in 0..4 {
            for i in 0..256u64 {
                c.access(i * 64);
            }
            let _ = round;
        }
        assert!(c.miss_rate() > 0.9, "64-line cache can't hold 256 lines");
    }

    #[test]
    fn tlb_tracks_pages() {
        let mut t = TlbModel::new(&TlbConfig { entries: 2, miss_penalty: 10 });
        assert!(!t.access(0x1000));
        assert!(t.access(0x1FFF), "same page");
        t.access(0x2000);
        t.access(0x3000); // evicts 0x1000
        assert!(!t.access(0x1000));
    }

    #[test]
    fn peek_commit_pair_matches_a_hitting_access() {
        let cfg = CacheConfig { size: 1024, ways: 2, line: 64, latency: 1 };
        let mut a = CacheModel::new(&cfg);
        let mut b = CacheModel::new(&cfg);
        for c in [&mut a, &mut b] {
            c.access(0x1000);
            c.access(0x2000);
        }
        assert!(a.access(0x1000));
        let (set, way) = b.peek_hit(0x1000).expect("resident line");
        b.commit_hit(set, way);
        let mut wa = darco_guest::Wire::new();
        let mut wb = darco_guest::Wire::new();
        a.snapshot_into(&mut wa);
        b.snapshot_into(&mut wb);
        assert_eq!(wa.finish(), wb.finish());
        assert_eq!(a.peek_hit(0x3000), None, "absent line does not peek");

        let mut ta = TlbModel::new(&TlbConfig { entries: 4, miss_penalty: 8 });
        let mut tb = TlbModel::new(&TlbConfig { entries: 4, miss_penalty: 8 });
        for t in [&mut ta, &mut tb] {
            t.access(0x1000);
            t.access(0x5000);
        }
        assert!(ta.access(0x1234));
        let i = tb.peek_hit(0x1234).expect("resident page");
        tb.commit_hit(i);
        let mut wa = darco_guest::Wire::new();
        let mut wb = darco_guest::Wire::new();
        ta.snapshot_into(&mut wa);
        tb.snapshot_into(&mut wb);
        assert_eq!(wa.finish(), wb.finish());
        assert_eq!(tb.peek_hit(0x9000), None);
    }

    #[test]
    fn prefetch_fill_is_not_an_access() {
        let mut c = CacheModel::new(&CacheConfig { size: 1024, ways: 2, line: 64, latency: 1 });
        c.fill(0x2000);
        assert_eq!(c.accesses, 0);
        assert!(c.access(0x2000), "prefetched line hits");
    }
}
