//! The memoizing fast timing path.
//!
//! [`FastTimer`] wraps an [`InOrderCore`] and charges whole translated
//! blocks in one step instead of scheduling every retired instruction.
//! The first time a block shape is seen it is replayed through the full
//! core while its per-event schedule (issue/complete cycles relative to
//! the block entry) is recorded; if the replay was *clean* — every
//! I/D-cache and TLB access hit, every branch predicted, no prefetches —
//! the schedule is memoized, keyed by the block's entry pc plus a
//! signature of the schedule-relevant entry state (front-end cursor, IQ
//! ring, scoreboard, per-cycle resource usage).
//!
//! On later occurrences with a matching signature the recorded schedule
//! is *verified* event by event with pure model probes
//! ([`CacheModel::peek_hit`](crate::cache::CacheModel::peek_hit),
//! [`Gshare::peek_correct`](crate::bpred::Gshare::peek_correct), ...) and
//! committed without re-running the scheduling loops. The moment any
//! probe fails — a cache or TLB miss, a mispredict, a prefetcher about to
//! fire — the fast path *escapes*: the remaining events drop into the
//! full [`InOrderCore::consume`] with all model state exactly as the full
//! simulation would have left it.
//!
//! Because probes are pure and commits are byte-equivalent to hitting
//! accesses, the fast path is **bit-identical** to full simulation: every
//! statistic, every cycle count, every model's serialized state matches
//! `timing_mode=full` exactly. "Fast" buys back the per-event scheduling
//! arithmetic, not accuracy — the headline speedups come from the SMARTS
//! sampling campaign layered on top (see `darco_core::sampling`).

use std::collections::HashMap;

use crate::annotate;
use crate::config::TimingConfig;
use crate::core::{InOrderCore, TimingStats, Usage};
use darco_host::insn::HInsn;
use darco_host::sink::{EventKind, InsnSink, RetireEvent};

/// Blocks longer than this are not memoized (replayed in full instead);
/// bounds per-variant memory and signature length.
const MAX_BLOCK_EVENTS: usize = 512;
/// Distinct entry-state variants kept per block, replaced round-robin.
const MAX_VARIANTS: usize = 4;
/// Distinct block entry pcs memoized before the table is reset.
const MAX_BASES: usize = 4096;
/// Consecutive escaping replays after which a variant is dropped so the
/// block can be re-learned (its recorded shape no longer matches reality,
/// e.g. the working set shifted for good).
const STALE_STREAK: u32 = 8;

/// Canonical "can never affect the schedule" marker in signatures.
const SENT: i64 = i64::MIN;

/// Recorded per-event schedule, relative to the block-entry issue cycle.
#[derive(Debug, Clone)]
struct EventRec {
    /// Host pc (word units) — verified against the live event.
    pc: u64,
    /// Kind/operand fingerprint — verified against the live event.
    fp: u32,
    /// Fetch line of this pc.
    line: u64,
    /// Whether fetching this event touched a new line (I-side probes).
    line_changed: bool,
    /// Issue cycle − entry `cur_cycle`.
    issue_rel: u64,
    /// Completion cycle − entry `cur_cycle`.
    complete_rel: u64,
    /// Front-end cycle after the event − entry `cur_cycle` (can be
    /// negative when fetch runs behind the back end).
    fe_rel: i64,
    fe_count_after: u32,
    cur_rel_after: u64,
    usage_after: Usage,
}

/// One memoized (entry-state signature → schedule) pair.
#[derive(Debug, Clone)]
struct Variant {
    sig: Vec<i64>,
    /// Distinct source registers of the block, first-occurrence order;
    /// their entry scoreboard values are part of the signature.
    regs: Vec<u8>,
    recs: Vec<EventRec>,
    /// Consecutive escapes since the last full fast replay.
    streak: u32,
}

#[derive(Debug, Default)]
struct BaseMemo {
    variants: Vec<Variant>,
    next_replace: usize,
}

/// Fast-path telemetry (the `fast.*` metric namespace).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastStats {
    /// Blocks charged entirely from a memoized schedule.
    pub memo_blocks: u64,
    /// Events charged from memoized schedules (including before escapes).
    pub memo_events: u64,
    /// Replays that escaped to the full core mid-block.
    pub escapes: u64,
    /// Schedules learned (clean replays memoized).
    pub learns: u64,
    /// Blocks replayed in full without a memo attempt (incomplete blocks,
    /// oversized blocks, unclean replays).
    pub plain_blocks: u64,
    /// Times the memo table hit its capacity and was reset.
    pub memo_clears: u64,
    /// Translations statically annotated at install time.
    pub installs: u64,
    /// Sum of static cycle annotations over installed translations.
    pub static_cycles: u64,
}

impl FastStats {
    /// Registers the telemetry as counters under `prefix`.
    pub fn register_into(&self, reg: &mut darco_obs::Registry, prefix: &str) {
        let fields: [(&str, u64); 8] = [
            ("memo_blocks", self.memo_blocks),
            ("memo_events", self.memo_events),
            ("escapes", self.escapes),
            ("learns", self.learns),
            ("plain_blocks", self.plain_blocks),
            ("memo_clears", self.memo_clears),
            ("installs", self.installs),
            ("static_cycles", self.static_cycles),
        ];
        for (name, v) in fields {
            reg.set_counter(&format!("{prefix}.{name}"), v);
        }
    }
}

/// Block-memoizing timing sink; see the module docs.
#[derive(Debug)]
pub struct FastTimer {
    core: InOrderCore,
    memo: HashMap<u64, BaseMemo>,
    stats: FastStats,
}

impl FastTimer {
    /// Creates a fast timer over an in-order core with this configuration.
    pub fn new(cfg: TimingConfig) -> FastTimer {
        FastTimer { core: InOrderCore::new(cfg), memo: HashMap::new(), stats: FastStats::default() }
    }

    /// Final timing statistics — identical to what `timing_mode=full`
    /// reports for the same event stream.
    pub fn stats(&self) -> TimingStats {
        self.core.stats()
    }

    /// Fast-path telemetry. Deterministic for a given cold-start run, but
    /// not preserved across snapshot/restore boundaries the way timing
    /// state is (the memo table restarts cold), so these belong in live
    /// metrics, not byte-compared artifacts.
    pub fn fast_stats(&self) -> FastStats {
        self.stats
    }

    /// The wrapped full core (read-only).
    pub fn core(&self) -> &InOrderCore {
        &self.core
    }

    /// Serializes the timing state: the wrapped core in its exact wire
    /// format, then the fast-path telemetry. The memo table is *not*
    /// serialized — a restored timer re-learns block schedules, which
    /// changes nothing observable in the timing results (memoization is
    /// bit-exact either way).
    pub fn snapshot_into(&self, w: &mut darco_guest::Wire) {
        self.core.snapshot_into(w);
        for v in [
            self.stats.memo_blocks,
            self.stats.memo_events,
            self.stats.escapes,
            self.stats.learns,
            self.stats.plain_blocks,
            self.stats.memo_clears,
            self.stats.installs,
            self.stats.static_cycles,
        ] {
            w.put_u64(v);
        }
    }

    /// Restores from a [`FastTimer::snapshot_into`] stream; the memo table
    /// starts cold.
    ///
    /// # Errors
    /// Wire decode failures or core geometry mismatches.
    pub fn restore_from(&mut self, r: &mut darco_guest::WireReader<'_>) -> Result<(), darco_guest::WireError> {
        self.core.restore_from(r)?;
        self.stats.memo_blocks = r.get_u64()?;
        self.stats.memo_events = r.get_u64()?;
        self.stats.escapes = r.get_u64()?;
        self.stats.learns = r.get_u64()?;
        self.stats.plain_blocks = r.get_u64()?;
        self.stats.memo_clears = r.get_u64()?;
        self.stats.installs = r.get_u64()?;
        self.stats.static_cycles = r.get_u64()?;
        self.memo.clear();
        Ok(())
    }
}

/// Kind + operand fingerprint. Operand *identity* pins the recorded
/// schedule; addresses, directions and targets are deliberately excluded —
/// they only reach the schedule through model outcomes (miss latencies,
/// redirects), and those are re-verified live with pure probes on every
/// replay.
fn fingerprint(ev: &RetireEvent) -> u32 {
    let d = match ev.kind {
        EventKind::IntAlu => 0u32,
        EventKind::IntMul => 1,
        EventKind::IntDiv => 2,
        EventKind::FpAdd => 3,
        EventKind::FpMul => 4,
        EventKind::FpDiv => 5,
        EventKind::FpSqrt => 6,
        EventKind::Load { .. } => 7,
        EventKind::Store { .. } => 8,
        EventKind::Branch { .. } => 9,
        EventKind::Other => 10,
    };
    let r = |x: Option<u8>| x.map_or(255u32, |v| v as u32);
    d | (r(ev.dst) << 8) | (r(ev.srcs[0]) << 16) | (r(ev.srcs[1]) << 24)
}

/// Computes the schedule-relevant entry-state signature, canonicalized
/// relative to the entry `cur_cycle` so the same block shape matches at
/// any absolute cycle. Values that provably cannot influence the schedule
/// (stale IQ gates, scoreboard entries below the dependence floor) are
/// collapsed to [`SENT`].
fn push_sig(core: &InOrderCore, regs: &[u8], n_events: usize, first_line: u64, sig: &mut Vec<i64>) {
    let c0 = core.cur_cycle as i64;
    sig.push(core.fe_cycle as i64 - c0);
    sig.push(core.fe_count as i64);
    sig.push((core.last_fetch_line == first_line) as i64);
    // A redirect deadline already behind the front end can never clamp it.
    sig.push(if core.redirect_until <= core.fe_cycle {
        SENT
    } else {
        core.redirect_until as i64 - c0
    });
    let u = &core.usage;
    for v in [u.issued, u.simple, u.complex, u.fp, u.rports, u.wports] {
        sig.push(v as i64);
    }
    // IQ gates read by the first min(n, iq) events; entries at or behind
    // the front end never backpressure.
    let len = core.iq_ring.len();
    for k in 0..n_events.min(len) {
        let e = core.iq_ring[(core.iq_pos + k) % len];
        sig.push(if e <= core.fe_cycle { SENT } else { e as i64 - c0 });
    }
    // Scoreboard entries below max(fe+depth, cur) are dominated by the
    // fetch/issue floor and cannot lengthen any dependence.
    let floor = core.cur_cycle.max(core.fe_cycle + core.cfg.frontend_depth as u64);
    for &r in regs {
        let s = core.scoreboard[r as usize & 127];
        sig.push(if s <= floor { SENT } else { s as i64 - c0 });
    }
}

/// Replays a memoized schedule against the live event stream. Returns how
/// many leading events were verified and committed; the caller routes the
/// remainder (if any) through the full core. Events `0..returned` have
/// all their model/stat/scoreboard effects applied exactly as
/// [`InOrderCore::consume`] would have; events from the returned index on
/// have touched nothing.
fn replay(core: &mut InOrderCore, v: &Variant, events: &[RetireEvent]) -> usize {
    let c0 = core.cur_cycle;
    let n = events.len().min(v.recs.len());
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut int_ops = 0u64;
    let mut mul_ops = 0u64;
    let mut div_ops = 0u64;
    let mut fp_ops = 0u64;
    let mut reg_reads = 0u64;
    let mut reg_writes = 0u64;
    let mut max_complete = 0u64;
    let mut j = 0usize;
    'scan: while j < n {
        let ev = &events[j];
        let rec = &v.recs[j];
        if ev.host_pc != rec.pc || fingerprint(ev) != rec.fp {
            break;
        }
        let pc_bytes = ev.host_pc * 4;
        // ---- verify: pure probes, nothing touched yet -------------------
        let iside = if rec.line_changed {
            let Some(ti) = core.itlb.peek_hit(pc_bytes) else { break };
            let Some(ih) = core.il1.peek_hit(pc_bytes) else { break };
            Some((ti, ih))
        } else {
            None
        };
        let dside = match ev.kind {
            EventKind::Load { addr, .. } | EventKind::Store { addr, .. } => {
                let addr = addr as u64;
                let Some(di) = core.dtlb.peek_hit(addr) else { break };
                let Some(dh) = core.dl1.peek_hit(addr) else { break };
                if matches!(ev.kind, EventKind::Load { .. })
                    && core.cfg.prefetch
                    && core.prefetcher.would_issue(pc_bytes, addr)
                {
                    break;
                }
                Some((di, dh))
            }
            EventKind::Branch { taken, target, cond } => {
                if cond && !core.gshare.peek_correct(ev.host_pc, taken) {
                    break 'scan;
                }
                if taken && !core.btb.peek_same(ev.host_pc, target) {
                    break 'scan;
                }
                None
            }
            _ => None,
        };
        // ---- commit: exactly one hitting access per probed model --------
        if let Some((ti, (is_, iw))) = iside {
            core.itlb.commit_hit(ti);
            core.il1.commit_hit(is_, iw);
        }
        match ev.kind {
            EventKind::Load { addr, .. } => {
                let (di, (ds, dw)) = dside.expect("verified above");
                core.dtlb.commit_hit(di);
                core.dl1.commit_hit(ds, dw);
                if core.cfg.prefetch {
                    let fired = core.prefetcher.train(pc_bytes, addr as u64);
                    debug_assert!(fired.is_empty(), "would_issue said quiet");
                }
                loads += 1;
            }
            EventKind::Store { addr, .. } => {
                let _ = addr;
                let (di, (ds, dw)) = dside.expect("verified above");
                core.dtlb.commit_hit(di);
                core.dl1.commit_hit(ds, dw);
                stores += 1;
            }
            EventKind::Branch { taken, target, cond } => {
                if cond {
                    let correct = core.gshare.update(ev.host_pc, taken);
                    debug_assert!(correct, "peek said predicted");
                }
                if taken {
                    let _ = core.btb.lookup(ev.host_pc);
                    let wrong = core.btb.update(ev.host_pc, target);
                    debug_assert!(!wrong, "peek said same target");
                }
                int_ops += 1;
            }
            EventKind::IntMul => mul_ops += 1,
            EventKind::IntDiv => div_ops += 1,
            EventKind::FpAdd | EventKind::FpMul | EventKind::FpDiv | EventKind::FpSqrt => {
                fp_ops += 1
            }
            EventKind::IntAlu | EventKind::Other => int_ops += 1,
        }
        reg_reads += ev.srcs.iter().flatten().count() as u64;
        // The recorded schedule lands in the IQ ring and scoreboard
        // eagerly — an escape at a later event keeps these, exactly as the
        // full core would have written them.
        core.iq_ring[core.iq_pos] = c0 + rec.issue_rel;
        core.iq_pos = (core.iq_pos + 1) % core.iq_ring.len();
        let complete = c0 + rec.complete_rel;
        if let Some(d) = ev.dst {
            core.scoreboard[d as usize & 127] = complete;
            reg_writes += 1;
        }
        max_complete = max_complete.max(complete);
        j += 1;
    }
    if j > 0 {
        // Roll the scalar pipeline state forward to just after event j-1.
        let rec = &v.recs[j - 1];
        core.fe_cycle = (c0 as i64 + rec.fe_rel) as u64;
        core.fe_count = rec.fe_count_after;
        core.last_fetch_line = rec.line;
        core.cur_cycle = c0 + rec.cur_rel_after;
        core.usage = rec.usage_after;
        core.last_complete = core.last_complete.max(max_complete);
        core.insns += j as u64;
        core.loads += loads;
        core.stores += stores;
        core.int_ops += int_ops;
        core.mul_ops += mul_ops;
        core.div_ops += div_ops;
        core.fp_ops += fp_ops;
        core.reg_reads += reg_reads;
        core.reg_writes += reg_writes;
        // `redirect_until` is untouched: a clean prefix never redirects,
        // and entry redirect effects are baked into the recorded fe_rel.
    }
    j
}

/// Runs the block through the full core while recording its schedule.
/// Returns a memoizable variant only when the replay was clean: no cache,
/// TLB or prediction misses and no prefetches, anywhere in the block.
fn learn(core: &mut InOrderCore, events: &[RetireEvent]) -> Option<Variant> {
    let mut regs: Vec<u8> = Vec::new();
    for ev in events {
        for s in ev.srcs.into_iter().flatten() {
            if !regs.contains(&(s & 127)) {
                regs.push(s & 127);
            }
        }
    }
    let first_line = events[0].host_pc * 4 / core.cfg.il1.line as u64;
    let mut sig = Vec::new();
    push_sig(core, &regs, events.len(), first_line, &mut sig);

    let clean_before = core.il1.misses
        + core.dl1.misses
        + core.itlb.misses
        + core.dtlb.misses
        + core.gshare.mispredicts
        + core.btb.target_misses
        + core.prefetcher.issued;
    let c0 = core.cur_cycle;
    let mut recs = Vec::with_capacity(events.len());
    for ev in events {
        let line = ev.host_pc * 4 / core.cfg.il1.line as u64;
        let line_changed = line != core.last_fetch_line;
        core.consume(ev);
        let len = core.iq_ring.len();
        let issue = core.iq_ring[(core.iq_pos + len - 1) % len];
        let complete = match ev.dst {
            Some(d) => core.scoreboard[d as usize & 127],
            None => {
                issue
                    + match ev.kind {
                        EventKind::Load { .. } => core.dl1.latency as u64,
                        EventKind::Store { .. } => 1,
                        ref k => core.latency_of(k) as u64,
                    }
            }
        };
        recs.push(EventRec {
            pc: ev.host_pc,
            fp: fingerprint(ev),
            line,
            line_changed,
            issue_rel: issue - c0,
            complete_rel: complete - c0,
            fe_rel: core.fe_cycle as i64 - c0 as i64,
            fe_count_after: core.fe_count,
            cur_rel_after: core.cur_cycle - c0,
            usage_after: core.usage,
        });
    }
    let clean_after = core.il1.misses
        + core.dl1.misses
        + core.itlb.misses
        + core.dtlb.misses
        + core.gshare.mispredicts
        + core.btb.target_misses
        + core.prefetcher.issued;
    (clean_after == clean_before).then_some(Variant { sig, regs, recs, streak: 0 })
}

impl InsnSink for FastTimer {
    fn retire(&mut self, ev: &RetireEvent) {
        self.core.consume(ev);
    }

    fn wants_blocks(&self) -> bool {
        true
    }

    fn retire_block(&mut self, events: &[RetireEvent], complete: bool) {
        let FastTimer { core, memo, stats } = self;
        if events.is_empty() {
            return;
        }
        let n = events.len();
        if !complete || n > MAX_BLOCK_EVENTS {
            for ev in events {
                core.consume(ev);
            }
            stats.plain_blocks += 1;
            return;
        }
        let base = events[0].host_pc;
        if let Some(bm) = memo.get_mut(&base) {
            let mut sig = Vec::new();
            let mut chosen = None;
            for (vi, v) in bm.variants.iter().enumerate() {
                sig.clear();
                push_sig(core, &v.regs, v.recs.len(), v.recs[0].line, &mut sig);
                if sig == v.sig {
                    chosen = Some(vi);
                    break;
                }
            }
            if let Some(vi) = chosen {
                let v = &mut bm.variants[vi];
                let j = replay(core, v, events);
                stats.memo_events += j as u64;
                if j == n {
                    v.streak = 0;
                    stats.memo_blocks += 1;
                } else {
                    v.streak += 1;
                    if v.streak >= STALE_STREAK {
                        bm.variants.remove(vi);
                    }
                    stats.escapes += 1;
                    // The prefix is committed; the rest goes through the
                    // full core against the exact same model state.
                    for ev in &events[j..] {
                        core.consume(ev);
                    }
                }
                return;
            }
        }
        // Unknown shape (or unseen entry state): learn it.
        match learn(core, events) {
            Some(v) => {
                if memo.len() >= MAX_BASES && !memo.contains_key(&base) {
                    memo.clear();
                    stats.memo_clears += 1;
                }
                let bm = memo.entry(base).or_default();
                if bm.variants.len() >= MAX_VARIANTS {
                    let slot = bm.next_replace % MAX_VARIANTS;
                    bm.variants[slot] = v;
                    bm.next_replace += 1;
                } else {
                    bm.variants.push(v);
                }
                stats.learns += 1;
            }
            None => stats.plain_blocks += 1,
        }
    }

    fn install_note(&mut self, host_base: u64, code: &[HInsn]) -> Option<u64> {
        let c = annotate::annotate(&self.core.cfg, host_base, code);
        self.stats.installs += 1;
        self.stats.static_cycles += c;
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimingConfig;

    fn lcg(x: &mut u64) -> u64 {
        *x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *x
    }

    /// A block of `len` events at `base`: a loop body shape with a load, a
    /// few dependent ALUs, a store and a backwards branch.
    fn block(base: u64, len: usize, addr: u32, taken: bool) -> Vec<RetireEvent> {
        let mut evs = Vec::new();
        evs.push(RetireEvent {
            host_pc: base,
            kind: EventKind::Load { addr, bytes: 4 },
            dst: Some(16),
            srcs: [Some(17), None],
        });
        for k in 1..len.saturating_sub(2) {
            evs.push(RetireEvent {
                host_pc: base + k as u64,
                kind: EventKind::IntAlu,
                dst: Some(16 + (k % 4) as u8),
                srcs: [Some(16), Some(17)],
            });
        }
        evs.push(RetireEvent {
            host_pc: base + len as u64 - 2,
            kind: EventKind::Store { addr, bytes: 4 },
            dst: None,
            srcs: [Some(16), Some(17)],
        });
        evs.push(RetireEvent {
            host_pc: base + len as u64 - 1,
            kind: EventKind::Branch { taken, target: base, cond: true },
            dst: None,
            srcs: [Some(18), None],
        });
        evs
    }

    #[test]
    fn steady_loop_goes_fast_and_stays_bit_identical() {
        let mut fast = FastTimer::new(TimingConfig::default());
        let mut full = InOrderCore::new(TimingConfig::default());
        let b = block(0x100, 12, 0x4000, true);
        for _ in 0..500 {
            fast.retire_block(&b, true);
            for ev in &b {
                full.consume(ev);
            }
        }
        assert_eq!(fast.stats(), full.stats(), "fast path must be exact");
        let fs = fast.fast_stats();
        assert!(fs.memo_blocks > 400, "steady loop must be memoized: {fs:?}");
        // Serialized microarchitectural state must match too, not just the
        // stat summary.
        let mut wa = darco_guest::Wire::new();
        let mut wb = darco_guest::Wire::new();
        fast.core().snapshot_into(&mut wa);
        full.snapshot_into(&mut wb);
        assert_eq!(wa.finish(), wb.finish());
    }

    #[test]
    fn chaotic_blocks_escape_but_never_diverge() {
        let mut fast = FastTimer::new(TimingConfig::default());
        let mut full = InOrderCore::new(TimingConfig::default());
        let mut x = 42u64;
        for i in 0..3_000u64 {
            let r = lcg(&mut x);
            let base = 0x100 + (r % 8) * 0x40;
            let len = 6 + (r % 6) as usize;
            // Mostly-stable per-block address with occasional far misses
            // and direction flips, to force escapes at every probe type.
            let addr = if r.is_multiple_of(11) { ((r >> 16) % (64 << 20)) as u32 } else { 0x4000 + (base as u32 & 0xFFF) };
            let taken = if r.is_multiple_of(7) { i.is_multiple_of(2) } else { true };
            let complete = !r.is_multiple_of(13);
            let b = block(base, len, addr, taken);
            fast.retire_block(&b, complete);
            for ev in &b {
                full.consume(ev);
            }
        }
        assert_eq!(fast.stats(), full.stats(), "fast path must be exact under chaos");
        let fs = fast.fast_stats();
        assert!(fs.memo_blocks > 0, "some blocks must replay fast: {fs:?}");
        assert!(fs.escapes > 0, "the perturbations must force escapes: {fs:?}");
        assert!(fs.plain_blocks > 0, "incomplete blocks take the plain path: {fs:?}");
        let mut wa = darco_guest::Wire::new();
        let mut wb = darco_guest::Wire::new();
        fast.core().snapshot_into(&mut wa);
        full.snapshot_into(&mut wb);
        assert_eq!(wa.finish(), wb.finish(), "full serialized state must match");
    }

    #[test]
    fn interleaved_retire_and_blocks_stay_exact() {
        // Overhead events (per-event retire) interleaved with blocks, as
        // the engine produces when TOL overhead accounting is on.
        let mut fast = FastTimer::new(TimingConfig::default());
        let mut full = InOrderCore::new(TimingConfig::default());
        let b = block(0x200, 10, 0x8000, true);
        for i in 0..300u64 {
            fast.retire_block(&b, true);
            for ev in &b {
                full.consume(ev);
            }
            let ov = RetireEvent {
                host_pc: 0x7000 + i % 4,
                kind: EventKind::IntAlu,
                dst: Some(20),
                srcs: [Some(20), None],
            };
            fast.retire(&ov);
            full.consume(&ov);
        }
        assert_eq!(fast.stats(), full.stats());
    }

    #[test]
    fn snapshot_restore_roundtrips_and_continues_exactly() {
        let cfg = TimingConfig::default();
        let mut fast = FastTimer::new(cfg.clone());
        let b = block(0x300, 8, 0x2000, true);
        for _ in 0..100 {
            fast.retire_block(&b, true);
        }
        let mut w = darco_guest::Wire::new();
        fast.snapshot_into(&mut w);
        let bytes = w.finish();

        let mut resumed = FastTimer::new(cfg);
        let mut r = darco_guest::WireReader::new(&bytes);
        resumed.restore_from(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(resumed.fast_stats(), fast.fast_stats());
        for _ in 0..100 {
            fast.retire_block(&b, true);
            resumed.retire_block(&b, true);
        }
        assert_eq!(resumed.stats(), fast.stats(), "restored timer continues identically");
    }

    #[test]
    fn install_note_annotates_and_counts() {
        use darco_host::insn::{HAluOp, HInsn};
        use darco_host::regs::HReg;
        let mut fast = FastTimer::new(TimingConfig::default());
        let code = [
            HInsn::AluI { op: HAluOp::Add, rd: HReg(16), ra: HReg(16), imm: 1 },
            HInsn::TolExit { id: 0 },
        ];
        let c = fast.install_note(0x40, &code).expect("timing sinks annotate");
        assert!(c > 0);
        let fs = fast.fast_stats();
        assert_eq!((fs.installs, fs.static_cycles), (1, c));
    }
}
