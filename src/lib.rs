//! Umbrella crate for the DARCO reproduction workspace.
//!
//! This package exists to host the workspace-level `examples/` and `tests/`
//! directories. The actual library surface lives in the `darco-*` crates; the
//! most convenient entry point is the [`darco`] crate, which re-exports the
//! controller, the co-designed component and the system configuration.
//!
//! # Quick start
//!
//! ```
//! use darco::{System, SystemConfig};
//! use darco_workloads::kernels;
//!
//! let program = kernels::dot_product(64);
//! let report = System::new(SystemConfig::default(), program).run().unwrap();
//! assert!(report.guest_insns > 0);
//! ```

pub use darco;
pub use darco_guest;
pub use darco_host;
pub use darco_ir;
pub use darco_power;
pub use darco_timing;
pub use darco_tol;
pub use darco_workloads;
pub use darco_xcomp;
