//! Quickstart: assemble a small guest program, run it through the full
//! DARCO system (co-designed component + authoritative component +
//! controller), and inspect what the software layer did.
//!
//! Run with: `cargo run --release --example quickstart`

use darco::{System, SystemConfig};
use darco_guest::{AluOp, Asm, Cond, Gpr};

fn main() {
    // A guest program: sum 1..=100_000 with a little bit twiddling.
    let mut a = Asm::new(0x10_0000);
    a.mov_ri(Gpr::Eax, 0);
    a.mov_ri(Gpr::Ecx, 100_000);
    let top = a.here();
    a.add_rr(Gpr::Eax, Gpr::Ecx);
    a.alu_ri(AluOp::Xor, Gpr::Ebx, 0x1234);
    a.alu_ri(AluOp::Sub, Gpr::Ecx, 1);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    let program = a.into_program();

    let report = System::new(SystemConfig::default(), program).expect_run();

    let (im, bbm, sbm) = report.mode_insns;
    println!("guest instructions : {}", report.guest_insns);
    println!("  interpreted (IM) : {im}");
    println!("  basic blocks     : {bbm}");
    println!("  superblocks      : {sbm}  ({:.1}%)", report.sbm_fraction() * 100.0);
    println!("host app insns     : {}", report.host_app_insns);
    println!("SBM emulation cost : {:.2} host/guest", report.sbm_emulation_cost);
    println!("TOL overhead       : {:.1}%", report.overhead_fraction() * 100.0);
    println!("translations       : {} BB + {} SB", report.tol_stats.translations_bb, report.tol_stats.translations_sb);
    println!("state validations  : {} (all passed)", report.validations);
}

trait ExpectRun {
    fn expect_run(self) -> darco::RunReport;
}

impl ExpectRun for System {
    fn expect_run(self) -> darco::RunReport {
        self.run().expect("the run validates against the authoritative component")
    }
}
