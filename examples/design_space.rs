//! Design-space exploration — the §III challenge "wide in-order or narrow
//! out-of-order cores": run one SPECFP-like benchmark over several core
//! configurations and compare IPC, power and energy-delay product.
//!
//! Run with: `cargo run --release --example design_space`

use darco::{SinkChoice, System, SystemConfig};
use darco_timing::TimingConfig;
use darco_workloads::benchmarks;

fn main() {
    let bench = &benchmarks()[13]; // 433.milc-like
    let program = darco_workloads::build(&bench.profile.clone().scaled(1, 8));
    println!("exploring core designs on {} (scaled)", bench.name);
    println!(
        "{:<26} {:>8} {:>10} {:>12} {:>14}",
        "configuration", "IPC", "cycles", "avg power", "EDP (pJ·cyc)"
    );

    let configs: Vec<(&str, SinkChoice, TimingConfig)> = vec![
        ("in-order 2-wide", SinkChoice::InOrder, TimingConfig::default()),
        ("in-order 4-wide", SinkChoice::InOrder, TimingConfig::wide_inorder()),
        ("out-of-order 2-wide", SinkChoice::OutOfOrder, TimingConfig::narrow_ooo()),
        (
            "in-order 2-wide, no pf",
            SinkChoice::InOrder,
            TimingConfig { prefetch: false, ..TimingConfig::default() },
        ),
    ];
    for (name, sink, timing) in configs {
        let cfg = SystemConfig { sink, timing, power: true, ..SystemConfig::default() };
        let r = System::new(cfg, program.clone()).run().expect("run validates");
        let t = r.timing.unwrap();
        let p = r.power.unwrap();
        println!(
            "{:<26} {:>8.2} {:>10} {:>10.1} mW {:>14.3e}",
            name,
            t.ipc(),
            t.cycles,
            p.avg_power_mw,
            p.edp
        );
    }
    println!("\n(the co-designed premise: software scheduling lets simple wide");
    println!(" in-order hardware compete with out-of-order complexity)");
}
