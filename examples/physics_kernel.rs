//! A Physicsbench-style scenario: run the trigonometry-heavy n-body
//! kernel and watch the cost of software-emulated transcendentals —
//! the paper's explanation for Physicsbench's high emulation cost.
//!
//! Run with: `cargo run --release --example physics_kernel`

use darco::{System, SystemConfig};
use darco_workloads::kernels;

fn main() {
    for (n, steps) in [(16, 200), (64, 400)] {
        let program = kernels::nbody_step(n, steps);
        let r = System::new(SystemConfig::default(), program).run().expect("validates");
        println!(
            "nbody n={n:<3} steps={steps:<4}: {:>8} guest insns, SBM {:.1}%, emulation cost {:.2} host/guest",
            r.guest_insns,
            r.sbm_fraction() * 100.0,
            r.sbm_emulation_cost
        );
    }
    println!("\nsin/cos expand to ~40-instruction host runtime routines, so the");
    println!("host-per-guest ratio is far above an ALU-only kernel's — compare:");
    let r = System::new(SystemConfig::default(), kernels::dot_product(4000)).run().unwrap();
    println!(
        "dot_product       : {:>8} guest insns, SBM {:.1}%, emulation cost {:.2} host/guest",
        r.guest_insns,
        r.sbm_fraction() * 100.0,
        r.sbm_emulation_cost
    );
}
