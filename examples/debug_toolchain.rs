//! The debug toolchain in action (§V-D): plant a bug in a TOL stage, let
//! state validation catch it, then let the toolchain localize the first
//! divergent region and attribute it to the pipeline stage that caused it.
//!
//! Run with: `cargo run --release --example debug_toolchain`

use darco::debug::{diagnose, Stage};
use darco_guest::{AluOp, Asm, Cond, Gpr};
use darco_tol::{BugKind, Injection, TolConfig};

fn main() {
    let mut a = Asm::new(0x10_0000);
    a.mov_ri(Gpr::Eax, 1);
    a.mov_ri(Gpr::Ebx, 3); // non-degenerate seed for the multiply chain
    a.mov_ri(Gpr::Ecx, 2_000);
    let top = a.here();
    a.alu_ri(AluOp::Add, Gpr::Eax, 7);
    // A mixing step that never collapses to zero (a repeated multiply
    // would saturate with factors of two and hide value bugs).
    a.add_rr(Gpr::Ebx, Gpr::Eax);
    a.alu_ri(AluOp::Xor, Gpr::Ebx, 0x9E37_79B9u32 as i32);
    a.store(darco_guest::Addr::abs(0x40_0000), Gpr::Ebx, darco_guest::Width::D);
    // Read it back so the page is shared with the authoritative component
    // (state comparison covers pages mapped on both sides) and the value
    // feeds later iterations.
    a.load(Gpr::Edx, darco_guest::Addr::abs(0x40_0000));
    a.add_rr(Gpr::Eax, Gpr::Edx);
    a.alu_ri(AluOp::Sub, Gpr::Ecx, 1);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    let program = a.into_program().with_data(vec![0; 64]);

    for kind in [
        BugKind::TranslatorWrongConstant,
        BugKind::OptimizerBadFold,
        BugKind::CodegenDropStore,
    ] {
        let cfg = TolConfig {
            injection: Some(Injection { kind, translation_ordinal: 0 }),
            ..TolConfig::default()
        };
        let d = diagnose(&program, &cfg, 10_000_000);
        println!("planted {kind:?}:");
        match d.stage {
            Stage::None => println!("  no divergence found (!)"),
            stage => println!(
                "  diagnosed stage: {stage:?}\n  first divergence after {} retired instructions at guest pc {:#010x}\n  first difference: {}",
                d.divergence_at.unwrap(),
                d.guest_pc.unwrap(),
                d.detail.unwrap()
            ),
        }
        println!();
    }
}
