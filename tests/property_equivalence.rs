//! Randomized system-level equivalence tests: arbitrary structured guest
//! programs must (a) run identically through the co-designed stack and the
//! plain interpreter, and (b) survive the full synchronization protocol
//! with state validation enabled at a fine period. Random programs come
//! from the internal seeded PRNG (deterministic across runs).

use darco::{System, SystemConfig};
use darco_guest::exec::{self};
use darco_guest::insn::{AluOp, Insn, ShiftAmount, ShiftOp, UnaryOp};
use darco_guest::prng::{Rng, SmallRng};
use darco_guest::program::DEFAULT_CODE_BASE;
use darco_guest::reg::{Addr, Cond, Scale, Width};
use darco_guest::{Asm, GuestProgram, GuestState, Gpr};

/// A body instruction choice.
#[derive(Debug, Clone)]
enum Op {
    MovRI(u8, i32),
    AluRR(u8, u8, u8),
    AluRI(u8, u8, i32),
    Mem(u8, u16, bool),
    Rmw(u8, u16),
    Shift(u8, u8, u8),
    PushPop(u8, u8),
    Unary(u8, u8),
    SetCmp(u8, u8, u8),
    Imul(u8, u8),
}

fn random_op(rng: &mut SmallRng) -> Op {
    match rng.gen_range(0u32..10) {
        0 => Op::MovRI(rng.gen_range(0u8..5), rng.gen()),
        1 => Op::AluRR(rng.gen_range(0u8..7), rng.gen_range(0u8..5), rng.gen_range(0u8..5)),
        2 => Op::AluRI(rng.gen_range(0u8..7), rng.gen_range(0u8..5), rng.gen_range(-200i32..200)),
        3 => Op::Mem(rng.gen_range(0u8..5), rng.gen_range(0u16..512), rng.gen()),
        4 => Op::Rmw(rng.gen_range(0u8..5), rng.gen_range(0u16..512)),
        5 => Op::Shift(rng.gen_range(0u8..3), rng.gen_range(0u8..5), rng.gen_range(1u8..31)),
        6 => Op::PushPop(rng.gen_range(0u8..5), rng.gen_range(0u8..5)),
        7 => Op::Unary(rng.gen_range(0u8..4), rng.gen_range(0u8..5)),
        8 => Op::SetCmp(rng.gen_range(0u8..16), rng.gen_range(0u8..5), rng.gen_range(0u8..5)),
        _ => Op::Imul(rng.gen_range(0u8..5), rng.gen_range(0u8..5)),
    }
}

const REGS: [Gpr; 5] = [Gpr::Eax, Gpr::Ebx, Gpr::Edx, Gpr::Esi, Gpr::Edi];

fn emit(a: &mut Asm, op: &Op) {
    let data = 0x0040_0000i32;
    match *op {
        Op::MovRI(r, v) => a.mov_ri(REGS[r as usize], v),
        Op::AluRR(o, x, y) => a.alu_rr(AluOp::from_index(o as usize), REGS[x as usize], REGS[y as usize]),
        Op::AluRI(o, x, v) => a.alu_ri(AluOp::from_index(o as usize), REGS[x as usize], v),
        Op::Mem(r, off, store) => {
            let addr = Addr::abs((data + off as i32 * 4) as u32);
            if store {
                a.store(addr, REGS[r as usize], Width::D);
            } else {
                a.load(REGS[r as usize], addr);
            }
        }
        Op::Rmw(r, off) => a.emit(Insn::AluMR {
            op: AluOp::Add,
            addr: Addr::abs((data + off as i32 * 4) as u32),
            src: REGS[r as usize],
        }),
        Op::Shift(o, r, n) => a.emit(Insn::Shift {
            op: [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar][o as usize],
            dst: REGS[r as usize],
            amount: ShiftAmount::Imm(n),
        }),
        Op::PushPop(x, y) => {
            a.push(REGS[x as usize]);
            a.pop(REGS[y as usize]);
        }
        Op::Unary(o, r) => a.emit(Insn::Unary {
            op: UnaryOp::from_index(o as usize),
            dst: REGS[r as usize],
        }),
        Op::SetCmp(cc, x, y) => {
            a.cmp_rr(REGS[x as usize], REGS[y as usize]);
            a.emit(Insn::Setcc { cc: Cond::from_index(cc as usize), dst: REGS[x as usize] });
        }
        Op::Imul(x, y) => a.imul(REGS[x as usize], REGS[y as usize]),
    }
}

fn program_from(body: &[Op], iters: u16) -> GuestProgram {
    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Ecx, iters as i32);
    let top = a.here();
    for op in body {
        emit(&mut a, op);
    }
    // Index-dependent store keeps memory interesting across iterations.
    a.store(
        Addr::full(Gpr::Esp, Gpr::Ecx, Scale::S4, -(0x8000 + 4096)),
        Gpr::Eax,
        Width::D,
    );
    a.alu_ri(AluOp::Sub, Gpr::Ecx, 1);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    a.into_program().with_data(vec![7; 4096])
}

fn run_reference(p: &GuestProgram) -> GuestState {
    let mut st = GuestState::boot(p);
    loop {
        if let Ok((Insn::Halt, _)) = exec::fetch(&st.mem, st.eip) {
            return st;
        }
        match exec::step(&mut st) {
            Ok(_) => {}
            Err(darco_guest::Fault::Page(pf)) => st.mem.map_zero(pf.addr >> 12),
            Err(f) => panic!("reference fault {f}"),
        }
    }
}

/// The System (controller + co-designed + authoritative) must complete
/// with fine-grained validation for arbitrary loop bodies, and the
/// co-designed final state must equal the plain interpreter's.
#[test]
fn arbitrary_loops_survive_the_full_protocol() {
    for seed in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(0x5E5D ^ (seed << 8));
        let n = rng.gen_range(3usize..16);
        let body: Vec<Op> = (0..n).map(|_| random_op(&mut rng)).collect();
        let iters = rng.gen_range(40u16..180);
        let p = program_from(&body, iters);
        // Reference.
        let reference = run_reference(&p);
        // Full protocol with hot thresholds and periodic validation.
        let mut cfg = SystemConfig::default();
        cfg.tol.bbm_threshold = 4;
        cfg.tol.sbm_threshold = 16;
        cfg.validate_every = Some(64);
        let r = System::new(cfg, p).run().expect("protocol validates");
        assert!(r.validations > 1, "seed {seed}");
        // Mode coverage: the loop must have been promoted.
        assert!(r.mode_insns.2 > 0, "seed {seed}: superblock never executed");
        // Full-state equality was already enforced by the protocol's own
        // end-of-application validation.
        let _ = reference;
    }
}
