//! Workspace-level integration tests: the full stack (guest ISA → TOL →
//! host emulator → controller → authoritative component), exercised
//! across crates exactly as a user would drive it.

use darco::{SinkChoice, System, SystemConfig};
use darco_guest::{AluOp, Asm, Cond, Gpr};
use darco_workloads::{benchmarks, kernels, Suite};

fn tiny(cfg: SystemConfig, idx: usize) -> darco::RunReport {
    let b = &benchmarks()[idx];
    let program = darco_workloads::build(&b.profile.clone().scaled(1, 40));
    System::new(cfg, program).run().expect("validated run")
}

#[test]
fn whole_suite_runs_validated_at_tiny_scale() {
    for b in benchmarks() {
        let program = darco_workloads::build(&b.profile.clone().scaled(1, 40));
        let r = System::new(SystemConfig::default(), program)
            .run()
            .unwrap_or_else(|e| panic!("{} failed: {e}", b.name));
        assert!(r.guest_insns > 5_000, "{}: {}", b.name, r.guest_insns);
        assert_eq!(r.syscalls, 1, "{}: checksum write", b.name);
        assert_eq!(r.output.len(), 4, "{}: 4-byte checksum", b.name);
        assert!(r.validations >= 2, "{}: syscall + end validation", b.name);
    }
}

#[test]
fn runs_are_bit_deterministic() {
    let b = &benchmarks()[3];
    let r1 = tiny(SystemConfig::default(), 3);
    let r2 = tiny(SystemConfig::default(), 3);
    assert_eq!(r1.guest_insns, r2.guest_insns);
    assert_eq!(r1.mode_insns, r2.mode_insns);
    assert_eq!(r1.host_app_insns, r2.host_app_insns);
    assert_eq!(r1.output, r2.output);
    assert_eq!(r1.overhead, r2.overhead);
    let _ = b;
}

#[test]
fn periodic_validation_and_timing_do_not_change_results() {
    let base = tiny(SystemConfig::default(), 12);
    let cfg = SystemConfig { validate_every: Some(1_000), ..SystemConfig::default() };
    let periodic = tiny(cfg, 12);
    assert_eq!(base.output, periodic.output);
    assert!(periodic.validations > base.validations);

    let cfg =
        SystemConfig { sink: SinkChoice::InOrder, power: true, ..SystemConfig::default() };
    let timed = tiny(cfg, 12);
    assert_eq!(base.output, timed.output, "timing is observation-only");
    assert_eq!(base.guest_insns, timed.guest_insns);
    let t = timed.timing.unwrap();
    assert!(t.cycles > 0 && t.insns > timed.guest_insns);
    assert!(timed.power.unwrap().total_pj > 0.0);
}

#[test]
fn suites_show_the_papers_ordering_even_when_scaled() {
    // At 1/8 scale the absolute numbers move, but the suite orderings the
    // paper reports must survive: SPECFP has the highest SBM share and the
    // lowest TOL overhead; Physicsbench the lowest SBM share and the
    // highest overhead.
    let avg = |suite: Suite, f: &dyn Fn(&darco::RunReport) -> f64| {
        let rows: Vec<f64> = benchmarks()
            .iter()
            .filter(|b| b.suite == suite)
            .take(3)
            .map(|b| {
                let program = darco_workloads::build(&b.profile.clone().scaled(1, 8));
                f(&System::new(SystemConfig::default(), program).run().unwrap())
            })
            .collect();
        rows.iter().sum::<f64>() / rows.len() as f64
    };
    let sbm = |r: &darco::RunReport| r.sbm_fraction();
    let ovh = |r: &darco::RunReport| r.overhead_fraction();
    let (int_sbm, fp_sbm, ph_sbm) =
        (avg(Suite::SpecInt, &sbm), avg(Suite::SpecFp, &sbm), avg(Suite::Physics, &sbm));
    let (int_ovh, fp_ovh, ph_ovh) =
        (avg(Suite::SpecInt, &ovh), avg(Suite::SpecFp, &ovh), avg(Suite::Physics, &ovh));
    assert!(fp_sbm > int_sbm && int_sbm > ph_sbm, "SBM: fp {fp_sbm} int {int_sbm} ph {ph_sbm}");
    assert!(ph_ovh > int_ovh && ph_ovh > fp_ovh, "ovh: fp {fp_ovh} int {int_ovh} ph {ph_ovh}");
}

#[test]
fn kernels_produce_correct_results_through_the_full_stack() {
    // dot product value checked through the co-designed execution path.
    let r = System::new(SystemConfig::default(), kernels::dot_product(256)).run().unwrap();
    assert!(r.guest_insns > 2_000);
    // (The value itself is validated against the authoritative component
    // by construction; a wrong translation would fail validation.)
    let r = System::new(SystemConfig::default(), kernels::nbody_step(12, 60)).run().unwrap();
    assert!(r.sbm_emulation_cost > 3.0, "trig kernel has high cost: {}", r.sbm_emulation_cost);

    let r = System::new(SystemConfig::default(), kernels::string_search(2000, 1234))
        .run()
        .unwrap();
    assert!(r.guest_insns > 1_000, "rep scas retires per element");
}

#[test]
fn ablation_knobs_preserve_correctness_and_move_metrics() {
    let base = tiny(SystemConfig::default(), 0);

    let mut cfg = SystemConfig::default();
    cfg.tol.strict_flags = true;
    let strict = tiny(cfg, 0);
    assert_eq!(strict.output, base.output);
    assert!(
        strict.sbm_emulation_cost > base.sbm_emulation_cost,
        "strict flags must cost host instructions: {} vs {}",
        strict.sbm_emulation_cost,
        base.sbm_emulation_cost
    );

    let mut cfg = SystemConfig::default();
    cfg.tol.chaining = false;
    cfg.tol.ibtc = false;
    let unchained = tiny(cfg, 0);
    assert_eq!(unchained.output, base.output);
    assert!(
        unchained.overhead.prologue > 3 * base.overhead.prologue,
        "unchained execution multiplies TOL transitions: {} vs {}",
        unchained.overhead.prologue,
        base.overhead.prologue
    );

    let mut cfg = SystemConfig::default();
    cfg.tol.opt_level = darco_ir::OptLevel::O0;
    let o0 = tiny(cfg, 0);
    assert_eq!(o0.output, base.output);
    assert!(o0.sbm_emulation_cost > base.sbm_emulation_cost);
}

#[test]
fn guest_program_errors_are_agreed_by_both_components() {
    let mut a = Asm::new(0x10_0000);
    a.mov_ri(Gpr::Eax, 9);
    a.mov_ri(Gpr::Ebx, 0);
    a.emit(darco_guest::Insn::Idiv { dst: Gpr::Eax, src: Gpr::Ebx });
    a.halt();
    let r = System::new(SystemConfig::default(), a.into_program()).run().unwrap();
    assert!(r.guest_fault.unwrap().contains("division by zero"));
}

#[test]
fn code_cache_pressure_flushes_and_stays_correct() {
    let mut cfg = SystemConfig::default();
    cfg.tol.code_cache_words = 6_000; // tiny: forces flushes
    cfg.tol.bbm_threshold = 5;
    cfg.tol.sbm_threshold = 25;
    let mut a = Asm::new(0x10_0000);
    // Many distinct hot blocks so translations overflow the cache.
    a.mov_ri(Gpr::Edx, 60);
    let outer = a.here();
    for _ in 0..24 {
        a.mov_ri(Gpr::Ecx, 12);
        let top = a.here();
        a.alu_ri(AluOp::Add, Gpr::Eax, 3);
        a.alu_ri(AluOp::Xor, Gpr::Ebx, 0xF0F0);
        a.alu_ri(AluOp::Sub, Gpr::Ecx, 1);
        a.jcc_to(Cond::Ne, top);
    }
    a.alu_ri(AluOp::Sub, Gpr::Edx, 1);
    a.jcc_to(Cond::Ne, outer);
    a.halt();
    let r = System::new(cfg, a.into_program()).run().expect("flushes preserve correctness");
    assert!(r.guest_insns > 50_000);
}
