//! Regression-corpus replay: every checked-in fuzz corpus entry
//! (`tests/corpus/*.json` — interesting inputs harvested by
//! `darco-fuzz run` and auto-minimized reproducers of fixed bugs) must
//! run cleanly through the full differential oracle: interpreter vs BBM
//! vs SBM+speculation vs native backend, semantic verifier armed.
//!
//! A failure here means a translator regression reintroduced a
//! divergence an earlier fuzzing campaign already found.

use darco_fuzz::{lanes, run_differential, Verdict};
use darco_workloads::fuzzprog::FuzzProgram;

#[test]
fn checked_in_corpus_replays_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "the regression corpus must not be empty");

    let lanes = lanes(None);
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        let prog = FuzzProgram::parse(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        match run_differential(&prog, &lanes) {
            Verdict::Clean(reports) => {
                assert_eq!(reports.len(), lanes.len(), "{}", path.display());
            }
            Verdict::Diverged(d) => panic!(
                "{}: regression — {} ({})",
                path.display(),
                d.kind.label(),
                d.detail
            ),
        }
    }
}
