//! Self-modifying-code regression tests for the translation layer.
//!
//! The decode cache and the authoritative component re-check the code
//! generation after every retired instruction, but installed BBM/SBM
//! translations are compiled from a byte snapshot: without invalidation
//! they keep executing stale code after the guest patches itself. These
//! tests pin the two mechanisms that close that hole — the dispatcher's
//! generation check (flush stale translations before the next cache
//! entry) and the store-to-code transaction abort inside a translation.

use darco_guest::program::DEFAULT_CODE_BASE;
use darco_guest::{encode, AluOp, Asm, Cond, Gpr, Insn, Width};
use darco_host::sink::NullSink;

fn emit_patch_stores(a: &mut Asm, slot_addr: u32, bytes: &[u8]) {
    for (i, b) in bytes.iter().enumerate() {
        a.emit(Insn::StoreI {
            addr: darco_guest::Addr::abs(slot_addr + i as u32),
            imm: *b as i32,
            width: Width::B,
        });
    }
}

/// Patches an instruction in a hot loop from *outside* the loop: the
/// stale translation must be flushed at the next dispatch, not keep
/// running with the old immediate.
#[test]
fn patch_outside_hot_loop_invalidates_translations() {
    let patch_a = Insn::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 1 };
    let patch_b = Insn::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 2 };
    let mut ea = Vec::new();
    encode::encode(&patch_a, &mut ea);
    let mut eb = Vec::new();
    encode::encode(&patch_b, &mut eb);
    assert_eq!(ea.len(), eb.len(), "patch family must be length-stable");

    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Edx, 2);
    let phase_top = a.here();
    a.mov_ri(Gpr::Ecx, 400);
    let top = a.here();
    let slot_addr = a.addr();
    a.emit(patch_a);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, top);
    emit_patch_stores(&mut a, slot_addr, &eb);
    a.dec(Gpr::Edx);
    a.jcc_to(Cond::Ne, phase_top);
    a.halt();
    let p = a.into_program();

    let cfg = darco_tol::TolConfig {
        bbm_threshold: 3,
        sbm_threshold: 12,
        ..Default::default()
    };
    let mut m = darco::machine::Machine::new(cfg, &p);
    m.run_to(u64::MAX, true, &mut NullSink)
        .expect("SMC over translated code must not diverge");
    // Phase 1 adds 1 four hundred times, phase 2 adds 2.
    assert_eq!(m.state.gpr(Gpr::Eax), 400 + 800);
    assert!(m.tol.stats.smc_flushes > 0, "dispatcher must flush stale translations");
}

/// A hot loop that patches its *own* body every iteration (it rewrites
/// the same bytes, so the architectural result is unchanged): once the
/// loop is translated, each store must abort the transaction and land
/// through the interpreter instead of being buffered behind stale code.
/// Runs on the emulator and, where available, the native JIT backend —
/// both must take the same abort path.
#[test]
fn store_into_own_loop_aborts_transaction() {
    let patch = Insn::AluRI { op: AluOp::Add, dst: Gpr::Eax, imm: 5 };
    let mut enc = Vec::new();
    encode::encode(&patch, &mut enc);

    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Ecx, 300);
    let top = a.here();
    let slot_addr = a.addr();
    a.emit(patch);
    emit_patch_stores(&mut a, slot_addr, &enc);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    let p = a.into_program();

    for native in [false, true] {
        let cfg = darco_tol::TolConfig {
            bbm_threshold: 3,
            sbm_threshold: 12,
            ..Default::default()
        };
        let mut m = darco::machine::Machine::new(cfg, &p);
        if native {
            m.tol.set_backend(darco_host::codegen::Backend::Native);
        }
        m.run_to(u64::MAX, true, &mut NullSink)
            .expect("self-patching loop must not diverge");
        assert_eq!(m.state.gpr(Gpr::Eax), 300 * 5, "native={native}");
        assert!(
            m.tol.stats.smc_aborts > 0,
            "translated stores into code pages must abort the transaction (native={native})"
        );
    }
}

/// Determinism: the SMC paths (aborts, flushes, retranslations) must be
/// a pure function of the program — two runs agree on every statistic.
#[test]
fn smc_handling_is_deterministic() {
    let patch = Insn::AluRI { op: AluOp::Xor, dst: Gpr::Ebx, imm: 3 };
    let mut enc = Vec::new();
    encode::encode(&patch, &mut enc);

    let mut a = Asm::new(DEFAULT_CODE_BASE);
    a.mov_ri(Gpr::Ecx, 200);
    let top = a.here();
    let slot_addr = a.addr();
    a.emit(patch);
    emit_patch_stores(&mut a, slot_addr, &enc);
    a.dec(Gpr::Ecx);
    a.jcc_to(Cond::Ne, top);
    a.halt();
    let p = a.into_program();

    let run = || {
        let cfg = darco_tol::TolConfig {
            bbm_threshold: 3,
            sbm_threshold: 12,
            ..Default::default()
        };
        let mut m = darco::machine::Machine::new(cfg, &p);
        m.run_to(u64::MAX, true, &mut NullSink).expect("run must not diverge");
        let mut stats = m.tol.stats;
        // Wall-clock telemetry is the one legitimately nondeterministic
        // part of the statistics.
        stats.verify_nanos = 0;
        stats.verify_sem_nanos = 0;
        stats.translate_nanos = 0;
        (m.state.gpr(Gpr::Ebx), format!("{stats:?}"))
    };
    assert_eq!(run(), run());
}
